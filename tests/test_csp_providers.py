"""Unit tests for the provider implementations (memory, localfs)."""

import pytest

from repro.csp import Credentials, InMemoryCSP, LocalDirectoryCSP
from repro.errors import CSPError, ObjectNotFoundError


class TestInMemory:
    def test_upload_download(self):
        csp = InMemoryCSP("m")
        csp.upload("obj", b"data")
        assert csp.download("obj") == b"data"

    def test_missing_object(self):
        with pytest.raises(ObjectNotFoundError):
            InMemoryCSP("m").download("ghost")

    def test_delete(self):
        csp = InMemoryCSP("m")
        csp.upload("obj", b"x")
        csp.delete("obj")
        with pytest.raises(ObjectNotFoundError):
            csp.download("obj")

    def test_delete_missing(self):
        with pytest.raises(ObjectNotFoundError):
            InMemoryCSP("m").delete("ghost")

    def test_list_prefix(self):
        csp = InMemoryCSP("m")
        csp.upload("md-1", b"a")
        csp.upload("md-2", b"bb")
        csp.upload("sh-1", b"c")
        names = [o.name for o in csp.list(prefix="md-")]
        assert names == ["md-1", "md-2"]

    def test_list_sizes(self):
        csp = InMemoryCSP("m")
        csp.upload("o", b"12345")
        assert csp.list()[0].size == 5

    def test_overwrite_semantics_dropbox_style(self):
        csp = InMemoryCSP("m", overwrite=True)
        csp.upload("o", b"v1")
        csp.upload("o", b"v2")
        assert csp.download("o") == b"v2"
        assert csp.revision_count("o") == 1
        assert csp.stored_bytes == 2

    def test_revision_semantics_gdrive_style(self):
        csp = InMemoryCSP("m", overwrite=False)
        csp.upload("o", b"v1")
        csp.upload("o", b"v2!")
        assert csp.download("o") == b"v2!"  # latest wins on download
        assert csp.revision_count("o") == 2
        assert csp.stored_bytes == 5  # both revisions consume quota

    def test_cyrus_naming_makes_semantics_equivalent(self):
        # CYRUS share names are content-derived: same name => same bytes,
        # so both vendor styles behave identically for CYRUS
        payload = b"identical share bytes"
        for overwrite in (True, False):
            csp = InMemoryCSP("m", overwrite=overwrite)
            csp.upload("deadbeef", payload)
            csp.upload("deadbeef", payload)
            assert csp.download("deadbeef") == payload

    def test_object_size(self):
        csp = InMemoryCSP("m")
        assert csp.object_size("nope") is None
        csp.upload("o", b"123")
        assert csp.object_size("o") == 3

    def test_authenticate_deterministic(self):
        csp = InMemoryCSP("m")
        t1 = csp.authenticate(Credentials("u", "p"))
        t2 = csp.authenticate(Credentials("u", "p"))
        assert t1.token == t2.token

    def test_tokens_differ_per_provider(self):
        cred = Credentials("u", "p")
        assert (
            InMemoryCSP("a").authenticate(cred).token
            != InMemoryCSP("b").authenticate(cred).token
        )


class TestLocalDirectory:
    def test_roundtrip(self, tmp_path):
        csp = LocalDirectoryCSP("disk", tmp_path / "store")
        csp.upload("abc123", b"share bytes")
        assert csp.download("abc123") == b"share bytes"

    def test_persistence_across_instances(self, tmp_path):
        root = tmp_path / "store"
        LocalDirectoryCSP("disk", root).upload("obj", b"persists")
        fresh = LocalDirectoryCSP("disk", root)
        assert fresh.download("obj") == b"persists"

    def test_list(self, tmp_path):
        csp = LocalDirectoryCSP("disk", tmp_path)
        csp.upload("md-aa", b"1")
        csp.upload("md-bb", b"22")
        csp.upload("zz", b"3")
        infos = csp.list(prefix="md-")
        assert [o.name for o in infos] == ["md-aa", "md-bb"]
        assert [o.size for o in infos] == [1, 2]

    def test_delete(self, tmp_path):
        csp = LocalDirectoryCSP("disk", tmp_path)
        csp.upload("obj", b"x")
        csp.delete("obj")
        with pytest.raises(ObjectNotFoundError):
            csp.download("obj")

    def test_missing(self, tmp_path):
        csp = LocalDirectoryCSP("disk", tmp_path)
        with pytest.raises(ObjectNotFoundError):
            csp.download("ghost")
        with pytest.raises(ObjectNotFoundError):
            csp.delete("ghost")

    def test_unsafe_names_rejected(self, tmp_path):
        csp = LocalDirectoryCSP("disk", tmp_path)
        for bad in ("../escape", "a/b", "", "a b"):
            with pytest.raises(CSPError):
                csp.upload(bad, b"x")

    def test_atomic_upload_leaves_no_partials(self, tmp_path):
        csp = LocalDirectoryCSP("disk", tmp_path)
        csp.upload("obj", b"final")
        assert [p.name for p in tmp_path.iterdir()] == ["obj"]
