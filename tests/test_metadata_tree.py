"""Unit tests for the metadata version tree."""

import pytest

from repro.errors import MetadataError
from repro.metadata import ChunkRecord, MetadataNode, MetadataTree, ROOT_ID, ShareRecord
from repro.util.hashing import sha1_hex


def mk(name, tag, prev=ROOT_ID, client="c1", modified=1.0, deleted=False):
    cid = sha1_hex(b"chunk" + tag.encode())
    return MetadataNode(
        file_id=sha1_hex(tag.encode()),
        prev_id=prev,
        client_id=client,
        name=name,
        deleted=deleted,
        modified=modified,
        size=5,
        chunks=(ChunkRecord(chunk_id=cid, offset=0, size=5, t=2, n=3),),
        shares=(ShareRecord(chunk_id=cid, index=0, csp_id="a"),
                ShareRecord(chunk_id=cid, index=1, csp_id="b"),),
    )


class TestGrowth:
    def test_add_and_len(self):
        tree = MetadataTree()
        assert tree.add(mk("f", "v1"))
        assert len(tree) == 1

    def test_idempotent(self):
        tree = MetadataTree()
        n = mk("f", "v1")
        assert tree.add(n)
        assert not tree.add(n)
        assert len(tree) == 1

    def test_merge_counts_new(self):
        tree = MetadataTree()
        a, b = mk("f", "v1"), mk("g", "v2")
        assert tree.merge([a, b, a]) == 2

    def test_share_union_on_republish(self):
        tree = MetadataTree()
        a = mk("f", "v1")
        tree.add(a)
        cid = a.chunks[0].chunk_id
        migrated = MetadataNode(
            file_id=a.file_id, prev_id=a.prev_id, client_id=a.client_id,
            name=a.name, deleted=a.deleted, modified=a.modified, size=a.size,
            chunks=a.chunks,
            shares=a.shares + (ShareRecord(chunk_id=cid, index=2, csp_id="z"),),
        )
        tree.add(migrated)
        merged = tree.get(a.node_id)
        assert {(s.index, s.csp_id) for s in merged.shares} == {
            (0, "a"), (1, "b"), (2, "z"),
        }

    def test_true_collision_raises(self):
        tree = MetadataTree()
        a = mk("f", "v1", modified=1.0)
        tree.add(a)
        forged = MetadataNode(
            file_id=a.file_id, prev_id=a.prev_id, client_id=a.client_id,
            name=a.name, deleted=a.deleted, modified=99.0, size=a.size,
            chunks=a.chunks, shares=a.shares,
        )
        with pytest.raises(MetadataError):
            tree.add(forged)

    def test_merge_order_independent(self):
        a = mk("f", "v1")
        b = mk("f", "v2", prev=a.node_id, modified=2.0)
        c = mk("g", "w1")
        t1, t2 = MetadataTree(), MetadataTree()
        t1.merge([a, b, c])
        t2.merge([c, b, a])
        assert t1.node_ids() == t2.node_ids()
        assert t1.latest("f").node_id == t2.latest("f").node_id


class TestLookup:
    def test_get_unknown(self):
        with pytest.raises(MetadataError):
            MetadataTree().get("0" * 40)

    def test_children_sorted_by_time(self):
        tree = MetadataTree()
        a = mk("f", "v1")
        tree.add(a)
        late = mk("f", "v2", prev=a.node_id, modified=5.0, client="x")
        early = mk("f", "v3", prev=a.node_id, modified=2.0, client="y")
        tree.add(late)
        tree.add(early)
        assert [n.modified for n in tree.children(a.node_id)] == [2.0, 5.0]

    def test_leaves(self):
        tree = MetadataTree()
        a = mk("f", "v1")
        b = mk("f", "v2", prev=a.node_id, modified=2.0)
        tree.merge([a, b])
        assert [n.node_id for n in tree.leaves()] == [b.node_id]

    def test_latest_breaks_ties_deterministically(self):
        tree = MetadataTree()
        a = mk("f", "a-version", client="c1", modified=3.0)
        b = mk("f", "b-version", client="c2", modified=3.0)
        tree.merge([a, b])
        assert tree.latest("f").node_id == max(a.node_id, b.node_id)

    def test_latest_missing(self):
        with pytest.raises(MetadataError):
            MetadataTree().latest("ghost")


class TestHistory:
    def build_chain(self, length=4):
        tree = MetadataTree()
        prev = ROOT_ID
        nodes = []
        for i in range(length):
            n = mk("f", f"v{i}", prev=prev, modified=float(i))
            tree.add(n)
            nodes.append(n)
            prev = n.node_id
        return tree, nodes

    def test_history_newest_first(self):
        tree, nodes = self.build_chain()
        chain = tree.history(nodes[-1].node_id)
        assert [n.node_id for n in chain] == [
            n.node_id for n in reversed(nodes)
        ]

    def test_version_at_depth(self):
        tree, nodes = self.build_chain()
        assert tree.version_at_depth("f", 0).node_id == nodes[-1].node_id
        assert tree.version_at_depth("f", 3).node_id == nodes[0].node_id

    def test_version_too_deep(self):
        tree, _ = self.build_chain(2)
        with pytest.raises(MetadataError):
            tree.version_at_depth("f", 5)


class TestFileViews:
    def test_file_names_excludes_deleted(self):
        tree = MetadataTree()
        a = mk("f", "v1")
        tree.add(a)
        tomb = mk("f", "v1", prev=a.node_id, deleted=True, modified=2.0)
        tree.add(tomb)
        assert tree.file_names() == []
        assert tree.file_names(include_deleted=True) == ["f"]

    def test_heads_multiple_on_conflict(self):
        tree = MetadataTree()
        a = mk("f", "v1")
        tree.add(a)
        tree.add(mk("f", "v2a", prev=a.node_id, client="x", modified=2.0))
        tree.add(mk("f", "v2b", prev=a.node_id, client="y", modified=2.5))
        assert len(tree.heads("f")) == 2

    def test_referenced_chunks(self):
        tree = MetadataTree()
        a, b = mk("f", "v1"), mk("g", "w1")
        tree.merge([a, b])
        assert tree.referenced_chunks() == {
            a.chunks[0].chunk_id, b.chunks[0].chunk_id,
        }
