"""Unit tests for metadata serialization and scattered storage."""

import pytest

from repro.csp import InMemoryCSP
from repro.errors import InsufficientSharesError, MetadataError
from repro.metadata import (
    GlobalChunkTable,
    MetadataStore,
    decode_node,
    encode_node,
    metadata_share_name,
    parse_metadata_share_name,
)
from tests.test_metadata_tree import mk


class TestCodec:
    def test_roundtrip(self):
        node = mk("file.txt", "v1")
        assert decode_node(encode_node(node)) == node

    def test_canonical_bytes(self):
        node = mk("file.txt", "v1")
        assert encode_node(node) == encode_node(node)

    def test_corrupt_rejected(self):
        with pytest.raises(MetadataError):
            decode_node(b"not json at all")
        with pytest.raises(MetadataError):
            decode_node(b"{}")

    def test_version_rejected(self):
        blob = encode_node(mk("f", "v1")).replace(b'"v":1', b'"v":99')
        with pytest.raises(MetadataError):
            decode_node(blob)

    def test_share_names(self):
        node = mk("f", "v1")
        name = metadata_share_name(node.node_id, 7)
        parsed = parse_metadata_share_name(name)
        assert parsed == (node.node_id, 7)

    def test_share_name_validation(self):
        with pytest.raises(MetadataError):
            metadata_share_name("short", 0)
        with pytest.raises(MetadataError):
            metadata_share_name("a" * 40, -1)
        with pytest.raises(MetadataError):
            parse_metadata_share_name("sh-whatever")
        with pytest.raises(MetadataError):
            parse_metadata_share_name("md-tooshort-1")


class TestStore:
    def make(self, m=4, t=2):
        providers = [InMemoryCSP(f"p{i}") for i in range(m)]
        return MetadataStore(providers, key="key", t=t), providers

    def test_publish_fetch(self):
        store, _ = self.make()
        node = mk("f", "v1")
        store.publish(node)
        assert store.fetch(node.node_id) == node

    def test_shares_land_on_every_slot(self):
        store, providers = self.make()
        store.publish(mk("f", "v1"))
        assert all(p.object_count == 1 for p in providers)

    def test_survives_m_minus_t_failures(self):
        store, providers = self.make(m=4, t=2)
        node = mk("f", "v1")
        store.publish(node)
        # two providers lose their shares
        for p in providers[:2]:
            for info in p.list():
                p.delete(info.name)
        assert store.fetch(node.node_id) == node

    def test_fails_below_t_shares(self):
        store, providers = self.make(m=3, t=2)
        node = mk("f", "v1")
        store.publish(node)
        for p in providers[:2]:
            for info in p.list():
                p.delete(info.name)
        with pytest.raises(InsufficientSharesError):
            store.fetch(node.node_id)

    def test_list_node_ids(self):
        store, _ = self.make()
        a, b = mk("f", "v1"), mk("g", "w1")
        store.publish(a)
        store.publish(b)
        assert store.list_node_ids() == {a.node_id, b.node_id}

    def test_partial_upload_invisible(self):
        # fewer than t shares visible => node not listed (mid-upload)
        store, providers = self.make(m=4, t=3)
        node = mk("f", "v1")
        trio = store.shares_for(node)
        provider, name, share = trio[0]
        provider.upload(name, MetadataStore._pack(share))
        assert store.list_node_ids() == set()

    def test_fetch_all(self):
        store, _ = self.make()
        nodes = [mk("f", f"v{i}") if i == 0 else mk(f"g{i}", f"w{i}")
                 for i in range(3)]
        for n in nodes:
            store.publish(n)
        assert {n.node_id for n in store.fetch_all()} == {
            n.node_id for n in nodes
        }

    def test_needs_t_providers(self):
        with pytest.raises(MetadataError):
            MetadataStore([InMemoryCSP("only")], key="k", t=2)

    def test_share_size_positive(self):
        store, _ = self.make()
        assert store.share_size(mk("f", "v1")) > 0

    def test_slot_growth_keeps_old_nodes_decodable(self):
        # metadata slots are append-only; the key-derived dispersal
        # points are prefix-stable, so nodes published at m=4 must stay
        # decodable by a store rebuilt at m=5
        store4, providers = self.make(m=4, t=2)
        node = mk("f", "v1")
        store4.publish(node)
        providers.append(InMemoryCSP("p-new"))
        store5 = MetadataStore(providers, key="key", t=2)
        assert store5.fetch(node.node_id) == node

    def test_new_nodes_span_grown_slot_set(self):
        store4, providers = self.make(m=4, t=2)
        providers.append(InMemoryCSP("p-new"))
        store5 = MetadataStore(providers, key="key", t=2)
        node = mk("g", "w1")
        store5.publish(node)
        assert providers[-1].object_count == 1  # new slot got a share
        # and a client still on m=4 can read it (needs only t=2 shares)
        assert store4.fetch(node.node_id) == node


class TestChunkTable:
    def test_record_and_query(self):
        table = GlobalChunkTable()
        node = mk("f", "v1")
        table.record_node(node)
        cid = node.chunks[0].chunk_id
        assert table.is_stored(cid)
        loc = table.get(cid)
        assert loc.csps() == ["a", "b"]
        assert loc.indices_at("a") == [0]

    def test_unknown_chunk(self):
        table = GlobalChunkTable()
        assert table.get("f" * 40) is None
        assert not table.is_stored("f" * 40)

    def test_chunks_at(self):
        table = GlobalChunkTable()
        node = mk("f", "v1")
        table.record_node(node)
        assert table.chunks_at("a") == [node.chunks[0].chunk_id]
        assert table.chunks_at("zzz") == []

    def test_rebuild_resets(self):
        table = GlobalChunkTable()
        a, b = mk("f", "v1"), mk("g", "w1")
        table.record_node(a)
        table.rebuild([b])
        assert not table.is_stored(a.chunks[0].chunk_id)
        assert table.is_stored(b.chunks[0].chunk_id)

    def test_add_placement(self):
        table = GlobalChunkTable()
        node = mk("f", "v1")
        table.record_node(node)
        cid = node.chunks[0].chunk_id
        table.add_placement(cid, 2, "new-csp")
        assert "new-csp" in table.get(cid).csps()

    def test_add_placement_unknown_chunk(self):
        with pytest.raises(KeyError):
            GlobalChunkTable().add_placement("e" * 40, 0, "x")

    def test_drop_csp(self):
        table = GlobalChunkTable()
        node = mk("f", "v1")
        table.record_node(node)
        assert table.drop_csp("a") == 1
        assert "a" not in table.get(node.chunks[0].chunk_id).csps()

    def test_bytes_at(self):
        table = GlobalChunkTable()
        node = mk("f", "v1")  # one chunk of 5 bytes, t=2 -> share 3 bytes
        table.record_node(node)
        assert table.bytes_at("a") == 3
