"""Unit tests for the Rabin fingerprint reference implementation."""

import os

import pytest

from repro.chunking import RabinFingerprint


class TestRolling:
    def test_rolling_equals_fresh(self):
        # after any prefix, the fingerprint must equal a from-scratch
        # fingerprint of just the window — the defining rolling property
        data = os.urandom(300)
        rf = RabinFingerprint(window=16)
        fresh = RabinFingerprint(window=16)
        for i, b in enumerate(data):
            rf.push(b)
            if i >= 15:
                assert rf.value == fresh.fingerprint(data[i - 15 : i + 1]), i

    def test_small_window(self):
        data = os.urandom(100)
        rf = RabinFingerprint(window=2)
        fresh = RabinFingerprint(window=2)
        rf.update(data)
        assert rf.value == fresh.fingerprint(data[-2:])

    def test_content_defined(self):
        # same window content at different positions -> same fingerprint
        window = os.urandom(16)
        a = RabinFingerprint(window=16).fingerprint(b"AAA" + window)
        b = RabinFingerprint(window=16).fingerprint(b"much longer prefix!" + window)
        assert a == b

    def test_different_content_differs(self):
        rf = RabinFingerprint(window=8)
        a = rf.fingerprint(b"12345678")
        b = rf.fingerprint(b"12345679")
        assert a != b

    def test_update_returns_final(self):
        rf = RabinFingerprint(window=4)
        assert rf.update(b"abcdef") == rf.value

    def test_reset(self):
        rf = RabinFingerprint(window=4)
        rf.update(b"state")
        rf.reset()
        assert rf.value == 0

    def test_fingerprint_bounded_by_degree(self):
        rf = RabinFingerprint(window=16)
        fp = rf.fingerprint(os.urandom(64))
        assert fp < (1 << (rf.poly.bit_length() - 1))


class TestValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RabinFingerprint(window=0)

    def test_rejects_trivial_poly(self):
        with pytest.raises(ValueError):
            RabinFingerprint(poly=1)

    def test_rejects_bad_byte(self):
        rf = RabinFingerprint()
        with pytest.raises(ValueError):
            rf.push(256)

    def test_small_degree_poly(self):
        # degree-7 polynomial exercises the generic reduction path
        rf = RabinFingerprint(poly=0x83, window=4)  # x^7 + x + 1
        fresh = RabinFingerprint(poly=0x83, window=4)
        data = os.urandom(50)
        rf.update(data)
        assert rf.value == fresh.fingerprint(data[-4:])
