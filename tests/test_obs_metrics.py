"""Property-based tests for the metrics layer.

Hypothesis drives three families of invariants the rest of the suite
(and the benchmarks) lean on:

* histogram bucket invariants — bucket counts always sum to the total
  observation count, the cumulative sequence is monotone, every
  observation lands in the bucket its value belongs to, min/sum/max are
  consistent;
* merge algebra — :meth:`MetricsSnapshot.merge` is associative and
  commutative on counters and histograms (integer amounts, so float
  non-associativity cannot produce spurious failures);
* snapshot immutability — a snapshot never changes after later registry
  activity, and cannot be written to.
"""

from __future__ import annotations

import bisect
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram

BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0)

values = st.floats(min_value=0.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)
int_amounts = st.integers(min_value=0, max_value=10**6)
label_values = st.sampled_from(["csp0", "csp1", "csp2", "up", "down"])


# ---------------------------------------------------------------------------
# histogram bucket invariants


class TestHistogramInvariants:
    @given(st.lists(values, max_size=200))
    def test_counts_sum_to_count_and_cumulative_monotone(self, obs):
        hist = Histogram("h", buckets=BOUNDS)
        for v in obs:
            hist.observe(v)
        data = hist.data()
        assert data.count == len(obs)
        assert sum(data.counts) == data.count
        cum = data.cumulative()
        assert list(cum) == sorted(cum)
        assert (cum[-1] if cum else 0) == data.count
        assert len(data.counts) == len(BOUNDS) + 1

    @given(st.lists(values, min_size=1, max_size=200))
    def test_each_observation_lands_in_its_bucket(self, obs):
        hist = Histogram("h", buckets=BOUNDS)
        for v in obs:
            hist.observe(v)
        expected = [0] * (len(BOUNDS) + 1)
        for v in obs:
            expected[bisect.bisect_left(BOUNDS, v)] += 1
        assert list(hist.data().counts) == expected

    @given(st.lists(values, min_size=1, max_size=200))
    def test_min_max_sum_consistent(self, obs):
        hist = Histogram("h", buckets=BOUNDS)
        for v in obs:
            hist.observe(v)
        data = hist.data()
        assert data.min == min(obs)
        assert data.max == max(obs)
        assert data.sum == pytest.approx(sum(obs))
        # accumulated float rounding can push the mean past min/max by
        # a few ulps (e.g. sum([0.046] * 3) / 3 > 0.046)
        slack = 1e-12 * max(1.0, abs(data.sum))
        assert data.min - slack <= data.mean <= data.max + slack

    def test_empty_histogram(self):
        data = Histogram("h", buckets=BOUNDS).data()
        assert data.count == 0 and data.sum == 0.0
        assert data.min is None and data.max is None
        assert data.mean == 0.0

    def test_bucket_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_observing_never_changes_layout(self):
        hist = Histogram("h", buckets=BOUNDS)
        hist.observe(1e9)   # beyond the last bound: overflow bucket
        hist.observe(-5.0)  # below the first bound: first bucket
        data = hist.data()
        assert data.bounds == BOUNDS
        assert data.counts[0] == 1 and data.counts[-1] == 1


# ---------------------------------------------------------------------------
# merge algebra


def _snapshot(counter_incs, hist_obs) -> MetricsSnapshot:
    reg = MetricsRegistry()
    for label, amount in counter_incs:
        reg.counter("c").inc(amount, csp=label)
    h = reg.histogram("h", buckets=BOUNDS)
    for v in hist_obs:
        h.observe(v)
    return reg.snapshot()


# Integer-valued observations keep histogram sums exact in floats, so
# the merge-algebra assertions test *merge* semantics rather than float
# addition's non-associativity.
int_values = st.integers(min_value=0, max_value=1000).map(float)
snapshot_inputs = st.tuples(
    st.lists(st.tuples(label_values, int_amounts), max_size=20),
    st.lists(int_values, max_size=50),
)


class TestMergeAlgebra:
    @given(snapshot_inputs, snapshot_inputs, snapshot_inputs)
    @settings(max_examples=50)
    def test_merge_is_associative(self, a_in, b_in, c_in):
        a, b, c = (_snapshot(*x) for x in (a_in, b_in, c_in))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    @given(snapshot_inputs, snapshot_inputs)
    @settings(max_examples=50)
    def test_merge_is_commutative(self, a_in, b_in):
        a, b = _snapshot(*a_in), _snapshot(*b_in)
        assert a.merge(b).to_dict() == b.merge(a).to_dict()

    @given(snapshot_inputs)
    @settings(max_examples=50)
    def test_empty_snapshot_is_identity(self, a_in):
        a = _snapshot(*a_in)
        empty = MetricsRegistry().snapshot()
        assert a.merge(empty).to_dict() == a.to_dict()
        assert empty.merge(a).to_dict() == a.to_dict()

    @given(snapshot_inputs, snapshot_inputs)
    @settings(max_examples=50)
    def test_merged_totals_add(self, a_in, b_in):
        a, b = _snapshot(*a_in), _snapshot(*b_in)
        merged = a.merge(b)
        assert merged.counter_total("c") == (
            a.counter_total("c") + b.counter_total("c")
        )
        ha, hb = a.histogram_data("h"), b.histogram_data("h")
        hm = merged.histogram_data("h")
        # histogram_data is None when no series exists for the subset
        def cnt(d):
            return d.count if d is not None else 0

        assert cnt(hm) == cnt(ha) + cnt(hb)
        if ha and hb:
            assert list(hm.counts) == [
                x + y for x, y in zip(ha.counts, hb.counts)
            ]

    def test_merge_rejects_mismatched_buckets(self):
        ra, rb = MetricsRegistry(), MetricsRegistry()
        ra.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        rb.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            ra.snapshot().merge(rb.snapshot())


# ---------------------------------------------------------------------------
# snapshot immutability


class TestSnapshotImmutability:
    def test_later_registry_activity_does_not_leak_in(self):
        reg = MetricsRegistry()
        reg.inc("ops", 3, csp="a")
        reg.observe("lat", 0.5)
        reg.set_gauge("depth", 7)
        before = reg.snapshot()
        reg.inc("ops", 10, csp="a")
        reg.inc("ops", 2, csp="b")
        reg.observe("lat", 2.0)
        reg.set_gauge("depth", 99)
        assert before.counter_total("ops") == 3
        assert before.counter_value("ops", csp="b") == 0
        assert before.histogram_data("lat").count == 1
        assert before.gauge_value("depth") == 7

    def test_snapshot_mappings_reject_writes(self):
        reg = MetricsRegistry()
        reg.inc("ops", csp="a")
        snap = reg.snapshot()
        with pytest.raises(TypeError):
            snap.counters["ops"][("csp", "a")] = 99  # type: ignore[index]
        with pytest.raises(TypeError):
            snap.counters["evil"] = {}  # type: ignore[index]

    def test_merge_does_not_mutate_operands(self):
        a = _snapshot([("csp0", 5)], [0.5])
        b = _snapshot([("csp0", 7)], [1.5])
        a_before, b_before = a.to_dict(), b.to_dict()
        a.merge(b)
        assert a.to_dict() == a_before
        assert b.to_dict() == b_before


# ---------------------------------------------------------------------------
# registry semantics


class TestRegistrySemantics:
    def test_counters_reject_negative_increments(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("ops", -1)

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("ops", 1, csp="a", kind="GET")
        reg.inc("ops", 2, kind="GET", csp="a")
        assert reg.counter("ops").value(csp="a", kind="GET") == 3

    def test_counter_total_filters_by_subset(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 10, csp="a", direction="up")
        reg.inc("bytes", 20, csp="a", direction="down")
        reg.inc("bytes", 40, csp="b", direction="up")
        snap = reg.snapshot()
        assert snap.counter_total("bytes") == 70
        assert snap.counter_total("bytes", csp="a") == 30
        assert snap.counter_total("bytes", direction="up") == 50
        assert snap.counter_by("bytes", "csp") == {"a": 30.0, "b": 40.0}

    def test_same_name_different_kind_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_histogram_rebind_with_different_buckets_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 3.0))
        # same buckets (or unspecified) is fine
        assert reg.histogram("h", buckets=(1.0, 2.0)) is reg.histogram("h")

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_snapshot_json_roundtrips(self):
        reg = MetricsRegistry()
        reg.inc("ops", 2, csp="a")
        reg.observe("lat", 0.42, kind="GET")
        reg.set_gauge("depth", 3)
        parsed = json.loads(reg.snapshot().to_json())
        assert parsed["counters"]["ops"][0]["value"] == 2
        assert parsed["histograms"]["lat"][0]["count"] == 1
        assert parsed["gauges"]["depth"][0]["value"] == 3
