"""Tests for quota-aware placement: a full CSP stays readable."""

import pytest

from repro.core.client import CyrusClient
from repro.core.cloud import CSPStatus, CyrusCloud
from repro.csp import InMemoryCSP
from repro.errors import SelectionError
from tests.conftest import deterministic_bytes


class TestWriteFullState:
    def test_full_csp_excluded_from_placement(self):
        cloud = CyrusCloud([InMemoryCSP(f"c{i}") for i in range(4)])
        cloud.mark_write_full("c0")
        for key in (f"k{i}" for i in range(20)):
            assert "c0" not in cloud.place_chunk(key, 3)

    def test_full_csp_still_active(self):
        cloud = CyrusCloud([InMemoryCSP(f"c{i}") for i in range(3)])
        cloud.mark_write_full("c1")
        assert cloud.status_of("c1") is CSPStatus.ACTIVE
        assert "c1" in cloud.active_csps()
        assert cloud.writable_csps() == ["c0", "c2"]
        assert cloud.is_write_full("c1")

    def test_write_available_restores(self):
        cloud = CyrusCloud([InMemoryCSP(f"c{i}") for i in range(3)])
        cloud.mark_write_full("c1")
        cloud.mark_write_available("c1")
        assert cloud.writable_csps() == ["c0", "c1", "c2"]

    def test_placement_fails_when_too_few_writable(self):
        cloud = CyrusCloud([InMemoryCSP(f"c{i}") for i in range(3)])
        cloud.mark_write_full("c0")
        with pytest.raises(SelectionError):
            cloud.place_chunk("k", 3)

    def test_unknown_csp_rejected(self):
        cloud = CyrusCloud([InMemoryCSP("c0")])
        with pytest.raises(KeyError):
            cloud.mark_write_full("ghost")


class TestQuotaEndToEnd:
    def make_client(self, config, quota_csp_bytes=6_000):
        from repro.csp.simulated import SimulatedCSP
        from repro.netsim import Link
        from repro.util.clock import SimClock

        clock = SimClock()
        csps = []
        for i in range(4):
            quota = quota_csp_bytes if i == 0 else float("inf")
            csps.append(
                SimulatedCSP(f"c{i}", Link.symmetric(f"c{i}", 1e9),
                             clock=clock, quota_bytes=quota)
            )
        from repro.core.transfer import SimulatedEngine

        engine = SimulatedEngine(
            {c.csp_id: c for c in csps},
            {c.csp_id: c.link for c in csps}, clock,
        )
        return CyrusClient.create(csps, config, client_id="q",
                                  engine=engine), csps

    def test_full_csp_marked_write_full_not_failed(self, config):
        client, csps = self.make_client(config)
        # keep uploading until c0's small quota trips
        for i in range(10):
            client.put(f"f{i}.bin", deterministic_bytes(2_000, i))
        assert client.cloud.is_write_full("c0")
        assert client.cloud.status_of("c0") is CSPStatus.ACTIVE

    def test_old_files_still_readable_from_full_csp(self, config):
        client, csps = self.make_client(config)
        early = deterministic_bytes(2_000, 0)
        client.put("early.bin", early)
        for i in range(10):
            client.put(f"fill{i}.bin", deterministic_bytes(2_000, 10 + i))
        # c0 is full; shares stored there earlier must stay usable
        assert client.cloud.is_write_full("c0")
        assert client.get("early.bin").data == early

    def test_writes_continue_on_remaining_csps(self, config):
        client, csps = self.make_client(config)
        for i in range(12):
            client.put(f"f{i}.bin", deterministic_bytes(2_000, 30 + i))
        # everything readable despite one CSP having filled up
        for i in range(12):
            assert client.get(f"f{i}.bin").data == (
                deterministic_bytes(2_000, 30 + i)
            )
        late = client.put("late.bin", deterministic_bytes(2_000, 99))
        assert "c0" not in {s.csp_id for s in late.node.shares}
