"""Unit + integration tests for the vendor REST connector layer."""

import pytest

from repro.csp import Credentials
from repro.csp.rest import (
    DriveStyleDialect,
    DropboxStyleDialect,
    InProcessRestServer,
    RestConnectorCSP,
    S3StyleDialect,
)
from repro.csp.rest.dialects import S3StyleDialect as S3D
from repro.csp.rest.wire import WireRequest
from repro.errors import (
    CSPAuthError,
    CSPQuotaExceededError,
    CSPUnavailableError,
    ObjectNotFoundError,
)


def make_connector(dialect, csp_id="vendor", quota=float("inf")):
    server = InProcessRestServer(dialect, provider_secret=f"{csp_id}-secret",
                                 quota_bytes=quota)
    if isinstance(dialect, S3StyleDialect):
        secret = S3D.account_secret(server.state, "acct")
    else:
        secret = "client-secret"
    connector = RestConnectorCSP(
        csp_id, server, Credentials("acct", secret)
    )
    return connector, server


DIALECTS = [DropboxStyleDialect(), DriveStyleDialect(), S3StyleDialect()]


@pytest.fixture(params=DIALECTS, ids=lambda d: d.name)
def connector_server(request):
    return make_connector(request.param)


class TestFivePrimitives:
    """Every dialect must satisfy the same provider contract."""

    def test_upload_download(self, connector_server):
        connector, _ = connector_server
        connector.upload("abc123", b"share bytes")
        assert connector.download("abc123") == b"share bytes"

    def test_list_with_prefix(self, connector_server):
        connector, _ = connector_server
        connector.upload("md-0001", b"a")
        connector.upload("md-0002", b"bb")
        connector.upload("zz-0003", b"c")
        infos = connector.list(prefix="md-")
        assert [i.name for i in infos] == ["md-0001", "md-0002"]
        assert [i.size for i in infos] == [1, 2]

    def test_delete(self, connector_server):
        connector, _ = connector_server
        connector.upload("obj", b"x")
        connector.delete("obj")
        with pytest.raises(ObjectNotFoundError):
            connector.download("obj")

    def test_missing_object(self, connector_server):
        connector, _ = connector_server
        with pytest.raises(ObjectNotFoundError):
            connector.download("ghost")
        with pytest.raises(ObjectNotFoundError):
            connector.delete("ghost")

    def test_authenticate_explicitly(self, connector_server):
        connector, _ = connector_server
        token = connector.authenticate(connector.credentials)
        assert token.account_id == "acct"

    def test_lazy_auth_on_first_call(self, connector_server):
        connector, server = connector_server
        connector.upload("x", b"1")  # no explicit authenticate()
        assert connector.download("x") == b"1"

    def test_unreachable_endpoint(self, connector_server):
        connector, server = connector_server
        server.reachable = False
        with pytest.raises(CSPUnavailableError):
            connector.list()

    def test_same_name_same_content_idempotent(self, connector_server):
        # the CYRUS share-naming invariant: identical name => identical
        # bytes; both vendor semantics must end up equivalent
        connector, _ = connector_server
        connector.upload("deadbeef", b"identical")
        connector.upload("deadbeef", b"identical")
        assert connector.download("deadbeef") == b"identical"
        assert [i.name for i in connector.list(prefix="deadbeef")] == ["deadbeef"]


class TestVendorQuirks:
    def test_dropbox_overwrites(self):
        connector, server = make_connector(DropboxStyleDialect())
        connector.upload("f", b"v1")
        connector.upload("f", b"v2")
        assert connector.download("f") == b"v2"
        assert server.revision_count("f") == 1  # replaced

    def test_drive_duplicates(self):
        connector, server = make_connector(DriveStyleDialect())
        connector.upload("f", b"v1")
        connector.upload("f", b"v2")
        assert server.revision_count("f") == 2  # both files exist
        assert connector.download("f") == b"v2"  # newest revision wins
        # listing still reports one logical entry per name
        assert [i.name for i in connector.list()] == ["f"]

    def test_s3_uses_xml(self):
        connector, server = make_connector(S3StyleDialect())
        connector.upload("key1", b"data")
        connector.list()
        list_responses = [
            r for r in server.request_log if r.path == "/bucket"
            and r.method == "GET"
        ]
        assert list_responses, "list must hit the bucket endpoint"

    def test_s3_signature_required(self):
        _, server = make_connector(S3StyleDialect())
        bad = WireRequest(method="GET", path="/bucket",
                          headers={"Authorization": "AWS acct:forged"})
        assert server.handle(bad).status == 403

    def test_s3_wrong_secret_rejected(self):
        server = InProcessRestServer(S3StyleDialect(),
                                     provider_secret="s3-secret")
        connector = RestConnectorCSP(
            "s3", server, Credentials("acct", "not-the-issued-secret")
        )
        with pytest.raises(CSPAuthError):
            connector.list()

    def test_oauth_token_cached(self):
        connector, server = make_connector(DropboxStyleDialect())
        connector.upload("a", b"1")
        connector.upload("b", b"2")
        connector.download("a")
        auth_calls = [
            r for r in server.request_log if r.path == "/oauth2/token"
        ]
        assert len(auth_calls) == 1  # login once, reuse the token

    def test_reauth_on_expired_token(self):
        connector, server = make_connector(DriveStyleDialect())
        connector.upload("a", b"1")
        server.state.issued_tokens.clear()  # server-side revocation
        assert connector.download("a") == b"1"  # transparent re-auth
        auth_calls = [
            r for r in server.request_log if r.path == "/oauth2/v4/token"
        ]
        assert len(auth_calls) == 2

    def test_quota_exceeded_mapped(self):
        for dialect in DIALECTS:
            connector, _ = make_connector(dialect, quota=10)
            connector.upload("small", b"12345")
            with pytest.raises(CSPQuotaExceededError):
                connector.upload("big", b"123456789abc")


class TestCyrusOverConnectors:
    """CYRUS runs unmodified over a mixed-vendor federation."""

    @pytest.fixture
    def mixed_cloud(self):
        providers = []
        for i, dialect in enumerate(
            [DropboxStyleDialect(), DriveStyleDialect(), S3StyleDialect(),
             DropboxStyleDialect()]
        ):
            connector, _ = make_connector(dialect, csp_id=f"vendor{i}")
            providers.append(connector)
        return providers

    def test_roundtrip_over_mixed_vendors(self, mixed_cloud):
        from repro.core.client import CyrusClient
        from repro.core.config import CyrusConfig
        from tests.conftest import deterministic_bytes

        config = CyrusConfig(key="mixed", t=2, n=3, chunk_min=256,
                             chunk_avg=1024, chunk_max=8192)
        client = CyrusClient.create(mixed_cloud, config, client_id="c")
        data = deterministic_bytes(20_000, 77)
        client.put("over-rest.bin", data)
        assert client.get("over-rest.bin").data == data

    def test_multi_client_over_mixed_vendors(self, mixed_cloud):
        from repro.core.client import CyrusClient
        from repro.core.config import CyrusConfig
        from tests.conftest import deterministic_bytes

        config = CyrusConfig(key="mixed", t=2, n=3, chunk_min=256,
                             chunk_avg=1024, chunk_max=8192)
        writer = CyrusClient.create(mixed_cloud, config, client_id="w")
        data = deterministic_bytes(8_000, 78)
        writer.put("shared.bin", data)
        reader = CyrusClient.create(mixed_cloud, config, client_id="r")
        reader.recover()
        assert reader.get("shared.bin", sync_first=False).data == data

    def test_versioning_and_delete_over_vendors(self, mixed_cloud):
        from repro.core.client import CyrusClient
        from repro.core.config import CyrusConfig

        config = CyrusConfig(key="mixed", t=2, n=3, chunk_min=256,
                             chunk_avg=1024, chunk_max=8192)
        client = CyrusClient.create(mixed_cloud, config, client_id="c")
        client.put("doc.txt", b"one " * 100)
        client.put("doc.txt", b"two " * 120)
        assert client.get("doc.txt", version=1).data == b"one " * 100
        client.delete("doc.txt")
        assert client.get("doc.txt").data == b"two " * 120
