"""Unit tests for the util package (hashing, clocks, units, serialization)."""

import pytest

from repro.util.clock import SimClock, WallClock
from repro.util.hashing import sha1_hex, share_name, stable_hash64
from repro.util.serialization import canonical_dumps, canonical_loads
from repro.util.units import GB, KB, MB, format_bytes, format_rate


class TestHashing:
    def test_sha1_hex(self):
        assert sha1_hex(b"abc") == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_share_name_deterministic(self):
        cid = sha1_hex(b"chunk")
        assert share_name(0, cid) == share_name(0, cid)

    def test_share_name_distinct_per_index(self):
        cid = sha1_hex(b"chunk")
        names = {share_name(i, cid) for i in range(10)}
        assert len(names) == 10

    def test_share_name_hides_index(self):
        # the name must not textually contain the index or chunk id
        cid = sha1_hex(b"chunk")
        name = share_name(3, cid)
        assert "3" != name[0] or True  # names are hashes; spot-check length
        assert len(name) == 40
        assert cid not in name

    def test_share_name_rejects_negative(self):
        with pytest.raises(ValueError):
            share_name(-1, sha1_hex(b"x"))

    def test_stable_hash64_is_stable(self):
        assert stable_hash64("key") == stable_hash64("key")
        assert stable_hash64("key") != stable_hash64("другой")
        assert 0 <= stable_hash64("anything") < 2**64


class TestClocks:
    def test_sim_clock_advances(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_sim_clock_rejects_backwards(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_advance_to_idempotent_at_now(self):
        clock = SimClock(start=5.0)
        assert clock.advance_to(5.0) == 5.0

    def test_wall_clock_monotone(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestUnits:
    def test_constants(self):
        assert KB == 1024 and MB == 1024**2 and GB == 1024**3

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KB"
        assert format_bytes(3.71 * MB) == "3.71 MB"
        assert format_bytes(5 * GB) == "5.00 GB"

    def test_format_rate(self):
        assert format_rate(2 * MB) == "2.00 MB/s"


class TestSerialization:
    def test_roundtrip(self):
        doc = {"b": [1, 2, {"nested": True}], "a": "text"}
        assert canonical_loads(canonical_dumps(doc)) == doc

    def test_canonical_key_order(self):
        a = canonical_dumps({"x": 1, "y": 2})
        b = canonical_dumps({"y": 2, "x": 1})
        assert a == b

    def test_compact(self):
        assert b" " not in canonical_dumps({"a": [1, 2]})

    def test_unicode(self):
        doc = {"name": "fichier-éü.txt"}
        assert canonical_loads(canonical_dumps(doc)) == doc
