"""Tier-1 fleet smoke: 32 tenants over in-memory CSPs.

Pins the three fleet-harness contracts the CI job relies on:

* **convergence** — every tenant's final namespace equals its plan's
  expected head versions;
* **isolation** — every raw object at every shared provider belongs to
  exactly one tenant's ``t/<tenant>/`` prefix;
* **determinism** — two runs with the same (spec, topology, seed)
  produce byte-identical ``FLEET_report.json`` files and identical
  per-tenant namespace digests.
"""

from __future__ import annotations

import json

import pytest

from repro.csp.namespaced import namespace_prefix
from repro.fleet import (
    FleetHarness,
    FleetTopology,
    fleet_gate,
    load_fleet_report,
    run_fleet,
    validate_fleet_report,
    write_fleet_report,
)
from repro.workloads.fleet import FleetWorkloadSpec

SMOKE_SPEC = FleetWorkloadSpec(tenants=32, files_per_tenant=4,
                               ops_per_tenant=8)
SMOKE_TOPOLOGY = FleetTopology(engine="memory")
SMOKE_SEED = 7


def test_smoke_32_tenants_converge_and_gate(tmp_path):
    harness = FleetHarness(SMOKE_SPEC, SMOKE_TOPOLOGY, seed=SMOKE_SEED)
    result = harness.run()

    assert len(result.tenants) == 32
    for tid, tenant in result.tenants.items():
        assert tenant.converged, f"{tid} did not converge: {tenant.errors}"
        assert tenant.files == len(
            result.workload.plan_for(tid).expected_files()
        )
    fleet = result.report["fleet"]
    assert fleet["converged_tenants"] == 32
    assert fleet["namespace_collisions"] == 0
    assert fleet_gate(result.report) == []

    # namespace isolation, checked against the raw shared providers:
    # every object is attributable to exactly one tenant prefix
    prefixes = [namespace_prefix(tid) for tid in result.tenants]
    for raw in harness.raw_csps.values():
        for info in raw.list():
            owners = [p for p in prefixes if info.name.startswith(p)]
            assert len(owners) == 1, (raw.csp_id, info.name)

    # the report round-trips through the schema-checked writer
    out = tmp_path / "FLEET_report.json"
    write_fleet_report(result.report, out)
    assert load_fleet_report(out) == json.loads(
        json.dumps(result.report)  # writer normalises tuples -> lists
    )


def test_same_seed_runs_are_bit_identical(tmp_path):
    r1 = run_fleet(SMOKE_SPEC, SMOKE_TOPOLOGY, seed=SMOKE_SEED)
    r2 = run_fleet(SMOKE_SPEC, SMOKE_TOPOLOGY, seed=SMOKE_SEED)

    # identical workloads ...
    assert r1.workload.fingerprint() == r2.workload.fingerprint()
    # ... identical final per-tenant namespace contents ...
    for tid in r1.tenants:
        assert (r1.tenants[tid].namespace_digest
                == r2.tenants[tid].namespace_digest), tid
    # ... and byte-identical report files
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    write_fleet_report(r1.report, p1)
    write_fleet_report(r2.report, p2)
    assert p1.read_bytes() == p2.read_bytes()


def test_different_seed_changes_the_workload():
    spec = FleetWorkloadSpec(tenants=4, files_per_tenant=3, ops_per_tenant=6)
    r7 = run_fleet(spec, SMOKE_TOPOLOGY, seed=7)
    r8 = run_fleet(spec, SMOKE_TOPOLOGY, seed=8)
    assert r7.workload.fingerprint() != r8.workload.fingerprint()


def test_report_schema_is_validated():
    result = run_fleet(
        FleetWorkloadSpec(tenants=2, files_per_tenant=2, ops_per_tenant=4),
        SMOKE_TOPOLOGY, seed=1,
    )
    validate_fleet_report(result.report)
    assert result.report["schema"] == "cyrus-fleet/v1"
    assert result.report["params"]["tenants"] == 2
    sync = result.report["fleet"]["sync_latency"]
    assert sync["count"] >= 2  # at least one put per tenant


@pytest.mark.slow
def test_fleet_256_tenants_over_netsim_links():
    """The CI-scale run: 256 tenants on shared flow-simulated links."""
    spec = FleetWorkloadSpec(tenants=256, files_per_tenant=4,
                             ops_per_tenant=6)
    result = run_fleet(spec, FleetTopology(), seed=7)
    assert fleet_gate(result.report) == []
    sync = result.report["fleet"]["sync_latency"]
    assert sync["count"] >= 256 and sync["p99"] > 0


def test_cli_fleet_writes_report_and_gates(tmp_path):
    from repro.cli import main

    out = tmp_path / "FLEET_report.json"
    code = main([
        "fleet", "--tenants", "4", "--seed", "7", "--engine", "memory",
        "--files-per-tenant", "3", "--ops-per-tenant", "6",
        "--out", str(out), "--gate",
    ])
    assert code == 0
    report = load_fleet_report(out)
    assert report["fleet"]["converged_tenants"] == 4
