"""The redundancy-debt ledger: durability, merging, backoff, compaction.

The ledger borrows the intent journal's torn-tail-tolerant JSONL
discipline, so these tests mirror the journal suite's shape: round-trip
through reopen, crash-torn tails, merge semantics, and atomic
compaction that preserves backoff state exactly.
"""

from __future__ import annotations

import json

from repro.redundancy import DebtEntry, DebtLedger
from repro.util.clock import SimClock


class TestRecordAndReopen:
    def test_round_trip_through_reopen(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False)
        debt_id = ledger.record("a" * 40, missing=(2,),
                                failed_csps=("csp2",))
        assert len(ledger) == 1

        reopened = DebtLedger(path, fsync=False)
        [entry] = reopened.open_debts()
        assert entry.debt_id == debt_id
        assert entry.chunk_id == "a" * 40
        assert entry.missing == (2,)
        assert entry.failed_csps == ("csp2",)
        assert entry.attempts == 0

    def test_same_chunk_merges_into_one_debt(self, tmp_path):
        ledger = DebtLedger(tmp_path / "debts.jsonl", fsync=False)
        first = ledger.record("b" * 40, missing=(0,), failed_csps=("csp0",))
        second = ledger.record("b" * 40, missing=(2,), failed_csps=("csp1",))
        assert first == second  # one obligation per chunk
        [entry] = ledger.open_debts()
        assert entry.missing == (0, 2)
        assert entry.failed_csps == ("csp0", "csp1")

    def test_identical_re_record_appends_nothing(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False)
        ledger.record("c" * 40, missing=(1,), failed_csps=("csp1",))
        lines = path.read_bytes().count(b"\n")
        ledger.record("c" * 40, missing=(1,), failed_csps=("csp1",))
        assert path.read_bytes().count(b"\n") == lines

    def test_retire_closes_and_survives_reopen(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False)
        keep = ledger.record("d" * 40, missing=(0,))
        gone = ledger.record("e" * 40, missing=(1,))
        ledger.retire(gone)
        assert len(ledger) == 1
        reopened = DebtLedger(path, fsync=False)
        assert [e.debt_id for e in reopened.open_debts()] == [keep]

    def test_retire_unknown_debt_is_a_noop(self, tmp_path):
        ledger = DebtLedger(tmp_path / "debts.jsonl", fsync=False)
        ledger.retire("no-such-debt")
        assert len(ledger) == 0


class TestTornTail:
    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False)
        ledger.record("a" * 40, missing=(0,))
        ledger.record("b" * 40, missing=(1,))
        # a crash mid-append can tear at most the final line
        with open(path, "ab") as handle:
            handle.write(b'{"kind":"debt","id":"torn","se')
        reopened = DebtLedger(path, fsync=False)
        assert len(reopened) == 2
        assert reopened.debt_for("a" * 40) is not None

    def test_alien_interior_lines_are_skipped(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False)
        debt_id = ledger.record("a" * 40, missing=(0,))
        blob = path.read_bytes()
        path.write_bytes(
            b'not json at all\n' + blob + b'{"kind":"alien","x":1}\n'
        )
        reopened = DebtLedger(path, fsync=False)
        assert [e.debt_id for e in reopened.open_debts()] == [debt_id]

    def test_ledger_keeps_appending_after_a_torn_tail(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False)
        ledger.record("a" * 40, missing=(0,))
        with open(path, "ab") as handle:
            handle.write(b'{"torn')  # no newline: the next append glues on
        reopened = DebtLedger(path, fsync=False)
        reopened.record("b" * 40, missing=(2,))
        # the glued line is lost, both clean records survive
        final = DebtLedger(path, fsync=False)
        assert {e.chunk_id for e in final.open_debts()} == {
            "a" * 40, "b" * 40,
        }


class TestBackoff:
    def test_never_tried_entry_is_due_immediately(self):
        entry = DebtEntry(debt_id="x", chunk_id="c", missing=(0,),
                          failed_csps=(), created=5.0)
        assert entry.next_due() == 5.0

    def test_backoff_doubles_per_attempt_and_caps(self):
        entry = DebtEntry(debt_id="x", chunk_id="c", missing=(0,),
                          failed_csps=(), created=0.0, attempts=1,
                          last_attempt=100.0)
        assert entry.next_due(base=30.0, multiplier=2.0) == 130.0
        later = DebtEntry(debt_id="x", chunk_id="c", missing=(0,),
                          failed_csps=(), attempts=3, last_attempt=100.0)
        assert later.next_due(base=30.0, multiplier=2.0) == 100.0 + 120.0
        capped = DebtEntry(debt_id="x", chunk_id="c", missing=(0,),
                           failed_csps=(), attempts=50, last_attempt=100.0)
        assert capped.next_due(max_delay=3600.0) == 100.0 + 3600.0

    def test_note_attempt_bumps_backoff_and_survives_reopen(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        clock = SimClock()
        ledger = DebtLedger(path, clock=clock, fsync=False)
        debt_id = ledger.record("a" * 40, missing=(0,))
        clock.advance(10.0)
        ledger.note_attempt(debt_id, detail="fleet down")
        [entry] = ledger.open_debts()
        assert entry.attempts == 1
        assert entry.last_attempt == 10.0
        reopened = DebtLedger(path, fsync=False)
        [persisted] = reopened.open_debts()
        assert persisted.attempts == 1
        assert persisted.last_attempt == 10.0


class TestCompaction:
    def test_compact_drops_retired_records(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False)
        survivor = ledger.record("a" * 40, missing=(0,))
        for i in range(5):
            ledger.retire(ledger.record(f"{i}" * 40, missing=(1,)))
        removed = ledger.compact()
        assert removed == 10  # 5 debt + 5 retire records
        lines = [json.loads(line) for line in
                 path.read_text().splitlines() if line.strip()]
        assert all(doc["id"] == survivor for doc in lines)
        assert len(DebtLedger(path, fsync=False)) == 1

    def test_compaction_preserves_backoff_state(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        clock = SimClock()
        ledger = DebtLedger(path, clock=clock, fsync=False)
        debt_id = ledger.record("a" * 40, missing=(0, 1),
                                failed_csps=("csp0",))
        clock.advance(42.0)
        ledger.note_attempt(debt_id)
        ledger.note_attempt(debt_id)
        ledger.retire(ledger.record("b" * 40, missing=(2,)))
        ledger.compact()
        [entry] = DebtLedger(path, fsync=False).open_debts()
        assert entry.debt_id == debt_id
        assert entry.missing == (0, 1)
        assert entry.failed_csps == ("csp0",)
        assert entry.attempts == 2
        assert entry.last_attempt == 42.0

    def test_auto_compaction_after_enough_retires(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False, compact_after=4)
        for i in range(4):
            ledger.retire(ledger.record(f"{i}" * 40, missing=(0,)))
        # the threshold-triggering retire compacted everything away
        assert path.read_bytes() == b""

    def test_compact_on_all_open_ledger_is_a_noop(self, tmp_path):
        path = tmp_path / "debts.jsonl"
        ledger = DebtLedger(path, fsync=False)
        ledger.record("a" * 40, missing=(0,))
        before = path.read_bytes()
        assert ledger.compact() == 0
        assert path.read_bytes() == before
