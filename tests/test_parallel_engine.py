"""Deterministic unit tests for the scatter/gather pool.

The fake provider here is barrier-instrumented: operations can be made
to rendezvous (proving genuine concurrency) or to block on events
(pinning completion order), so every assertion about interleaving is
forced by synchronisation rather than by timing luck.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.parallel import ParallelEngine, ScatterGatherPool
from repro.core.retry import ShareRetryLoop
from repro.core.transfer import DirectEngine, OpKind, TransferOp
from repro.csp.base import CloudProvider, ObjectInfo
from repro.csp.memory import InMemoryCSP
from repro.csp.resilient import RetryPolicy
from repro.errors import CSPAuthError, CSPUnavailableError
from repro.obs import Observability


WAIT = 10.0  # generous sync timeout; tests fail (not hang) past this


class ConcurrencyProbe:
    """Shared in-flight tracker: exact current and high-water counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.current = 0
        self.max_seen = 0

    def __enter__(self) -> "ConcurrencyProbe":
        with self._lock:
            self.current += 1
            self.max_seen = max(self.max_seen, self.current)
        return self

    def __exit__(self, *exc) -> None:
        with self._lock:
            self.current -= 1


class GateProvider(CloudProvider):
    """An in-memory provider whose ops pass through optional gates.

    ``barrier``: every upload/download waits at the barrier, so a test
    can require K ops to be in flight simultaneously before any may
    finish.  ``hold``: ops block until the event is set.  The probe (one
    per provider or shared across a fleet) records true concurrency.
    """

    def __init__(self, csp_id: str, probe: ConcurrencyProbe | None = None,
                 barrier: threading.Barrier | None = None,
                 hold: threading.Event | None = None):
        super().__init__(csp_id)
        self.inner = InMemoryCSP(csp_id)
        self.probe = probe if probe is not None else ConcurrencyProbe()
        self.barrier = barrier
        self.hold = hold
        self.uploads: list[str] = []
        self._lock = threading.Lock()

    def _gate(self) -> None:
        if self.barrier is not None:
            try:
                self.barrier.wait(timeout=WAIT)
            except threading.BrokenBarrierError:
                pass  # an odd trailing op: let it through alone
        if self.hold is not None:
            self.hold.wait(timeout=WAIT)

    def authenticate(self, credentials):
        return self.inner.authenticate(credentials)

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        return self.inner.list(prefix=prefix)

    def upload(self, name: str, data: bytes) -> None:
        with self.probe:
            self._gate()
            with self._lock:
                self.uploads.append(name)
            self.inner.upload(name, data)

    def download(self, name: str) -> bytes:
        with self.probe:
            self._gate()
            return self.inner.download(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)


def _put_ops(csp_id: str, count: int, group=None) -> list[TransferOp]:
    return [
        TransferOp(kind=OpKind.PUT, csp_id=csp_id, name=f"obj-{csp_id}-{i}",
                   data=bytes([i % 256]) * 64, group=group)
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# admission bounds


def test_per_csp_bound_is_respected_and_reached():
    # 6 ops to one CSP, 4 workers, per-CSP bound 2: the barrier forces
    # pairs of ops to be in flight together (lower bound), the probe
    # proves the bound was never exceeded (upper bound).
    provider = GateProvider("csp0", barrier=threading.Barrier(2))
    engine = ParallelEngine({"csp0": provider}, parallelism=4,
                            max_inflight_per_csp=2)
    results = engine.execute(_put_ops("csp0", 6))
    assert all(r.ok for r in results)
    assert provider.probe.max_seen == 2
    assert provider.inner.object_count == 6


def test_total_bound_is_respected_across_csps():
    # 8 ops spread over 4 CSPs, 4 workers, total bound 2 and no per-CSP
    # bound: one shared probe sees at most 2 in flight anywhere.
    probe = ConcurrencyProbe()
    barrier = threading.Barrier(2)
    providers = {
        f"csp{i}": GateProvider(f"csp{i}", probe=probe, barrier=barrier)
        for i in range(4)
    }
    engine = ParallelEngine(providers, parallelism=4,
                            max_inflight_total=2)
    ops = [op for i in range(4) for op in _put_ops(f"csp{i}", 2)]
    results = engine.execute(ops)
    assert all(r.ok for r in results)
    assert probe.max_seen == 2


def test_one_saturated_csp_does_not_starve_others():
    # csp_slow's only admission slot is held by an op blocked on an
    # event; ops for csp_fast must still dispatch and complete while it
    # is stuck (the scheduler scans past saturated providers).
    hold = threading.Event()
    slow = GateProvider("slow", hold=hold)
    fast = GateProvider("fast")
    engine = ParallelEngine({"slow": slow, "fast": fast}, parallelism=3,
                            max_inflight_per_csp=1)
    done_fast = threading.Event()
    results: list = []

    def run():
        ops = _put_ops("slow", 1) + _put_ops("fast", 4)
        results.extend(engine.execute(ops))

    runner = threading.Thread(target=run)
    runner.start()
    # wait (bounded) for the fast CSP to finish all four uploads while
    # the slow op is still held
    deadline = time.monotonic() + WAIT
    while time.monotonic() < deadline and fast.inner.object_count < 4:
        time.sleep(0.005)
    fast_done_while_slow_held = fast.inner.object_count == 4
    done_fast.set()
    hold.set()
    runner.join(timeout=WAIT)
    assert not runner.is_alive()
    assert fast_done_while_slow_held
    assert all(r.ok for r in results)


# ---------------------------------------------------------------------------
# group quotas: straggler cancellation


def test_straggler_cancellation_skips_queued_ops():
    # total bound 1 serialises dispatch; once the first op of the group
    # succeeds the quota is spent, so the two queued ops are cancelled
    # without ever reaching the provider.
    provider = GateProvider("csp0")
    engine = ParallelEngine({"csp0": provider}, parallelism=2,
                            max_inflight_total=1)
    results = engine.execute(_put_ops("csp0", 3, group="chunk-A"),
                             group_quota={"chunk-A": 1})
    assert sum(1 for r in results if r.ok) == 1
    assert sum(1 for r in results if r.cancelled) == 2
    assert len(provider.uploads) == 1


# ---------------------------------------------------------------------------
# failover streams, it does not wait for stragglers


def test_failover_on_first_error_does_not_wait_for_stragglers():
    # csp_bad fails permanently (auth): the retry loop must re-dispatch
    # that share to csp_alt immediately, while csp_slow's op is still in
    # flight.  csp_slow's op only completes after csp_alt has uploaded,
    # so any wait-for-the-whole-round implementation deadlocks here
    # (and fails the ordering flag below instead of hanging, thanks to
    # the bounded event wait).
    alt_uploaded = threading.Event()

    class BadProvider(GateProvider):
        def upload(self, name: str, data: bytes) -> None:
            raise CSPAuthError("injected permanent failure",
                               csp_id=self.csp_id)

    class AltProvider(GateProvider):
        def upload(self, name: str, data: bytes) -> None:
            super().upload(name, data)
            alt_uploaded.set()

    bad = BadProvider("bad")
    slow = GateProvider("slow", hold=alt_uploaded)
    alt = AltProvider("alt")
    engine = ParallelEngine({"bad": bad, "slow": slow, "alt": alt},
                            parallelism=3)
    loop = ShareRetryLoop(engine, policy=RetryPolicy(max_attempts=2,
                                                     base_delay=0.0))
    landed: dict = {}

    def build_op(key, csp):
        return TransferOp(kind=OpKind.PUT, csp_id=csp, name=f"share-{key}",
                          data=b"x" * 32)

    def on_success(key, csp, result):
        landed[key] = csp

    results, attempts = loop.run(
        items=[("s-bad", "bad"), ("s-slow", "slow")],
        build_op=build_op,
        on_success=on_success,
        on_giveup=lambda key, csp, result: None,
        pick_alternate=lambda key, csp, tried: "alt",
    )
    assert landed == {"s-bad": "alt", "s-slow": "slow"}
    assert alt.inner.object_count == 1
    # the slow op finished *after* the failover landed — by construction
    # it could not complete before alt's upload set the event
    assert alt_uploaded.is_set()
    history = [a.csp_id for a in attempts["s-bad"]]
    assert history == ["bad", "alt"]


def test_transient_failures_defer_to_next_round_with_backoff():
    calls = {"n": 0}

    class FlakyProvider(GateProvider):
        def upload(self, name: str, data: bytes) -> None:
            calls["n"] += 1
            if calls["n"] == 1:
                raise CSPUnavailableError("blip", csp_id=self.csp_id)
            super().upload(name, data)

    flaky = FlakyProvider("flaky")
    engine = ParallelEngine({"flaky": flaky}, parallelism=2)
    loop = ShareRetryLoop(engine, policy=RetryPolicy(max_attempts=3,
                                                     base_delay=0.0))
    results, attempts = loop.run(
        items=[("s0", "flaky")],
        build_op=lambda key, csp: TransferOp(
            kind=OpKind.PUT, csp_id=csp, name="s0", data=b"y" * 16),
        on_success=lambda key, csp, result: None,
        on_giveup=lambda key, csp, result: None,
        pick_alternate=lambda key, csp, tried: None,
    )
    assert [a.ok for a in attempts["s0"]] == [False, True]
    # the retry ran in a later round (same provider), not as a failover
    assert [a.round_no for a in attempts["s0"]] == [0, 1]
    assert flaky.inner.object_count == 1


# ---------------------------------------------------------------------------
# serial identity


def test_parallelism_one_is_bit_for_bit_serial():
    def fleet():
        return {f"csp{i}": InMemoryCSP(f"csp{i}") for i in range(3)}

    ops = lambda: (  # noqa: E731 - tiny local factory
        _put_ops("csp0", 2, group="g") + _put_ops("csp1", 2, group="g")
        + _put_ops("csp2", 1)
    )
    serial_csps = fleet()
    direct = DirectEngine(serial_csps)
    direct_results = direct.execute(ops(), group_quota={"g": 3})
    par_csps = fleet()
    parallel = ParallelEngine(par_csps, parallelism=1,
                              max_inflight_per_csp=2)
    parallel_results = parallel.execute(ops(), group_quota={"g": 3})
    assert parallel._pool is None  # no threads were ever started
    assert len(direct_results) == len(parallel_results)
    for a, b in zip(direct_results, parallel_results):
        assert (a.ok, a.cancelled, a.error_type, a.op.name, a.op.csp_id) == \
               (b.ok, b.cancelled, b.error_type, b.op.name, b.op.csp_id)
    for csp_id in serial_csps:
        assert (serial_csps[csp_id].object_count
                == par_csps[csp_id].object_count)


# ---------------------------------------------------------------------------
# observability


def test_pool_occupancy_gauges_and_counters():
    provider = GateProvider("csp0", barrier=threading.Barrier(2))
    engine = ParallelEngine({"csp0": provider}, parallelism=4,
                            max_inflight_per_csp=2)
    engine.obs = Observability()
    results = engine.execute(_put_ops("csp0", 6))
    assert all(r.ok for r in results)
    snap = engine.obs.snapshot()
    assert snap.counter_value("cyrus_pool_dispatch_total", csp="csp0") == 6
    assert snap.gauge_value("cyrus_pool_inflight_peak", csp="csp0") == 2
    assert snap.gauge_value("cyrus_pool_inflight_peak", csp="*") == 2
    # live gauges drain back to zero once the batch is done
    assert snap.gauge_value("cyrus_pool_inflight", csp="csp0") == 0
    assert snap.gauge_value("cyrus_pool_inflight_total") == 0
    assert snap.gauge_value("cyrus_pool_queue_depth") == 0


def test_cancelled_counter_counts_quota_skips():
    provider = GateProvider("csp0")
    engine = ParallelEngine({"csp0": provider}, parallelism=2,
                            max_inflight_total=1)
    engine.obs = Observability()
    engine.execute(_put_ops("csp0", 3, group="g"), group_quota={"g": 1})
    snap = engine.obs.snapshot()
    assert snap.counter_total("cyrus_pool_cancelled_total") == 2


# ---------------------------------------------------------------------------
# pool plumbing


def test_pool_rejects_bad_bounds():
    with pytest.raises(ValueError):
        ScatterGatherPool(workers=0)
    with pytest.raises(ValueError):
        ScatterGatherPool(workers=2, max_inflight_per_csp=0)
    with pytest.raises(ValueError):
        ParallelEngine({}, parallelism=0)


def test_pool_reusable_across_batches():
    provider = GateProvider("csp0")
    engine = ParallelEngine({"csp0": provider}, parallelism=3)
    for batch in range(3):
        results = engine.execute(_put_ops("csp0", 4))
        assert all(r.ok for r in results)
    assert provider.inner.object_count == 4  # same names overwritten
    engine.close()
    # a closed engine falls back to the serial path and still works
    results = engine.execute(_put_ops("csp0", 2))
    assert all(r.ok for r in results)


# ---------------------------------------------------------------------------
# injected-clock backoff (the ShareRetryLoop wall-clock sleep fix)


class FakeClock:
    """A test clock: manual time, recorded sleeps, zero real waiting."""

    def __init__(self) -> None:
        self.t = 0.0
        self.slept: list[float] = []

    def now(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.t += seconds


def test_retry_backoff_uses_injected_clock_not_wall_clock():
    calls = {"n": 0}

    class Flaky(GateProvider):
        def upload(self, name: str, data: bytes) -> None:
            calls["n"] += 1
            if calls["n"] < 3:
                raise CSPUnavailableError("blip", csp_id=self.csp_id)
            super().upload(name, data)

    fake = FakeClock()
    engine = DirectEngine({"f": Flaky("f")}, clock=fake)
    # base_delay of 10 *wall* seconds would blow the test timeout many
    # times over if the loop slept for real
    policy = RetryPolicy(max_attempts=3, base_delay=10.0, jitter=0.0)
    loop = ShareRetryLoop(engine, policy=policy)
    t0 = time.monotonic()
    results, attempts = loop.run(
        items=[("s0", "f")],
        build_op=lambda key, csp: TransferOp(
            kind=OpKind.PUT, csp_id=csp, name="s0", data=b"z" * 8),
        on_success=lambda key, csp, result: None,
        on_giveup=lambda key, csp, result: None,
        pick_alternate=lambda key, csp, tried: None,
    )
    elapsed = time.monotonic() - t0
    assert [a.ok for a in attempts["s0"]] == [False, False, True]
    assert fake.slept == [policy.delay(1), policy.delay(2)]
    assert elapsed < 5.0  # no real 10s/20s sleeps happened


def test_resilient_provider_backoff_uses_injected_clock():
    from repro.csp.resilient import ResilientProvider

    calls = {"n": 0}

    class Flaky(GateProvider):
        def upload(self, name: str, data: bytes) -> None:
            calls["n"] += 1
            if calls["n"] == 1:
                raise CSPUnavailableError("blip", csp_id=self.csp_id)
            super().upload(name, data)

    fake = FakeClock()
    policy = RetryPolicy(max_attempts=2, base_delay=10.0, jitter=0.0)
    wrapped = ResilientProvider(Flaky("f"), clock=fake, policy=policy)
    t0 = time.monotonic()
    wrapped.upload("obj", b"data")
    assert time.monotonic() - t0 < 5.0
    assert fake.slept == [policy.delay(1)]  # capped by max_delay, no real sleep
