"""Byzantine- and outage-tolerant metadata plane (robustness PR).

The metadata plane gets the same adversary model the data plane already
has: providers that lie (persistently corrupted ``md-*`` objects), that
forge (self-consistent envelopes around wrong share bytes), that serve
stale slots left by an interrupted publish, or that are simply down.
These tests cover the whole stack:

* the authenticated v2 share envelope and its legacy v1 fallback,
* :class:`MetadataStore`'s verified quorum fetch — all m slots probed,
  corrupt shares attributed to their CSP, the freshest verified publish
  generation preferred, damage recorded as ``meta`` repair debts,
* degraded/failed publishes naming their failed providers,
* the end-to-end client matrix (liars x outage, within the m - t
  budget) on both the serial and the async transfer backend — which
  must agree bit for bit because both feed the same
  :class:`NodeAssembler`,
* ``meta`` debt re-dispersal through :func:`run_repair`, including a
  crash mid-repair rolled forward by recovery, and
* the scrub's metadata census + verify pass.
"""

from __future__ import annotations

import pytest

from repro.core.async_engine import AsyncTransferEngine
from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.transfer import DirectEngine
from repro.csp import HealthRegistry
from repro.csp.memory import InMemoryCSP
from repro.errors import InsufficientSharesError, MetadataError
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.faults.plan import SimulatedCrash
from repro.metadata.codec import (
    FRAME_MAGIC,
    encode_node,
    metadata_share_name,
    pack_meta_share,
    unpack_meta_share,
)
from repro.metadata.node import ROOT_ID, MetadataNode
from repro.metadata.store import (
    META_CORRUPT_SHARES,
    META_DEBTS_RECORDED,
    META_PUBLISH_FAILURES,
    MetadataStore,
)
from repro.obs import MetricsRegistry
from repro.recovery import IntentJournal
from repro.redundancy import DebtLedger, run_repair
from repro.util.clock import SimClock
from repro.util.hashing import sha1_hex

from tests.conftest import SMALL_CHUNKS, deterministic_bytes

CONFIG = dict(key="meta-byz-key", t=2, n=3, **SMALL_CHUNKS)


def _node(modified: float = 1.0, name: str = "report.txt") -> MetadataNode:
    """A minimal node.  ``modified`` is *not* part of the node id, so
    two calls with different stamps model an interrupted re-publish:
    same object names, disagreeing slot contents."""
    return MetadataNode(
        file_id=sha1_hex(b"content"), prev_id=ROOT_ID, client_id="alice",
        name=name, deleted=False, modified=modified, size=7,
    )


def _store_world(tmp_path, providers=None, m=3, t=2):
    """A fully-wired standalone store: health, metrics, ledger, clock."""
    clock = SimClock()
    if providers is None:
        providers = [InMemoryCSP(f"csp{i}") for i in range(m)]
    health = HealthRegistry(clock=clock)
    metrics = MetricsRegistry()
    ledger = DebtLedger(tmp_path / "meta-debts.jsonl", fsync=False)
    store = MetadataStore(providers, key="meta-byz-key", t=t,
                          health=health, metrics=metrics, ledger=ledger,
                          clock=clock)
    return store, providers, health, metrics, ledger


def _rot(provider, name: str) -> None:
    """Flip one payload byte of a stored object in place."""
    blob = bytearray(provider.download(name))
    blob[-1] ^= 0x01
    provider.upload(name, bytes(blob))


class TestEnvelope:
    """The authenticated v2 frame and its legacy v1 fallback."""

    def test_v2_roundtrip(self):
        digest = sha1_hex(b"the node plaintext")
        blob = pack_meta_share(b"share-bytes", 77, digest, stamp=12345)
        frame = unpack_meta_share(blob)
        assert frame.authenticated
        assert frame.payload == b"share-bytes"
        assert frame.chunk_size == 77
        assert frame.stamp == 12345
        assert frame.share_digest == sha1_hex(b"share-bytes")
        assert frame.node_digest == digest
        assert frame.payload_intact()

    def test_tampered_payload_fails_its_own_digest(self):
        blob = bytearray(
            pack_meta_share(b"share-bytes", 77, sha1_hex(b"node")),
        )
        blob[-1] ^= 0xFF
        frame = unpack_meta_share(bytes(blob))
        assert frame.authenticated
        assert not frame.payload_intact()

    def test_legacy_v1_parses_unauthenticated(self):
        # the pre-envelope framing: bare chunk-size header + payload
        blob = (512).to_bytes(8, "big") + b"legacy-payload"
        frame = unpack_meta_share(blob)
        assert not frame.authenticated
        assert frame.share_digest is None
        assert frame.payload == b"legacy-payload"
        assert frame.chunk_size == 512
        assert frame.payload_intact()  # nothing to check against

    def test_store_legacy_pack_is_v1(self, tmp_path):
        store, _providers, _h, _m, _l = _store_world(tmp_path)
        _provider, _name, share = store.shares_for(_node())[0]
        frame = unpack_meta_share(MetadataStore._pack(share))
        assert not frame.authenticated
        assert frame.payload == share.data
        assert frame.chunk_size == share.chunk_size

    def test_garbage_and_truncation_rejected(self):
        with pytest.raises(MetadataError):
            unpack_meta_share(b"short")
        with pytest.raises(MetadataError):
            unpack_meta_share(FRAME_MAGIC + b"\x00" * 8)  # truncated v2

    def test_frame_versions_cannot_collide(self, tmp_path):
        # a v1 frame of any real node opens with zero bytes (the 8-byte
        # big-endian chunk size), never with the v2 magic
        store, _providers, _h, _m, _l = _store_world(tmp_path)
        _provider, _name, share = store.shares_for(_node())[0]
        assert MetadataStore._pack(share)[:4] != FRAME_MAGIC


class TestVerifiedFetch:
    """Store-level quorum fetch against lying, stale and dead slots."""

    def test_corrupt_slot_survived_and_attributed(self, tmp_path):
        store, providers, health, metrics, ledger = _store_world(tmp_path)
        node = _node()
        store.publish(node)
        _rot(providers[0], metadata_share_name(node.node_id, 0))

        got = store.fetch(node.node_id)
        assert encode_node(got) == encode_node(node)
        # the liar was attributed, the honest slots were not
        assert health.corruption_count("csp0") == 1
        assert health.corruption_count("csp1") == 0
        snap = metrics.snapshot()
        assert snap.counter_total(META_CORRUPT_SHARES, csp="csp0") == 1
        # the damaged slot is now a durable repair obligation
        entry = ledger.debt_for(node.node_id, kind="meta")
        assert entry is not None
        assert 0 in entry.missing
        assert "csp0" in entry.failed_csps

    def test_missing_slot_records_debt_without_blame(self, tmp_path):
        store, providers, health, metrics, ledger = _store_world(tmp_path)
        node = _node()
        store.publish(node)
        providers[1].delete(metadata_share_name(node.node_id, 1))

        got = store.fetch(node.node_id)
        assert encode_node(got) == encode_node(node)
        entry = ledger.debt_for(node.node_id, kind="meta")
        assert entry is not None and 1 in entry.missing
        # a hole is damage, not a lie: nobody gets a corruption strike
        assert all(health.corruption_count(f"csp{i}") == 0 for i in range(3))
        assert metrics.snapshot().counter_total(META_CORRUPT_SHARES) == 0

    def test_forged_envelope_is_attributed(self, tmp_path):
        # a Byzantine slot that wraps wrong share bytes in a *valid*
        # envelope claiming the winning node digest — the last lie the
        # per-share digest alone cannot catch
        store, providers, health, _metrics, _ledger = _store_world(tmp_path)
        node = _node()
        store.publish(node)
        name0 = metadata_share_name(node.node_id, 0)
        honest = unpack_meta_share(providers[0].download(name0))
        forged = pack_meta_share(
            b"\x5a" * len(honest.payload), honest.chunk_size,
            sha1_hex(encode_node(node)), stamp=honest.stamp,
        )
        providers[0].upload(name0, forged)

        got = store.fetch(node.node_id)
        assert encode_node(got) == encode_node(node)
        assert health.corruption_count("csp0") == 1

    def test_interrupted_publish_prefers_latest_stamp(self, tmp_path):
        # modified is not part of the node id: v1 and v2 share slot
        # names, so a re-publish that died after 2 of 3 slots leaves
        # the third serving the old version under the same name
        store, providers, health, _metrics, ledger = _store_world(tmp_path)
        v1, v2 = _node(modified=1.0), _node(modified=2.0)
        assert v1.node_id == v2.node_id
        store.publish(v1, stamp=1000)
        for provider, name, blob, index in store.frames_for(v2, stamp=2000):
            if index < 2:
                provider.upload(name, blob)

        got = store.fetch(v1.node_id)
        assert got.modified == 2.0  # the freshest verified generation
        # the left-behind slot is stale — re-dispersal, not quarantine
        assert health.corruption_count("csp2") == 0
        entry = ledger.debt_for(v1.node_id, kind="meta")
        assert entry is not None and 2 in entry.missing

    def test_stopping_at_first_t_slots_would_have_lied(self, tmp_path):
        # the regression the all-m probe exists for: slots 0 and 1 are
        # stale, only slot 2 carries the fresh generation
        store, providers, _health, _metrics, _ledger = _store_world(tmp_path)
        v1, v2 = _node(modified=1.0), _node(modified=2.0)
        store.publish(v1, stamp=1000)
        frames = store.frames_for(v2, stamp=2000)
        # fresher generation reaches a t-quorum, but not the first slots
        for provider, name, blob, index in frames:
            if index >= 1:
                provider.upload(name, blob)
        assert store.fetch(v1.node_id).modified == 2.0

    def test_too_much_rot_raises_insufficient_shares(self, tmp_path):
        store, providers, _health, _metrics, _ledger = _store_world(tmp_path)
        node = _node()
        store.publish(node)
        for index in (0, 1):  # m - t + 1 = 2 bad slots: beyond the budget
            _rot(providers[index], metadata_share_name(node.node_id, index))
        with pytest.raises(InsufficientSharesError):
            store.fetch(node.node_id)


class TestPublishFailures:
    """Satellite: failed publishes name their failed providers."""

    def _flaky_world(self, tmp_path, dead_ids):
        clock = SimClock()
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.OUTAGE, csp_ids=tuple(dead_ids),
                       ops=("upload",))],
            seed=1,
        )
        inner = [InMemoryCSP(f"csp{i}") for i in range(3)]
        wrapped = [FaultyProvider(p, plan, clock=clock) for p in inner]
        return _store_world(tmp_path, providers=wrapped)

    def test_failed_publish_names_the_dead_providers(self, tmp_path):
        store, _providers, _h, metrics, _ledger = self._flaky_world(
            tmp_path, ("csp1", "csp2"),
        )
        with pytest.raises(MetadataError) as excinfo:
            store.publish(_node())
        message = str(excinfo.value)
        assert "csp1" in message and "csp2" in message
        by_csp = metrics.snapshot().counter_by(META_PUBLISH_FAILURES, "csp")
        assert by_csp == {"csp1": 1.0, "csp2": 1.0}

    def test_degraded_publish_records_meta_debt(self, tmp_path):
        store, _providers, _h, metrics, ledger = self._flaky_world(
            tmp_path, ("csp2",),
        )
        node = _node()
        store.publish(node)  # t = 2 of 3 landed: accepted but degraded
        entry = ledger.debt_for(node.node_id, kind="meta")
        assert entry is not None
        assert entry.missing == (2,)
        assert entry.failed_csps == ("csp2",)
        snap = metrics.snapshot()
        assert snap.counter_total(META_DEBTS_RECORDED) == 1
        assert snap.counter_by(META_PUBLISH_FAILURES, "csp") == {"csp2": 1.0}
        # the node is still reconstructible from the slots that landed
        assert encode_node(store.fetch(node.node_id)) == encode_node(node)


def _client_world(tmp_path, seed, liar_ids=(), outage_id=None,
                  backend="serial", files=3):
    """A clean writer over four providers, then a fresh reader over the
    same stores wrapped in a :meth:`FaultPlan.metadata_byzantine` plan —
    only ``md-*`` reads are touched, isolating the metadata plane."""
    inner = [InMemoryCSP(f"csp{i}") for i in range(4)]
    writer = CyrusClient.create(
        inner, CyrusConfig(**CONFIG), client_id="writer",
    )
    payloads = {}
    for i in range(files):
        data = deterministic_bytes(3000 + 700 * i, seed=seed + i)
        writer.put(f"file-{i}.bin", data)
        payloads[f"file-{i}.bin"] = data

    plan = FaultPlan.metadata_byzantine(
        seed, liar_csp_ids=tuple(liar_ids), outage_csp_id=outage_id,
    )
    clock = SimClock()
    wrapped = [FaultyProvider(p, plan, clock=clock) for p in inner]
    providers = {p.csp_id: p for p in wrapped}
    if backend == "async":
        engine = AsyncTransferEngine(providers, clock=clock, parallelism=4)
    else:
        engine = DirectEngine(providers, clock=clock)
    reader = CyrusClient.create(
        wrapped, CyrusConfig(**CONFIG), client_id="reader", engine=engine,
        debt_ledger=DebtLedger(tmp_path / f"debts-{backend}.jsonl",
                               fsync=False),
    )
    reader.sync()  # the first full sync runs the verified batch fetch
    return reader, writer, payloads


@pytest.mark.parametrize("backend", ["serial", "async"])
class TestByzantineClientMatrix:
    """End to end: liars x outage within the m - t budget, on both
    transfer backends.  With four metadata slots and t = 2 the plane
    must absorb any two bad slots."""

    def test_one_liar(self, tmp_path, fault_seed, backend):
        reader, writer, payloads = _client_world(
            tmp_path, fault_seed, liar_ids=("csp0",), backend=backend,
        )
        assert set(reader.tree.node_ids()) == set(writer.tree.node_ids())
        for name, data in payloads.items():
            assert reader.get(name).data == data
        # one strike per lying node fetch -> quarantined during sync
        assert reader.health.corruption_count("csp0") >= 3
        assert not reader.health.is_live("csp0")
        for honest in ("csp1", "csp2", "csp3"):
            assert reader.health.corruption_count(honest) == 0

    def test_two_liars(self, tmp_path, fault_seed, backend):
        # two files keep each liar below the quarantine threshold: the
        # point here is that reads stay bit-exact *while* m - t = 2
        # metadata slots are actively lying, not the quarantine itself
        reader, writer, payloads = _client_world(
            tmp_path, fault_seed, liar_ids=("csp0", "csp1"),
            backend=backend, files=2,
        )
        assert set(reader.tree.node_ids()) == set(writer.tree.node_ids())
        for name, data in payloads.items():
            assert reader.get(name).data == data
        by_csp = reader.obs.snapshot().counter_by(META_CORRUPT_SHARES, "csp")
        assert by_csp.get("csp0", 0) >= 1
        assert by_csp.get("csp1", 0) >= 1
        assert set(by_csp) <= {"csp0", "csp1"}

    def test_liar_plus_outage(self, tmp_path, fault_seed, backend):
        reader, writer, payloads = _client_world(
            tmp_path, fault_seed, liar_ids=("csp0",), outage_id="csp3",
            backend=backend, files=2,
        )
        assert set(reader.tree.node_ids()) == set(writer.tree.node_ids())
        for name, data in payloads.items():
            assert reader.get(name).data == data
        by_csp = reader.obs.snapshot().counter_by(META_CORRUPT_SHARES, "csp")
        assert set(by_csp) == {"csp0"}

    def test_damage_becomes_meta_debts(self, tmp_path, fault_seed, backend):
        reader, _writer, _payloads = _client_world(
            tmp_path, fault_seed, liar_ids=("csp0",), backend=backend,
        )
        metas = [e for e in reader.debt_ledger.open_debts()
                 if e.kind == "meta"]
        assert {e.chunk_id for e in metas} == set(reader.tree.node_ids())
        assert all("csp0" in e.failed_csps for e in metas)

    def test_store_fetch_all_matches_the_writer(self, tmp_path, fault_seed,
                                                backend):
        reader, writer, _payloads = _client_world(
            tmp_path, fault_seed, liar_ids=("csp0",), outage_id="csp3",
            backend=backend,
        )
        assert reader.store.list_node_ids() == set(writer.tree.node_ids())
        fetched = {n.node_id: encode_node(n)
                   for n in reader.store.fetch_all()}
        truth = {nid: encode_node(writer.tree.get(nid))
                 for nid in writer.tree.node_ids()}
        assert fetched == truth


class TestBackendsAgree:
    """Serial and async readers feed the same assembler, so their whole
    observable outcome — bytes, node sets, blame — must be identical."""

    def test_bit_identical_under_byzantine_metadata(self, tmp_path,
                                                    fault_seed):
        worlds = {
            backend: _client_world(
                tmp_path, fault_seed, liar_ids=("csp0",), outage_id="csp3",
                backend=backend, files=2,
            )
            for backend in ("serial", "async")
        }
        (serial, _w1, payloads) = worlds["serial"]
        (parallel, _w2, _p2) = worlds["async"]
        for name, data in payloads.items():
            assert serial.get(name).data == parallel.get(name).data == data
        assert set(serial.tree.node_ids()) == set(parallel.tree.node_ids())
        blame = [
            c.obs.snapshot().counter_by(META_CORRUPT_SHARES, "csp")
            for c in (serial, parallel)
        ]
        assert set(blame[0]) == set(blame[1]) == {"csp0"}
        meta_debts = [
            {e.chunk_id for e in c.debt_ledger.open_debts()
             if e.kind == "meta"}
            for c in (serial, parallel)
        ]
        assert meta_debts[0] == meta_debts[1]


#: Metadata uploads to csp2 fail while the clock is inside this window.
META_OUTAGE_WINDOW = (0.0, 10.0)


def _meta_outage_world(tmp_path, seed, extra_specs=()):
    """Three providers; csp2 rejects ``md-*`` uploads during the outage
    window, so a put lands all its chunk shares but only 2 of 3
    metadata slots — exactly one ``meta`` debt, no chunk debts."""
    clock = SimClock()
    specs = [FaultSpec(kind=FaultKind.OUTAGE, csp_ids=("csp2",),
                       ops=("upload",), name_prefix="md-",
                       window_time=META_OUTAGE_WINDOW)]
    specs.extend(extra_specs)
    plan = FaultPlan(specs, seed=seed)
    inner = [InMemoryCSP(f"csp{i}") for i in range(3)]
    wrapped = [FaultyProvider(p, plan, clock=clock) for p in inner]

    def make_client(client_id):
        engine = DirectEngine({p.csp_id: p for p in wrapped}, clock=clock)
        return CyrusClient.create(
            wrapped, CyrusConfig(**CONFIG), client_id=client_id,
            engine=engine,
            journal=IntentJournal(tmp_path / "journal.jsonl", clock=clock,
                                  fsync=False),
            debt_ledger=DebtLedger(tmp_path / "debts.jsonl", fsync=False),
        )

    client = make_client("alice")
    data = deterministic_bytes(2600, seed=seed)
    client.put("wounded.bin", data)
    return client, inner, clock, data, make_client


class TestMetaRepair:
    """``meta`` debts drain through run_repair once the fleet heals."""

    def test_degraded_publish_is_repaired(self, tmp_path, fault_seed):
        client, inner, clock, data, _make = _meta_outage_world(
            tmp_path, fault_seed,
        )
        metas = [e for e in client.debt_ledger.open_debts()
                 if e.kind == "meta"]
        assert len(metas) == 1
        node_id = metas[0].chunk_id
        name2 = metadata_share_name(node_id, 2)
        assert not inner[2].list(prefix=name2)

        clock.advance(100)  # past the outage window and the backoff
        report = run_repair(client)
        assert report.debts_retired >= 1
        assert not [e for e in client.debt_ledger.open_debts()
                    if e.kind == "meta"]
        # the missing slot landed, exactly once, under its fixed name
        for index, provider in enumerate(inner):
            names = [i.name for i in provider.list(prefix="md-")]
            assert names == [metadata_share_name(node_id, index)]
        assert client.get("wounded.bin").data == data
        assert run_repair(client).debts_seen == 0

    def test_crash_mid_repair_rolls_forward(self, tmp_path, fault_seed):
        # the repair PUT to csp2 is the kill point: the journaled
        # meta-repair intent must carry enough to finish the job
        crash = FaultSpec(kind=FaultKind.CRASH, csp_ids=("csp2",),
                          ops=("upload",), name_prefix="md-",
                          window_time=(50.0, 1e9), max_hits=1)
        client, inner, clock, data, make_client = _meta_outage_world(
            tmp_path, fault_seed, extra_specs=(crash,),
        )
        [entry] = [e for e in client.debt_ledger.open_debts()
                   if e.kind == "meta"]
        node_id = entry.chunk_id

        clock.advance(100)
        with pytest.raises(SimulatedCrash):
            run_repair(client)
        assert not inner[2].list(prefix=metadata_share_name(node_id, 2))

        # the next client generation replays the incomplete intent
        survivor = make_client("alice")
        recovery = survivor.run_recovery()
        assert recovery.meta_republished == 1
        assert inner[2].list(prefix=metadata_share_name(node_id, 2))
        # the still-open debt retires against the healed census, and the
        # roll-forward left no duplicate or stray metadata objects
        run_repair(survivor)
        assert not [e for e in survivor.debt_ledger.open_debts()
                    if e.kind == "meta"]
        for index, provider in enumerate(inner):
            names = [i.name for i in provider.list(prefix="md-")]
            assert names == [metadata_share_name(node_id, index)]
        assert survivor.get("wounded.bin").data == data


def _scrub_world(tmp_path, files=2):
    clock = SimClock()
    providers = [InMemoryCSP(f"csp{i}") for i in range(3)]
    engine = DirectEngine({p.csp_id: p for p in providers}, clock=clock)
    client = CyrusClient.create(
        providers, CyrusConfig(**CONFIG), client_id="alice", engine=engine,
        journal=IntentJournal(tmp_path / "journal.jsonl", clock=clock,
                              fsync=False),
        debt_ledger=DebtLedger(tmp_path / "debts.jsonl", fsync=False),
    )
    for i in range(files):
        client.put(f"file-{i}.bin", deterministic_bytes(2000 + 500 * i,
                                                        seed=40 + i))
    return client, providers, clock


class TestScrubMetadataPass:
    """Satellite: the scrub's metadata census + verify."""

    def test_clean_world_is_healthy(self, tmp_path):
        client, _providers, _clock = _scrub_world(tmp_path)
        report = client.scrub(repair=False)
        assert report.healthy
        assert report.meta_nodes_scanned == len(client.tree.node_ids())
        assert report.meta_shares_verified == 3 * report.meta_nodes_scanned
        assert report.meta_shares_missing == 0
        assert report.meta_shares_corrupt == 0

    def test_detects_missing_and_corrupt_then_repair_heals(self, tmp_path):
        client, providers, clock = _scrub_world(tmp_path)
        node_a, node_b = sorted(client.tree.node_ids())[:2]
        providers[1].delete(metadata_share_name(node_a, 1))
        _rot(providers[0], metadata_share_name(node_b, 0))

        report = client.scrub(repair=False)
        assert not report.healthy
        assert report.meta_shares_missing == 1
        assert report.meta_shares_corrupt == 1
        assert report.meta_debts_recorded == 2
        assert client.health.corruption_count("csp0") == 1
        snap = client.obs.snapshot()
        assert snap.counter_by(META_CORRUPT_SHARES, "csp") == {"csp0": 1.0}
        metas = {e.chunk_id for e in client.debt_ledger.open_debts()
                 if e.kind == "meta"}
        assert metas == {node_a, node_b}

        healed = run_repair(client)
        assert healed.debts_retired == 2
        clean = client.scrub(repair=False)
        assert clean.healthy
        assert clean.meta_shares_missing == 0
        assert clean.meta_shares_corrupt == 0

    def test_meta_budget_slices_and_cursor_resumes(self, tmp_path):
        client, _providers, _clock = _scrub_world(tmp_path, files=2)
        total = len(client.tree.node_ids())
        assert total >= 2
        # budget of one node's worth of probes per slice: the cursor
        # must walk the whole plane across slices, wrapping at the end
        first = client.scrub(budget_shares=3, repair=False)
        assert first.meta_nodes_scanned < total
        assert first.meta_cursor == first.meta_nodes_scanned
        second = client.scrub(budget_shares=3, repair=False,
                              meta_cursor=first.meta_cursor)
        assert second.meta_nodes_scanned >= 1
        scanned = first.meta_nodes_scanned + second.meta_nodes_scanned
        assert scanned <= total  # no node verified twice across the pair

    def test_scrub_metadata_can_be_disabled(self, tmp_path):
        client, providers, _clock = _scrub_world(tmp_path)
        node_a = sorted(client.tree.node_ids())[0]
        providers[1].delete(metadata_share_name(node_a, 1))
        report = client.scrub(repair=False, scrub_metadata=False)
        assert report.meta_nodes_scanned == 0
        assert report.meta_shares_missing == 0
        assert not [e for e in client.debt_ledger.open_debts()
                    if e.kind == "meta"]
