"""Unit tests for the tracing layer and the transfer-timeline view.

Covers the Span/Tracer structural contract (nesting, the record()
fast-path, dangling-child cleanup, well-formedness validation), the
Chrome-trace export shape, and the TransferTimeline aggregations the
benchmarks rely on (per-CSP bytes, busy time, chunk spans, rendering).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.obs import TransferTimeline
from repro.obs.timeline import TimelineBar
from repro.obs.trace import Span, Tracer
from repro.util.clock import SimClock


def make_tracer():
    clock = SimClock()
    return clock, Tracer(clock=clock)


# ---------------------------------------------------------------------------
# tracer structure


class TestTracerStructure:
    def test_nested_spans_build_a_tree(self):
        clock, tracer = make_tracer()
        with tracer.span("sync") as sync:
            clock.advance(1.0)
            with tracer.span("upload", file="a") as up:
                clock.advance(2.0)
            with tracer.span("download") as down:
                clock.advance(0.5)
        assert tracer.roots == [sync]
        assert [c.name for c in sync.children] == ["upload", "download"]
        assert up.parent_id == sync.span_id
        assert down.parent_id == sync.span_id
        assert up.attrs == {"file": "a"}
        assert up.duration == pytest.approx(2.0)
        assert sync.duration == pytest.approx(3.5)

    def test_sibling_roots(self):
        clock, tracer = make_tracer()
        with tracer.span("first"):
            clock.advance(1.0)
        with tracer.span("second"):
            clock.advance(1.0)
        assert [r.name for r in tracer.roots] == ["first", "second"]
        assert all(r.parent_id is None for r in tracer.roots)

    def test_record_attaches_to_open_span(self):
        clock, tracer = make_tracer()
        with tracer.span("scatter") as scatter:
            clock.advance(5.0)
            op = tracer.record("op", 1.0, 3.0, csp="fast0")
        assert scatter.children == [op]
        assert op.parent_id == scatter.span_id
        assert (op.start, op.end) == (1.0, 3.0)

    def test_record_without_open_span_is_a_root(self):
        _clock, tracer = make_tracer()
        op = tracer.record("op", 0.0, 1.0)
        assert tracer.roots == [op]
        assert op.parent_id is None

    def test_end_span_closes_dangling_children(self):
        clock, tracer = make_tracer()
        outer = tracer.start_span("outer")
        clock.advance(1.0)
        inner = tracer.start_span("inner")
        clock.advance(1.0)
        # close the outer span without ever ending the inner one
        tracer.end_span(outer)
        assert inner.finished
        assert inner.end == outer.end
        assert tracer.check_well_formed() == []

    def test_find_and_all_spans(self):
        clock, tracer = make_tracer()
        with tracer.span("upload"):
            tracer.record("op", 0.0, 0.0, csp="a")
            tracer.record("op", 0.0, 0.0, csp="b")
        with tracer.span("download"):
            tracer.record("op", 0.0, 0.0, csp="a")
        assert len(tracer.find("op")) == 3
        assert len(tracer.all_spans()) == 5

    def test_span_ids_are_unique_and_increasing(self):
        _clock, tracer = make_tracer()
        with tracer.span("a"):
            tracer.record("b", 0.0, 0.0)
        ids = [s.span_id for s in tracer.all_spans()]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)


class TestWellFormedness:
    def test_clean_trace_has_no_problems(self):
        clock, tracer = make_tracer()
        with tracer.span("upload"):
            clock.advance(1.0)
            tracer.record("op", 0.2, 0.8, csp="x")
        assert tracer.check_well_formed() == []

    def test_unfinished_span_is_reported(self):
        _clock, tracer = make_tracer()
        tracer.start_span("upload")
        problems = tracer.check_well_formed()
        assert any("unfinished" in p for p in problems)

    def test_backwards_interval_is_reported(self):
        _clock, tracer = make_tracer()
        tracer.roots.append(Span(span_id=99, name="bad", start=2.0, end=1.0))
        problems = tracer.check_well_formed()
        assert any("ends before it starts" in p for p in problems)

    def test_child_outside_parent_is_reported(self):
        clock, tracer = make_tracer()
        with tracer.span("parent"):
            clock.advance(1.0)
            tracer.record("op", 5.0, 9.0)  # way outside [0, 1]
        problems = tracer.check_well_formed()
        assert any("outside" in p for p in problems)

    def test_wrong_parent_id_is_reported(self):
        clock, tracer = make_tracer()
        with tracer.span("parent") as parent:
            clock.advance(1.0)
            child = tracer.record("op", 0.0, 0.5)
        child.parent_id = 12345
        problems = tracer.check_well_formed()
        assert any("wrong parent_id" in p for p in problems)

    def test_duplicate_span_ids_are_reported(self):
        _clock, tracer = make_tracer()
        tracer.roots.append(Span(span_id=7, name="a", start=0.0, end=1.0))
        tracer.roots.append(Span(span_id=7, name="b", start=0.0, end=1.0))
        problems = tracer.check_well_formed()
        assert any("duplicate span id" in p for p in problems)


class TestExports:
    def test_json_export_parses_and_mirrors_tree(self):
        clock, tracer = make_tracer()
        with tracer.span("upload", file="a.bin"):
            clock.advance(1.0)
            tracer.record("op", 0.1, 0.9, csp="fast0", bytes=128)
        parsed = json.loads(tracer.to_json())
        (root,) = parsed["spans"]
        assert root["name"] == "upload"
        assert root["attrs"] == {"file": "a.bin"}
        (child,) = root["children"]
        assert child["name"] == "op"
        assert child["parent_id"] == root["span_id"]

    def test_chrome_trace_lanes_and_units(self):
        clock, tracer = make_tracer()
        with tracer.span("upload"):
            clock.advance(1.0)
            tracer.record("op", 0.25, 0.75, csp="fast0")
            tracer.record("op", 0.25, 0.50, csp="slow0")
        trace = tracer.to_chrome_trace()
        events = trace["traceEvents"]
        lanes = {
            e["args"]["name"]: e["tid"]
            for e in events if e["name"] == "thread_name"
        }
        assert {"client", "fast0", "slow0"} <= set(lanes)
        xs = [e for e in events if e["ph"] == "X"]
        by_name = {}
        for e in xs:
            by_name.setdefault(e["name"], []).append(e)
        # the upload span sits on the client lane; ops on their CSP lanes
        assert by_name["upload"][0]["tid"] == lanes["client"]
        tids = {e["tid"] for e in by_name["op"]}
        assert tids == {lanes["fast0"], lanes["slow0"]}
        op = by_name["op"][0]
        assert op["ts"] == pytest.approx(0.25e6)
        assert op["dur"] == pytest.approx(0.5e6)
        # the whole thing is valid JSON
        assert json.loads(tracer.to_chrome_json())["displayTimeUnit"] == "ms"

    def test_unfinished_spans_are_skipped_in_chrome_export(self):
        _clock, tracer = make_tracer()
        tracer.start_span("open-ended")
        xs = [e for e in tracer.to_chrome_trace()["traceEvents"]
              if e["ph"] == "X"]
        assert xs == []


# ---------------------------------------------------------------------------
# timeline


class _Kind:
    def __init__(self, value):
        self.value = value


@dataclass
class _Op:
    csp_id: str
    kind: object
    name: str = "obj"
    chunk_id: str | None = None
    data: bytes = b""

    def payload_size(self) -> int:
        return len(self.data)


@dataclass
class _Result:
    op: _Op
    start: float
    end: float
    ok: bool = True
    cancelled: bool = False


def _bar(csp, start, end, nbytes=10, kind="PUT", ok=True, chunk=None):
    return TimelineBar(csp_id=csp, kind=kind, name="obj", start=start,
                       end=end, nbytes=nbytes, ok=ok, chunk_id=chunk)


class TestTimeline:
    def test_from_results_skips_cancelled(self):
        results = [
            _Result(_Op("a", _Kind("PUT"), data=b"x" * 8), 0.0, 1.0),
            _Result(_Op("b", _Kind("PUT"), data=b"x" * 8), 0.0, 2.0,
                    cancelled=True),
        ]
        tl = TransferTimeline.from_results(results)
        assert [b.csp_id for b in tl.bars] == ["a"]
        assert tl.bars[0].nbytes == 8

    def test_from_tracer_matches_from_results_view(self):
        clock, tracer = make_tracer()
        with tracer.span("upload"):
            clock.advance(3.0)
            tracer.record("op", 0.0, 1.0, csp="a", op_kind="PUT",
                          object="s1", bytes=64, ok=True, chunk="c1")
            tracer.record("op", 1.0, 2.0, csp="b", op_kind="PUT",
                          object="s2", bytes=64, ok=True, chunk="c1")
            tracer.record("op", 1.0, 1.5, csp="a", op_kind="GET",
                          object="s1", bytes=32, ok=True)
            tracer.record("op", 2.0, 2.5, csp="a", op_kind="PUT",
                          object="s3", bytes=0, ok=False, error_type="boom")
        tl = TransferTimeline.from_tracer(tracer)
        assert len(tl.bars) == 4
        assert tl.per_csp_bytes(kind="PUT") == {"a": 64, "b": 64}
        assert tl.per_csp_bytes() == {"a": 96, "b": 64}
        assert tl.per_csp_bytes(ok_only=False) == {"a": 96, "b": 64}
        assert tl.chunk_spans() == {"c1": (0.0, 2.0)}
        assert tl.makespan == pytest.approx(2.5)

    def test_from_tracer_skips_unfinished_and_cancelled(self):
        _clock, tracer = make_tracer()
        tracer.record("op", 0.0, 1.0, csp="a", op_kind="PUT", bytes=1,
                      cancelled=True)
        tracer.start_span("op")
        assert TransferTimeline.from_tracer(tracer).bars == []

    def test_busy_seconds_merges_overlaps(self):
        tl = TransferTimeline(bars=[
            _bar("a", 0.0, 2.0),
            _bar("a", 1.0, 3.0),   # overlaps the first: union is [0, 3]
            _bar("a", 5.0, 6.0),   # disjoint
            _bar("b", 0.0, 1.0),
        ])
        busy = tl.busy_seconds()
        assert busy["a"] == pytest.approx(4.0)
        assert busy["b"] == pytest.approx(1.0)

    def test_durations_filters(self):
        tl = TransferTimeline(bars=[
            _bar("a", 0.0, 1.0, kind="PUT"),
            _bar("a", 0.0, 3.0, kind="GET"),
            _bar("a", 0.0, 7.0, kind="PUT", ok=False),
        ])
        assert tl.durations(kind="PUT") == [1.0]
        assert sorted(tl.durations()) == [1.0, 3.0]
        assert sorted(tl.durations(ok_only=False, kind="PUT")) == [1.0, 7.0]

    def test_empty_timeline_aggregates(self):
        tl = TransferTimeline()
        assert tl.makespan == 0.0
        assert tl.per_csp_bytes() == {}
        assert tl.busy_seconds() == {}
        assert tl.render_ascii() == "(empty timeline)"

    def test_render_ascii_shows_lanes_and_failures(self):
        tl = TransferTimeline(bars=[
            _bar("fast0", 0.0, 1.0),
            _bar("slow0", 0.5, 2.0, ok=False),
        ])
        art = tl.render_ascii(width=40)
        lines = art.splitlines()
        assert lines[0].startswith("fast0")
        assert "=" in lines[0]
        assert lines[1].startswith("slow0")
        assert "x" in lines[1]

    def test_json_export_parses(self):
        tl = TransferTimeline(bars=[_bar("a", 0.0, 1.0, chunk="c9")])
        parsed = json.loads(tl.to_json())
        assert parsed["makespan"] == 1.0
        assert parsed["bars"][0]["csp"] == "a"
        assert parsed["bars"][0]["chunk"] == "c9"
