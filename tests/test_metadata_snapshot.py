"""Tests for local metadata-tree persistence (Section 3.2)."""

import pytest

from repro.errors import MetadataError
from repro.metadata import MetadataTree
from repro.metadata.snapshot import (
    dump_snapshot,
    load_snapshot,
    load_tree,
    quarantine_path,
    save_tree,
)
from tests.conftest import deterministic_bytes
from tests.test_metadata_tree import mk


class TestSnapshotCodec:
    def test_roundtrip(self):
        nodes = [mk("f", "v1"), mk("g", "w1")]
        restored = load_snapshot(dump_snapshot(nodes))
        assert {n.node_id for n in restored} == {n.node_id for n in nodes}

    def test_empty(self):
        assert load_snapshot(dump_snapshot([])) == []

    def test_deterministic_bytes(self):
        nodes = [mk("f", "v1"), mk("g", "w1")]
        assert dump_snapshot(nodes) == dump_snapshot(reversed(nodes))

    def test_corrupt_rejected(self):
        with pytest.raises(MetadataError):
            load_snapshot(b"not json")
        with pytest.raises(MetadataError):
            load_snapshot(b'{"v": 99, "nodes": []}')


class TestTreePersistence:
    def test_save_load(self, tmp_path):
        tree = MetadataTree()
        a = mk("f", "v1")
        tree.add(a)
        tree.add(mk("f", "v2", prev=a.node_id, modified=2.0))
        path = tmp_path / "snap.json"
        assert save_tree(tree, path) == 2

        fresh = MetadataTree()
        assert load_tree(fresh, path) == 2
        assert fresh.node_ids() == tree.node_ids()
        assert fresh.latest("f").node_id == tree.latest("f").node_id

    def test_missing_file_is_empty(self, tmp_path):
        tree = MetadataTree()
        assert load_tree(tree, tmp_path / "nope.json") == 0

    def test_merge_into_nonempty(self, tmp_path):
        tree = MetadataTree()
        a = mk("f", "v1")
        tree.add(a)
        save_tree(tree, tmp_path / "snap.json")
        other = MetadataTree()
        other.add(a)  # already known
        other.add(mk("g", "w1"))
        assert load_tree(other, tmp_path / "snap.json") == 0  # nothing new
        assert len(other) == 2


class TestCrashSafety:
    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        tree = MetadataTree()
        tree.add(mk("f", "v1"))
        path = tmp_path / "snap.json"
        save_tree(tree, path)
        save_tree(tree, path)  # overwrite goes through the same rename
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]

    def test_torn_snapshot_is_quarantined_not_fatal(self, tmp_path):
        tree = MetadataTree()
        a = mk("f", "v1")
        tree.add(a)
        path = tmp_path / "snap.json"
        save_tree(tree, path)
        # the failure save_tree's rename discipline prevents for *new*
        # writes, injected directly: a truncated file from an old crash
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        fresh = MetadataTree()
        assert load_tree(fresh, path) == 0  # fresh start, not a raise
        assert len(fresh) == 0
        assert not path.exists()  # set aside ...
        assert quarantine_path(path).exists()  # ... for inspection

    def test_garbage_snapshot_is_quarantined(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_bytes(b"\x00\xff not a snapshot")
        fresh = MetadataTree()
        assert load_tree(fresh, path) == 0
        assert quarantine_path(path).exists()

    def test_quarantined_client_restarts_as_fresh(self, client, csps,
                                                  config, tmp_path):
        """The snapshot is a convenience copy: losing it to corruption
        must cost only a full sync, never the data."""
        from repro.core.client import CyrusClient

        data = deterministic_bytes(3000, 4)
        client.put("f.bin", data)
        snap = tmp_path / "state.json"
        client.save_local_state(snap)
        snap.write_bytes(b'{"v": 1, "nodes": ["garbage')

        restarted = CyrusClient.create(csps, config, client_id="alice")
        assert restarted.load_local_state(snap) == 0
        assert quarantine_path(snap).exists()
        restarted.sync()  # the full first sync a fresh client does
        assert restarted.get("f.bin", sync_first=False).data == data


class TestClientPersistence:
    def test_restart_without_full_recover(self, client, csps, config,
                                          tmp_path):
        from repro.core.client import CyrusClient

        data = deterministic_bytes(5000, 1)
        client.put("f.bin", data)
        snap = tmp_path / "state.json"
        assert client.save_local_state(snap) == 1

        restarted = CyrusClient.create(csps, config, client_id="alice")
        assert restarted.load_local_state(snap) == 1
        # chunk table rebuilt: dedup works immediately, no sync needed
        report = restarted.put("copy.bin", data, sync_first=False)
        assert report.new_chunks == 0
        assert restarted.get("f.bin", sync_first=False).data == data

    def test_incremental_sync_after_load(self, client, second_client,
                                         csps, config, tmp_path):
        from repro.core.client import CyrusClient

        client.put("old.bin", deterministic_bytes(1000, 2))
        snap = tmp_path / "state.json"
        client.save_local_state(snap)
        # another device publishes while we were offline
        second_client.put("new.bin", deterministic_bytes(1000, 3))

        restarted = CyrusClient.create(csps, config, client_id="alice")
        restarted.load_local_state(snap)
        report = restarted.sync()
        assert report.new_nodes == 1  # only the node published since
        assert {e.name for e in restarted.list_files(sync_first=False)} == {
            "old.bin", "new.bin",
        }
