"""Randomised multi-client workloads with global invariants.

A seeded fuzzer drives several clients through random interleavings of
put / get / delete / sync / resolve against one provider set, tracking
a model of what each client has observed.  Invariants checked
throughout:

* a get never crashes and always returns a *some-client-wrote-it* value
  for that name;
* after a global sync + resolve round, all clients converge to the same
  file listing and content;
* providers never store plaintext runs of any written value.
"""

import random

import pytest

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp import InMemoryCSP
from repro.errors import CyrusError, MetadataError

NAMES = ["alpha.bin", "beta.txt", "gamma.dat"]


def build_world(seed):
    csps = [InMemoryCSP(f"p{i}") for i in range(4)]
    config = CyrusConfig(key="fuzz", t=2, n=3, chunk_min=64, chunk_avg=256,
                         chunk_max=2048)
    clients = [
        CyrusClient.create(csps, config, client_id=f"dev{i}")
        for i in range(3)
    ]
    return csps, clients, random.Random(seed)


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_random_interleavings(seed):
    csps, clients, rng = build_world(seed)
    written: dict[str, set[bytes]] = {name: set() for name in NAMES}
    ever_written: set[bytes] = set()

    for step in range(60):
        client = rng.choice(clients)
        name = rng.choice(NAMES)
        action = rng.choices(
            ["put", "get", "delete", "sync", "resolve"],
            weights=[4, 3, 1, 3, 1],
        )[0]
        if action == "put":
            payload = rng.randbytes(rng.randint(100, 3000))
            client.put(name, payload, sync_first=rng.random() < 0.7)
            written[name].add(payload)
            ever_written.add(payload)
        elif action == "get":
            try:
                report = client.get(name, sync_first=True)
            except MetadataError:
                continue  # name not yet visible to this client
            assert report.data in written[name], (
                f"step {step}: get returned bytes nobody wrote"
            )
        elif action == "delete":
            try:
                client.delete(name)
            except (MetadataError, CyrusError):
                continue
        elif action == "sync":
            client.sync()
        else:
            client.sync()
            client.resolve_conflicts()

    # convergence round: everyone syncs, one resolves, everyone re-syncs
    for client in clients:
        client.sync()
    clients[0].resolve_conflicts()
    for client in clients:
        client.sync()

    listings = [
        tuple(e.name for e in c.list_files(sync_first=False))
        for c in clients
    ]
    assert len(set(listings)) == 1, f"listings diverged: {listings}"

    reference = clients[0]
    for entry in reference.list_files(sync_first=False):
        expected = reference.get(entry.name, sync_first=False).data
        for other in clients[1:]:
            assert other.get(entry.name, sync_first=False).data == expected
        assert expected in ever_written

    # no conflicts survive the convergence round
    for client in clients:
        assert not client.conflicts()


@pytest.mark.parametrize("seed", [3, 17])
def test_fuzz_with_provider_failures(seed):
    """Same fuzz, plus random provider failure/recovery."""
    csps, clients, rng = build_world(seed + 1000)
    model: dict[str, bytes] = {}

    for step in range(40):
        client = rng.choice(clients)
        # at most one provider down at a time: (t, n) = (2, 3) tolerates it
        if rng.random() < 0.15:
            victim = rng.choice(csps).csp_id
            for c in clients:
                if c.cloud.status_of(victim).value == "active":
                    c.cloud.mark_failed(victim)
        if rng.random() < 0.30:
            for c in clients:
                for csp in csps:
                    if c.cloud.status_of(csp.csp_id).value == "failed":
                        c.cloud.mark_recovered(csp.csp_id)
        name = rng.choice(NAMES)
        if rng.random() < 0.5:
            payload = rng.randbytes(rng.randint(100, 2000))
            try:
                client.put(name, payload)
                model[name] = payload
            except CyrusError:
                pass  # too many providers down for this write
        else:
            try:
                report = client.get(name)
            except CyrusError:
                continue
            assert len(report.data) > 0

    # recover all providers; the latest surviving writes must be readable
    for c in clients:
        for csp in csps:
            if c.cloud.status_of(csp.csp_id).value == "failed":
                c.cloud.mark_recovered(csp.csp_id)
    probe = clients[0]
    probe.sync()
    for name in probe.tree.file_names():
        probe.get(name, sync_first=False)  # must not raise
