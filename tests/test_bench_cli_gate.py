"""`cyrus bench` smoke tests, the BENCH_*.json schema, and the CI
regression-gate comparator."""

import json
import os

import pytest

from repro.bench.gate import (
    BASELINE_SCHEMA,
    check_report,
    check_reports,
    load_baseline,
    validate_baseline,
)
from repro.bench.harness import bench_codec, bench_e2e, run_bench
from repro.bench.reporting import (
    BENCH_SCHEMA,
    load_bench_report,
    validate_bench_report,
    write_bench_report,
)


def _report(kind="codec", metrics=None):
    return {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "quick": True,
        "params": {"t": 2},
        "metrics": metrics if metrics is not None else {"m": 1.0},
    }


def _baseline(floors, tolerance=0.5):
    return {
        "schema": BASELINE_SCHEMA,
        "tolerance": tolerance,
        "floors": floors,
    }


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------


def test_valid_report_passes():
    validate_bench_report(_report())


@pytest.mark.parametrize("mutate", [
    lambda r: r.pop("schema"),
    lambda r: r.update(schema="cyrus-bench/v0"),
    lambda r: r.update(kind="nonsense"),
    lambda r: r.update(quick="yes"),
    lambda r: r.update(params=[1, 2]),
    lambda r: r.update(metrics={}),
    lambda r: r.update(metrics={"m": "fast"}),
    lambda r: r.update(metrics={"m": float("nan")}),
    lambda r: r.update(metrics={"m": float("inf")}),
    lambda r: r.update(metrics={"m": True}),
])
def test_malformed_reports_rejected(mutate):
    report = _report()
    mutate(report)
    with pytest.raises(ValueError):
        validate_bench_report(report)


def test_write_and_load_roundtrip(tmp_path):
    path = tmp_path / "BENCH_codec.json"
    write_bench_report(_report(metrics={"encode": 42.5}), path)
    loaded = load_bench_report(path)
    assert loaded["metrics"] == {"encode": 42.5}


def test_write_rejects_malformed(tmp_path):
    with pytest.raises(ValueError):
        write_bench_report({"schema": "nope"}, tmp_path / "x.json")
    assert not (tmp_path / "x.json").exists()


def test_baseline_validation():
    validate_baseline(_baseline({"codec": {"m": 1.0}}))
    with pytest.raises(ValueError):
        validate_baseline(_baseline({"codec": {"m": 0.0}}))  # non-positive
    with pytest.raises(ValueError):
        validate_baseline(_baseline({"weird-kind": {"m": 1.0}}))
    with pytest.raises(ValueError):
        validate_baseline(_baseline({"codec": {"m": 1.0}}, tolerance=1.0))
    with pytest.raises(ValueError):
        validate_baseline({"schema": "other", "tolerance": 0.1, "floors": {}})


def test_committed_baseline_is_valid():
    """The floors CI actually uses must always parse."""
    from pathlib import Path

    baseline = load_baseline(
        Path(__file__).parent.parent / "benchmarks" / "bench_baseline.json"
    )
    assert baseline["floors"]["codec"]["encode_speedup"] >= 10.0


# ----------------------------------------------------------------------
# gate comparator: improve / regress / tolerance edge
# ----------------------------------------------------------------------


def test_gate_improvement_passes():
    result = check_report(
        _report(metrics={"m": 20.0}), _baseline({"codec": {"m": 10.0}})
    )
    assert result.passed and not result.failures


def test_gate_regression_fails():
    result = check_report(
        _report(metrics={"m": 2.0}), _baseline({"codec": {"m": 10.0}})
    )
    assert not result.passed
    assert [c.metric for c in result.failures] == ["m"]
    assert "FAIL" in result.describe()


def test_gate_tolerance_edge_equality_passes():
    # threshold = 10 * (1 - 0.5) = 5.0; exactly 5.0 must PASS
    result = check_report(
        _report(metrics={"m": 5.0}), _baseline({"codec": {"m": 10.0}})
    )
    assert result.passed
    # and one ulp under fails
    result = check_report(
        _report(metrics={"m": 4.999999}), _baseline({"codec": {"m": 10.0}})
    )
    assert not result.passed


def test_gate_zero_tolerance_is_exact_floor():
    baseline = _baseline({"codec": {"m": 10.0}}, tolerance=0.0)
    assert check_report(_report(metrics={"m": 10.0}), baseline).passed
    assert not check_report(_report(metrics={"m": 9.999}), baseline).passed


def test_gate_missing_metric_fails():
    result = check_report(
        _report(metrics={"other": 99.0}), _baseline({"codec": {"m": 10.0}})
    )
    assert not result.passed
    assert result.failures[0].current is None
    assert "missing" in result.failures[0].describe()


def test_gate_extra_metrics_ignored():
    result = check_report(
        _report(metrics={"m": 20.0, "new_metric": 0.001}),
        _baseline({"codec": {"m": 10.0}}),
    )
    assert result.passed and len(result.checks) == 1


def test_gate_tolerance_override():
    baseline = _baseline({"codec": {"m": 10.0}}, tolerance=0.5)
    assert check_report(_report(metrics={"m": 6.0}), baseline).passed
    assert not check_report(
        _report(metrics={"m": 6.0}), baseline, tolerance=0.1
    ).passed


def test_gate_combines_kinds():
    reports = {
        "codec": _report("codec", {"m": 20.0}),
        "e2e": _report("e2e", {"p": 1.0}),
    }
    baseline = _baseline({"codec": {"m": 10.0}, "e2e": {"p": 5.0}})
    result = check_reports(reports, baseline)
    assert not result.passed
    assert [(c.kind, c.metric) for c in result.failures] == [("e2e", "p")]


# ----------------------------------------------------------------------
# bench harness smoke (tiny payloads; the real --quick run is the CI job)
# ----------------------------------------------------------------------


def test_bench_codec_smoke_schema_valid():
    report = bench_codec(quick=True, vec_bytes=64 * 1024,
                         sca_bytes=8 * 1024, repeats=1)
    validate_bench_report(report)
    assert report["kind"] == "codec"
    for key in ("encode_vector_mbps", "encode_scalar_mbps", "encode_speedup",
                "decode_speedup", "chunk_rabin_speedup"):
        assert report["metrics"][key] > 0


def test_bench_e2e_smoke_schema_valid():
    report = bench_e2e(quick=True, size=512 * 1024)
    validate_bench_report(report)
    assert report["kind"] == "e2e"
    assert report["metrics"]["put_mbps"] > 0
    assert report["metrics"]["get_mbps"] > 0


def test_run_bench_writes_both_files(tmp_path, monkeypatch):
    # shrink the payloads through the harness entry itself
    import repro.bench.harness as harness

    monkeypatch.setattr(
        harness, "bench_codec",
        lambda quick=True: bench_codec(quick=quick, vec_bytes=64 * 1024,
                                       sca_bytes=8 * 1024, repeats=1),
    )
    monkeypatch.setattr(
        harness, "bench_e2e",
        lambda quick=True: bench_e2e(quick=quick, size=256 * 1024),
    )
    reports = run_bench(quick=True, out_dir=tmp_path)
    for kind in ("codec", "e2e"):
        path = tmp_path / f"BENCH_{kind}.json"
        assert path.exists()
        on_disk = json.loads(path.read_text())
        validate_bench_report(on_disk)
        assert on_disk == reports[kind]


def test_cli_bench_gate_failure_exit_code(tmp_path, monkeypatch):
    """`cyrus bench --gate` exits 1 on regression, 0 on pass."""
    import repro.bench.harness as harness
    from repro.cli import main

    monkeypatch.setattr(
        harness, "bench_codec",
        lambda quick=True: bench_codec(quick=quick, vec_bytes=64 * 1024,
                                       sca_bytes=8 * 1024, repeats=1),
    )
    monkeypatch.setattr(
        harness, "bench_e2e",
        lambda quick=True: bench_e2e(quick=quick, size=256 * 1024),
    )
    passing = tmp_path / "pass.json"
    passing.write_text(json.dumps(_baseline(
        {"codec": {"encode_speedup": 0.001}})))
    failing = tmp_path / "fail.json"
    failing.write_text(json.dumps(_baseline(
        {"codec": {"encode_vector_mbps": 10_000_000.0}})))
    out = tmp_path / "bench-out"
    assert main(["bench", "--quick", "--out-dir", str(out),
                 "--gate", str(passing)]) == 0
    assert (out / "BENCH_codec.json").exists()
    assert (out / "BENCH_e2e.json").exists()
    assert main(["bench", "--quick", "--out-dir", str(out),
                 "--gate", str(failing)]) == 1


@pytest.mark.slow
@pytest.mark.skipif(
    bool(os.environ.get("CYRUS_NO_NUMPY_ACCEL"))
    or os.environ.get("CYRUS_CODEC") == "scalar",
    reason="floors are for the vectorized path; scalar fallback is forced",
)
def test_real_quick_bench_meets_committed_floors(tmp_path):
    """The actual `cyrus bench --quick` run passes the committed gate."""
    from pathlib import Path

    baseline = load_baseline(
        Path(__file__).parent.parent / "benchmarks" / "bench_baseline.json"
    )
    reports = run_bench(quick=True, out_dir=tmp_path)
    result = check_reports(reports, baseline)
    assert result.passed, result.describe()
