"""Unit tests for the bench package (testbed, harness, reporting,
realworld profile)."""

import math

import pytest

from repro.bench import (
    build_environment,
    build_paper_testbed,
    summarize_durations,
)
from repro.bench.harness import DurationSummary, throughputs
from repro.bench.realworld import REALWORLD_DOWN_RATES, realworld_links
from repro.bench.reporting import fmt_mb, fmt_mbps, fmt_seconds, render_table
from repro.core.config import CyrusConfig
from repro.netsim import Link
from tests.conftest import SMALL_CHUNKS, deterministic_bytes


class TestTestbed:
    def test_paper_testbed_shape(self):
        env = build_paper_testbed()
        assert len(env.csps) == 7
        fast = [c for c in env.csp_ids() if c.startswith("fast")]
        slow = [c for c in env.csp_ids() if c.startswith("slow")]
        assert len(fast) == 4 and len(slow) == 3
        assert env.links["fast0"].capacity_at(0, "down") == 15e6
        assert env.links["slow0"].capacity_at(0, "down") == 2e6

    def test_environment_shares_one_clock(self):
        env = build_paper_testbed()
        for csp in env.csps.values():
            assert csp.clock is env.clock
        assert env.engine.clock is env.clock

    def test_new_client_functional(self):
        env = build_paper_testbed()
        client = env.new_client(
            CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        )
        data = deterministic_bytes(5000, 1)
        client.put("f.bin", data)
        assert client.get("f.bin").data == data

    def test_quotas_and_availability_wired(self):
        from repro.csp import AvailabilitySchedule

        links = {"a": Link.symmetric("a", 1e6)}
        env = build_environment(
            links,
            quotas={"a": 123},
            availability={"a": AvailabilitySchedule([(1.0, 2.0)])},
        )
        assert env.csps["a"].quota_bytes == 123
        assert not env.csps["a"].is_up(1.5)


class TestHarness:
    def test_duration_summary(self):
        summary = DurationSummary.of([3.0, 1.0, 2.0, 10.0])
        assert summary.count == 4
        assert summary.minimum == 1.0 and summary.maximum == 10.0
        assert summary.mean == pytest.approx(4.0)
        assert summary.median == pytest.approx(2.5)
        assert summary.total == pytest.approx(16.0)

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            DurationSummary.of([])

    def test_summarize_reports(self):
        env = build_paper_testbed()
        client = env.new_client(
            CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        )
        reports = [
            client.put(f"f{i}.bin", deterministic_bytes(2000, i))
            for i in range(3)
        ]
        summary = summarize_durations(reports)
        assert summary.count == 3
        assert summary.total > 0

    def test_throughputs(self):
        class FakeReport:
            def __init__(self, duration):
                self.duration = duration

        tps = throughputs([FakeReport(2.0), FakeReport(0.0)], [100, 50])
        assert tps == [50.0]


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines[1:2])
        assert "long-name" in lines[3]

    def test_fmt_seconds_ranges(self):
        assert fmt_seconds(0.00123) == "1.23ms"
        assert fmt_seconds(1.5) == "1.500s"
        assert fmt_seconds(99.4) == "99.4s"

    def test_fmt_helpers(self):
        assert fmt_mb(2 * 1024 * 1024) == "2.00 MB"
        assert fmt_mbps(1e6) == "8.000 Mbps"


class TestRealworldProfile:
    def test_asymmetric_links(self):
        links = realworld_links()
        assert set(links) == set(REALWORLD_DOWN_RATES)
        for name, link in links.items():
            assert link.capacity_at(0, "down") == REALWORLD_DOWN_RATES[name]
            assert link.capacity_at(0, "up") != link.capacity_at(0, "down")

    def test_download_skew(self):
        rates = sorted(REALWORLD_DOWN_RATES.values())
        assert rates[-1] >= 5 * rates[0]

    def test_api_overhead_in_rtt(self):
        plain = realworld_links(api_overhead_s=0.0)
        padded = realworld_links(api_overhead_s=0.5)
        for name in plain:
            assert padded[name].rtt_s == pytest.approx(
                plain[name].rtt_s + 0.5
            )

    def test_diurnal_variation(self):
        links = realworld_links(diurnal_amplitude=0.4)
        link = links["Dropbox"]
        samples = {link.capacity_at(h * 3600.0, "up") for h in range(24)}
        assert len(samples) > 4  # the trace actually varies

    def test_diurnal_order_preserved(self):
        # all CSPs swing in phase: relative speed order never flips
        links = realworld_links(diurnal_amplitude=0.35)
        names = sorted(REALWORLD_DOWN_RATES,
                       key=REALWORLD_DOWN_RATES.get)
        for hour in range(48):
            t = hour * 3600.0
            rates = [links[n].capacity_at(t, "down") for n in names]
            assert rates == sorted(rates)
