"""Unit tests for time-varying rate traces."""

import math

import pytest

from repro.netsim.trace import RateTrace


class TestConstant:
    def test_rate_everywhere(self):
        tr = RateTrace.constant(5e6)
        assert tr.rate_at(0) == 5e6
        assert tr.rate_at(1e9) == 5e6

    def test_no_changes(self):
        assert math.isinf(RateTrace.constant(1.0).next_change_after(0))


class TestPiecewise:
    def test_segments(self):
        tr = RateTrace([10.0, 20.0], [1.0, 2.0, 3.0])
        assert tr.rate_at(5) == 1.0
        assert tr.rate_at(10) == 2.0  # boundary belongs to the next segment
        assert tr.rate_at(15) == 2.0
        assert tr.rate_at(25) == 3.0

    def test_next_change(self):
        tr = RateTrace([10.0, 20.0], [1.0, 2.0, 3.0])
        assert tr.next_change_after(0) == 10.0
        assert tr.next_change_after(10.0) == 20.0
        assert math.isinf(tr.next_change_after(20.0))

    def test_validation_lengths(self):
        with pytest.raises(ValueError):
            RateTrace([1.0], [1.0])

    def test_validation_order(self):
        with pytest.raises(ValueError):
            RateTrace([2.0, 1.0], [1.0, 2.0, 3.0])

    def test_validation_negative_rate(self):
        with pytest.raises(ValueError):
            RateTrace([], [-1.0])


class TestDiurnal:
    def test_mean_near_base(self):
        tr = RateTrace.diurnal(1e6, amplitude=0.5, steps_per_period=24, periods=2)
        samples = [tr.rate_at(t * 3600.0 + 1) for t in range(48)]
        assert sum(samples) / len(samples) == pytest.approx(1e6, rel=0.05)

    def test_amplitude_bounds(self):
        tr = RateTrace.diurnal(1e6, amplitude=0.4)
        samples = [tr.rate_at(t * 3600.0) for t in range(48)]
        assert max(samples) <= 1e6 * 1.4 + 1
        assert min(samples) >= 1e6 * 0.6 - 1

    def test_periodicity(self):
        tr = RateTrace.diurnal(2e6, amplitude=0.3, periods=2)
        for hour in range(24):
            t = hour * 3600.0 + 10
            assert tr.rate_at(t) == pytest.approx(tr.rate_at(t + 24 * 3600.0))

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            RateTrace.diurnal(1e6, amplitude=1.0)
