"""Seeded chaos: many upload/download cycles under a mixed fault plan.

The ISSUE's acceptance scenario: run >= 20 put/get cycles against
providers wrapped in a :class:`FaultyProvider` applying transient blips,
an op-windowed outage, latency spikes and share corruption — and prove

* zero data loss and zero hangs whenever >= t shares stay reachable,
* byte-identical fault schedules for identical seeds, and
* that the circuit breaker stops dispatching to a dead provider
  (an operation-count assertion, not just a state check).

Everything runs on a shared :class:`SimClock`, so backoff sleeps and
breaker timeouts advance simulated time — the suite never really sleeps.
"""

from __future__ import annotations

from repro.core.cache import ChunkCache
from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.transfer import DirectEngine, OpKind, TransferOp
from repro.csp.memory import InMemoryCSP
from repro.errors import CSPError
from repro.csp.resilient import BreakerState, HealthRegistry
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.util.clock import SimClock

from tests.conftest import SMALL_CHUNKS, deterministic_bytes

CYCLES = 24


def _chaos_plan(seed: int) -> FaultPlan:
    """Mixed faults, bounded for recoverability with (t, n) = (2, 3):
    corruption and the windowed outage both land on csp1, so at any
    instant at most one provider (= n - t) is lying or dark; transient
    blips and latency spikes hit everybody."""
    return FaultPlan.chaos(
        seed=seed,
        transient_rate=0.08,
        corrupt_csp_ids=("csp1",),
        corrupt_rate=0.5,
        outage_csp_id="csp1",
        outage_window_ops=(40, 90),
        latency_rate=0.05,
        latency_s=0.1,
    )


def _run_scenario(seed: int):
    """One full chaos run; returns (fault logs, providers, client)."""
    clock = SimClock()
    plan = _chaos_plan(seed)
    providers = [
        FaultyProvider(InMemoryCSP(f"csp{i}"), plan, clock=clock)
        for i in range(4)
    ]
    config = CyrusConfig(key="chaos-key", t=2, n=3, **SMALL_CHUNKS)
    engine = DirectEngine({p.csp_id: p for p in providers}, clock=clock)
    client = CyrusClient.create(
        providers, config, client_id="alice", engine=engine
    )
    stored: dict[str, bytes] = {}
    for cycle in range(CYCLES):
        # periodic health probe (the paper's Section 5.5 re-check) so a
        # CSP whose outage window ended rejoins the rotation
        client.probe_failed_csps()
        name = f"file-{cycle}.bin"
        data = deterministic_bytes(600 + 97 * cycle, seed=1000 + cycle)
        client.put(name, data)
        stored[name] = data
        got = client.get(name)
        assert got.data == data, f"cycle {cycle}: fresh read lost data"
        assert not got.degraded
        # and one older file per cycle, to cross fault windows
        old = f"file-{cycle // 2}.bin"
        assert client.get(old).data == stored[old], (
            f"cycle {cycle}: re-read of {old} lost data"
        )
    return [tuple(p.fault_log) for p in providers], providers, client


class TestChaos:
    def test_no_data_loss_across_cycles(self, fault_seed):
        logs, providers, _client = _run_scenario(seed=fault_seed)
        injected = {
            kind: sum(p.injected_faults.get(kind, 0) for p in providers)
            for kind in FaultKind
        }
        # the plan actually bit: every scripted fault family fired
        assert injected[FaultKind.TRANSIENT] > 0
        assert injected[FaultKind.CORRUPT] > 0
        assert injected[FaultKind.OUTAGE] > 0
        assert injected[FaultKind.LATENCY] > 0

    def test_identical_seeds_produce_identical_schedules(self):
        logs_a, _, _ = _run_scenario(seed=7)
        logs_b, _, _ = _run_scenario(seed=7)
        assert logs_a == logs_b  # full FaultEvent equality, times included
        logs_c, _, _ = _run_scenario(seed=8)
        assert logs_a != logs_c

    def test_breaker_stops_hammering_a_dead_csp(self):
        clock = SimClock()
        dead = FaultyProvider(
            InMemoryCSP("dead"),
            FaultPlan([FaultSpec(kind=FaultKind.OUTAGE)], seed=0),
            clock=clock,
        )
        health = HealthRegistry(clock=clock, failure_threshold=3,
                                reset_timeout=30.0)
        engine = DirectEngine({"dead": dead}, clock=clock, health=health)

        def get_op(i: int) -> TransferOp:
            return TransferOp(kind=OpKind.GET, csp_id="dead",
                              name=f"obj-{i}", size=10)

        for i in range(3):
            [res] = engine.execute([get_op(i)])
            assert not res.ok and res.retryable
        assert health.health_of("dead").state is BreakerState.OPEN
        dispatched = sum(dead.op_counts.values())
        assert dispatched == 3

        # while open: ops fail fast, the provider sees nothing
        for i in range(5):
            [res] = engine.execute([get_op(100 + i)])
            assert not res.ok
            assert res.error_type == "CircuitOpenError"
            assert res.retryable is False
        assert sum(dead.op_counts.values()) == dispatched

        # after the reset timeout: exactly one half-open probe per
        # batch is dispatched; its failure re-opens the circuit
        clock.advance(30.0)
        results = engine.execute([get_op(200 + i) for i in range(4)])
        assert sum(dead.op_counts.values()) == dispatched + 1
        assert [r.error_type for r in results].count("CircuitOpenError") == 3
        assert health.health_of("dead").state is BreakerState.OPEN

    def test_degraded_read_serves_cache_during_total_outage(self):
        # every provider goes dark after op 30; a file read (and thus
        # cached) before the outage stays readable — marked degraded,
        # because the failed sync could not confirm the version fresh
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.OUTAGE, window_ops=(30, 10**9))],
            seed=3,
        )
        providers = [
            FaultyProvider(InMemoryCSP(f"csp{i}"), plan) for i in range(3)
        ]
        config = CyrusConfig(key="deg-key", t=2, n=3, **SMALL_CHUNKS)
        client = CyrusClient.create(
            providers, config, client_id="alice", cache=ChunkCache()
        )
        data = deterministic_bytes(2000, seed=9)
        client.put("warm.bin", data)
        fresh = client.get("warm.bin")  # warms the chunk cache
        assert fresh.data == data and not fresh.degraded
        for prov in providers:  # burn ops into the outage window
            while sum(prov.op_counts.values()) < 30:
                try:
                    prov.list()
                except CSPError:
                    pass
        degraded = client.get("warm.bin")
        assert degraded.data == data
        assert degraded.degraded
        assert degraded.bytes_downloaded == 0
        assert any(e.kind == "degraded_read" for e in client.health_events)

    def test_breaker_events_surface_to_the_client(self, fault_seed):
        logs, providers, _client = _run_scenario(seed=fault_seed)
        # rebuild the same scenario to inspect the client's event stream
        clock = SimClock()
        plan = _chaos_plan(fault_seed)
        fleet = [
            FaultyProvider(InMemoryCSP(f"csp{i}"), plan, clock=clock)
            for i in range(4)
        ]
        config = CyrusConfig(key="chaos-key", t=2, n=3, **SMALL_CHUNKS)
        engine = DirectEngine({p.csp_id: p for p in fleet}, clock=clock)
        client = CyrusClient.create(
            fleet, config, client_id="alice", engine=engine
        )
        for cycle in range(CYCLES):
            client.probe_failed_csps()
            name = f"file-{cycle}.bin"
            data = deterministic_bytes(600 + 97 * cycle, seed=1000 + cycle)
            client.put(name, data)
            client.get(name)
        kinds = {e.kind for e in client.health_events}
        assert "failure" in kinds  # structured failure events recorded
        failures = [e for e in client.health_events if e.kind == "failure"]
        assert all(e.csp_id and e.detail for e in failures)


class TestChaosMetricsAgreement:
    """The observability counters must agree with the fault schedule.

    The fault logs are the ground truth: every TRANSIENT/OUTAGE event
    injected into an engine-dispatched op surfaces as exactly one
    failed op, and the health-event metrics mirror the client's
    structured event stream one-for-one.
    """

    def test_engine_failure_counters_match_fault_logs(self, fault_seed):
        logs, providers, client = _run_scenario(seed=fault_seed)
        snap = client.obs.snapshot()
        for prov, log in zip(providers, logs):
            # probe list() calls bypass the engine, so count only the
            # error-kind injections on data ops (every engine dispatch
            # reaches the provider as an upload or a download)
            injected = sum(
                1 for e in log
                if e.kind in (FaultKind.TRANSIENT, FaultKind.OUTAGE)
                and e.op in ("upload", "download")
            )
            observed = snap.counter_total(
                "cyrus_op_failures_total",
                csp=prov.csp_id, error_type="CSPUnavailableError",
            )
            assert observed == injected, (
                f"{prov.csp_id}: engine saw {observed} unavailability "
                f"failures, the plan injected {injected}"
            )

    def test_retry_counters_are_bounded_by_injected_faults(self, fault_seed):
        logs, providers, client = _run_scenario(seed=fault_seed)
        snap = client.obs.snapshot()
        injected_errors = sum(
            1 for log in logs for e in log
            if (e.kind in (FaultKind.TRANSIENT, FaultKind.OUTAGE)
                and e.op in ("upload", "download"))
            # decode-time share verification turns a corrupt download
            # into a permanent per-provider failure, so it too may spend
            # one failover decision (it used to be absorbed only after
            # decode, invisible to the retry loop)
            or (e.kind is FaultKind.CORRUPT and e.op == "download")
        )
        retried = (snap.counter_total("cyrus_share_retries_total")
                   + snap.counter_total("cyrus_meta_retries_total"))
        failovers = snap.counter_total("cyrus_share_failovers_total")
        assert retried > 0  # transients were actually retried
        # a failed (or verified-corrupt) op leads to at most one retry
        # or failover decision
        assert retried + failovers <= injected_errors

    def test_health_event_metrics_mirror_event_stream(self, fault_seed):
        _logs, _providers, client = _run_scenario(seed=fault_seed)
        snap = client.obs.snapshot()
        by_kind: dict[str, int] = {}
        for event in client.health_events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        assert by_kind.get("failure", 0) > 0
        for kind, count in by_kind.items():
            assert snap.counter_total(
                "cyrus_health_events_total", kind=kind
            ) == count
        # and nothing was counted that never happened
        total_metric = snap.counter_total("cyrus_health_events_total")
        assert total_metric == sum(by_kind.values())

    def test_breaker_open_metric_matches_transitions(self, fault_seed):
        _logs, _providers, client = _run_scenario(seed=fault_seed)
        snap = client.obs.snapshot()
        opens = [e for e in client.health_events if e.kind == "breaker_open"]
        assert snap.counter_total(
            "cyrus_health_events_total", kind="breaker_open"
        ) == len(opens)
        for e in opens:
            assert snap.counter_value(
                "cyrus_health_events_total",
                kind="breaker_open", csp=e.csp_id,
            ) >= 1
