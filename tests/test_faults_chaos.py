"""Seeded chaos: many upload/download cycles under a mixed fault plan.

The ISSUE's acceptance scenario: run >= 20 put/get cycles against
providers wrapped in a :class:`FaultyProvider` applying transient blips,
an op-windowed outage, latency spikes and share corruption — and prove

* zero data loss and zero hangs whenever >= t shares stay reachable,
* byte-identical fault schedules for identical seeds, and
* that the circuit breaker stops dispatching to a dead provider
  (an operation-count assertion, not just a state check).

Everything runs on a shared :class:`SimClock`, so backoff sleeps and
breaker timeouts advance simulated time — the suite never really sleeps.
"""

from __future__ import annotations

from repro.core.cache import ChunkCache
from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.transfer import DirectEngine, OpKind, TransferOp
from repro.csp.memory import InMemoryCSP
from repro.errors import CSPError
from repro.csp.resilient import BreakerState, HealthRegistry
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.util.clock import SimClock

from tests.conftest import SMALL_CHUNKS, deterministic_bytes

CYCLES = 24


def _chaos_plan(seed: int) -> FaultPlan:
    """Mixed faults, bounded for recoverability with (t, n) = (2, 3):
    corruption and the windowed outage both land on csp1, so at any
    instant at most one provider (= n - t) is lying or dark; transient
    blips and latency spikes hit everybody."""
    return FaultPlan.chaos(
        seed=seed,
        transient_rate=0.08,
        corrupt_csp_ids=("csp1",),
        corrupt_rate=0.5,
        outage_csp_id="csp1",
        outage_window_ops=(40, 90),
        latency_rate=0.05,
        latency_s=0.1,
    )


def _run_scenario(seed: int):
    """One full chaos run; returns (per-provider fault logs, providers)."""
    clock = SimClock()
    plan = _chaos_plan(seed)
    providers = [
        FaultyProvider(InMemoryCSP(f"csp{i}"), plan, clock=clock)
        for i in range(4)
    ]
    config = CyrusConfig(key="chaos-key", t=2, n=3, **SMALL_CHUNKS)
    engine = DirectEngine({p.csp_id: p for p in providers}, clock=clock)
    client = CyrusClient.create(
        providers, config, client_id="alice", engine=engine
    )
    stored: dict[str, bytes] = {}
    for cycle in range(CYCLES):
        # periodic health probe (the paper's Section 5.5 re-check) so a
        # CSP whose outage window ended rejoins the rotation
        client.probe_failed_csps()
        name = f"file-{cycle}.bin"
        data = deterministic_bytes(600 + 97 * cycle, seed=1000 + cycle)
        client.put(name, data)
        stored[name] = data
        got = client.get(name)
        assert got.data == data, f"cycle {cycle}: fresh read lost data"
        assert not got.degraded
        # and one older file per cycle, to cross fault windows
        old = f"file-{cycle // 2}.bin"
        assert client.get(old).data == stored[old], (
            f"cycle {cycle}: re-read of {old} lost data"
        )
    return [tuple(p.fault_log) for p in providers], providers


class TestChaos:
    def test_no_data_loss_across_cycles(self):
        logs, providers = _run_scenario(seed=2026)
        injected = {
            kind: sum(p.injected_faults.get(kind, 0) for p in providers)
            for kind in FaultKind
        }
        # the plan actually bit: every scripted fault family fired
        assert injected[FaultKind.TRANSIENT] > 0
        assert injected[FaultKind.CORRUPT] > 0
        assert injected[FaultKind.OUTAGE] > 0
        assert injected[FaultKind.LATENCY] > 0

    def test_identical_seeds_produce_identical_schedules(self):
        logs_a, _ = _run_scenario(seed=7)
        logs_b, _ = _run_scenario(seed=7)
        assert logs_a == logs_b  # full FaultEvent equality, times included
        logs_c, _ = _run_scenario(seed=8)
        assert logs_a != logs_c

    def test_breaker_stops_hammering_a_dead_csp(self):
        clock = SimClock()
        dead = FaultyProvider(
            InMemoryCSP("dead"),
            FaultPlan([FaultSpec(kind=FaultKind.OUTAGE)], seed=0),
            clock=clock,
        )
        health = HealthRegistry(clock=clock, failure_threshold=3,
                                reset_timeout=30.0)
        engine = DirectEngine({"dead": dead}, clock=clock, health=health)

        def get_op(i: int) -> TransferOp:
            return TransferOp(kind=OpKind.GET, csp_id="dead",
                              name=f"obj-{i}", size=10)

        for i in range(3):
            [res] = engine.execute([get_op(i)])
            assert not res.ok and res.retryable
        assert health.health_of("dead").state is BreakerState.OPEN
        dispatched = sum(dead.op_counts.values())
        assert dispatched == 3

        # while open: ops fail fast, the provider sees nothing
        for i in range(5):
            [res] = engine.execute([get_op(100 + i)])
            assert not res.ok
            assert res.error_type == "CircuitOpenError"
            assert res.retryable is False
        assert sum(dead.op_counts.values()) == dispatched

        # after the reset timeout: exactly one half-open probe per
        # batch is dispatched; its failure re-opens the circuit
        clock.advance(30.0)
        results = engine.execute([get_op(200 + i) for i in range(4)])
        assert sum(dead.op_counts.values()) == dispatched + 1
        assert [r.error_type for r in results].count("CircuitOpenError") == 3
        assert health.health_of("dead").state is BreakerState.OPEN

    def test_degraded_read_serves_cache_during_total_outage(self):
        # every provider goes dark after op 30; a file read (and thus
        # cached) before the outage stays readable — marked degraded,
        # because the failed sync could not confirm the version fresh
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.OUTAGE, window_ops=(30, 10**9))],
            seed=3,
        )
        providers = [
            FaultyProvider(InMemoryCSP(f"csp{i}"), plan) for i in range(3)
        ]
        config = CyrusConfig(key="deg-key", t=2, n=3, **SMALL_CHUNKS)
        client = CyrusClient.create(
            providers, config, client_id="alice", cache=ChunkCache()
        )
        data = deterministic_bytes(2000, seed=9)
        client.put("warm.bin", data)
        fresh = client.get("warm.bin")  # warms the chunk cache
        assert fresh.data == data and not fresh.degraded
        for prov in providers:  # burn ops into the outage window
            while sum(prov.op_counts.values()) < 30:
                try:
                    prov.list()
                except CSPError:
                    pass
        degraded = client.get("warm.bin")
        assert degraded.data == data
        assert degraded.degraded
        assert degraded.bytes_downloaded == 0
        assert any(e.kind == "degraded_read" for e in client.health_events)

    def test_breaker_events_surface_to_the_client(self):
        logs, providers = _run_scenario(seed=2026)
        # rebuild the same scenario to inspect the client's event stream
        clock = SimClock()
        plan = _chaos_plan(2026)
        fleet = [
            FaultyProvider(InMemoryCSP(f"csp{i}"), plan, clock=clock)
            for i in range(4)
        ]
        config = CyrusConfig(key="chaos-key", t=2, n=3, **SMALL_CHUNKS)
        engine = DirectEngine({p.csp_id: p for p in fleet}, clock=clock)
        client = CyrusClient.create(
            fleet, config, client_id="alice", engine=engine
        )
        for cycle in range(CYCLES):
            client.probe_failed_csps()
            name = f"file-{cycle}.bin"
            data = deterministic_bytes(600 + 97 * cycle, seed=1000 + cycle)
            client.put(name, data)
            client.get(name)
        kinds = {e.kind for e in client.health_events}
        assert "failure" in kinds  # structured failure events recorded
        failures = [e for e in client.health_events if e.kind == "failure"]
        assert all(e.csp_id and e.detail for e in failures)
