"""Section 5.1 corruption repair, end to end through fault injection.

The keyed non-systematic R-S code tolerates up to ``n - t`` corrupted
shares: decoding searches for a t-subset whose reconstruction verifies
against the chunk's content id.  These tests drive that path with
:class:`FaultyProvider` bit-flip corruption (the share *in transit* is
corrupted; the stored object stays intact), and check that retry
exhaustion surfaces a :class:`TransferError` carrying the per-CSP
attempt history.
"""

from __future__ import annotations

import pytest

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.uploader import get_sharer
from repro.csp.memory import InMemoryCSP
from repro.erasure import Share
from repro.errors import (
    CodingError,
    InsufficientSharesError,
    TransferError,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.selection import RoundRobinSelector
from repro.util.hashing import sha1_hex

from tests.conftest import SMALL_CHUNKS, deterministic_bytes


def _flip_bit(blob: bytes, pos: int = 0) -> bytes:
    out = bytearray(blob)
    out[pos % len(out)] ^= 0x01
    return bytes(out)


class TestJoinVerified:
    """The decoding primitive the repair path relies on."""

    def _shares(self, key: str, t: int, n: int, payload: bytes):
        sharer = get_sharer(key, t, n)
        return sharer, sharer.split(payload)

    def test_recovers_with_up_to_n_minus_t_corrupt_shares(self):
        payload = deterministic_bytes(700, seed=1)
        chunk_id = sha1_hex(payload)
        sharer, shares = self._shares("k", 2, 4, payload)
        corrupted = [
            Share(index=s.index, data=_flip_bit(s.data, s.index), t=s.t,
                  n=s.n, chunk_size=s.chunk_size)
            if s.index < 2 else s  # corrupt n - t = 2 of the 4 shares
            for s in shares
        ]
        recovered = sharer.join_verified(
            corrupted, verify=lambda p: sha1_hex(p) == chunk_id
        )
        assert recovered == payload

    def test_fails_beyond_n_minus_t(self):
        payload = deterministic_bytes(300, seed=2)
        chunk_id = sha1_hex(payload)
        sharer, shares = self._shares("k", 2, 4, payload)
        corrupted = [
            Share(index=s.index, data=_flip_bit(s.data, s.index), t=s.t,
                  n=s.n, chunk_size=s.chunk_size)
            if s.index < 3 else s  # 3 corrupt: no clean t-subset remains
            for s in shares
        ]
        with pytest.raises(CodingError):
            sharer.join_verified(
                corrupted, verify=lambda p: sha1_hex(p) == chunk_id
            )


class TestEndToEndRepair:
    def test_bitflip_corruption_on_one_csp_recovers_byte_identical(self):
        # three providers, (t, n) = (2, 3): every chunk's shares land on
        # all three, downloads pick two — round-robin guarantees the
        # corrupting provider is selected for some chunks of a
        # multi-chunk file, forcing the repair path to run
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CORRUPT, csp_ids=("csp0",),
                       flip_bits=5)],
            seed=11,
        )
        providers = [
            FaultyProvider(InMemoryCSP(f"csp{i}"), plan) for i in range(3)
        ]
        config = CyrusConfig(key="repair-key", t=2, n=3, **SMALL_CHUNKS)
        client = CyrusClient.create(
            providers, config, selector=RoundRobinSelector()
        )
        data = deterministic_bytes(8000, seed=3)
        client.put("big.bin", data)
        report = client.get("big.bin")
        assert report.data == data
        assert not report.degraded
        corrupt_events = providers[0].injected_faults.get(FaultKind.CORRUPT, 0)
        assert corrupt_events >= 1  # the corrupt provider was really read

    def test_fresh_device_recovers_despite_corrupting_provider(self):
        # chunk shares have pure 40-hex names while metadata shares use
        # the "md-" prefix, so a per-prefix rule corrupts every chunk
        # download from csp0 but leaves the metadata sync clean: a
        # second device can recover the namespace, then repair its way
        # through the corrupted share fetches
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CORRUPT, csp_ids=("csp0",),
                       name_prefix=prefix)
             for prefix in "0123456789abcdef"],
            seed=4,
        )
        providers = [
            FaultyProvider(InMemoryCSP(f"csp{i}"), plan) for i in range(3)
        ]
        config = CyrusConfig(key="meta-key", t=2, n=3, **SMALL_CHUNKS)
        client = CyrusClient.create(providers, config, client_id="alice")
        data = deterministic_bytes(4000, seed=5)
        client.put("doc.txt", data)
        fresh = CyrusClient.create(
            providers, config, client_id="bob",
            selector=RoundRobinSelector(),
        )
        fresh.recover()
        assert fresh.get("doc.txt").data == data


class TestRetryExhaustion:
    def test_exhaustion_raises_transfer_error_with_attempt_history(
        self, tmp_path
    ):
        inners = [InMemoryCSP(f"csp{i}") for i in range(4)]
        config = CyrusConfig(key="hist-key", t=2, n=3, **SMALL_CHUNKS)
        writer = CyrusClient.create(inners, config, client_id="alice")
        data = deterministic_bytes(900, seed=6)
        writer.put("gone.bin", data)

        # a second device over the same stores, but every download is an
        # outage; it learns the namespace from a local snapshot so the
        # share gather (not the metadata sync) is what exhausts retries
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.OUTAGE, ops=("download",))], seed=7
        )
        faulty = [FaultyProvider(c, plan) for c in inners]
        reader = CyrusClient.create(faulty, config, client_id="bob")
        snapshot = tmp_path / "tree.snap"
        writer.save_local_state(snapshot)
        reader.load_local_state(snapshot)

        with pytest.raises(TransferError) as ei:
            reader.get("gone.bin", sync_first=False)
        exc = ei.value
        # also an InsufficientSharesError, so legacy callers still catch it
        assert isinstance(exc, InsufficientSharesError)
        assert exc.attempts, "exhaustion must carry the attempt history"
        assert all(not a.ok for a in exc.attempts)
        by_csp = exc.attempts_by_csp()
        assert set(by_csp) <= {f"csp{i}" for i in range(4)}
        assert len(by_csp) >= 2  # it failed over before giving up
        assert all(
            a.error_type in ("CSPUnavailableError", "CircuitOpenError")
            for tries in by_csp.values() for a in tries
        )
        # transient failures were retried on the same provider
        assert any(len(tries) >= 2 for tries in by_csp.values())
