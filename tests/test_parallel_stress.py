"""Seeded multi-thread chaos: parallel scatter/gather under fault injection.

The serial chaos suite (test_faults_chaos.py) proves the failure
handling is *correct*; this one proves it stays correct when four pool
workers race through the same breakers, journal, metrics registry and
fault-injecting providers at once.  The ground truth is a counting
wrapper sitting *under* the :class:`FaultyProvider`: every operation
that genuinely reached storage is tallied there with its byte size, and
at the end the observability ledger (``cyrus_ops_total`` /
``cyrus_transfer_bytes_total``) must agree with it exactly — op for op,
byte for byte, per CSP and per direction.  Any lost update in a racy
counter, any double-dispatched op, any share uploaded but not recorded
shows up as a mismatch or as a scrub orphan.

Assertions are deliberately schedule-independent: worker interleaving
varies run to run, but the *multiset* of injected faults is a pure
function of each provider's claimed op number, so totals (not
orderings) are what get compared.

Marked ``slow``; the CI chaos matrix runs it across several seeds.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.parallel import (
    POOL_DISPATCH,
    POOL_INFLIGHT_PEAK,
    ParallelEngine,
)
from repro.csp.base import CloudProvider
from repro.csp.memory import InMemoryCSP
from repro.faults import FaultKind, FaultPlan, FaultyProvider
from repro.obs import OPS_TOTAL, TRANSFER_BYTES
from repro.util.clock import SimClock

from tests.conftest import SMALL_CHUNKS, deterministic_bytes

CYCLES = 24
PARALLELISM = 4

#: Engine op kinds grouped by the provider primitive they reach.
UPLOAD_KINDS = ("PUT", "PUT_META")
DOWNLOAD_KINDS = ("GET", "GET_META")


class CountingCSP(CloudProvider):
    """Ground-truth ledger below the fault injector.

    Counts only calls that *succeed* at the wrapped provider — a fault
    raised above never reaches here, and a genuine provider error (e.g.
    not-found) raises before the tally — so the counts correspond
    one-for-one to engine ops recorded with ``outcome="ok"``.
    """

    def __init__(self, inner: CloudProvider):
        super().__init__(inner.csp_id)
        self.inner = inner
        self._lock = threading.Lock()
        self.uploads = 0
        self.downloads = 0
        self.deletes = 0
        self.bytes_up = 0
        self.bytes_down = 0

    def authenticate(self, credentials):
        return self.inner.authenticate(credentials)

    def list(self, *, prefix: str = ""):
        return self.inner.list(prefix=prefix)

    def upload(self, name: str, data: bytes) -> None:
        self.inner.upload(name, data)
        with self._lock:
            self.uploads += 1
            self.bytes_up += len(data)

    def download(self, name: str) -> bytes:
        data = self.inner.download(name)
        with self._lock:
            self.downloads += 1
            self.bytes_down += len(data)
        return data

    def delete(self, name: str) -> None:
        self.inner.delete(name)
        with self._lock:
            self.deletes += 1


def _chaos_plan(seed: int) -> FaultPlan:
    """Same bounded-recoverability shape as the serial chaos suite:
    corruption and the op-windowed outage both land on csp1 (at most
    n - t = 1 provider lying or dark at once); transient blips and
    latency spikes hit everybody."""
    return FaultPlan.chaos(
        seed=seed,
        transient_rate=0.08,
        corrupt_csp_ids=("csp1",),
        corrupt_rate=0.5,
        outage_csp_id="csp1",
        outage_window_ops=(40, 90),
        latency_rate=0.05,
        latency_s=0.1,
    )


def _run_parallel_scenario(seed: int):
    """CYCLES put/get rounds at parallelism=4 under the chaos plan."""
    clock = SimClock()
    plan = _chaos_plan(seed)
    counters = [CountingCSP(InMemoryCSP(f"csp{i}")) for i in range(4)]
    providers = [FaultyProvider(c, plan, clock=clock) for c in counters]
    config = CyrusConfig(
        key="stress-key", t=2, n=3,
        parallelism=PARALLELISM, max_inflight_per_csp=2,
        **SMALL_CHUNKS,
    )
    engine = ParallelEngine(
        {p.csp_id: p for p in providers}, clock=clock,
        parallelism=PARALLELISM, max_inflight_per_csp=2,
    )
    client = CyrusClient.create(
        providers, config, client_id="alice", engine=engine
    )
    stored: dict[str, bytes] = {}
    for cycle in range(CYCLES):
        client.probe_failed_csps()
        name = f"file-{cycle}.bin"
        data = deterministic_bytes(600 + 97 * cycle, seed=1000 + cycle)
        client.put(name, data)
        stored[name] = data
        got = client.get(name)
        assert got.data == data, f"cycle {cycle}: fresh read lost data"
        old = f"file-{cycle // 2}.bin"
        assert client.get(old).data == stored[old], (
            f"cycle {cycle}: re-read of {old} lost data"
        )
    return client, providers, counters


@pytest.mark.slow
class TestParallelChaosStress:
    def test_ledger_matches_ground_truth_and_scrub_is_clean(self, fault_seed):
        client, providers, counters = _run_parallel_scenario(fault_seed)

        # the chaos plan actually bit, and the pool actually ran ops
        injected = {
            kind: sum(p.injected_faults.get(kind, 0) for p in providers)
            for kind in FaultKind
        }
        assert injected[FaultKind.TRANSIENT] > 0
        assert injected[FaultKind.OUTAGE] > 0
        assert injected[FaultKind.CORRUPT] > 0

        # a final full-table scrub (itself running through the pool)
        # finds nothing unaccounted for: every share the parallel
        # uploader landed is in the chunk table — no orphans
        report = client.scrub()
        assert report.orphans == ()

        # metric ledger vs ground truth, per CSP, per primitive
        snap = client.obs.snapshot()
        assert snap.counter_total(POOL_DISPATCH) > 0  # parallel path used
        for counting in counters:
            csp = counting.csp_id
            ok_uploads = sum(
                snap.counter_total(OPS_TOTAL, csp=csp, kind=k, outcome="ok")
                for k in UPLOAD_KINDS
            )
            ok_downloads = sum(
                snap.counter_total(OPS_TOTAL, csp=csp, kind=k, outcome="ok")
                for k in DOWNLOAD_KINDS
            )
            ok_deletes = snap.counter_total(
                OPS_TOTAL, csp=csp, kind="DELETE", outcome="ok"
            )
            assert ok_uploads == counting.uploads, (
                f"{csp}: ledger says {ok_uploads} uploads succeeded, "
                f"storage saw {counting.uploads}"
            )
            assert ok_downloads == counting.downloads, (
                f"{csp}: ledger says {ok_downloads} downloads succeeded, "
                f"storage saw {counting.downloads}"
            )
            assert ok_deletes == counting.deletes
            # and byte-for-byte (DELETEs carry no payload)
            assert snap.counter_total(
                TRANSFER_BYTES, csp=csp, direction="up"
            ) == counting.bytes_up
            assert snap.counter_total(
                TRANSFER_BYTES, csp=csp, direction="down"
            ) == counting.bytes_down

    def test_pool_bounds_hold_under_chaos(self, fault_seed):
        """The high-water occupancy gauges prove the per-CSP and total
        in-flight caps were never breached, even while retries and
        failovers were feeding extra ops into running batches."""
        client, _providers, counters = _run_parallel_scenario(fault_seed)
        snap = client.obs.snapshot()
        total_peak = snap.gauge_value(POOL_INFLIGHT_PEAK, csp="*")
        assert 0 < total_peak <= PARALLELISM
        for counting in counters:
            peak = snap.gauge_value(POOL_INFLIGHT_PEAK, csp=counting.csp_id)
            assert peak <= 2  # max_inflight_per_csp
