"""Full-stack integration: Table 2 catalog + clusters + epsilon planning.

Builds the system the paper actually describes end to end: twenty
providers from Table 2, platform clusters inferred from synthetic
routes, an epsilon-driven share count, and the complete data path over
them — plus cross-client races on identical content.
"""

import pytest

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp import InMemoryCSP
from repro.csp.catalog import TABLE2
from repro.topology import cluster_csps, synthesize_routes
from tests.conftest import SMALL_CHUNKS, deterministic_bytes

AMAZON = {s.name for s in TABLE2 if s.amazon_platform}


@pytest.fixture
def full_catalog_cloud():
    providers = [InMemoryCSP(spec.name) for spec in TABLE2]
    platforms = {name: "amazon" for name in AMAZON}
    routes = synthesize_routes([s.name for s in TABLE2], platforms, seed=2)
    clusters = cluster_csps(routes)
    config = CyrusConfig(
        key="catalog-key", t=2,
        n=None, epsilon=1e-8, csp_failure_prob=2e-3,
        **SMALL_CHUNKS,
    )
    client = CyrusClient.create(
        providers, config, client_id="full-stack", clusters=clusters,
    )
    return client, providers, config


class TestTwentyProviderCloud:
    def test_epsilon_plans_n(self, full_catalog_cloud):
        client, _, config = full_catalog_cloud
        n = config.plan_n(client.cloud.cluster_count())
        assert n >= config.t
        from repro.reliability import chunk_failure_probability

        assert chunk_failure_probability(2, n, 2e-3) <= 1e-8

    def test_roundtrip_with_cluster_constraint(self, full_catalog_cloud):
        client, _, _ = full_catalog_cloud
        data = deterministic_bytes(15_000, 1)
        report = client.put("audit.bin", data)
        assert client.get("audit.bin").data == data
        # no chunk stores two shares inside the Amazon cluster
        for record in report.node.chunks:
            holders = {
                s.csp_id for s in report.node.shares_of(record.chunk_id)
            }
            assert len(holders & AMAZON) <= 1, holders

    def test_amazon_outage_harmless(self, full_catalog_cloud):
        # the whole Amazon platform fails at once (the correlated
        # failure Section 4.1 defends against): data must survive
        client, _, _ = full_catalog_cloud
        data = deterministic_bytes(12_000, 2)
        client.put("resilient.bin", data)
        for name in AMAZON:
            client.cloud.mark_failed(name)
        assert client.get("resilient.bin").data == data

    def test_storage_spreads_widely(self, full_catalog_cloud):
        client, providers, _ = full_catalog_cloud
        for i in range(15):
            client.put(f"f{i}.bin", deterministic_bytes(4_000, 10 + i))
        used = sum(1 for p in providers if p.object_count > 0)
        assert used >= 15  # consistent hashing reaches most of 20 CSPs


class TestConcurrentIdenticalContent:
    def test_same_chunk_race_is_harmless(self, csps, config):
        # two unsynced clients upload the SAME content concurrently:
        # identical chunk ids, identical keyed shares, identical share
        # names -> writes collide byte-for-byte and nothing corrupts
        a = CyrusClient.create(csps, config, client_id="a")
        b = CyrusClient.create(csps, config, client_id="b")
        payload = deterministic_bytes(9_000, 50)
        a.uploader.upload("mine.bin", payload, client_id="a")
        b.uploader.upload("theirs.bin", payload, client_id="b")
        a.sync()
        b.sync()
        assert a.get("theirs.bin", sync_first=False).data == payload
        assert b.get("mine.bin", sync_first=False).data == payload
        # chunk-level dedup across the race: both clients derived the
        # same share names, so each chunk is stored exactly n times
        node = a.tree.latest("mine.bin")
        unique_chunks = {c.chunk_id for c in node.chunks}
        share_objects = [
            info
            for csp in csps
            for info in csp.list()
            if not info.name.startswith("md-")
        ]
        assert len(share_objects) == len(unique_chunks) * config.n

    def test_same_name_same_content_race_dedups_to_one_node(
        self, csps, config
    ):
        a = CyrusClient.create(csps, config, client_id="same-device")
        b = CyrusClient.create(csps, config, client_id="same-device")
        payload = deterministic_bytes(3_000, 60)
        a.uploader.upload("doc.bin", payload, client_id="same-device")
        b.uploader.upload("doc.bin", payload, client_id="same-device")
        a.sync()
        # identical (file, parent, name, client) -> identical node id:
        # the race collapses to one version, not a conflict
        assert len(a.tree.heads("doc.bin")) == 1
        assert not a.conflicts()


class TestTombstonePruneGC:
    def test_delete_prune_gc_reclaims_everything(self, csps, config):
        client = CyrusClient.create(csps, config, client_id="gc")
        data = deterministic_bytes(10_000, 70)
        client.put("ephemeral.bin", data)
        before = sum(c.stored_bytes for c in csps)
        client.delete("ephemeral.bin")
        client.prune_history("ephemeral.bin", keep_versions=1)
        # only the tombstone remains; its chunks reference the old data
        # (tombstones carry the ChunkMap) so GC keeps them...
        report = client.collect_garbage()
        tomb = client.tree.latest("ephemeral.bin")
        if tomb.chunks:
            assert report.chunks_deleted == 0
        # ...until the tombstone itself is pruned away entirely
        for node in list(client.tree):
            client.tree.remove(node.node_id)
        client.chunk_table.rebuild([])
        # rebuild from remote would resurrect; this models a true purge
        # at which point nothing references the chunks
