"""Unit tests for sync, multi-client flows, and the Table 3 API surface."""

import pytest

from repro.core.sync import LocalChangeDetector
from repro.errors import ConflictError, MetadataError
from tests.conftest import deterministic_bytes


class TestSync:
    def test_new_nodes_pulled(self, client, second_client):
        client.put("f.bin", deterministic_bytes(3000, 1))
        report = second_client.sync()
        assert report.new_nodes == 1
        assert second_client.get("f.bin", sync_first=False).data == (
            deterministic_bytes(3000, 1)
        )

    def test_idempotent(self, client, second_client):
        client.put("f.bin", deterministic_bytes(1000, 2))
        second_client.sync()
        again = second_client.sync()
        assert again.new_nodes == 0

    def test_sync_rebuilds_chunk_table(self, client, second_client):
        node = client.put("f.bin", deterministic_bytes(2000, 3)).node
        second_client.sync()
        for record in node.chunks:
            assert second_client.chunk_table.is_stored(record.chunk_id)

    def test_sync_surfaces_conflicts(self, client, second_client):
        client.put("f.txt", b"v1 " * 100)
        second_client.sync()
        client.uploader.upload("f.txt", b"A " * 150, client_id="alice")
        second_client.uploader.upload("f.txt", b"B " * 150, client_id="bob")
        report = client.sync()
        assert any(c.kind == "divergence" for c in report.conflicts)

    def test_sync_with_one_metadata_slot_down(self, client, second_client,
                                              csps, monkeypatch):
        from repro.errors import CSPUnavailableError

        client.put("f.bin", deterministic_bytes(2000, 4))

        original = type(csps[0]).list

        def flaky_list(self, *, prefix=""):
            if self.csp_id == "csp0":
                raise CSPUnavailableError("down", csp_id="csp0")
            return original(self, prefix=prefix)

        monkeypatch.setattr(type(csps[0]), "list", flaky_list)
        report = second_client.sync()
        assert report.new_nodes == 1


class TestRecover:
    def test_fresh_client_rebuilds_everything(self, client, csps, config):
        from repro.core.client import CyrusClient

        files = {
            f"f{i}.bin": deterministic_bytes(1000 + i * 500, 10 + i)
            for i in range(3)
        }
        for name, data in files.items():
            client.put(name, data)
        client.delete("f0.bin")

        fresh = CyrusClient.create(csps, config, client_id="recovered")
        report = fresh.recover()
        assert report.new_nodes == 4  # 3 puts + 1 tombstone
        assert sorted(e.name for e in fresh.list_files(sync_first=False)) == [
            "f1.bin", "f2.bin",
        ]

    def test_recover_content_matches(self, client, csps, config):
        from repro.core.client import CyrusClient

        data = deterministic_bytes(7000, 20)
        client.put("x.bin", data)
        fresh = CyrusClient.create(csps, config, client_id="r")
        fresh.recover()
        assert fresh.get("x.bin", sync_first=False).data == data

    def test_recover_requires_key(self, client, csps, config):
        from repro.core.client import CyrusClient
        from repro.errors import CyrusError

        client.put("x.bin", deterministic_bytes(3000, 21))
        wrong = CyrusClient.create(
            csps, config.with_params(key="wrong-key"), client_id="attacker"
        )
        # metadata decode with the wrong key yields garbage -> error
        with pytest.raises(CyrusError):
            wrong.recover()
            wrong.get("x.bin", sync_first=False)


class TestListAndHistory:
    def test_list_files(self, client):
        client.put("a/x.bin", deterministic_bytes(500, 30))
        client.put("a/y.bin", deterministic_bytes(500, 31))
        client.put("b/z.bin", deterministic_bytes(500, 32))
        all_files = [e.name for e in client.list_files()]
        assert all_files == ["a/x.bin", "a/y.bin", "b/z.bin"]
        under_a = [e.name for e in client.list_files("a/")]
        assert under_a == ["a/x.bin", "a/y.bin"]

    def test_entry_metadata(self, client):
        client.put("f.bin", deterministic_bytes(1234, 33))
        entry = client.list_files()[0]
        assert entry.size == 1234
        assert entry.modified >= 0

    def test_history_newest_first(self, client):
        for i in range(3):
            client.put("f.bin", deterministic_bytes(1000 + i, 40 + i))
        history = client.history("f.bin")
        assert len(history) == 3
        assert history[0].size == 1002

    def test_require_no_conflicts(self, client, second_client):
        client.put("f.txt", b"base" * 100)
        second_client.sync()
        client.uploader.upload("f.txt", b"AAAA" * 120, client_id="alice")
        second_client.uploader.upload("f.txt", b"BBBB" * 120, client_id="bob")
        client.sync()
        with pytest.raises(ConflictError):
            client.require_no_conflicts("f.txt")


class TestConflictResolution:
    def make_conflict(self, client, second_client):
        client.put("doc.txt", b"base content " * 40)
        second_client.sync()
        client.uploader.upload("doc.txt", b"alice version " * 50,
                               client_id="alice")
        second_client.uploader.upload("doc.txt", b"bob version " * 50,
                                      client_id="bob")
        client.sync()

    def test_resolution_creates_copy(self, client, second_client):
        self.make_conflict(client, second_client)
        created = client.resolve_conflicts()
        assert len(created) == 1
        assert "conflicted copy" in created[0]

    def test_winner_survives_under_original_name(self, client, second_client):
        self.make_conflict(client, second_client)
        client.resolve_conflicts()
        assert client.get("doc.txt").data == b"bob version " * 50

    def test_loser_data_preserved(self, client, second_client):
        self.make_conflict(client, second_client)
        copy_name = client.resolve_conflicts()[0]
        assert client.get(copy_name).data == b"alice version " * 50

    def test_resolution_visible_to_other_clients(self, client, second_client):
        self.make_conflict(client, second_client)
        copy_name = client.resolve_conflicts()[0]
        second_client.sync()
        assert second_client.get(copy_name, sync_first=False).data == (
            b"alice version " * 50
        )
        assert not second_client.conflicts()

    def test_resolution_idempotent(self, client, second_client):
        self.make_conflict(client, second_client)
        client.resolve_conflicts()
        assert client.resolve_conflicts() == []


class TestLocalChangeDetector:
    def test_first_scan_reports_all(self):
        det = LocalChangeDetector()
        changed = det.scan({"a": (1.0, b"x"), "b": (1.0, b"y")})
        assert changed == ["a", "b"]

    def test_unchanged_mtime_skipped(self):
        det = LocalChangeDetector()
        det.scan({"a": (1.0, b"x")})
        assert det.scan({"a": (1.0, b"DIFFERENT")}) == []  # mtime gate

    def test_touched_but_identical(self):
        det = LocalChangeDetector()
        det.scan({"a": (1.0, b"x")})
        assert det.scan({"a": (2.0, b"x")}) == []

    def test_real_change(self):
        det = LocalChangeDetector()
        det.scan({"a": (1.0, b"x")})
        assert det.scan({"a": (2.0, b"y")}) == ["a"]
