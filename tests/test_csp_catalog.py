"""Unit tests for the Table 2 CSP catalog."""

import pytest

from repro.csp.catalog import (
    PROTOTYPE_CSPS,
    TABLE2,
    TABLE2_THROUGHPUT_MBPS,
    amazon_hosted,
    spec_by_name,
)


class TestCatalog:
    def test_twenty_rows(self):
        assert len(TABLE2) == 20

    def test_names_unique(self):
        names = [s.name for s in TABLE2]
        assert len(set(names)) == 20

    def test_five_amazon_hosted(self):
        starred = amazon_hosted()
        assert {s.name for s in starred} == {
            "Amazon S3", "DigitalBucket", "Bitcasa", "CloudApp",
            "Safe Creative",
        }

    def test_throughput_column_matches_paper(self):
        for spec in TABLE2:
            assert spec.throughput_mbps == pytest.approx(
                TABLE2_THROUGHPUT_MBPS[spec.name], abs=0.02
            )

    def test_throughput_orders_inverse_to_rtt(self):
        ordered = sorted(TABLE2, key=lambda s: s.rtt_ms)
        tps = [s.throughput_mbps for s in ordered]
        assert tps == sorted(tps, reverse=True)

    def test_lookup(self):
        assert spec_by_name("Dropbox").rtt_ms == 137

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            spec_by_name("MySpace Drive")

    def test_prototype_csps_in_catalog(self):
        for name in PROTOTYPE_CSPS:
            spec_by_name(name)

    def test_link_construction(self):
        link = spec_by_name("Google Drive").link()
        assert link.rtt_s == pytest.approx(0.071)
        assert link.capacity_at(0.0, "down") == pytest.approx(
            spec_by_name("Google Drive").throughput_bytes
        )

    def test_auth_schemes_recorded(self):
        assert spec_by_name("Amazon S3").auth == "AWS Signature"
        assert spec_by_name("Box").auth == "OAuth 2.0"
        assert spec_by_name("CenturyLink").auth == "SAML 2.0"
