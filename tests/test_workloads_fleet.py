"""Property tests for the fleet workload generator (Zipf/Poisson).

Hypothesis pins the statistical and determinism contracts:

* Zipf weights are a normalised pmf, monotone non-increasing in rank
  (strictly decreasing for ``s > 0``);
* the same (spec, seed) always yields bit-identical plans, and the
  generator neither reads nor perturbs the global :mod:`random` state;
* arrival times are strictly increasing per tenant and the merged
  schedule is globally sorted;
* quota-constrained plans never exceed the per-tenant quota at any
  point in their timeline.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.fleet import (
    FleetWorkloadSpec,
    derive_rng,
    generate_fleet_workload,
    tenant_ids,
    zipf_weights,
)

#: Small-but-varied specs keep each Hypothesis example fast.
specs = st.builds(
    FleetWorkloadSpec,
    tenants=st.integers(1, 6),
    files_per_tenant=st.integers(1, 8),
    ops_per_tenant=st.integers(1, 16),
    zipf_s=st.floats(0.0, 3.0, allow_nan=False),
    arrival_rate=st.floats(0.05, 5.0, allow_nan=False),
    write_fraction=st.floats(0.0, 1.0, allow_nan=False),
)

seeds = st.integers(0, 2 ** 32 - 1)


class TestZipf:
    @given(files=st.integers(1, 64), s=st.floats(0.0, 4.0, allow_nan=False))
    def test_weights_are_a_monotone_pmf(self, files, s):
        weights = zipf_weights(files, s)
        assert len(weights) == files
        assert math.isclose(sum(weights), 1.0, rel_tol=1e-9)
        assert all(w > 0 for w in weights)
        # monotone non-increasing in rank; strictly decreasing once the
        # exponent is large enough for 1/r**s to differ in float64
        for hot, cold in zip(weights, weights[1:]):
            assert hot >= cold
            if s > 1e-9:
                assert hot > cold

    @given(files=st.integers(2, 64))
    def test_zero_exponent_is_uniform(self, files):
        weights = zipf_weights(files, 0.0)
        assert all(math.isclose(w, 1.0 / files) for w in weights)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(4, -0.1)


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(spec=specs, seed=seeds)
    def test_same_seed_same_plans(self, spec, seed):
        a = generate_fleet_workload(spec, seed=seed)
        b = generate_fleet_workload(spec, seed=seed)
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    @settings(max_examples=25, deadline=None)
    @given(spec=specs, seed=seeds)
    def test_global_rng_state_is_neither_read_nor_written(self, spec, seed):
        # generation is immune to random.seed(...) elsewhere ...
        random.seed(12345)
        a = generate_fleet_workload(spec, seed=seed)
        random.seed(99999)
        b = generate_fleet_workload(spec, seed=seed)
        assert a.fingerprint() == b.fingerprint()
        # ... and never touches the global stream itself
        random.seed(4242)
        before = random.getstate()
        generate_fleet_workload(spec, seed=seed)
        assert random.getstate() == before

    @given(seed=seeds)
    def test_derived_streams_are_scope_independent(self, seed):
        a = derive_rng(seed, "tenant", "t000")
        b = derive_rng(seed, "tenant", "t000")
        other = derive_rng(seed, "tenant", "t001")
        draws_a = [a.random() for _ in range(8)]
        assert draws_a == [b.random() for _ in range(8)]
        assert draws_a != [other.random() for _ in range(8)]


class TestSchedules:
    @settings(max_examples=25, deadline=None)
    @given(spec=specs, seed=seeds)
    def test_arrivals_sorted(self, spec, seed):
        workload = generate_fleet_workload(spec, seed=seed)
        for plan in workload.plans:
            times = [op.at for op in plan.ops]
            assert times == sorted(times)
            assert all(t > 0 for t in times)
        merged = [op.at for _tid, op in workload.merged_ops()]
        assert merged == sorted(merged)

    @settings(max_examples=25, deadline=None)
    @given(spec=specs, seed=seeds)
    def test_first_touch_is_a_put_and_sizes_in_range(self, spec, seed):
        workload = generate_fleet_workload(spec, seed=seed)
        for plan in workload.plans:
            created: set[str] = set()
            for op in plan.ops:
                if op.name not in created:
                    assert op.action == "put", "first touch must create"
                if op.action == "put":
                    created.add(op.name)
                    assert (spec.min_file_bytes <= op.size
                            <= spec.max_file_bytes)
                    assert len(op.content()) == op.size

    def test_tenant_ids_are_stable_and_padded(self):
        spec = FleetWorkloadSpec(tenants=3)
        assert tenant_ids(spec) == ["t000", "t001", "t002"]


class TestQuota:
    @settings(max_examples=25, deadline=None)
    @given(
        spec=st.builds(
            FleetWorkloadSpec,
            tenants=st.integers(1, 4),
            files_per_tenant=st.integers(1, 6),
            ops_per_tenant=st.integers(1, 20),
            # tight quotas force the shrink/degrade-to-get paths
            quota_bytes=st.integers(2 * 1024, 48 * 1024),
        ),
        seed=seeds,
    )
    def test_plans_never_exceed_quota(self, spec, seed):
        workload = generate_fleet_workload(spec, seed=seed)
        for plan in workload.plans:
            assert plan.quota_bytes == spec.quota_bytes
            for live in plan.stored_bytes_timeline():
                assert live <= spec.quota_bytes
            # every GET references a file some earlier PUT created
            created: set[str] = set()
            for op in plan.ops:
                if op.action == "put":
                    created.add(op.name)
                else:
                    assert op.name in created
