"""Property-based tests for the flow simulator (hypothesis).

Invariants any correct bandwidth-sharing simulation must satisfy:

* completion time of each flow is bounded below by its best case (its
  size over its own link's capacity, plus RTT) and by the aggregate
  lower bound (total bytes over total capacity);
* results preserve request order and byte counts;
* adding a flow never makes another flow finish *earlier* than its own
  isolated lower bound (no free bandwidth appears from nowhere).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.netsim import FlowSimulator, Link, TransferRequest

link_spec = st.tuples(
    st.floats(min_value=1e5, max_value=1e8),  # rate
    st.floats(min_value=0.0, max_value=0.5),  # rtt
)

flow_spec = st.tuples(
    st.integers(0, 3),                       # link index
    st.integers(1, 50_000_000),              # size
    st.sampled_from(["up", "down"]),
    st.floats(min_value=0.0, max_value=5.0),  # start_at
)


@given(
    links=st.lists(link_spec, min_size=4, max_size=4),
    flows=st.lists(flow_spec, min_size=1, max_size=8),
    client_cap=st.floats(min_value=1e5, max_value=1e9),
)
@settings(max_examples=120, deadline=None)
def test_completion_time_bounds(links, flows, client_cap):
    link_objs = {
        f"l{i}": Link.symmetric(f"l{i}", rate, rtt_s=rtt)
        for i, (rate, rtt) in enumerate(links)
    }
    sim = FlowSimulator(link_objs, client_up=client_cap,
                        client_down=client_cap)
    requests = [
        TransferRequest(f"l{idx}", size, direction, start_at=start)
        for idx, size, direction, start in flows
    ]
    results = sim.run(requests)

    assert len(results) == len(requests)
    for request, result in zip(requests, results):
        assert result.request is request  # order preserved
        assert result.completed
        assert result.bytes_done == request.size
        link = link_objs[request.link_id]
        # lower bound: alone on its link, capped by the client
        best_rate = min(link.capacity_at(0, request.direction), client_cap)
        lower = request.start_at + link.rtt_s + request.size / best_rate
        assert result.end >= lower - 1e-6, (result.end, lower)
        assert result.start == request.start_at

    # aggregate lower bound per direction: total bytes / client capacity
    for direction in ("up", "down"):
        members = [r for r in requests if r.direction == direction]
        if not members:
            continue
        total = sum(r.size for r in members)
        earliest = min(r.start_at for r in members)
        finish = max(
            res.end for res, r in zip(results, requests)
            if r.direction == direction
        )
        assert finish >= earliest + total / client_cap - 1e-6


@given(
    sizes=st.lists(st.integers(1, 10_000_000), min_size=2, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_equal_flows_finish_together(sizes):
    # identical flows on one link must all finish at the same instant
    # when they are the same size (max-min fairness is symmetric)
    size = sizes[0]
    links = {"a": Link.symmetric("a", 1e6)}
    sim = FlowSimulator(links)
    results = sim.run(
        [TransferRequest("a", size, "down") for _ in range(len(sizes))]
    )
    ends = {round(r.end, 9) for r in results}
    assert len(ends) == 1
    assert math.isclose(results[0].end, size * len(sizes) / 1e6,
                        rel_tol=1e-6)


@given(
    size=st.integers(1, 10_000_000),
    extra=st.integers(1, 10_000_000),
)
@settings(max_examples=60, deadline=None)
def test_adding_load_never_speeds_a_flow_up(size, extra):
    links = {"a": Link.symmetric("a", 2e6), "b": Link.symmetric("b", 2e6)}
    alone = FlowSimulator(links, client_down=3e6).run(
        [TransferRequest("a", size, "down")]
    )[0]
    contended = FlowSimulator(links, client_down=3e6).run(
        [TransferRequest("a", size, "down"),
         TransferRequest("b", extra, "down")]
    )[0]
    assert contended.end >= alone.end - 1e-9
