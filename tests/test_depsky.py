"""Unit tests for the DepSky baseline (paper Section 7.3)."""

import os

import pytest

from repro.bench import build_paper_testbed
from repro.depsky import DepSkyClient
from repro.depsky.locks import LockProtocol
from repro.core.transfer import DirectEngine
from repro.csp import InMemoryCSP
from repro.errors import ConflictError, ObjectNotFoundError, TransferError
from repro.util.clock import SimClock


def direct_engine(count=4):
    providers = {f"c{i}": InMemoryCSP(f"c{i}") for i in range(count)}
    return DirectEngine(providers), sorted(providers)


class TestLockProtocol:
    def test_acquire_release(self):
        engine, ids = direct_engine()
        locks = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        locks.acquire("obj", "w1")
        # our lock objects exist at every CSP
        for csp in ids:
            assert engine.provider(csp).list(prefix="ds-lock-obj-")
        locks.release("obj", "w1")
        for csp in ids:
            assert not engine.provider(csp).list(prefix="ds-lock-obj-")

    def test_contention_detected(self):
        engine, ids = direct_engine()
        other = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        other.acquire("obj", "w-other")
        mine = LockProtocol(engine, ids, backoff_range=(0.0, 0.0),
                            max_attempts=2)
        with pytest.raises(ConflictError):
            mine.acquire("obj", "w-mine")

    def test_contention_clears_after_release(self):
        engine, ids = direct_engine()
        other = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        other.acquire("obj", "w-other")
        other.release("obj", "w-other")
        mine = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        mine.acquire("obj", "w-mine")  # must not raise

    def test_locks_are_per_object(self):
        engine, ids = direct_engine()
        a = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        a.acquire("obj-one", "w1")
        b = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        b.acquire("obj-two", "w2")  # different object: no contention


class TestDepSkyData:
    def test_roundtrip_direct(self):
        engine, ids = direct_engine()
        ds = DepSkyClient(engine, ids, key="k", t=2, n=3,
                          backoff_range=(0.0, 0.0))
        data = os.urandom(10_000)
        ds.upload("file", data)
        assert ds.download("file").data == data

    def test_missing_file(self):
        engine, ids = direct_engine()
        ds = DepSkyClient(engine, ids, key="k", backoff_range=(0.0, 0.0))
        with pytest.raises(ObjectNotFoundError):
            ds.download("ghost")

    def test_n_validated(self):
        engine, ids = direct_engine(2)
        with pytest.raises(TransferError):
            DepSkyClient(engine, ids, key="k", t=2, n=3)

    def test_lock_released_after_upload(self):
        engine, ids = direct_engine()
        ds = DepSkyClient(engine, ids, key="k", backoff_range=(0.0, 0.0))
        ds.upload("file", b"x" * 100)
        for csp in ids:
            assert not engine.provider(csp).list(prefix="ds-lock-")


class TestDepSkyBehaviour:
    def test_upload_skews_to_fast_csps(self):
        # Figure 18: DepSky keeps the shares that land first — the fast
        # CSPs' — while slow CSPs get cancelled
        env = build_paper_testbed()
        ds = DepSkyClient(env.engine, env.csp_ids(), key="k", t=2, n=3,
                          backoff_range=(0.0, 0.0))
        for i in range(6):
            ds.upload(f"f{i}", os.urandom(1_000_000))
        fast = sum(v for c, v in ds.shares_stored.items() if c.startswith("fast"))
        slow = sum(v for c, v in ds.shares_stored.items() if c.startswith("slow"))
        assert fast > 3 * max(slow, 1)

    def test_upload_slower_than_plain_scatter(self):
        # the 2-RTT lock + backoff must make DepSky uploads slower than
        # an equivalent lock-free scatter of the same bytes
        env = build_paper_testbed(rtt_s=0.05)
        ds = DepSkyClient(env.engine, env.csp_ids(), key="k", t=2, n=3,
                          backoff_range=(0.5, 0.5))
        report = ds.upload("f", os.urandom(2_000_000))
        assert report.duration > 0.5  # at least the backoff

    def test_download_uses_fastest_csps(self):
        env = build_paper_testbed()
        ids = env.csp_ids()
        ds = DepSkyClient(env.engine, ids, key="k", t=2,
                          n=len(ids), backoff_range=(0.0, 0.0))
        data = os.urandom(500_000)
        ds.upload("f", data)
        report = ds.download("f")
        assert report.data == data

    def test_download_falls_back_on_missing_share(self):
        engine, ids = direct_engine()
        ds = DepSkyClient(engine, ids, key="k", t=2, n=4,
                          backoff_range=(0.0, 0.0))
        data = os.urandom(20_000)
        ds.upload("f", data)
        # delete one stored share; download must fall through
        provider = engine.provider(ids[0])
        for info in list(provider.list(prefix="ds-share-")):
            provider.delete(info.name)
        assert ds.download("f").data == data


def sim_engine(count=4):
    """A DirectEngine on a controllable clock, for lease-expiry tests."""
    clock = SimClock()
    providers = {f"c{i}": InMemoryCSP(f"c{i}") for i in range(count)}
    return DirectEngine(providers, clock=clock), sorted(providers), clock


class TestLockLeases:
    """Locks carry leases: a crashed writer's lock expires and is swept
    by the next acquirer instead of blocking writes forever."""

    def test_crashed_writer_lock_swept_after_ttl(self):
        engine, ids, clock = sim_engine()
        dead = LockProtocol(engine, ids, backoff_range=(0.0, 0.0),
                            lease_ttl=30.0)
        dead.acquire("obj", "w-dead")
        # the holder dies without release; its lease runs out
        clock.advance(31.0)
        live = LockProtocol(engine, ids, backoff_range=(0.0, 0.0),
                            lease_ttl=30.0)
        live.acquire("obj", "w-live")  # must not raise
        assert live.leases_swept == 1
        # the dead writer's lock objects are gone at every CSP
        for csp in ids:
            names = [info.name
                     for info in engine.provider(csp).list(prefix="ds-lock-obj-")]
            assert names == ["ds-lock-obj-w-live"]

    def test_unexpired_lease_still_contends(self):
        engine, ids, clock = sim_engine()
        other = LockProtocol(engine, ids, backoff_range=(0.0, 0.0),
                             lease_ttl=30.0)
        other.acquire("obj", "w-other")
        clock.advance(29.0)  # inside the lease
        mine = LockProtocol(engine, ids, backoff_range=(0.0, 0.0),
                            max_attempts=2, lease_ttl=30.0)
        with pytest.raises(ConflictError):
            mine.acquire("obj", "w-mine")
        assert mine.leases_swept == 0
        # the live holder's locks survived the contender
        for csp in ids:
            names = {info.name
                     for info in engine.provider(csp).list(prefix="ds-lock-obj-")}
            assert "ds-lock-obj-w-other" in names

    def test_legacy_bare_lock_is_never_stolen(self):
        engine, ids, clock = sim_engine()
        # a pre-lease lock object: the payload is just the writer id,
        # so there is no expiry to prove stale — treated as live forever
        for csp in ids:
            engine.provider(csp).upload("ds-lock-obj-w-old", b"w-old")
        clock.advance(10_000.0)
        mine = LockProtocol(engine, ids, backoff_range=(0.0, 0.0),
                            max_attempts=2, lease_ttl=30.0)
        with pytest.raises(ConflictError):
            mine.acquire("obj", "w-mine")
        assert mine.leases_swept == 0

    def test_depsky_upload_recovers_from_crashed_writer(self):
        engine, ids, clock = sim_engine()
        dead = LockProtocol(engine, ids, backoff_range=(0.0, 0.0),
                            lease_ttl=30.0)
        dead.acquire("file", "w-dead")
        clock.advance(40.0)
        ds = DepSkyClient(engine, ids, key="k", t=2, n=3,
                          backoff_range=(0.0, 0.0), lease_ttl=30.0)
        data = os.urandom(10_000)
        ds.upload("file", data)  # sweeps the stale lock, then writes
        assert ds.locks.leases_swept == 1
        assert ds.download("file").data == data
