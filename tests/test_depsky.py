"""Unit tests for the DepSky baseline (paper Section 7.3)."""

import os

import pytest

from repro.bench import build_paper_testbed
from repro.depsky import DepSkyClient
from repro.depsky.locks import LockProtocol
from repro.core.transfer import DirectEngine
from repro.csp import InMemoryCSP
from repro.errors import ConflictError, ObjectNotFoundError, TransferError


def direct_engine(count=4):
    providers = {f"c{i}": InMemoryCSP(f"c{i}") for i in range(count)}
    return DirectEngine(providers), sorted(providers)


class TestLockProtocol:
    def test_acquire_release(self):
        engine, ids = direct_engine()
        locks = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        locks.acquire("obj", "w1")
        # our lock objects exist at every CSP
        for csp in ids:
            assert engine.provider(csp).list(prefix="ds-lock-obj-")
        locks.release("obj", "w1")
        for csp in ids:
            assert not engine.provider(csp).list(prefix="ds-lock-obj-")

    def test_contention_detected(self):
        engine, ids = direct_engine()
        other = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        other.acquire("obj", "w-other")
        mine = LockProtocol(engine, ids, backoff_range=(0.0, 0.0),
                            max_attempts=2)
        with pytest.raises(ConflictError):
            mine.acquire("obj", "w-mine")

    def test_contention_clears_after_release(self):
        engine, ids = direct_engine()
        other = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        other.acquire("obj", "w-other")
        other.release("obj", "w-other")
        mine = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        mine.acquire("obj", "w-mine")  # must not raise

    def test_locks_are_per_object(self):
        engine, ids = direct_engine()
        a = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        a.acquire("obj-one", "w1")
        b = LockProtocol(engine, ids, backoff_range=(0.0, 0.0))
        b.acquire("obj-two", "w2")  # different object: no contention


class TestDepSkyData:
    def test_roundtrip_direct(self):
        engine, ids = direct_engine()
        ds = DepSkyClient(engine, ids, key="k", t=2, n=3,
                          backoff_range=(0.0, 0.0))
        data = os.urandom(10_000)
        ds.upload("file", data)
        assert ds.download("file").data == data

    def test_missing_file(self):
        engine, ids = direct_engine()
        ds = DepSkyClient(engine, ids, key="k", backoff_range=(0.0, 0.0))
        with pytest.raises(ObjectNotFoundError):
            ds.download("ghost")

    def test_n_validated(self):
        engine, ids = direct_engine(2)
        with pytest.raises(TransferError):
            DepSkyClient(engine, ids, key="k", t=2, n=3)

    def test_lock_released_after_upload(self):
        engine, ids = direct_engine()
        ds = DepSkyClient(engine, ids, key="k", backoff_range=(0.0, 0.0))
        ds.upload("file", b"x" * 100)
        for csp in ids:
            assert not engine.provider(csp).list(prefix="ds-lock-")


class TestDepSkyBehaviour:
    def test_upload_skews_to_fast_csps(self):
        # Figure 18: DepSky keeps the shares that land first — the fast
        # CSPs' — while slow CSPs get cancelled
        env = build_paper_testbed()
        ds = DepSkyClient(env.engine, env.csp_ids(), key="k", t=2, n=3,
                          backoff_range=(0.0, 0.0))
        for i in range(6):
            ds.upload(f"f{i}", os.urandom(1_000_000))
        fast = sum(v for c, v in ds.shares_stored.items() if c.startswith("fast"))
        slow = sum(v for c, v in ds.shares_stored.items() if c.startswith("slow"))
        assert fast > 3 * max(slow, 1)

    def test_upload_slower_than_plain_scatter(self):
        # the 2-RTT lock + backoff must make DepSky uploads slower than
        # an equivalent lock-free scatter of the same bytes
        env = build_paper_testbed(rtt_s=0.05)
        ds = DepSkyClient(env.engine, env.csp_ids(), key="k", t=2, n=3,
                          backoff_range=(0.5, 0.5))
        report = ds.upload("f", os.urandom(2_000_000))
        assert report.duration > 0.5  # at least the backoff

    def test_download_uses_fastest_csps(self):
        env = build_paper_testbed()
        ids = env.csp_ids()
        ds = DepSkyClient(env.engine, ids, key="k", t=2,
                          n=len(ids), backoff_range=(0.0, 0.0))
        data = os.urandom(500_000)
        ds.upload("f", data)
        report = ds.download("f")
        assert report.data == data

    def test_download_falls_back_on_missing_share(self):
        engine, ids = direct_engine()
        ds = DepSkyClient(engine, ids, key="k", t=2, n=4,
                          backoff_range=(0.0, 0.0))
        data = os.urandom(20_000)
        ds.upload("f", data)
        # delete one stored share; download must fall through
        provider = engine.provider(ids[0])
        for info in list(provider.list(prefix="ds-share-")):
            provider.delete(info.name)
        assert ds.download("f").data == data
