"""Property-based tests: GF(2^8) field axioms (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gf import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_mat_mul,
    gf_mul,
    gf_pow,
    vandermonde,
)

elem = st.integers(0, 255)
nonzero = st.integers(1, 255)


@given(a=elem, b=elem)
def test_addition_commutes(a, b):
    assert gf_add(a, b) == gf_add(b, a)


@given(a=elem, b=elem, c=elem)
def test_addition_associates(a, b, c):
    assert gf_add(gf_add(a, b), c) == gf_add(a, gf_add(b, c))


@given(a=elem, b=elem)
def test_multiplication_commutes(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(a=elem, b=elem, c=elem)
def test_multiplication_associates(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(a=elem, b=elem, c=elem)
def test_distributivity(a, b, c):
    assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))


@given(a=nonzero, b=nonzero)
def test_division_inverts_multiplication(a, b):
    assert gf_div(gf_mul(a, b), b) == a
    assert gf_mul(gf_div(a, b), b) == a


@given(a=nonzero)
def test_inverse_is_two_sided(a):
    assert gf_mul(a, gf_inv(a)) == 1
    assert gf_mul(gf_inv(a), a) == 1


@given(a=nonzero, j=st.integers(0, 50), k=st.integers(0, 50))
def test_power_laws(a, j, k):
    assert gf_mul(gf_pow(a, j), gf_pow(a, k)) == gf_pow(a, j + k)


@given(
    points=st.lists(nonzero, min_size=3, max_size=8, unique=True),
    width=st.integers(2, 3),
)
@settings(max_examples=60, deadline=None)
def test_vandermonde_square_submatrices_invertible(points, width):
    if len(points) < width:
        return
    matrix = vandermonde(np.array(points, dtype=np.uint8), width)
    square = matrix[:width]
    inv = gf_mat_inv(square)
    eye = np.eye(width, dtype=np.uint8)
    assert (gf_mat_mul(inv, square) == eye).all()


@given(
    seed=st.integers(0, 2**31),
    size=st.integers(2, 5),
)
@settings(max_examples=50, deadline=None)
def test_matrix_inverse_roundtrip_when_invertible(seed, size):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 256, size=(size, size), dtype=np.uint8)
    try:
        inv = gf_mat_inv(matrix)
    except np.linalg.LinAlgError:
        return  # singular draw; nothing to check
    eye = np.eye(size, dtype=np.uint8)
    assert (gf_mat_mul(inv, matrix) == eye).all()
    assert (gf_mat_mul(matrix, inv) == eye).all()
