"""Tests for the FTP-style provider ("available even on FTP servers")."""

import pytest

from repro.csp import Credentials
from repro.csp.ftp import FtpStyleCSP, InProcessFtpServer
from repro.errors import CSPAuthError, ObjectNotFoundError


def make_ftp(csp_id="ftp0", user="alice", password="pw"):
    server = InProcessFtpServer(accounts={user: password})
    return FtpStyleCSP(csp_id, server, Credentials(user, password)), server


class TestProtocol:
    def test_login_handshake(self):
        csp, server = make_ftp()
        csp.authenticate(csp.credentials)
        assert server.command_log[:2] == ["USER alice", "PASS pw"]

    def test_wrong_password(self):
        csp, _ = make_ftp()
        with pytest.raises(CSPAuthError):
            csp.authenticate(Credentials("alice", "wrong"))

    def test_unknown_user(self):
        csp, _ = make_ftp()
        with pytest.raises(CSPAuthError):
            csp.authenticate(Credentials("mallory", "pw"))

    def test_commands_require_login(self):
        server = InProcessFtpServer(accounts={"a": "b"})
        assert server.execute("LIST").code == 530

    def test_unimplemented_command(self):
        server = InProcessFtpServer(accounts={"a": "b"})
        server.execute("USER a")
        server.execute("PASS b")
        assert server.execute("SITE CHMOD").code == 502


class TestFivePrimitives:
    def test_roundtrip(self):
        csp, _ = make_ftp()
        csp.upload("share-1", b"bytes over ftp")
        assert csp.download("share-1") == b"bytes over ftp"

    def test_list_prefix(self):
        csp, _ = make_ftp()
        csp.upload("md-a", b"1")
        csp.upload("md-b", b"22")
        csp.upload("xx", b"3")
        infos = csp.list(prefix="md-")
        assert [i.name for i in infos] == ["md-a", "md-b"]
        assert [i.size for i in infos] == [1, 2]

    def test_delete(self):
        csp, _ = make_ftp()
        csp.upload("obj", b"x")
        csp.delete("obj")
        with pytest.raises(ObjectNotFoundError):
            csp.download("obj")

    def test_missing(self):
        csp, _ = make_ftp()
        with pytest.raises(ObjectNotFoundError):
            csp.download("ghost")

    def test_lazy_login(self):
        csp, server = make_ftp()
        csp.upload("o", b"1")  # no explicit authenticate
        assert "USER alice" in server.command_log


class TestAtomicUpload:
    def test_upload_stages_through_part_then_renames(self):
        csp, server = make_ftp()
        csp.upload("share-1", b"payload")
        stores = [c for c in server.command_log if c.startswith("STOR")]
        assert stores == ["STOR share-1.part"]  # never a direct STOR
        assert "RNFR share-1.part" in server.command_log
        assert "RNTO share-1" in server.command_log
        assert "share-1" in server.files
        assert "share-1.part" not in server.files

    def test_torn_upload_never_shadows_the_real_object(self):
        csp, server = make_ftp()
        csp.upload("obj", b"good bytes")
        # a crashed second uploader: its .part landed, the rename never
        # ran — the committed object must be untouched
        server.files["obj.part"] = (99.0, b"torn bytes")
        assert csp.download("obj") == b"good bytes"

    def test_part_objects_are_invisible_to_list(self):
        csp, server = make_ftp()
        csp.upload("visible", b"x")
        server.files["limbo.part"] = (1.0, b"half")
        assert [i.name for i in csp.list(prefix="")] == ["visible"]

    def test_connect_sweeps_stale_part_objects(self):
        server = InProcessFtpServer(accounts={"alice": "pw"})
        server.files["stale.part"] = (1.0, b"from a dead session")
        server.files["real"] = (2.0, b"committed")
        csp = FtpStyleCSP("ftp0", server, Credentials("alice", "pw"))
        csp.authenticate(csp.credentials)  # login runs the sweep
        assert "stale.part" not in server.files
        assert "real" in server.files

    def test_rnfr_missing_source_is_550(self):
        _csp, server = make_ftp()
        server.execute("USER alice")
        server.execute("PASS pw")
        assert server.execute("RNFR ghost").code == 550

    def test_rnto_without_rnfr_is_bad_sequence(self):
        _csp, server = make_ftp()
        server.execute("USER alice")
        server.execute("PASS pw")
        assert server.execute("RNTO anything").code == 503
        # and a failed RNFR does not arm a later RNTO
        server.execute("RNFR ghost")
        assert server.execute("RNTO anything").code == 503


class TestCyrusOverFtp:
    def test_mixed_ftp_and_memory_federation(self):
        from repro.core.client import CyrusClient
        from repro.core.config import CyrusConfig
        from repro.csp import InMemoryCSP
        from tests.conftest import deterministic_bytes

        ftp1, _ = make_ftp("ftp1")
        ftp2, _ = make_ftp("ftp2", user="bob", password="hunter2")
        providers = [ftp1, ftp2, InMemoryCSP("mem0"), InMemoryCSP("mem1")]
        config = CyrusConfig(key="k", t=2, n=3, chunk_min=256,
                             chunk_avg=1024, chunk_max=8192)
        client = CyrusClient.create(providers, config, client_id="c")
        data = deterministic_bytes(10_000, 42)
        client.put("over-ftp.bin", data)
        assert client.get("over-ftp.bin").data == data

        reader = CyrusClient.create(providers, config, client_id="r")
        reader.recover()
        assert reader.get("over-ftp.bin", sync_first=False).data == data
