"""Unit tests for full replication and full striping baselines."""

import os

import pytest

from repro.baselines import FullReplicationClient, FullStripingClient
from repro.bench import build_paper_testbed
from repro.core.transfer import DirectEngine
from repro.csp import InMemoryCSP
from repro.errors import ObjectNotFoundError, TransferError


def direct_engine(count=4):
    providers = {f"c{i}": InMemoryCSP(f"c{i}") for i in range(count)}
    return DirectEngine(providers), sorted(providers)


class TestReplication:
    def test_roundtrip_from_any_csp(self):
        engine, ids = direct_engine()
        client = FullReplicationClient(engine, ids)
        data = os.urandom(5000)
        client.upload("f", data)
        for csp in ids:
            assert client.download("f", csp, len(data)).data == data

    def test_bytes_moved_is_n_copies(self):
        engine, ids = direct_engine()
        client = FullReplicationClient(engine, ids)
        report = client.upload("f", b"x" * 1000)
        assert report.bytes_moved == 4000

    def test_survives_single_csp(self):
        engine, ids = direct_engine()
        client = FullReplicationClient(engine, ids)
        client.upload("f", b"data")
        provider = engine.provider(ids[0])
        for info in list(provider.list()):
            provider.delete(info.name)
        assert client.download("f", ids[1], 4).data == b"data"
        with pytest.raises(ObjectNotFoundError):
            client.download("f", ids[0], 4)

    def test_no_csps_rejected(self):
        engine, _ = direct_engine()
        with pytest.raises(TransferError):
            FullReplicationClient(engine, [])


class TestStriping:
    def test_roundtrip(self):
        engine, ids = direct_engine()
        client = FullStripingClient(engine, ids)
        data = os.urandom(10_003)  # not a multiple of 4
        client.upload("f", data)
        assert client.download("f", len(data)).data == data

    def test_bytes_moved_is_one_copy(self):
        engine, ids = direct_engine()
        client = FullStripingClient(engine, ids)
        report = client.upload("f", b"x" * 1000)
        assert report.bytes_moved == pytest.approx(1000, abs=4)

    def test_any_loss_is_fatal(self):
        # the paper's point: striping is fast but has zero redundancy
        engine, ids = direct_engine()
        client = FullStripingClient(engine, ids)
        client.upload("f", os.urandom(4000))
        provider = engine.provider(ids[2])
        for info in list(provider.list()):
            provider.delete(info.name)
        with pytest.raises(ObjectNotFoundError):
            client.download("f", 4000)

    def test_small_file(self):
        engine, ids = direct_engine()
        client = FullStripingClient(engine, ids)
        client.upload("f", b"ab")
        assert client.download("f", 2).data == b"ab"


class TestRelativeSpeeds:
    def test_upload_ordering_matches_figure16(self):
        # striping moves the least data -> fastest upload;
        # replication moves the most -> slowest of the lock-free schemes
        env = build_paper_testbed()
        data = os.urandom(4_000_000)
        ids = sorted(env.csp_ids())[:4]
        striping = FullStripingClient(env.engine, ids).upload("s", data)
        replication = FullReplicationClient(env.engine, ids).upload("r", data)
        assert striping.duration < replication.duration
