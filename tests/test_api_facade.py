"""The stable public API façade and its deprecation shims.

Three contracts:

* everything in ``repro.__all__`` (and ``repro.csp.__all__``) resolves
  to a real object — the façade never advertises a name it can't serve;
* the pre-façade deep-import paths (``from repro.core import X``) keep
  returning the *same objects* as the canonical modules, but each fresh
  access emits a :class:`DeprecationWarning` attributed to the caller;
* :class:`SyncProviderAdapter` is a pure transport shim — running the
  five primitives through it leaves a provider in exactly the state a
  direct synchronous call sequence would.
"""

from __future__ import annotations

import asyncio
import importlib
import warnings

import pytest

import repro
import repro.core
import repro.csp
from repro.csp.aio import (
    AsyncCloudProvider,
    SyncProviderAdapter,
    as_async_provider,
)
from repro.csp.memory import InMemoryCSP
from repro.errors import ObjectNotFoundError


# ---------------------------------------------------------------------------
# façade completeness
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_facade_all_names_resolve(name):
    assert getattr(repro, name) is not None


@pytest.mark.parametrize("name", sorted(repro.csp.__all__))
def test_csp_package_all_names_resolve(name):
    assert getattr(repro.csp, name) is not None


def test_facade_exports_match_canonical_modules():
    from repro.core.client import CyrusClient
    from repro.core.async_client import AsyncCyrusClient
    from repro.core.config import CyrusConfig

    assert repro.CyrusClient is CyrusClient
    assert repro.AsyncCyrusClient is AsyncCyrusClient
    assert repro.CyrusConfig is CyrusConfig


# ---------------------------------------------------------------------------
# deprecation shims
# ---------------------------------------------------------------------------

_MOVED = repro.core._MOVED


@pytest.mark.parametrize("name", sorted(_MOVED))
def test_core_shim_warns_and_returns_canonical_object(name):
    canonical = getattr(importlib.import_module(_MOVED[name]), name)
    with pytest.warns(DeprecationWarning, match=name):
        shimmed = getattr(repro.core, name)
    assert shimmed is canonical


def test_core_shim_warns_on_every_access():
    # the shim deliberately does not cache: each access re-warns so the
    # deprecation stays visible instead of firing once per process
    for _ in range(2):
        with pytest.warns(DeprecationWarning):
            getattr(repro.core, "CyrusClient")


def test_core_shim_unknown_name_raises_without_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with pytest.raises(AttributeError, match="no attribute"):
            repro.core.definitely_not_a_name  # noqa: B018


def test_core_shim_dir_lists_moved_names():
    listing = dir(repro.core)
    for name in _MOVED:
        assert name in listing


def test_core_shim_warning_names_replacement_module():
    with pytest.warns(DeprecationWarning, match="repro.core.transfer"):
        repro.core.TransferOp  # noqa: B018


# ---------------------------------------------------------------------------
# sync-adapter equivalence
# ---------------------------------------------------------------------------

def _drive_async(provider: AsyncCloudProvider) -> tuple:
    """The reference op sequence, run through the async protocol."""

    async def script():
        await provider.upload("a.bin", b"alpha")
        await provider.upload("b.bin", bytearray(b"beta"))
        await provider.upload("a.bin", memoryview(b"alpha-2"))  # overwrite
        names = sorted(o.name for o in await provider.list(prefix=""))
        a = await provider.download("a.bin")
        await provider.delete("b.bin")
        left = [o.name for o in await provider.list(prefix="a")]
        return names, a, left

    return asyncio.run(script())


def _drive_sync(provider: InMemoryCSP) -> tuple:
    """The same op sequence, called directly."""
    provider.upload("a.bin", b"alpha")
    provider.upload("b.bin", bytearray(b"beta"))
    provider.upload("a.bin", memoryview(b"alpha-2"))
    names = sorted(o.name for o in provider.list(prefix=""))
    a = provider.download("a.bin")
    provider.delete("b.bin")
    left = [o.name for o in provider.list(prefix="a")]
    return names, a, left


def test_sync_adapter_is_outcome_identical_to_direct_calls():
    adapted_store = InMemoryCSP("adapted")
    direct_store = InMemoryCSP("direct")
    via_adapter = _drive_async(SyncProviderAdapter(adapted_store))
    via_direct = _drive_sync(direct_store)
    assert via_adapter == via_direct
    # and the stores themselves ended up identical
    assert {o.name: adapted_store.download(o.name)
            for o in adapted_store.list(prefix="")} == \
           {o.name: direct_store.download(o.name)
            for o in direct_store.list(prefix="")}


def test_sync_adapter_propagates_provider_errors_unchanged():
    adapter = SyncProviderAdapter(InMemoryCSP("empty"))

    async def script():
        await adapter.download("missing.bin")

    with pytest.raises(ObjectNotFoundError):
        asyncio.run(script())


def test_as_async_provider_is_idempotent():
    sync = InMemoryCSP("s")
    adapted = as_async_provider(sync)
    assert isinstance(adapted, SyncProviderAdapter)
    assert adapted.inner is sync
    assert as_async_provider(adapted) is adapted
    assert adapted.csp_id == "s"
