"""Unit tests for share and metadata migration (Section 5.5, Figure 9)."""

import pytest

from repro.core.cloud import CSPStatus
from repro.core.migration import migrate_metadata, plan_chunk_migrations
from repro.csp import InMemoryCSP
from tests.conftest import deterministic_bytes


class TestPlanning:
    def setup_state(self, client, csps):
        data = deterministic_bytes(6000, 1)
        node = client.put("f.bin", data).node
        return data, node

    def test_no_moves_when_healthy(self, client, csps):
        _, node = self.setup_state(client, csps)
        for record in node.chunks:
            location = client.chunk_table.get(record.chunk_id)
            assert plan_chunk_migrations(location, client.cloud) == []

    def test_moves_planned_after_failure(self, client, csps):
        _, node = self.setup_state(client, csps)
        victim = node.shares[0].csp_id
        client.cloud.mark_failed(victim)
        moved_any = False
        for record in node.chunks:
            location = client.chunk_table.get(record.chunk_id)
            for index, old, new in plan_chunk_migrations(location, client.cloud):
                moved_any = True
                assert client.cloud.status_of(new) is CSPStatus.ACTIVE
                assert new not in location.csps()
        assert moved_any

    def test_no_replacement_available(self, client, csps):
        # all CSPs hold shares or are down: nothing can be planned
        _, node = self.setup_state(client, csps)
        record = node.chunks[0]
        location = client.chunk_table.get(record.chunk_id)
        for csp in client.cloud.active_csps():
            if csp not in location.csps():
                client.cloud.mark_failed(csp)
        victim = location.csps()[0]
        client.cloud.mark_failed(victim)
        moves = plan_chunk_migrations(
            client.chunk_table.get(record.chunk_id), client.cloud
        )
        assert moves == []


class TestLazyMigration:
    def test_download_restores_shares(self, client, csps):
        data = deterministic_bytes(8000, 2)
        client.put("f.bin", data)
        client.remove_csp("csp1")
        report = client.get("f.bin")
        assert report.data == data
        assert report.migrations
        for migration in report.migrations:
            assert migration.new_csp != "csp1"
        # table now shows n live placements per chunk
        for record in report.node.chunks:
            loc = client.chunk_table.get(record.chunk_id)
            live = {c for c in loc.csps()
                    if client.cloud.status_of(c) is CSPStatus.ACTIVE}
            assert len(live) >= record.n

    def test_migration_happens_once(self, client):
        data = deterministic_bytes(8000, 3)
        client.put("f.bin", data)
        client.remove_csp("csp2")
        assert client.get("f.bin").migrations
        assert not client.get("f.bin").migrations

    def test_migrated_share_decodes_for_other_clients(
        self, client, second_client
    ):
        data = deterministic_bytes(8000, 4)
        client.put("f.bin", data)
        client.remove_csp("csp0")
        client.get("f.bin")  # migrates
        second_client.remove_csp("csp0")
        assert second_client.get("f.bin").data == data

    def test_migration_disabled(self, csps, config):
        from repro.core.client import CyrusClient

        client = CyrusClient.create(csps, config, client_id="a")
        data = deterministic_bytes(5000, 5)
        client.put("f.bin", data)
        client.remove_csp("csp1")
        # membership changes rebuild the pipelines, so flip the switch
        # on the downloader that will actually serve the get()
        client.downloader.lazy_migration = False
        report = client.get("f.bin")
        assert report.data == data
        assert not report.migrations


class TestMetadataMigration:
    def test_new_slot_backfilled(self, client, csps):
        client.put("f.bin", deterministic_bytes(2000, 6))
        client.put("g.bin", deterministic_bytes(2000, 7))
        new_csp = InMemoryCSP("csp-new")
        client.add_csp(new_csp)  # add_csp migrates metadata eagerly
        # the new slot holds a metadata share of every node
        assert new_csp.object_count == len(client.tree.node_ids())

    def test_migrate_metadata_idempotent(self, client, csps):
        client.put("f.bin", deterministic_bytes(1000, 8))
        wrote = migrate_metadata(client.store, client.tree, client.engine)
        assert wrote == 0  # everything already in place

    def test_restores_wiped_slot(self, client, csps):
        client.put("f.bin", deterministic_bytes(1000, 9))
        victim = csps[0]
        for info in list(victim.list(prefix="md-")):
            victim.delete(info.name)
        wrote = migrate_metadata(client.store, client.tree, client.engine)
        assert wrote == len(client.tree.node_ids())


class TestFailureProbing:
    def test_probe_recovers_responsive_csp(self, client, csps):
        client.cloud.mark_failed("csp1")
        recovered = client.probe_failed_csps()
        assert recovered == ["csp1"]
        assert client.cloud.status_of("csp1").value == "active"

    def test_probe_skips_still_down_csp(self, config):
        from repro.bench import build_environment
        from repro.csp import AvailabilitySchedule
        from repro.netsim import Link

        links = {f"c{i}": Link.symmetric(f"c{i}", 1e6) for i in range(4)}
        env = build_environment(
            links,
            availability={"c0": AvailabilitySchedule([(0.0, 100.0)])},
        )
        client = env.new_client(config)
        client.cloud.mark_failed("c0")
        assert client.probe_failed_csps() == []  # still in its outage
        env.clock.advance_to(200.0)
        assert client.probe_failed_csps() == ["c0"]

    def test_probe_never_resurrects_removed(self, client):
        client.remove_csp("csp2")
        assert client.probe_failed_csps() == []
        assert client.cloud.status_of("csp2").value == "removed"

    def test_recovered_csp_receives_uploads_again(self, client):
        client.cloud.mark_failed("csp0")
        client.probe_failed_csps()
        placed = set()
        for i in range(10):
            node = client.put(
                f"r{i}.bin", deterministic_bytes(2000, 60 + i)
            ).node
            placed |= {s.csp_id for s in node.shares}
        assert "csp0" in placed


class TestCSPAddition:
    def test_new_csp_receives_new_uploads(self, client):
        client.add_csp(InMemoryCSP("fresh"))
        placed = set()
        for i in range(12):
            node = client.put(
                f"file{i}.bin", deterministic_bytes(2000, 20 + i)
            ).node
            placed |= {s.csp_id for s in node.shares}
        assert "fresh" in placed

    def test_existing_shares_untouched_on_add(self, client, csps):
        data = deterministic_bytes(4000, 30)
        node = client.put("f.bin", data).node
        before = {s.csp_id for s in node.shares}
        client.add_csp(InMemoryCSP("fresh"))
        after = {
            s.csp_id
            for s in client.tree.get(node.node_id).shares
        }
        assert after == before
