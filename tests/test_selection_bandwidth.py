"""Unit tests for the closed-form bandwidth sub-problem."""

import pytest

from repro.errors import SelectionError
from repro.selection import optimal_bandwidth_allocation


class TestAllocation:
    def test_single_csp_link_limited(self):
        y, betas = optimal_bandwidth_allocation(
            {"a": 10e6}, {"a": 2e6}, client_cap=100e6
        )
        assert y == pytest.approx(5.0)
        assert betas["a"] == pytest.approx(2e6)

    def test_client_limited(self):
        y, betas = optimal_bandwidth_allocation(
            {"a": 10e6, "b": 10e6}, {"a": 100e6, "b": 100e6}, client_cap=10e6
        )
        assert y == pytest.approx(2.0)
        assert betas["a"] + betas["b"] == pytest.approx(10e6)

    def test_proportional_split(self):
        # optimal split gives each CSP bandwidth proportional to its load
        y, betas = optimal_bandwidth_allocation(
            {"a": 30e6, "b": 10e6}, {"a": 100e6, "b": 100e6}, client_cap=40e6
        )
        assert y == pytest.approx(1.0)
        assert betas["a"] == pytest.approx(30e6)
        assert betas["b"] == pytest.approx(10e6)

    def test_idle_csp_gets_zero(self):
        y, betas = optimal_bandwidth_allocation(
            {"a": 1e6, "b": 0.0}, {"a": 1e6, "b": 1e6}, client_cap=10e6
        )
        assert betas["b"] == 0.0

    def test_all_zero_loads(self):
        y, betas = optimal_bandwidth_allocation(
            {"a": 0.0}, {"a": 1e6}, client_cap=1e6
        )
        assert y == 0.0

    def test_bottleneck_is_binding_constraint(self):
        # whichever bound is tighter decides y
        loads = {"a": 10e6, "b": 2e6}
        link_limited, _ = optimal_bandwidth_allocation(
            loads, {"a": 1e6, "b": 10e6}, client_cap=1e9
        )
        assert link_limited == pytest.approx(10.0)
        client_limited, _ = optimal_bandwidth_allocation(
            loads, {"a": 1e9, "b": 1e9}, client_cap=6e6
        )
        assert client_limited == pytest.approx(2.0)

    def test_beta_respects_link_caps(self):
        y, betas = optimal_bandwidth_allocation(
            {"a": 10e6, "b": 1e6}, {"a": 2e6, "b": 50e6}, client_cap=1e9
        )
        assert betas["a"] <= 2e6 + 1e-6
        # a is the bottleneck at 5s; b needs only 0.2 MB/s
        assert y == pytest.approx(5.0)
        assert betas["b"] == pytest.approx(1e6 / 5.0)

    def test_loaded_csp_without_capacity(self):
        with pytest.raises(SelectionError):
            optimal_bandwidth_allocation({"a": 1.0}, {}, client_cap=1.0)

    def test_negative_load(self):
        with pytest.raises(SelectionError):
            optimal_bandwidth_allocation({"a": -1.0}, {"a": 1.0}, 1.0)

    def test_bad_client_cap(self):
        with pytest.raises(SelectionError):
            optimal_bandwidth_allocation({}, {}, client_cap=0)
