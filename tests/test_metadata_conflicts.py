"""Unit tests for the two-type conflict detection (Section 5.4, Figure 8)."""

from repro.metadata import MetadataTree, ROOT_ID, detect_conflicts
from repro.metadata.conflicts import (
    conflicted_copy_name,
    conflicts_for_node,
    resolution_winner,
)
from tests.test_metadata_tree import mk


class TestSameNameConflict:
    def test_detected(self):
        tree = MetadataTree()
        tree.add(mk("report.pdf", "from-alice", client="alice"))
        tree.add(mk("report.pdf", "from-bob", client="bob", modified=1.5))
        conflicts = detect_conflicts(tree)
        assert len(conflicts) == 1
        assert conflicts[0].kind == "same-name"
        assert conflicts[0].parent_id == ROOT_ID

    def test_same_content_same_name_is_not_conflict(self):
        # identical uploads dedupe to one node id: nothing to resolve
        tree = MetadataTree()
        tree.add(mk("f", "v1", client="alice"))
        tree.add(mk("f", "v1", client="alice"))
        assert detect_conflicts(tree) == []

    def test_different_names_no_conflict(self):
        tree = MetadataTree()
        tree.add(mk("a.txt", "x"))
        tree.add(mk("b.txt", "y"))
        assert detect_conflicts(tree) == []

    def test_incremental_detection(self):
        tree = MetadataTree()
        first = mk("f", "mine", client="alice")
        tree.add(first)
        second = mk("f", "theirs", client="bob", modified=2.0)
        tree.add(second)
        found = conflicts_for_node(tree, second)
        assert len(found) == 1 and found[0].kind == "same-name"
        assert set(found[0].node_ids) == {first.node_id, second.node_id}


class TestDivergenceConflict:
    def build(self):
        tree = MetadataTree()
        base = mk("doc", "v1")
        tree.add(base)
        left = mk("doc", "v2-left", prev=base.node_id, client="l", modified=2.0)
        right = mk("doc", "v2-right", prev=base.node_id, client="r", modified=3.0)
        tree.add(left)
        tree.add(right)
        return tree, base, left, right

    def test_detected(self):
        tree, base, left, right = self.build()
        conflicts = [c for c in detect_conflicts(tree) if c.kind == "divergence"]
        assert len(conflicts) == 1
        assert conflicts[0].parent_id == base.node_id
        assert set(conflicts[0].node_ids) == {left.node_id, right.node_id}

    def test_linear_chain_no_conflict(self):
        tree = MetadataTree()
        a = mk("f", "v1")
        tree.add(a)
        tree.add(mk("f", "v2", prev=a.node_id, modified=2.0))
        assert detect_conflicts(tree) == []

    def test_incremental_walks_ancestors(self):
        tree, base, left, right = self.build()
        # extend right's lineage; the divergence at base is still found
        deeper = mk("doc", "v3", prev=right.node_id, modified=4.0)
        tree.add(deeper)
        found = conflicts_for_node(tree, deeper)
        assert any(c.kind == "divergence" for c in found)

    def test_three_way_divergence(self):
        tree, base, left, right = self.build()
        third = mk("doc", "v2-mid", prev=base.node_id, client="m", modified=2.5)
        tree.add(third)
        conflicts = [c for c in detect_conflicts(tree) if c.kind == "divergence"]
        assert len(conflicts[0].node_ids) == 3


class TestResolution:
    def test_winner_is_latest(self):
        tree = MetadataTree()
        base = mk("doc", "v1")
        tree.add(base)
        old = mk("doc", "old", prev=base.node_id, client="o", modified=2.0)
        new = mk("doc", "new", prev=base.node_id, client="n", modified=9.0)
        tree.merge([old, new])
        conflict = detect_conflicts(tree)[0]
        assert resolution_winner(tree, conflict) == new.node_id

    def test_winner_deterministic_on_tie(self):
        tree = MetadataTree()
        a = mk("f", "aa", client="x", modified=5.0)
        b = mk("f", "bb", client="y", modified=5.0)
        tree.merge([a, b])
        conflict = detect_conflicts(tree)[0]
        assert resolution_winner(tree, conflict) == max(a.node_id, b.node_id)

    def test_conflicted_copy_name(self):
        assert conflicted_copy_name("notes.md", "bob") == (
            "notes (conflicted copy bob).md"
        )
        assert conflicted_copy_name("README", "c2") == (
            "README (conflicted copy c2)"
        )
