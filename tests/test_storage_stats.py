"""Tests for client.storage_stats() and tree-merge commutativity."""

import random

from hypothesis import given, settings, strategies as st

from repro.metadata import MetadataTree
from tests.conftest import deterministic_bytes
from tests.test_metadata_tree import mk


class TestStorageStats:
    def test_empty(self, client):
        stats = client.storage_stats()
        assert stats["files"] == 0
        assert stats["logical_bytes"] == 0
        assert stats["stored_share_bytes"] == 0

    def test_single_file_expansion_factor(self, client, config):
        data = deterministic_bytes(9_000, 1)
        client.put("f.bin", data)
        stats = client.storage_stats()
        assert stats["files"] == 1
        assert stats["logical_bytes"] == 9_000
        assert stats["unique_chunk_bytes"] == 9_000
        ratio = stats["stored_share_bytes"] / stats["unique_chunk_bytes"]
        # n/t = 1.5, padding adds a little
        assert 1.45 <= ratio <= 1.7

    def test_dedup_visible(self, client):
        data = deterministic_bytes(6_000, 2)
        client.put("a.bin", data)
        client.put("b.bin", data)
        stats = client.storage_stats()
        assert stats["files"] == 2
        assert stats["logical_bytes"] == 12_000
        assert stats["unique_chunk_bytes"] == 6_000  # stored once

    def test_per_csp_breakdown_sums(self, client):
        client.put("f.bin", deterministic_bytes(8_000, 3))
        stats = client.storage_stats()
        assert sum(stats["per_csp_bytes"].values()) == (
            stats["stored_share_bytes"]
        )

    def test_deleted_files_drop_from_logical(self, client):
        client.put("f.bin", deterministic_bytes(2_000, 4))
        client.delete("f.bin")
        stats = client.storage_stats()
        assert stats["files"] == 0
        assert stats["logical_bytes"] == 0
        # shares remain until GC
        assert stats["stored_share_bytes"] > 0


@given(seed=st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_tree_merge_commutes(seed):
    """Any permutation of the same node set yields the same tree."""
    rng = random.Random(seed)
    nodes = [mk("f", "v0")]
    for i in range(rng.randint(1, 8)):
        parent = rng.choice(nodes)
        nodes.append(
            mk(
                rng.choice(["f", "g"]),
                f"v{i + 1}",
                prev=parent.node_id if rng.random() < 0.7 else
                "0" * 40,
                client=f"c{rng.randint(0, 2)}",
                modified=float(i + 1),
            )
        )
    reference = MetadataTree()
    reference.merge(nodes)
    shuffled = nodes[:]
    rng.shuffle(shuffled)
    other = MetadataTree()
    other.merge(shuffled)
    assert other.node_ids() == reference.node_ids()
    assert other.file_names(include_deleted=True) == (
        reference.file_names(include_deleted=True)
    )
    for name in reference.file_names():
        assert other.latest(name).node_id == reference.latest(name).node_id