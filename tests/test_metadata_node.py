"""Unit tests for metadata nodes and their records."""

import pytest

from repro.metadata import ChunkRecord, MetadataNode, ROOT_ID, ShareRecord
from repro.util.hashing import sha1_hex

FID = sha1_hex(b"content-v1")
CID = sha1_hex(b"chunk-1")


def node(**overrides):
    base = dict(
        file_id=FID,
        prev_id=ROOT_ID,
        client_id="alice",
        name="doc.txt",
        deleted=False,
        modified=1.0,
        size=10,
        chunks=(ChunkRecord(chunk_id=CID, offset=0, size=10, t=2, n=3),),
        shares=tuple(
            ShareRecord(chunk_id=CID, index=i, csp_id=f"csp{i}")
            for i in range(3)
        ),
    )
    base.update(overrides)
    return MetadataNode(**base)


class TestIdentity:
    def test_node_id_deterministic(self):
        assert node().node_id == node().node_id

    def test_id_covers_lineage_fields(self):
        base = node()
        assert node(name="other.txt").node_id != base.node_id
        assert node(client_id="bob").node_id != base.node_id
        assert node(file_id=sha1_hex(b"v2")).node_id != base.node_id
        assert node(prev_id=sha1_hex(b"parent")).node_id != base.node_id

    def test_id_ignores_share_placements(self):
        # lazy migration republishes with new ShareMap under the same id
        a = node()
        b = node(shares=(ShareRecord(chunk_id=CID, index=0, csp_id="x"),))
        assert a.node_id == b.node_id

    def test_is_new_file(self):
        assert node().is_new_file
        assert not node(prev_id=sha1_hex(b"p")).is_new_file


class TestValidation:
    def test_bad_file_id(self):
        with pytest.raises(ValueError):
            node(file_id="short")

    def test_bad_prev_id(self):
        with pytest.raises(ValueError):
            node(prev_id="xyz")

    def test_empty_name(self):
        with pytest.raises(ValueError):
            node(name="")

    def test_negative_size(self):
        with pytest.raises(ValueError):
            node(size=-1)

    def test_share_must_reference_known_chunk(self):
        with pytest.raises(ValueError):
            node(shares=(ShareRecord(chunk_id=sha1_hex(b"other"), index=0,
                                     csp_id="c"),))

    def test_chunk_record_validation(self):
        with pytest.raises(ValueError):
            ChunkRecord(chunk_id=CID, offset=-1, size=1, t=2, n=3)
        with pytest.raises(ValueError):
            ChunkRecord(chunk_id=CID, offset=0, size=1, t=4, n=3)

    def test_share_record_validation(self):
        with pytest.raises(ValueError):
            ShareRecord(chunk_id=CID, index=-1, csp_id="c")


class TestViews:
    def test_shares_of(self):
        n = node()
        assert [s.index for s in n.shares_of(CID)] == [0, 1, 2]
        assert n.shares_of(sha1_hex(b"other")) == []

    def test_chunk_span(self):
        assert node().chunk_span() == 10
