"""Unit tests for reliability planning (Eq. 1) and failure simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ReliabilityError
from repro.reliability import (
    FailureEstimator,
    chunk_failure_probability,
    downtime_to_probability,
    minimum_shares,
    simulate_request_failures,
)


class TestFailureProbability:
    def test_single_share_is_p(self):
        assert chunk_failure_probability(1, 1, 0.1) == pytest.approx(0.1)

    def test_n_of_n_fails_if_any_fails(self):
        p = 0.1
        assert chunk_failure_probability(2, 2, p) == pytest.approx(
            1 - (1 - p) ** 2
        )

    def test_matches_paper_formula(self):
        # explicit sum for (t, n) = (2, 4)
        from math import comb

        p = 0.05
        expected = sum(
            comb(4, s) * (1 - p) ** s * p ** (4 - s) for s in range(2)
        )
        assert chunk_failure_probability(2, 4, p) == pytest.approx(expected)

    def test_monotone_in_n(self):
        p = 0.01
        probs = [chunk_failure_probability(2, n, p) for n in range(2, 8)]
        assert probs == sorted(probs, reverse=True)

    def test_monotone_in_t(self):
        p = 0.01
        probs = [chunk_failure_probability(t, 6, p) for t in range(1, 6)]
        assert probs == sorted(probs)

    def test_extremes(self):
        assert chunk_failure_probability(2, 4, 0.0) == 0.0
        assert chunk_failure_probability(2, 4, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_failure_probability(0, 3, 0.1)
        with pytest.raises(ConfigurationError):
            chunk_failure_probability(4, 3, 0.1)
        with pytest.raises(ConfigurationError):
            chunk_failure_probability(2, 3, 1.5)


class TestMinimumShares:
    def test_returns_minimal_n(self):
        n = minimum_shares(2, 0.01, 1e-4, 20)
        assert chunk_failure_probability(2, n, 0.01) <= 1e-4
        assert chunk_failure_probability(2, n - 1, 0.01) > 1e-4

    def test_loose_bound_needs_t_shares(self):
        assert minimum_shares(2, 0.001, 0.5, 20) == 2

    def test_stricter_epsilon_needs_more_shares(self):
        loose = minimum_shares(2, 0.01, 1e-3, 30)
        strict = minimum_shares(2, 0.01, 1e-9, 30)
        assert strict > loose

    def test_higher_t_needs_more_shares(self):
        n2 = minimum_shares(2, 0.01, 1e-6, 30)
        n3 = minimum_shares(3, 0.01, 1e-6, 30)
        assert n3 > n2

    def test_infeasible_raises(self):
        with pytest.raises(ReliabilityError):
            minimum_shares(2, 0.5, 1e-12, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            minimum_shares(2, 0.01, 0.0, 10)
        with pytest.raises(ConfigurationError):
            minimum_shares(5, 0.01, 0.1, 4)


class TestDowntimeConversion:
    def test_known_values(self):
        assert downtime_to_probability(8760.0 / 2) == pytest.approx(0.5)
        assert downtime_to_probability(0) == 0.0

    def test_capped_at_one(self):
        assert downtime_to_probability(1e9) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            downtime_to_probability(-1)


class TestEstimator:
    def test_short_blips_not_counted(self):
        est = FailureEstimator(outage_threshold_s=3600)
        est.record_failure(0.0)
        est.record_failure(100.0)  # 100s < threshold
        est.record_success(200.0)
        assert est.failure_events == 0

    def test_long_outage_counted_once(self):
        est = FailureEstimator(outage_threshold_s=3600)
        est.record_failure(0.0)
        est.record_failure(4000.0)
        est.record_failure(5000.0)  # same outage
        assert est.failure_events == 1

    def test_separate_outages(self):
        est = FailureEstimator(outage_threshold_s=100)
        est.record_failure(0.0)
        est.record_failure(200.0)
        est.record_success(300.0)
        est.record_failure(1000.0)
        est.record_failure(1200.0)
        assert est.failure_events == 2

    def test_probability_floored_by_prior(self):
        est = FailureEstimator(prior=1e-4)
        assert est.probability == 1e-4
        est.record_success(0.0)
        assert est.probability == 1e-4

    def test_probability_ratio(self):
        est = FailureEstimator(outage_threshold_s=10, prior=0.0)
        est.record_failure(0.0)
        est.record_failure(20.0)
        for i in range(8):
            est.record_success(100.0 + i)
        assert est.probability == pytest.approx(0.1)


class TestMonteCarlo:
    DOWNTIMES = {"A": 1.37, "B": 6.0, "C": 12.0, "D": 18.53}

    def test_shapes(self):
        res = simulate_request_failures(
            self.DOWNTIMES, configs=[(3, 4)], trials=10_000, seed=1
        )
        assert set(res) == {"A", "B", "C", "D", "CYRUS (3,4)"}
        assert all(len(v) == 10_000 for v in res.values())

    def test_cumulative_monotone(self):
        res = simulate_request_failures(
            self.DOWNTIMES, configs=[(2, 4)], trials=5_000, seed=2
        )
        for series in res.values():
            assert (np.diff(series) >= 0).all()

    def test_figure13_ordering(self):
        # CYRUS (2,4) << CYRUS (3,4) << every single CSP (trial-scaled)
        res = simulate_request_failures(
            self.DOWNTIMES, configs=[(3, 4), (2, 4)], trials=1_000_000, seed=3
        )
        worst_single = min(res[c][-1] for c in self.DOWNTIMES)
        assert res["CYRUS (3,4)"][-1] < worst_single
        assert res["CYRUS (2,4)"][-1] <= res["CYRUS (3,4)"][-1]

    def test_deterministic(self):
        a = simulate_request_failures(self.DOWNTIMES, [(2, 4)], 1000, seed=9)
        b = simulate_request_failures(self.DOWNTIMES, [(2, 4)], 1000, seed=9)
        assert (a["CYRUS (2,4)"] == b["CYRUS (2,4)"]).all()

    def test_batching_invariant(self):
        a = simulate_request_failures(
            self.DOWNTIMES, [(2, 4)], 5000, seed=4, batch=512
        )
        b = simulate_request_failures(
            self.DOWNTIMES, [(2, 4)], 5000, seed=4, batch=5000
        )
        assert (a["A"] == b["A"]).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_request_failures(self.DOWNTIMES, [(2, 9)], 100)
        with pytest.raises(ConfigurationError):
            simulate_request_failures(self.DOWNTIMES, [(0, 2)], 100)
        with pytest.raises(ConfigurationError):
            simulate_request_failures(self.DOWNTIMES, [], 0)
