"""Tests for ranged downloads (partial reads via ChunkMap offsets)."""

import pytest

from repro.core.cache import ChunkCache
from repro.core.client import CyrusClient
from tests.conftest import deterministic_bytes


class TestGetRange:
    def test_window_matches_slice(self, client):
        data = deterministic_bytes(30_000, 1)
        client.put("f.bin", data)
        for offset, length in [(0, 100), (12_345, 4_096), (29_000, 5_000),
                               (0, 30_000)]:
            report = client.get_range("f.bin", offset, length)
            assert report.data == data[offset : offset + length]

    def test_zero_length(self, client):
        client.put("f.bin", deterministic_bytes(1000, 2))
        assert client.get_range("f.bin", 10, 0).data == b""

    def test_offset_past_eof(self, client):
        client.put("f.bin", deterministic_bytes(1000, 3))
        assert client.get_range("f.bin", 5000, 100).data == b""

    def test_negative_rejected(self, client):
        client.put("f.bin", deterministic_bytes(100, 4))
        with pytest.raises(ValueError):
            client.get_range("f.bin", -1, 10)
        with pytest.raises(ValueError):
            client.get_range("f.bin", 0, -5)

    def test_downloads_fewer_bytes_than_full_get(self, client):
        data = deterministic_bytes(50_000, 5)
        client.put("f.bin", data)
        full = client.get("f.bin")
        partial = client.get_range("f.bin", 20_000, 500)
        assert partial.data == data[20_000:20_500]
        assert partial.bytes_downloaded < full.bytes_downloaded / 3

    def test_ranged_read_of_old_version(self, client):
        v1 = deterministic_bytes(8_000, 6)
        v2 = deterministic_bytes(9_000, 7)
        client.put("f.bin", v1)
        client.put("f.bin", v2)
        report = client.get_range("f.bin", 1000, 2000, version=1)
        assert report.data == v1[1000:3000]

    def test_boundary_straddling(self, client):
        # a window crossing several chunk boundaries must splice right
        data = deterministic_bytes(40_000, 8)
        node = client.put("f.bin", data).node
        assert len(node.chunks) > 3, "test needs a multi-chunk file"
        second = node.chunks[1]
        offset = second.offset - 10
        length = second.size + 20
        report = client.get_range("f.bin", offset, length)
        assert report.data == data[offset : offset + length]

    def test_range_uses_cache(self, csps, config):
        cache = ChunkCache()
        client = CyrusClient.create(csps, config, client_id="c",
                                    cache=cache)
        data = deterministic_bytes(20_000, 9)
        client.put("f.bin", data)
        client.get("f.bin")  # warm the cache
        report = client.get_range("f.bin", 5_000, 1_000)
        assert report.data == data[5_000:6_000]
        assert report.bytes_downloaded == 0  # all from cache

    def test_corrupt_chunk_repaired_in_range(self, client, csps):
        from repro.core.naming import chunk_share_object_name

        data = deterministic_bytes(10_000, 10)
        node = client.put("f.bin", data).node
        target = node.chunks[0]
        share = node.shares_of(target.chunk_id)[0]
        provider = next(c for c in csps if c.csp_id == share.csp_id)
        name = chunk_share_object_name(share.index, share.chunk_id)
        blob = bytearray(provider.download(name))
        blob[0] ^= 0xFF
        provider.upload(name, bytes(blob))
        report = client.get_range("f.bin", target.offset, 50)
        assert report.data == data[target.offset : target.offset + 50]
