"""Property: parallelism is an implementation detail, not a behaviour.

For any workload, running the client at parallelism 1 (the serial
reference path), 2 and 8 must leave the cloud in the same state —
identical object names on every CSP, identical share bytes, identical
chunk tables — and read back identical data.  The pool reorders *when*
ops run, never *what* runs or *where* it lands.

Share objects (40-hex chunk-share names) are compared by content hash;
metadata objects by name only, since their payload embeds wall-clock
timestamps that legitimately differ between runs of the same level.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core.client import CyrusClient  # noqa: E402
from repro.core.config import CyrusConfig  # noqa: E402
from repro.csp.memory import InMemoryCSP  # noqa: E402
from repro.recovery.scrub import _SHARE_NAME  # noqa: E402
from repro.util.hashing import sha1_hex  # noqa: E402

from tests.conftest import SMALL_CHUNKS  # noqa: E402

LEVELS = (1, 2, 8)
BACKENDS = ("thread", "async")


def _run_workload(files: list[bytes], parallelism: int, backend: str = "thread"):
    """Fresh fleet + client; put every file, read every file back.

    Returns (reads, per-CSP object maps, chunk table) — everything
    that describes the externally observable outcome.
    """
    csps = [InMemoryCSP(f"csp{i}") for i in range(4)]
    config = CyrusConfig(
        key="prop-key", t=2, n=3,
        parallelism=parallelism,
        max_inflight_per_csp=2 if parallelism > 1 else None,
        transfer_backend=backend,
        **SMALL_CHUNKS,
    )
    client = CyrusClient.create(csps, config, client_id="alice")
    try:
        for i, data in enumerate(files):
            client.put(f"file-{i}.bin", data)
        reads = tuple(
            client.get(f"file-{i}.bin").data for i in range(len(files))
        )
    finally:
        client.close()
    objects = {}
    for csp in csps:
        inventory = {}
        for info in csp.list(prefix=""):
            if _SHARE_NAME.match(info.name):
                inventory[info.name] = sha1_hex(csp.download(info.name))
            else:  # metadata: name identity only (payload has timestamps)
                inventory[info.name] = "<meta>"
        objects[csp.csp_id] = inventory
    table = {}
    for chunk_id in client.chunk_table.all_chunk_ids():
        loc = client.chunk_table.get(chunk_id)
        table[chunk_id] = (
            loc.t, loc.n, loc.size, tuple(sorted(loc.placements)),
        )
    return reads, objects, table


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    files=st.lists(
        st.binary(min_size=0, max_size=4096), min_size=1, max_size=3
    )
)
def test_outcome_is_identical_across_parallelism_levels(files):
    baseline = _run_workload(files, parallelism=1)
    base_reads, base_objects, base_table = baseline
    assert base_reads == tuple(files)  # serial round-trip is the oracle
    for level in LEVELS[1:]:
        reads, objects, table = _run_workload(files, parallelism=level)
        assert reads == base_reads, f"parallelism={level} read differs"
        assert table == base_table, f"parallelism={level} chunk table differs"
        assert objects == base_objects, (
            f"parallelism={level} left different objects in the cloud"
        )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    files=st.lists(
        st.binary(min_size=0, max_size=4096), min_size=1, max_size=3
    )
)
def test_async_backend_outcome_matches_serial_reference(files):
    """The asyncio engine is outcome-identical to the serial engine.

    At parallelism=1 this is the bit-for-bit anchor: the async engine
    short-circuits to the inherited serial path, so provider state,
    chunk tables and share hashes must match the thread-backend serial
    baseline exactly.  Higher levels then pin the event-loop dispatch
    path to the same outcome.
    """
    baseline = _run_workload(files, parallelism=1, backend="thread")
    base_reads, base_objects, base_table = baseline
    assert base_reads == tuple(files)
    for level in LEVELS:
        reads, objects, table = _run_workload(
            files, parallelism=level, backend="async"
        )
        assert reads == base_reads, f"async parallelism={level} read differs"
        assert table == base_table, (
            f"async parallelism={level} chunk table differs"
        )
        assert objects == base_objects, (
            f"async parallelism={level} left different objects in the cloud"
        )
