"""Property-based tests for chunking invariants."""

from hypothesis import given, settings, strategies as st

from repro.chunking import ContentDefinedChunker, FixedSizeChunker
from repro.chunking.cdc import select_boundaries


def make_chunker():
    return ContentDefinedChunker(min_size=32, avg_size=128, max_size=512, window=8)


@given(data=st.binary(min_size=0, max_size=5000))
@settings(max_examples=60, deadline=None)
def test_chunks_partition_input(data):
    chunks = make_chunker().chunk_bytes(data)
    assert b"".join(c.data for c in chunks) == data
    if data:
        assert chunks[0].offset == 0
        assert chunks[-1].offset + chunks[-1].size == len(data)


@given(data=st.binary(min_size=1, max_size=5000))
@settings(max_examples=60, deadline=None)
def test_chunk_size_bounds(data):
    chunks = make_chunker().chunk_bytes(data)
    for c in chunks[:-1]:
        assert 32 <= c.size <= 512
    assert 1 <= chunks[-1].size <= 512


@given(data=st.binary(min_size=0, max_size=3000), size=st.integers(1, 500))
@settings(max_examples=60, deadline=None)
def test_fixed_chunker_partition(data, size):
    chunks = FixedSizeChunker(chunk_size=size).chunk_bytes(data)
    assert b"".join(c.data for c in chunks) == data
    for c in chunks[:-1]:
        assert c.size == size


@given(
    candidates=st.lists(st.integers(1, 999), max_size=30).map(sorted),
    length=st.integers(1, 1000),
    min_size=st.integers(1, 100),
    span=st.integers(1, 400),
)
@settings(max_examples=100, deadline=None)
def test_select_boundaries_invariants(candidates, length, min_size, span):
    max_size = min_size + span
    cuts = select_boundaries(candidates, length, min_size, max_size)
    assert cuts[-1] == length
    assert cuts == sorted(set(cuts))
    prev = 0
    for cut in cuts:
        assert cut - prev <= max_size
        prev = cut


@given(data=st.binary(min_size=200, max_size=3000))
@settings(max_examples=40, deadline=None)
def test_chunk_ids_are_content_hashes(data):
    from repro.util.hashing import sha1_hex

    for chunk in make_chunker().chunk_bytes(data):
        assert chunk.id == sha1_hex(chunk.data)
