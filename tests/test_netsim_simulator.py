"""Unit tests for the max-min fair flow simulator."""

import math

import pytest

from repro.errors import TransferError
from repro.netsim import FlowSimulator, Link, RateTrace, TransferRequest


def sim(links, **kwargs):
    return FlowSimulator(links, **kwargs)


class TestSingleFlow:
    def test_basic_time(self):
        links = {"a": Link.symmetric("a", 2e6, rtt_s=0.1)}
        res = sim(links).run([TransferRequest("a", 10_000_000, "down")])
        assert res[0].end == pytest.approx(0.1 + 5.0)
        assert res[0].completed
        assert res[0].bytes_done == 10_000_000

    def test_zero_size_costs_rtt(self):
        links = {"a": Link.symmetric("a", 1e6, rtt_s=0.25)}
        res = sim(links).run([TransferRequest("a", 0, "up")])
        assert res[0].end == pytest.approx(0.25)

    def test_start_at_offsets(self):
        links = {"a": Link.symmetric("a", 1e6)}
        res = sim(links).run([TransferRequest("a", 1e6, "down", start_at=5.0)])
        assert res[0].start == pytest.approx(5.0)
        assert res[0].end == pytest.approx(6.0)

    def test_start_time_shifts_batch(self):
        links = {"a": Link.symmetric("a", 1e6)}
        res = sim(links).run(
            [TransferRequest("a", 1e6, "down")], start_time=100.0
        )
        assert res[0].end == pytest.approx(101.0)

    def test_unknown_link(self):
        with pytest.raises(TransferError):
            sim({}).run([TransferRequest("ghost", 1, "down")])


class TestSharing:
    def test_link_shared_equally(self):
        links = {"a": Link.symmetric("a", 2e6)}
        res = sim(links).run(
            [TransferRequest("a", 2e6, "down"), TransferRequest("a", 2e6, "down")]
        )
        for r in res:
            assert r.end == pytest.approx(2.0)

    def test_client_cap_shared(self):
        links = {"a": Link.symmetric("a", 10e6), "b": Link.symmetric("b", 10e6)}
        res = sim(links, client_down=10e6).run(
            [TransferRequest("a", 10e6, "down"), TransferRequest("b", 10e6, "down")]
        )
        for r in res:
            assert r.end == pytest.approx(2.0)

    def test_directions_independent(self):
        links = {"a": Link.symmetric("a", 10e6)}
        res = sim(links, client_up=10e6, client_down=10e6).run(
            [TransferRequest("a", 10e6, "up"), TransferRequest("a", 10e6, "down")]
        )
        # up and down pools don't contend (and per-link caps are per
        # direction), so both finish in 1s
        for r in res:
            assert r.end == pytest.approx(1.0)

    def test_max_min_redistribution(self):
        # slow flow frozen at its link cap; fast flow takes the rest,
        # then speeds up when the slow flow finishes
        links = {"s": Link.symmetric("s", 1e6), "f": Link.symmetric("f", 100e6)}
        res = sim(links, client_down=5e6).run(
            [TransferRequest("s", 1e6, "down"), TransferRequest("f", 8e6, "down")]
        )
        assert res[0].end == pytest.approx(1.0)
        assert res[1].end == pytest.approx(1.8)

    def test_staggered_arrivals(self):
        links = {"a": Link.symmetric("a", 2e6)}
        res = sim(links).run(
            [
                TransferRequest("a", 2e6, "down"),
                TransferRequest("a", 2e6, "down", start_at=0.5),
            ]
        )
        # flow 1 alone for 0.5s (1 MB done), then shares; remaining 1 MB
        # at 1 MB/s -> done at 1.5s.  Flow 2 has 1 MB left by then and
        # the whole 2 MB/s link to itself -> done at 2.0s
        assert res[0].end == pytest.approx(1.5)
        assert res[1].end == pytest.approx(2.0)


class TestTraces:
    def test_rate_change_mid_flow(self):
        tr = RateTrace([10.0], [1e6, 2e6])
        links = {"a": Link("a", 0.0, tr)}
        res = sim(links).run([TransferRequest("a", 15_000_000, "down")])
        assert res[0].end == pytest.approx(12.5)

    def test_zero_capacity_interval_pauses(self):
        tr = RateTrace([1.0, 2.0], [1e6, 0.0, 1e6])
        links = {"a": Link("a", 0.0, tr)}
        res = sim(links).run([TransferRequest("a", 2e6, "down")])
        # 1 MB in 1s, stalled 1s, 1 MB after
        assert res[0].end == pytest.approx(3.0)

    def test_permanent_stall_raises(self):
        links = {"a": Link("a", 0.0, RateTrace.constant(0.0))}
        with pytest.raises(TransferError):
            sim(links).run([TransferRequest("a", 1e6, "down")])


class TestGroupQuota:
    def test_cancels_stragglers(self):
        links = {
            "fast1": Link.symmetric("fast1", 10e6),
            "fast2": Link.symmetric("fast2", 10e6),
            "slow": Link.symmetric("slow", 1e6),
        }
        reqs = [TransferRequest(c, 5e6, "up", group="g") for c in links]
        res = sim(links).run(reqs, group_quota={"g": 2})
        done = {r.request.link_id for r in res if r.completed}
        assert done == {"fast1", "fast2"}
        cancelled = [r for r in res if not r.completed]
        assert len(cancelled) == 1
        assert 0 < cancelled[0].bytes_done < 5e6

    def test_quota_counts_only_group_members(self):
        links = {
            "a": Link.symmetric("a", 10e6),
            "b": Link.symmetric("b", 1e6),
        }
        reqs = [
            TransferRequest("a", 1e6, "up"),  # no group
            TransferRequest("b", 5e6, "up", group="g"),
        ]
        res = sim(links).run(reqs, group_quota={"g": 1})
        assert all(r.completed for r in res)

    def test_cancels_unactivated_members(self):
        links = {
            "fast": Link.symmetric("fast", 10e6),
            "slow": Link.symmetric("slow", 1e6, rtt_s=10.0),
        }
        reqs = [
            TransferRequest("fast", 1e6, "up", group="g"),
            TransferRequest("slow", 1e6, "up", group="g"),  # still in RTT
        ]
        res = sim(links).run(reqs, group_quota={"g": 1})
        assert res[0].completed
        assert not res[1].completed


class TestValidation:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            TransferRequest("a", -1, "down")
        with pytest.raises(ValueError):
            TransferRequest("a", 1, "sideways")
        with pytest.raises(ValueError):
            TransferRequest("a", 1, "up", start_at=-1)

    def test_simulator_validation(self):
        with pytest.raises(ValueError):
            FlowSimulator({}, client_up=0)

    def test_results_in_request_order(self):
        links = {"a": Link.symmetric("a", 1e6), "b": Link.symmetric("b", 5e6)}
        reqs = [
            TransferRequest("a", 1e6, "down", tag="first"),
            TransferRequest("b", 1e6, "down", tag="second"),
        ]
        res = sim(links).run(reqs)
        assert [r.request.tag for r in res] == ["first", "second"]
