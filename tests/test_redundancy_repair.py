"""Self-healing redundancy: degraded writes become debts, debts drain.

The acceptance scenario: a write while one provider is down lands with
``t <= shares < n`` and is *accepted* — but the deficit is recorded as
a durable debt, and once the fleet heals the daemon's repair pass
regenerates the missing shares from any ``t`` healthy ones and retires
the debt.  A kill-point sweep proves the repair itself is
crash-idempotent: re-dispersal is journaled as a ``migrate`` intent, so
recovery adopts landed shares and the next pass retires the debt with
zero transfers and zero duplicates.
"""

from __future__ import annotations

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.daemon import SyncDaemon
from repro.core.naming import chunk_share_object_name
from repro.core.transfer import DirectEngine
from repro.csp.memory import InMemoryCSP
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.faults.plan import SimulatedCrash
from repro.recovery import IntentJournal
from repro.redundancy import DebtLedger, run_repair
from repro.util.clock import SimClock

from tests.conftest import SMALL_CHUNKS, deterministic_bytes

CONFIG = dict(key="heal-key", t=2, n=3, **SMALL_CHUNKS)

#: Uploads to csp2 fail while the sim clock is inside this window; the
#: fleet "heals" the moment the clock passes it.
OUTAGE_WINDOW = (0.0, 10.0)


def _outage_plan(seed, window=OUTAGE_WINDOW):
    return FaultPlan(
        [FaultSpec(kind=FaultKind.OUTAGE, csp_ids=("csp2",),
                   ops=("upload",), window_time=window)],
        seed=seed,
    )


def _client(providers, tmp_path, clock=None, client_id="alice"):
    clock = clock or SimClock()
    engine = DirectEngine({p.csp_id: p for p in providers}, clock=clock)
    return CyrusClient.create(
        providers, CyrusConfig(**CONFIG), client_id=client_id,
        engine=engine,
        journal=IntentJournal(tmp_path / "journal.jsonl", clock=clock,
                              fsync=False),
        debt_ledger=DebtLedger(tmp_path / "debts.jsonl", fsync=False),
    )


def _degraded_world(tmp_path, seed, window=OUTAGE_WINDOW):
    """Three providers, csp2 down for uploads: puts land with 2 < n
    shares.  Returns (client, inner providers, clock, put report)."""
    clock = SimClock()
    inner = [InMemoryCSP(f"csp{i}") for i in range(3)]
    wrapped = [FaultyProvider(p, _outage_plan(seed, window), clock=clock)
               for p in inner]
    client = _client(wrapped, tmp_path, clock=clock)
    report = client.put("wounded.bin", deterministic_bytes(2600, seed=seed))
    return client, inner, clock, report


def _share_census(inner):
    """chunk-share object name -> number of providers holding it."""
    census: dict[str, int] = {}
    for provider in inner:
        for info in provider.list(prefix=""):
            name = info.name
            if len(name) == 40 and all(c in "0123456789abcdef"
                                       for c in name):
                census[name] = census.get(name, 0) + 1
    return census


def _assert_fully_redundant(client, inner):
    """Every chunk holds exactly n distinct shares, each stored once."""
    census = _share_census(inner)
    expected: set[str] = set()
    for chunk_id in client.chunk_table.all_chunk_ids():
        location = client.chunk_table.get(chunk_id)
        names = {chunk_share_object_name(i, chunk_id)
                 for i in range(location.n)}
        expected |= names
        for name in names:
            assert census.get(name, 0) == 1, (
                f"share {name[:12]} stored {census.get(name, 0)} times"
            )
    assert set(census) == expected, "orphan share objects on providers"


class TestDegradedWriteSurface:
    """Satellite: the degraded_chunks plumbing is live end to end."""

    def test_put_reports_and_records_the_deficit(self, tmp_path,
                                                 fault_seed):
        client, _inner, _clock, report = _degraded_world(
            tmp_path, fault_seed,
        )
        assert report.degraded_chunks, "outage write must report degraded"
        # the counter satellites ride on
        snap = client.obs.snapshot()
        assert snap.counter_total("cyrus_upload_degraded_chunks_total") == \
            len(report.degraded_chunks)
        assert snap.counter_total("cyrus_debt_recorded_total") >= 1
        # one open chunk debt per degraded chunk, blaming the dead
        # provider (the degraded metadata publish adds its own "meta"
        # debt on top)
        ledger = client.debt_ledger
        chunk_debts = [e for e in ledger.open_debts()
                       if e.kind == "chunk"]
        assert len(chunk_debts) == len(report.degraded_chunks)
        for chunk_id in report.degraded_chunks:
            entry = ledger.debt_for(chunk_id)
            assert entry is not None
            assert "csp2" in entry.failed_csps
            assert entry.missing  # at least one index short
        # the debt was journaled inside the put's intent, so recovery
        # replay can reconcile it after a crash
        assert '"debt"' in (tmp_path / "journal.jsonl").read_text()

    def test_degraded_file_still_reads_back(self, tmp_path, fault_seed):
        client, _inner, _clock, _report = _degraded_world(
            tmp_path, fault_seed,
        )
        assert client.get("wounded.bin").data == \
            deterministic_bytes(2600, seed=fault_seed)


class TestSelfHealing:
    """The acceptance scenario, end to end through the daemon."""

    def test_daemon_drains_debt_once_fleet_heals(self, tmp_path,
                                                 fault_seed):
        client, inner, clock, report = _degraded_world(tmp_path, fault_seed)
        degraded = len(report.degraded_chunks)
        assert degraded >= 1

        # fleet heals: clock leaves the outage window and outlives the
        # circuit breaker's reset timeout
        clock.advance_to(100.0)
        daemon = SyncDaemon(client, interval_s=30.0, repair_budget=64)
        tick = daemon.tick()
        # every chunk debt plus the degraded publish's one meta debt
        assert tick.debts_retired == degraded + 1
        assert tick.debt_shares_rebuilt >= degraded
        assert tick.debts_open == 0
        assert len(client.debt_ledger) == 0

        # back to full n-way redundancy, verified at the providers
        _assert_fully_redundant(client, inner)
        scrub = client.scrub()
        assert scrub.shares_missing == 0
        assert scrub.shares_corrupt == 0
        assert client.get("wounded.bin").data == \
            deterministic_bytes(2600, seed=fault_seed)

        # metrics agree with the report
        snap = client.obs.snapshot()
        assert snap.counter_total("cyrus_debt_retired_total") == degraded + 1
        # an idle tick stays idle
        clock.advance(30.0)
        assert daemon.tick().debts_retired == 0

    def test_repair_waits_while_fleet_still_down(self, tmp_path,
                                                 fault_seed):
        """Backoff: while csp2 keeps refusing uploads, each due attempt
        fails once and the entry steps back exponentially."""
        client, _inner, clock, report = _degraded_world(
            tmp_path, fault_seed, window=(0.0, 10.0**9),
        )
        clock.advance_to(100.0)
        client.probe_failed_csps()  # listing works; only uploads fail
        first = run_repair(client)
        assert first.debts_retired == 0
        # chunk debts plus the meta debt all fail while csp2 refuses
        assert first.debts_failed == len(report.degraded_chunks) + 1
        [entry] = [client.debt_ledger.debt_for(c)
                   for c in report.degraded_chunks[:1]]
        assert entry.attempts >= 1

        # immediately re-running defers every entry: backoff not elapsed
        again = run_repair(client)
        assert again.debts_failed == 0
        assert again.debts_deferred == again.debts_seen
        # after the backoff window the entry is due (and fails) again
        clock.advance(31.0 * 2**entry.attempts)
        due = run_repair(client)
        assert due.debts_deferred < due.debts_seen
        later = client.debt_ledger.debt_for(entry.chunk_id)
        assert later.attempts > entry.attempts

    def test_budget_slices_the_repair(self, tmp_path, fault_seed):
        """A budget smaller than one chunk entry's cost (t gets + 1
        put) repairs no chunk; a real budget drains the ledger."""
        client, inner, clock, _report = _degraded_world(
            tmp_path, fault_seed,
        )
        clock.advance_to(100.0)
        client.probe_failed_csps()
        starved = run_repair(client, budget_shares=1)
        assert starved.budget_exhausted
        # at most the meta debt (one tiny slot overwrite, cost 1) fits;
        # every chunk entry needs t gets + 1 put and spends nothing
        assert starved.transfers_used <= 1
        assert {e.chunk_id for e in client.debt_ledger.open_debts()
                if e.kind == "chunk"} == set(_report.degraded_chunks)

        fed = run_repair(client, budget_shares=1000)
        assert fed.drained
        assert fed.transfers_used >= 3  # at least t gets + 1 put
        _assert_fully_redundant(client, inner)

    def test_debt_for_vanished_chunk_retires_moot(self, tmp_path):
        """A chunk gc'd (or never published) owes nothing."""
        clock = SimClock()
        inner = [InMemoryCSP(f"csp{i}") for i in range(3)]
        client = _client(inner, tmp_path, clock=clock)
        client.debt_ledger.record("f" * 40, missing=(1,))
        report = run_repair(client)
        assert report.debts_retired == 1
        assert report.transfers_used == 0
        assert len(client.debt_ledger) == 0


class TestDebtReconciliation:
    """Crash between the journal's debt record and the ledger append:
    roll-forward re-records the debt from the intent."""

    def test_rollforward_reconciles_journal_only_debt(self, tmp_path):
        clock = SimClock()
        inner = [InMemoryCSP(f"csp{i}") for i in range(3)]
        client = _client(inner, tmp_path, clock=clock)
        data = deterministic_bytes(900, seed=3)
        client.put("ok.bin", data)
        [chunk_id] = list(client.chunk_table.all_chunk_ids())[:1]

        # hand-craft the crash remnant: a put intent that reached
        # meta-published and journaled a debt, but died before the
        # ledger append (and before commit)
        intent_id = client.journal.begin("put", name="ok.bin")
        client.journal.record(intent_id, "debt", chunk=chunk_id,
                              missing=[2], failed=["csp2"])
        client.journal.record(intent_id, "meta-published",
                              node=client.tree.latest("ok.bin").node_id)
        assert client.debt_ledger.debt_for(chunk_id) is None

        report = client.run_recovery()
        assert report.debts_reconciled == 1
        entry = client.debt_ledger.debt_for(chunk_id)
        assert entry is not None
        assert entry.missing == (2,)
        assert entry.failed_csps == ("csp2",)
        # and the reconciled debt drains like any other
        assert run_repair(client).debts_open == 0


class TestRepairKillPoints:
    """Satellite: crash anywhere between re-dispersal and retirement
    leaves the system idempotent — no duplicate shares, and the debt is
    eventually retired."""

    KILL_POINTS = range(0, 18)

    def test_sweep(self, tmp_path, fault_seed):
        base = deterministic_bytes(2600, seed=fault_seed)
        for kill_op in self.KILL_POINTS:
            world = tmp_path / f"k{kill_op}"
            world.mkdir()
            client, inner, clock, report = _degraded_world(
                world, fault_seed,
            )
            assert report.degraded_chunks
            del client  # generation one is gone

            # generation two repairs — and dies at provider op #kill_op
            crash_clock = SimClock(start=100.0)
            plan = FaultPlan(
                [FaultSpec(kind=FaultKind.CRASH,
                           window_ops=(kill_op, None), max_hits=1)],
                seed=fault_seed,
            )
            wrapped = [FaultyProvider(p, plan, clock=crash_clock)
                       for p in inner]
            try:
                victim = _client(wrapped, world, clock=crash_clock,
                                 client_id="victim")
                victim.run_recovery()
                victim.repair_debts()
            except SimulatedCrash:
                pass

            # generation three: recover, then finish the repair
            survivor = _client(inner, world,
                               clock=SimClock(start=1000.0),
                               client_id="survivor")
            recovery = survivor.run_recovery()
            assert recovery.incomplete_remaining == 0
            final = survivor.repair_debts()
            assert final.drained, f"kill point {kill_op}: debt not drained"
            assert len(survivor.debt_ledger) == 0
            _assert_fully_redundant(survivor, inner)
            scrub = survivor.scrub()
            assert scrub.shares_missing == 0
            assert scrub.shares_corrupt == 0
            assert survivor.get("wounded.bin").data == base
            assert survivor.run_recovery().clean
