"""Unit tests for the upload pipeline (Algorithm 2)."""

import pytest

from repro.core.naming import chunk_share_object_name
from repro.errors import TransferError
from repro.metadata.node import ROOT_ID
from tests.conftest import deterministic_bytes


class TestBasicUpload:
    def test_report_fields(self, client):
        data = deterministic_bytes(5000, seed=1)
        report = client.put("f.bin", data)
        assert report.new_chunks > 0
        assert report.bytes_uploaded > 0
        assert not report.unchanged
        assert report.node.name == "f.bin"
        assert report.node.size == 5000

    def test_node_lineage(self, client):
        r1 = client.put("f.bin", deterministic_bytes(2000, 1))
        r2 = client.put("f.bin", deterministic_bytes(2000, 2))
        assert r1.node.prev_id == ROOT_ID
        assert r2.node.prev_id == r1.node.node_id

    def test_unchanged_upload_is_noop(self, client):
        data = deterministic_bytes(3000, 3)
        r1 = client.put("f.bin", data)
        r2 = client.put("f.bin", data)
        assert r2.unchanged
        assert r2.bytes_uploaded == 0
        assert r2.node.node_id == r1.node.node_id

    def test_chunk_records_cover_file(self, client):
        data = deterministic_bytes(9000, 4)
        node = client.put("f.bin", data).node
        covered = sorted((c.offset, c.size) for c in node.chunks)
        pos = 0
        for offset, size in covered:
            assert offset == pos
            pos += size
        assert pos == 9000

    def test_share_records_reference_active_csps(self, client, csps):
        node = client.put("f.bin", deterministic_bytes(4000, 5)).node
        ids = {c.csp_id for c in csps}
        assert {s.csp_id for s in node.shares} <= ids

    def test_n_shares_per_chunk(self, client, config):
        node = client.put("f.bin", deterministic_bytes(4000, 6)).node
        for record in node.chunks:
            assert len(node.shares_of(record.chunk_id)) == config.n

    def test_shares_stored_under_hash_names(self, client, csps):
        node = client.put("f.bin", deterministic_bytes(2000, 7)).node
        share = node.shares[0]
        name = chunk_share_object_name(share.index, share.chunk_id)
        provider = next(c for c in csps if c.csp_id == share.csp_id)
        provider.download(name)  # must exist

    def test_empty_file(self, client):
        report = client.put("empty.txt", b"")
        assert report.node.size == 0
        assert client.get("empty.txt").data == b""


class TestDedup:
    def test_identical_content_under_new_name(self, client):
        data = deterministic_bytes(6000, 8)
        client.put("a.bin", data)
        report = client.put("b.bin", data)
        assert report.new_chunks == 0
        assert report.dedup_chunks > 0

    def test_partial_overlap(self, client):
        data = deterministic_bytes(20000, 9)
        client.put("a.bin", data)
        edited = data[:5000] + b"PATCH" + data[5000:]
        report = client.put("a.bin", edited)
        assert report.dedup_chunks > 0
        assert report.new_chunks >= 1

    def test_dedup_reduces_stored_bytes(self, csps, config):
        from repro.core.client import CyrusClient

        client = CyrusClient.create(csps, config, client_id="a")
        data = deterministic_bytes(8000, 10)
        def share_objects():
            return {
                (c.csp_id, info.name) for c in csps for info in c.list(prefix="")
                if len(info.name) == 40
            }

        client.put("one.bin", data)
        before = sum(c.stored_bytes for c in csps)
        shares_before = share_objects()
        client.put("two.bin", data)
        after = sum(c.stored_bytes for c in csps)
        # only new metadata is stored for the duplicate file (the node
        # carries n per-share fingerprints per chunk, so it outweighs a
        # digest-less node); re-storing the chunk shares would have
        # added >= size * n/t = 12000 bytes
        assert after - before < 12000
        assert share_objects() == shares_before  # not one new share

    def test_repeated_chunk_within_file(self, client):
        # same span twice: the second occurrence must dedup
        block = deterministic_bytes(4096, 11)
        report = client.put("rep.bin", block + block)
        assert report.dedup_chunks >= 1
        assert client.get("rep.bin").data == block + block


class TestFailureHandling:
    def test_upload_retries_on_failed_csp(self, csps, config):
        from repro.core.client import CyrusClient
        from repro.core.cloud import CSPStatus
        from repro.csp import InMemoryCSP
        from repro.errors import CSPUnavailableError

        class FlakyCSP(InMemoryCSP):
            def upload(self, name, data):
                raise CSPUnavailableError("always down", csp_id=self.csp_id)

        providers = [InMemoryCSP("ok0"), InMemoryCSP("ok1"),
                     InMemoryCSP("ok2"), FlakyCSP("bad")]
        client = CyrusClient.create(providers, config, client_id="a")
        data = deterministic_bytes(5000, 12)
        report = client.put("f.bin", data)
        # the bad CSP got marked failed and shares landed elsewhere
        assert client.cloud.status_of("bad") is CSPStatus.FAILED
        assert {s.csp_id for s in report.node.shares} <= {"ok0", "ok1", "ok2"}
        assert client.get("f.bin").data == data

    def test_upload_fails_below_t_shares(self, config):
        from repro.core.client import CyrusClient
        from repro.csp import InMemoryCSP
        from repro.errors import CSPUnavailableError

        class DeadCSP(InMemoryCSP):
            def upload(self, name, data):
                raise CSPUnavailableError("dead", csp_id=self.csp_id)

        providers = [InMemoryCSP("ok"), DeadCSP("d1"), DeadCSP("d2")]
        client = CyrusClient.create(providers, config, client_id="a")
        with pytest.raises(TransferError):
            client.put("f.bin", deterministic_bytes(3000, 13))

    def test_degraded_chunk_reported(self, config):
        from repro.core.client import CyrusClient
        from repro.csp import InMemoryCSP
        from repro.errors import CSPUnavailableError

        class DeadCSP(InMemoryCSP):
            def upload(self, name, data):
                raise CSPUnavailableError("dead", csp_id=self.csp_id)

        # n=3 but only 2 CSPs can store: t=2 reached, n missed
        providers = [InMemoryCSP("ok0"), InMemoryCSP("ok1"), DeadCSP("d")]
        client = CyrusClient.create(providers, config, client_id="a")
        report = client.put("f.bin", deterministic_bytes(3000, 14))
        assert report.degraded_chunks
        assert client.get("f.bin").data == deterministic_bytes(3000, 14)


class TestTombstones:
    def test_delete_creates_tombstone(self, client):
        client.put("f.bin", deterministic_bytes(1000, 15))
        report = client.delete("f.bin")
        assert report.node.deleted
        assert "f.bin" not in [e.name for e in client.list_files()]

    def test_tombstone_keeps_chunks(self, client, csps):
        data = deterministic_bytes(3000, 16)
        client.put("f.bin", data)
        before = sum(c.stored_bytes for c in csps)
        client.delete("f.bin")
        after = sum(c.stored_bytes for c in csps)
        assert after >= before  # shares untouched; only metadata added

    def test_delete_then_reupload_chains_history(self, client):
        client.put("f.bin", deterministic_bytes(1000, 17))
        client.delete("f.bin")
        client.put("f.bin", deterministic_bytes(1000, 18))
        assert len(client.history("f.bin")) == 3
