"""Unit tests for the content-defined chunker (both engines)."""

import os

import pytest

from repro.chunking import ContentDefinedChunker, FixedSizeChunker
from repro.chunking.cdc import select_boundaries
from repro.errors import ChunkingError

PARAMS = dict(min_size=64, avg_size=256, max_size=1024, window=16)


@pytest.fixture(params=["vectorized", "reference"])
def chunker(request):
    return ContentDefinedChunker(engine=request.param, **PARAMS)


class TestBoundaries:
    def test_deterministic(self, chunker):
        data = os.urandom(20_000)
        assert chunker.boundaries(data) == chunker.boundaries(data)

    def test_reassembly(self, chunker):
        data = os.urandom(10_000)
        chunks = chunker.chunk_bytes(data)
        assert b"".join(c.data for c in chunks) == data

    def test_offsets_contiguous(self, chunker):
        data = os.urandom(8_000)
        chunks = chunker.chunk_bytes(data)
        pos = 0
        for c in chunks:
            assert c.offset == pos
            pos += c.size
        assert pos == len(data)

    def test_size_bounds(self, chunker):
        data = os.urandom(50_000)
        chunks = chunker.chunk_bytes(data)
        for c in chunks[:-1]:
            assert PARAMS["min_size"] <= c.size <= PARAMS["max_size"]
        assert chunks[-1].size <= PARAMS["max_size"]

    def test_average_near_target(self):
        cdc = ContentDefinedChunker(**PARAMS)
        data = os.urandom(200_000)
        sizes = [c.size for c in cdc.chunk_bytes(data)]
        avg = sum(sizes) / len(sizes)
        # min-size filtering skews the mean upward; just sanity-band it
        assert PARAMS["avg_size"] * 0.5 < avg < PARAMS["avg_size"] * 3

    def test_empty_input(self, chunker):
        assert chunker.boundaries(b"") == []
        assert chunker.chunk_bytes(b"") == []

    def test_tiny_input_single_chunk(self, chunker):
        chunks = chunker.chunk_bytes(b"tiny")
        assert len(chunks) == 1
        assert chunks[0].data == b"tiny"

    def test_constant_data_forced_cuts(self, chunker):
        # constant bytes rarely hit the boundary criterion; max_size
        # must force cuts regardless
        data = b"\x00" * 10_000
        chunks = chunker.chunk_bytes(data)
        assert all(c.size <= PARAMS["max_size"] for c in chunks)
        assert b"".join(c.data for c in chunks) == data


class TestLocality:
    def test_edit_preserves_most_chunks(self, chunker):
        data = os.urandom(60_000)
        before = {c.id for c in chunker.chunk_bytes(data)}
        edited = data[:100] + b"INSERTED" + data[100:]
        after = {c.id for c in chunker.chunk_bytes(edited)}
        assert len(before & after) / len(before) > 0.7

    def test_shift_invariance(self, chunker):
        # dropping a prefix only perturbs early cuts
        data = os.urandom(60_000)
        cuts = set(chunker.boundaries(data)[3:-1])
        shifted = {c + 997 for c in chunker.boundaries(data[997:])[3:-1]}
        if cuts:
            assert len(cuts & shifted) / len(cuts) > 0.7

    def test_fixed_size_has_no_locality(self):
        # the contrast that motivates CDC (ablation baseline)
        fixed = FixedSizeChunker(chunk_size=256)
        data = os.urandom(20_000)
        before = {c.id for c in fixed.chunk_bytes(data)}
        after = {c.id for c in fixed.chunk_bytes(b"X" + data)}
        assert len(before & after) <= 2


class TestSelectBoundaries:
    def test_respects_min(self):
        cuts = select_boundaries([10, 20, 200], 300, min_size=50, max_size=400)
        assert cuts == [200, 300]

    def test_forces_max(self):
        cuts = select_boundaries([], 1000, min_size=10, max_size=300)
        assert cuts == [300, 600, 900, 1000]

    def test_empty_input(self):
        assert select_boundaries([], 0, 10, 100) == []

    def test_final_cut_is_length(self):
        cuts = select_boundaries([64], 100, min_size=10, max_size=200)
        assert cuts[-1] == 100

    def test_candidate_at_length_ignored(self):
        cuts = select_boundaries([100], 100, min_size=10, max_size=200)
        assert cuts == [100]


class TestValidation:
    def test_avg_power_of_two(self):
        with pytest.raises(ChunkingError):
            ContentDefinedChunker(min_size=10, avg_size=100, max_size=1000)

    def test_ordering(self):
        with pytest.raises(ChunkingError):
            ContentDefinedChunker(min_size=1024, avg_size=256, max_size=2048)

    def test_bad_engine(self):
        with pytest.raises(ChunkingError):
            ContentDefinedChunker(engine="gpu")

    def test_bad_window(self):
        with pytest.raises(ChunkingError):
            ContentDefinedChunker(window=1)

    def test_avg_cap(self):
        with pytest.raises(ChunkingError):
            ContentDefinedChunker(min_size=1, avg_size=1 << 25, max_size=1 << 26)


class TestSeeds:
    def test_different_seed_different_cuts(self):
        data = os.urandom(50_000)
        a = ContentDefinedChunker(seed=1, **PARAMS).boundaries(data)
        b = ContentDefinedChunker(seed=2, **PARAMS).boundaries(data)
        assert a != b

    def test_same_seed_shared_across_instances(self):
        # clients of one cloud share the seed => identical chunking
        data = os.urandom(30_000)
        a = ContentDefinedChunker(seed=9, **PARAMS).boundaries(data)
        b = ContentDefinedChunker(seed=9, **PARAMS).boundaries(data)
        assert a == b


class TestFixedChunker:
    def test_sizes(self):
        fixed = FixedSizeChunker(chunk_size=100)
        chunks = fixed.chunk_bytes(b"z" * 250)
        assert [c.size for c in chunks] == [100, 100, 50]

    def test_empty(self):
        assert FixedSizeChunker().chunk_bytes(b"") == []

    def test_exact_multiple(self):
        chunks = FixedSizeChunker(chunk_size=50).chunk_bytes(b"y" * 100)
        assert [c.size for c in chunks] == [50, 50]

    def test_rejects_zero(self):
        with pytest.raises(ChunkingError):
            FixedSizeChunker(chunk_size=0)
