"""Unit tests for the background sync daemon."""

import pytest

from repro.core.daemon import SyncDaemon
from repro.core.config import CyrusConfig
from tests.conftest import SMALL_CHUNKS, deterministic_bytes


class TestTicks:
    def test_tick_pulls_remote_changes(self, client, second_client):
        daemon = SyncDaemon(second_client)
        client.put("f.bin", deterministic_bytes(2000, 1))
        entry = daemon.tick(now=0.0)
        assert entry.new_nodes == 1
        assert second_client.get("f.bin", sync_first=False).data == (
            deterministic_bytes(2000, 1)
        )

    def test_scheduling(self, client):
        daemon = SyncDaemon(client, interval_s=10.0)
        assert daemon.due(0.0)
        daemon.tick(now=0.0)
        assert not daemon.due(5.0)
        assert daemon.due(10.0)

    def test_conflicts_reported(self, client, second_client):
        client.put("doc.txt", b"base " * 50)
        second_client.sync()
        client.uploader.upload("doc.txt", b"AA " * 60, client_id="alice")
        second_client.uploader.upload("doc.txt", b"BB " * 60,
                                      client_id="bob")
        daemon = SyncDaemon(client)
        entry = daemon.tick(now=1.0)
        assert entry.conflicts_seen == 1
        assert entry.conflicts_resolved == 0

    def test_auto_resolve(self, client, second_client):
        client.put("doc.txt", b"base " * 50)
        second_client.sync()
        client.uploader.upload("doc.txt", b"AA " * 60, client_id="alice")
        second_client.uploader.upload("doc.txt", b"BB " * 60,
                                      client_id="bob")
        daemon = SyncDaemon(client, auto_resolve=True)
        entry = daemon.tick(now=1.0)
        assert entry.conflicts_resolved == 1
        assert not client.conflicts()

    def test_probe_recovery_in_tick(self, client):
        client.cloud.mark_failed("csp1")
        daemon = SyncDaemon(client)
        entry = daemon.tick(now=0.0)
        assert entry.csps_recovered == ("csp1",)


class TestRunUntil:
    def make_sim_client(self):
        from repro.bench import build_paper_testbed

        env = build_paper_testbed()
        config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        return env, env.new_client(config, client_id="daemon")

    def test_ticks_on_schedule(self):
        env, client = self.make_sim_client()
        daemon = SyncDaemon(client, interval_s=60.0)
        ticks = daemon.run_until(300.0)
        assert len(ticks) == 6  # t = 0, 60, ..., 300
        assert [t.at for t in ticks] == [0.0, 60.0, 120.0, 180.0, 240.0,
                                         300.0]

    def test_two_daemons_converge(self):
        env, writer = self.make_sim_client()
        config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        reader = env.new_client(config, client_id="reader")
        daemon = SyncDaemon(reader, interval_s=30.0)
        writer.put("shared.bin", deterministic_bytes(3000, 5),
                   sync_first=False)
        daemon.run_until(60.0)
        assert reader.get("shared.bin", sync_first=False).data == (
            deterministic_bytes(3000, 5)
        )

    def test_wall_clock_rejected(self, client):
        daemon = SyncDaemon(client)
        with pytest.raises(TypeError):
            daemon.run_until(10.0)
