"""Shared fixtures for the test suite.

The small chunk sizes here keep tests fast while still producing
multi-chunk files; they do not change any algorithmic behaviour.
"""

from __future__ import annotations

import random

import pytest

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp.memory import InMemoryCSP


SMALL_CHUNKS = dict(chunk_min=128, chunk_avg=512, chunk_max=4096)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--fault-seed",
        type=int,
        default=2026,
        help="seed for the chaos/crash fault schedules (CI sweeps "
        "several values; determinism tests keep their own fixed seeds)",
    )


@pytest.fixture
def fault_seed(request: pytest.FixtureRequest) -> int:
    """The CLI-selected seed for randomized fault plans."""
    return request.config.getoption("--fault-seed")


@pytest.fixture
def config() -> CyrusConfig:
    """A (2, 3) config with test-size chunks."""
    return CyrusConfig(key="test-key", t=2, n=3, **SMALL_CHUNKS)


@pytest.fixture
def csps() -> list[InMemoryCSP]:
    """Four in-memory providers."""
    return [InMemoryCSP(f"csp{i}") for i in range(4)]


@pytest.fixture
def client(csps, config) -> CyrusClient:
    """A ready CYRUS client over the four providers."""
    return CyrusClient.create(csps, config, client_id="alice")


@pytest.fixture
def second_client(csps, config) -> CyrusClient:
    """An independent client over the same providers (another device)."""
    return CyrusClient.create(csps, config, client_id="bob")


def deterministic_bytes(size: int, seed: int = 0) -> bytes:
    """Seeded random content (not a fixture so tests can vary params)."""
    return random.Random(seed).randbytes(size)
