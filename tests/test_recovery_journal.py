"""The write-ahead intent journal: records, parsing, compaction.

The journal is the crash-consistency substrate, so its own failure
modes get direct coverage: torn tails must be skipped (never fatal),
compaction must be atomic and keep incomplete intents, and a record
must round-trip encode/decode byte-exactly for any JSON-safe payload
(hypothesis property).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery import (
    BEGIN,
    COMMIT,
    META_INTENT,
    SHARE_INTENT,
    SHARE_UPLOADED,
    IntentJournal,
    JournalError,
    JournalRecord,
)
from repro.util.clock import SimClock


# -- encode/decode round-trip (hypothesis) --------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)

records = st.builds(
    JournalRecord,
    intent_id=st.text(
        alphabet="0123456789abcdef", min_size=1, max_size=16
    ),
    stage=st.sampled_from(
        (BEGIN, SHARE_INTENT, SHARE_UPLOADED, META_INTENT, COMMIT)
    ),
    seq=st.integers(min_value=0, max_value=2**31),
    op=st.sampled_from(("", "put", "delete", "gc", "migrate")),
    time=st.floats(min_value=0, allow_nan=False, allow_infinity=False,
                   width=32),
    fields=st.dictionaries(
        st.text(min_size=1, max_size=10), json_values, max_size=4
    ),
)


class TestRecordRoundTrip:
    @given(record=records)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_is_identity(self, record):
        assert JournalRecord.decode(record.encode()) == record

    @given(record=records)
    @settings(max_examples=50, deadline=None)
    def test_encoding_is_one_clean_json_line(self, record):
        blob = record.encode()
        assert blob.endswith(b"\n")
        assert b"\n" not in blob[:-1]  # JSON escapes embedded newlines
        json.loads(blob)  # and it is honest JSON

    def test_unknown_stage_rejected(self):
        with pytest.raises(JournalError):
            JournalRecord(intent_id="a", stage="frobnicate").encode()

    def test_unencodable_fields_rejected(self):
        record = JournalRecord(intent_id="a", stage=BEGIN,
                               fields={"x": object()})
        with pytest.raises(JournalError):
            record.encode()

    def test_garbage_line_rejected(self):
        with pytest.raises(JournalError):
            JournalRecord.decode(b"{not json")
        with pytest.raises(JournalError):
            JournalRecord.decode(b'{"seq": 1}')  # missing id/stage/time


# -- the journal file ------------------------------------------------------

@pytest.fixture
def journal(tmp_path):
    return IntentJournal(tmp_path / "journal.jsonl", clock=SimClock())


class TestIntentJournal:
    def test_begin_record_commit_lifecycle(self, journal):
        iid = journal.begin(
            "put", name="a.bin",
            placements=[{"chunk": "c1", "csp": "csp0", "object": "o1"}],
        )
        journal.record(iid, SHARE_UPLOADED,
                       chunk="c1", csp="csp0", object="o1")
        assert [i.intent_id for i in journal.incomplete()] == [iid]
        journal.commit(iid)
        assert journal.incomplete() == []
        [intent] = journal.intents()
        assert intent.committed and intent.op == "put"
        assert [r.stage for r in intent.records] == [
            BEGIN, SHARE_UPLOADED, COMMIT
        ]

    def test_unknown_op_rejected(self, journal):
        with pytest.raises(JournalError):
            journal.begin("format-disk")

    def test_planned_shares_dedupes_across_stages(self, journal):
        iid = journal.begin(
            "put",
            placements=[{"chunk": "c1", "csp": "csp0", "object": "o1"},
                        {"chunk": "c1", "csp": "csp1", "object": "o1"}],
        )
        # failover re-plan, then the upload confirmation for the same
        # object: rollback set must list (csp2, o1) exactly once
        journal.record(iid, SHARE_INTENT, chunk="c1", csp="csp2",
                       object="o1")
        journal.record(iid, SHARE_UPLOADED, chunk="c1", csp="csp2",
                       object="o1")
        [intent] = journal.intents()
        assert intent.planned_shares() == [
            ("c1", "csp0", "o1"), ("c1", "csp1", "o1"), ("c1", "csp2", "o1"),
        ]

    def test_torn_tail_is_skipped_not_fatal(self, journal):
        iid = journal.begin("put", placements=[])
        journal.commit(iid)
        iid2 = journal.begin("delete", placements=[])
        # the one partial write a crash can produce: a torn last line
        with open(journal.path, "ab") as handle:
            handle.write(b'{"id":"zzzz","seq":99,"stage":"share-up')
        reopened = IntentJournal(journal.path)
        assert [i.intent_id for i in reopened.incomplete()] == [iid2]

    def test_interior_corruption_is_skipped(self, journal):
        iid = journal.begin("put", placements=[])
        lines = journal.path.read_bytes().splitlines(keepends=True)
        journal.path.write_bytes(b"\x00\xffnot a record\n" + b"".join(lines))
        reopened = IntentJournal(journal.path)
        assert [i.intent_id for i in reopened.incomplete()] == [iid]

    def test_seq_continues_across_generations(self, journal):
        journal.begin("put", placements=[])
        highest = max(r.seq for r in journal._parse()[0])
        successor = IntentJournal(journal.path)
        iid = successor.begin("delete", placements=[])
        begin = [i for i in successor.intents()
                 if i.intent_id == iid][0].first(BEGIN)
        assert begin.seq > highest

    def test_compaction_drops_committed_keeps_incomplete(self, journal):
        done = journal.begin("put", placements=[])
        journal.record(done, SHARE_UPLOADED, chunk="c", csp="x", object="o")
        journal.commit(done)
        open_iid = journal.begin(
            "put", placements=[{"chunk": "c2", "csp": "y", "object": "o2"}]
        )
        journal.record(open_iid, SHARE_UPLOADED,
                       chunk="c2", csp="y", object="o2")
        removed = journal.compact()
        assert removed == 3  # begin + share-uploaded + commit
        [survivor] = journal.intents()
        assert survivor.intent_id == open_iid
        assert len(survivor.records) == 2  # nothing of the open intent lost
        assert survivor.planned_shares() == [("c2", "y", "o2")]
        # idempotent: nothing left to drop
        assert journal.compact() == 0

    def test_commit_autocompacts_after_threshold(self, tmp_path):
        journal = IntentJournal(tmp_path / "j.jsonl", compact_after=3)
        for _ in range(3):
            journal.commit(journal.begin("put", placements=[]))
        assert journal.intents() == []  # threshold hit, file compacted
        assert journal._commits_since_compact == 0

    def test_compaction_leaves_no_temp_file(self, journal, tmp_path):
        journal.commit(journal.begin("put", placements=[]))
        journal.compact()
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_missing_file_reads_empty(self, tmp_path):
        journal = IntentJournal(tmp_path / "never-written.jsonl")
        assert journal.intents() == []
        assert journal.incomplete() == []

    def test_begin_without_commit_from_torn_begin_is_ignored(self, journal):
        # records whose begin line was the torn one are unreplayable:
        # they must not surface as incomplete intents
        record = JournalRecord(intent_id="feed", stage=SHARE_UPLOADED,
                               seq=500, fields={"chunk": "c"})
        with open(journal.path, "ab") as handle:
            handle.write(record.encode())
        assert journal.incomplete() == []
        assert len(journal.intents()) == 1  # still visible to inspection
