"""Crash chaos: kill the client at every injected point, then recover.

The ISSUE's acceptance scenario.  Each test runs three client
generations over the same providers and the same journal file:

* **warmup** — a fault-free client stores baseline files;
* **victim** — a fresh client runs one operation against providers
  wrapped with ``FaultKind.CRASH`` armed at the k-th op, so the process
  "dies" (``SimulatedCrash``) at a different pipeline point for every
  ``k`` — before the scatter, between share uploads, around the
  metadata publish;
* **survivor** — a fresh client over the bare providers replays the
  journal via :func:`recover_client`.

After recovery the ground truth (a raw listing of every provider) must
show zero orphan shares, every stored chunk with >= t live shares, all
committed files byte-intact — and a second recovery run must be a
no-op.
"""

from __future__ import annotations

import pytest

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.naming import chunk_share_object_name
from repro.core.transfer import DirectEngine
from repro.csp.memory import InMemoryCSP
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.faults.plan import SimulatedCrash
from repro.recovery import IntentJournal
from repro.util.clock import SimClock

from tests.conftest import SMALL_CHUNKS, deterministic_bytes

CONFIG = dict(key="crash-key", t=2, n=3, **SMALL_CHUNKS)

#: Kill points swept per operation.  The victim op spends at most ~8
#: ops per provider (sync lists + share uploads + metadata publish), so
#: this range covers every journal stage plus a tail where no crash
#: fires at all (the control case).
KILL_POINTS = range(0, 12)


def _client(providers, journal_path, clock=None):
    clock = clock or SimClock()
    engine = DirectEngine({p.csp_id: p for p in providers}, clock=clock)
    journal = IntentJournal(journal_path, clock=clock, fsync=False)
    return CyrusClient.create(
        providers, CyrusConfig(**CONFIG), client_id="alice",
        engine=engine, journal=journal,
    )


def _crash_world(inner, journal_path, kill_op):
    """A victim client whose k-th provider op raises SimulatedCrash."""
    clock = SimClock()
    plan = FaultPlan(
        [FaultSpec(kind=FaultKind.CRASH, window_ops=(kill_op, None),
                   max_hits=1)],
        seed=0,
    )
    wrapped = [FaultyProvider(p, plan, clock=clock) for p in inner]
    return _client(wrapped, journal_path, clock=clock)


def _ground_truth(inner):
    """Raw per-provider listing of chunk-share objects (40-hex names);
    metadata shares (``md-*``) are named differently and excluded."""
    out = {}
    for provider in inner:
        out[provider.csp_id] = {
            info.name for info in provider.list(prefix="")
            if len(info.name) == 40
            and all(ch in "0123456789abcdef" for ch in info.name)
        }
    return out


def _assert_invariants(client, inner):
    """The acceptance criteria: no orphans, >= t shares per chunk."""
    truth = _ground_truth(inner)
    expected: set[str] = set()
    for chunk_id in client.chunk_table.all_chunk_ids():
        location = client.chunk_table.get(chunk_id)
        names = {
            chunk_share_object_name(index, chunk_id)
            for index in range(location.n)
        }
        expected |= names
        live = sum(
            1 for objects in truth.values() for name in objects
            if name in names
        )
        assert live >= location.t, (
            f"chunk {chunk_id[:8]} has {live} < t={location.t} live shares"
        )
    for csp_id, objects in truth.items():
        orphans = objects - expected
        assert not orphans, f"{csp_id} holds orphan shares: {orphans}"
    return truth


class TestCrashDuringPut:
    @pytest.mark.parametrize("kill_op", KILL_POINTS)
    def test_recovery_restores_invariants(self, tmp_path, kill_op,
                                          fault_seed):
        journal_path = tmp_path / "journal.jsonl"
        inner = [InMemoryCSP(f"csp{i}") for i in range(4)]
        warmup = _client(inner, journal_path)
        stable = deterministic_bytes(2500, seed=fault_seed)
        warmup.put("stable.bin", stable)

        victim = _crash_world(inner, journal_path, kill_op)
        attempted = deterministic_bytes(3100, seed=fault_seed + 1)
        crashed = False
        try:
            victim.put("victim.bin", attempted)
        except SimulatedCrash:
            crashed = True

        survivor = _client(inner, journal_path)
        report = survivor.run_recovery()
        survivor.sync()
        assert report.incomplete_remaining == 0
        truth = _assert_invariants(survivor, inner)

        # the warmup file survives any crash point, byte-intact
        assert survivor.get("stable.bin").data == stable
        # the victim file is atomic: fully there or fully absent
        visible = {e.name for e in survivor.list_files(sync_first=False)}
        if "victim.bin" in visible:
            assert survivor.get("victim.bin").data == attempted
        else:
            assert crashed  # invisible only because the put was killed

        # recovery is idempotent: a second run is a no-op
        again = survivor.run_recovery()
        assert again.clean
        assert _ground_truth(inner) == truth

    def test_uncrashed_control_leaves_clean_journal(self, tmp_path,
                                                    fault_seed):
        """A kill point past the op count: nothing fires, nothing to
        recover — proves the sweep's tail is a genuine control."""
        journal_path = tmp_path / "journal.jsonl"
        inner = [InMemoryCSP(f"csp{i}") for i in range(3)]
        victim = _crash_world(inner, journal_path, kill_op=10**6)
        data = deterministic_bytes(1500, seed=fault_seed)
        victim.put("calm.bin", data)
        survivor = _client(inner, journal_path)
        report = survivor.run_recovery()
        assert report is not None and report.clean
        assert survivor.get("calm.bin").data == data

    def test_rollforward_metrics_match_report(self, tmp_path, fault_seed):
        """Kill just before the commit record: all shares + metadata
        landed, so recovery must roll forward, and the counters must
        agree with the report."""
        journal_path = tmp_path / "journal.jsonl"
        inner = [InMemoryCSP(f"csp{i}") for i in range(4)]
        # find the kill point that produces a roll-forward by sweeping
        for kill_op in KILL_POINTS:
            world = [InMemoryCSP(f"csp{i}") for i in range(4)]
            jp = tmp_path / f"probe-{kill_op}.jsonl"
            victim = _crash_world(world, jp, kill_op)
            try:
                victim.put("f.bin", deterministic_bytes(3100, seed=1))
            except SimulatedCrash:
                pass
            survivor = _client(world, jp)
            report = survivor.run_recovery()
            snap = survivor.obs.snapshot()
            assert snap.counter_total(
                "cyrus_recovery_rollforward_total"
            ) == report.rolled_forward
            assert snap.counter_total(
                "cyrus_recovery_rollback_total"
            ) == report.rolled_back
            assert snap.counter_total(
                "cyrus_recovery_shares_deleted_total"
            ) == report.shares_deleted
            if report.rolled_forward:
                assert survivor.get("f.bin").data == \
                    deterministic_bytes(3100, seed=1)
        del inner, journal_path  # the sweep above is the whole test


class TestCrashDuringDelete:
    @pytest.mark.parametrize("kill_op", KILL_POINTS)
    def test_delete_is_atomic_across_crashes(self, tmp_path, kill_op,
                                             fault_seed):
        journal_path = tmp_path / "journal.jsonl"
        inner = [InMemoryCSP(f"csp{i}") for i in range(4)]
        warmup = _client(inner, journal_path)
        data = deterministic_bytes(2200, seed=fault_seed)
        warmup.put("doomed.bin", data)

        victim = _crash_world(inner, journal_path, kill_op)
        try:
            victim.delete("doomed.bin")
        except SimulatedCrash:
            pass

        survivor = _client(inner, journal_path)
        report = survivor.run_recovery()
        survivor.sync()
        assert report.incomplete_remaining == 0
        _assert_invariants(survivor, inner)
        visible = {e.name for e in survivor.list_files(sync_first=False)}
        if "doomed.bin" in visible:
            # delete rolled back: the file must still read intact
            assert survivor.get("doomed.bin").data == data
        assert survivor.run_recovery().clean


class TestCrashDuringGC:
    @pytest.mark.parametrize("kill_op", KILL_POINTS)
    def test_gc_rolls_forward_after_crash(self, tmp_path, kill_op,
                                          fault_seed):
        """Crash mid prune/collection: the journaled doomed set is
        re-deleted on recovery, and whatever garbage a *pre-journal*
        crash stranded (the journal cannot describe work never begun)
        is exactly what the anti-entropy scrub's orphan pass reclaims —
        the two mechanisms together restore the invariant at every kill
        point."""
        journal_path = tmp_path / "journal.jsonl"
        inner = [InMemoryCSP(f"csp{i}") for i in range(4)]
        warmup = _client(inner, journal_path)
        warmup.put("keep.bin", deterministic_bytes(1800, seed=fault_seed))
        warmup.put("rewritten.bin",
                   deterministic_bytes(2600, seed=fault_seed + 1))
        warmup.put("rewritten.bin",
                   deterministic_bytes(2600, seed=fault_seed + 2))

        # prune + gc must run in one session: only the pruning client's
        # chunk table still knows the superseded version's chunks
        victim = _crash_world(inner, journal_path, kill_op)
        try:
            victim.sync()
            victim.prune_history("rewritten.bin", keep_versions=1)
            victim.collect_garbage()
        except SimulatedCrash:
            pass

        survivor = _client(inner, journal_path)
        report = survivor.run_recovery()
        survivor.sync()
        assert report.incomplete_remaining == 0
        survivor.collect_garbage()
        survivor.scrub(delete_orphans=True)
        _assert_invariants(survivor, inner)
        keep = deterministic_bytes(1800, seed=fault_seed)
        assert survivor.get("keep.bin").data == keep
        assert survivor.get("rewritten.bin").data == \
            deterministic_bytes(2600, seed=fault_seed + 2)
        assert survivor.run_recovery().clean


class TestCrashDuringRecovery:
    def test_crash_mid_recovery_is_recoverable(self, tmp_path, fault_seed):
        """Recovery itself gets killed; running it again finishes the
        job — every repair action is idempotent by construction."""
        journal_path = tmp_path / "journal.jsonl"
        inner = [InMemoryCSP(f"csp{i}") for i in range(4)]
        victim = _crash_world(inner, journal_path, kill_op=4)
        try:
            victim.put("x.bin", deterministic_bytes(3100, seed=fault_seed))
        except SimulatedCrash:
            pass

        # first recovery attempt dies too (crash armed over the same
        # inner providers, fresh op window)
        doomed_recovery = _crash_world(inner, journal_path, kill_op=2)
        try:
            doomed_recovery.run_recovery()
        except SimulatedCrash:
            pass

        survivor = _client(inner, journal_path)
        report = survivor.run_recovery()
        assert report.incomplete_remaining == 0
        survivor.sync()
        _assert_invariants(survivor, inner)
        assert survivor.run_recovery().clean
