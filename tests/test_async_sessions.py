"""Scale acceptance: many concurrent AsyncCyrusClient sessions, one process.

The async core's reason to exist: a thousand ``async with`` sessions on
one event loop share a single :class:`_LoopRuntime` (two bounded thread
pools) instead of costing a thousand thread pools.  The tests *force*
simultaneity — every session must be open at the same instant before
any is allowed to transfer — so the session count is a proven
concurrency level, not a sequential throughput number.

The 1000-session run is ``slow`` (CI's stress job executes it under a
faulthandler hang dump); the 64-session smoke keeps the same shape in
tier-1.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.async_client import AsyncCyrusClient, _LoopRuntime
from repro.core.config import CyrusConfig
from repro.csp.memory import InMemoryCSP
from repro.errors import TransferError

from tests.conftest import SMALL_CHUNKS


def _payload(i: int) -> bytes:
    return (f"session-{i}:".encode()) + bytes(range(256)) * 3


async def _drive_sessions(count: int) -> None:
    """Open ``count`` sessions, hold them all open at once, then make
    each do a real put/get round-trip against its own in-memory fleet."""
    opened = 0
    all_open = asyncio.Event()

    async def one_session(i: int) -> int:
        nonlocal opened
        csps = [InMemoryCSP(f"s{i}-csp{j}") for j in range(4)]
        # a slice of the fleet runs parallel dispatch on the shared loop;
        # the rest take the serial path on the pipeline executor
        config = CyrusConfig(
            key=f"key-{i}", t=2, n=3,
            parallelism=4 if i % 10 == 0 else 1,
            **SMALL_CHUNKS,
        )
        async with AsyncCyrusClient(csps, config,
                                    client_id=f"client-{i}") as session:
            opened += 1
            if opened == count:
                all_open.set()
            # the simultaneity barrier: nobody transfers until every
            # session is open, so `count` IS the concurrency level
            await asyncio.wait_for(all_open.wait(), timeout=120)
            await session.put(f"file-{i}.bin", _payload(i))
            blob = await session.get(f"file-{i}.bin")
            assert blob.data == _payload(i)
            listing = await session.list_files()
            assert [e.name for e in listing] == [f"file-{i}.bin"]
        return i

    done = await asyncio.gather(*(one_session(i) for i in range(count)))
    assert sorted(done) == list(range(count))
    # every session on this loop shared one runtime...
    assert len(_LoopRuntime._registry) == 0  # ...and all refs were released


def test_sixty_four_concurrent_sessions_smoke():
    asyncio.run(_drive_sessions(64))
    assert len(_LoopRuntime._registry) == 0


@pytest.mark.slow
def test_thousand_concurrent_sessions():
    asyncio.run(_drive_sessions(1000))
    assert len(_LoopRuntime._registry) == 0


def test_sessions_share_one_loop_runtime():
    async def script():
        csps_a = [InMemoryCSP(f"a{j}") for j in range(4)]
        csps_b = [InMemoryCSP(f"b{j}") for j in range(4)]
        config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        async with AsyncCyrusClient(csps_a, config, client_id="a") as sa:
            async with AsyncCyrusClient(csps_b, config, client_id="b") as sb:
                assert len(_LoopRuntime._registry) == 1
                runtime = next(iter(_LoopRuntime._registry.values()))
                assert runtime.refs == 2
                assert sa.engine is not sb.engine  # engines stay per-session
                await sa.put("x", b"1")
                await sb.put("y", b"2")
            assert runtime.refs == 1
        assert len(_LoopRuntime._registry) == 0

    asyncio.run(script())


def test_session_api_outside_context_raises():
    client = AsyncCyrusClient(
        [InMemoryCSP("c0")], CyrusConfig(key="k", t=1, n=1, **SMALL_CHUNKS)
    )
    with pytest.raises(TransferError, match="not open"):
        client.client  # noqa: B018

    async def script():
        with pytest.raises(TransferError, match="not open"):
            await client.put("x", b"d")

    asyncio.run(script())


def test_session_rejects_engine_kwarg():
    with pytest.raises(TransferError, match="owns its engine"):
        AsyncCyrusClient(
            [InMemoryCSP("c0")],
            CyrusConfig(key="k", t=1, n=1, **SMALL_CHUNKS),
            engine=object(),
        )


def test_session_survives_exception_and_still_cleans_up():
    async def script():
        csps = [InMemoryCSP(f"c{j}") for j in range(3)]
        config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        with pytest.raises(RuntimeError, match="boom"):
            async with AsyncCyrusClient(csps, config) as session:
                await session.put("f", b"data")
                raise RuntimeError("boom")
        assert len(_LoopRuntime._registry) == 0

    asyncio.run(script())
