"""Unit tests for the download problem and plan containers."""

import pytest

from repro.errors import SelectionError
from repro.selection import ChunkDownload, DownloadProblem, SelectionPlan, evaluate_plan
from repro.selection.problem import validate_plan

CAPS = {"a": 10e6, "b": 5e6, "c": 1e6}


def problem(chunks, t=2, client=20e6):
    return DownloadProblem(
        chunks=tuple(chunks), t=t, link_caps=CAPS, client_cap=client
    )


class TestProblem:
    def test_csps_union(self):
        p = problem(
            [
                ChunkDownload("c1", 100, ("a", "b")),
                ChunkDownload("c2", 100, ("b", "c")),
            ]
        )
        assert p.csps == ["a", "b", "c"]

    def test_infeasible_chunk_rejected(self):
        with pytest.raises(SelectionError):
            problem([ChunkDownload("c1", 100, ("a",))], t=2)

    def test_zero_capacity_csp_not_usable(self):
        caps = {"a": 10e6, "dead": 0.0}
        with pytest.raises(SelectionError):
            DownloadProblem(
                chunks=(ChunkDownload("c1", 100, ("a", "dead")),),
                t=2, link_caps=caps, client_cap=1e6,
            )

    def test_duplicate_availability_rejected(self):
        with pytest.raises(ValueError):
            ChunkDownload("c1", 100, ("a", "a"))

    def test_bad_t(self):
        with pytest.raises(SelectionError):
            problem([ChunkDownload("c1", 1, ("a", "b"))], t=0)


class TestPlanValidation:
    def chunk(self):
        return ChunkDownload("c1", 1_000_000, ("a", "b", "c"))

    def test_missing_chunk(self):
        p = problem([self.chunk()])
        with pytest.raises(SelectionError):
            validate_plan(p, SelectionPlan(assignments={}))

    def test_wrong_count(self):
        p = problem([self.chunk()])
        with pytest.raises(SelectionError):
            validate_plan(p, SelectionPlan(assignments={"c1": ("a",)}))

    def test_duplicate_csp(self):
        p = problem([self.chunk()])
        with pytest.raises(SelectionError):
            validate_plan(p, SelectionPlan(assignments={"c1": ("a", "a")}))

    def test_unavailable_csp(self):
        p = problem([ChunkDownload("c1", 1, ("a", "b"))])
        with pytest.raises(SelectionError):
            validate_plan(p, SelectionPlan(assignments={"c1": ("a", "c")}))

    def test_valid_plan_passes(self):
        p = problem([self.chunk()])
        validate_plan(p, SelectionPlan(assignments={"c1": ("a", "b")}))


class TestEvaluation:
    def test_loads_accumulate(self):
        p = problem(
            [
                ChunkDownload("c1", 100, ("a", "b")),
                ChunkDownload("c2", 200, ("a", "b", "c")),
            ]
        )
        plan = SelectionPlan(
            assignments={"c1": ("a", "b"), "c2": ("a", "c")}
        )
        loads = plan.loads(p)
        assert loads == {"a": 300.0, "b": 100.0, "c": 200.0}

    def test_evaluate_sets_fields(self):
        p = problem([ChunkDownload("c1", 5e6, ("a", "b"))])
        plan = SelectionPlan(assignments={"c1": ("a", "b")})
        y, betas = evaluate_plan(p, plan)
        assert plan.bottleneck_time == y > 0
        assert plan.bandwidths == betas

    def test_slow_csp_plan_is_worse(self):
        p = problem([ChunkDownload("c1", 5e6, ("a", "b", "c"))])
        fast = SelectionPlan(assignments={"c1": ("a", "b")})
        slow = SelectionPlan(assignments={"c1": ("a", "c")})
        y_fast, _ = evaluate_plan(p, fast)
        y_slow, _ = evaluate_plan(p, slow)
        assert y_fast < y_slow
