"""Integration tests on the simulated network: timing and failures."""

import pytest

from repro.bench import build_environment, build_paper_testbed
from repro.core.config import CyrusConfig
from repro.csp.simulated import AvailabilitySchedule
from repro.netsim import Link
from tests.conftest import SMALL_CHUNKS, deterministic_bytes

CFG = CyrusConfig(key="sim-key", t=2, n=3, chunk_min=32 * 1024,
                  chunk_avg=128 * 1024, chunk_max=1024 * 1024)


class TestTimedTransfers:
    def test_upload_time_scales_with_size(self):
        env = build_paper_testbed()
        client = env.new_client(CFG)
        small = client.put("small.bin", deterministic_bytes(500_000, 1))
        large = client.put("large.bin", deterministic_bytes(5_000_000, 2))
        assert large.duration > small.duration

    def test_download_faster_than_naive_single_slow_csp(self):
        env = build_paper_testbed()
        client = env.new_client(CFG)
        data = deterministic_bytes(4_000_000, 3)
        client.put("f.bin", data)
        report = client.get("f.bin")
        # a single slow cloud would take 4 MB / 2 MB/s = 2.0 s; CYRUS
        # parallel downloads from chosen CSPs must beat that
        assert report.duration < 2.0
        assert report.data == data

    def test_higher_t_means_less_data_per_csp(self):
        # (3, 4) halves nothing but cuts share size: paper Figure 14's
        # explanation for why t=3 downloads beat t=2
        env23 = build_paper_testbed()
        c23 = env23.new_client(CFG.with_params(t=2, n=3))
        env34 = build_paper_testbed()
        c34 = env34.new_client(CFG.with_params(t=3, n=4))
        data = deterministic_bytes(3_000_000, 4)
        r23 = c23.put("f.bin", data)
        r34 = c34.put("f.bin", data)
        # same file: t=3 shares are smaller, so total bytes uploaded for
        # (3,4) [4/3 x] are fewer than (2,3) [3/2 x]
        assert r34.bytes_uploaded < r23.bytes_uploaded

    def test_clock_monotone_across_operations(self):
        env = build_paper_testbed()
        client = env.new_client(CFG)
        t0 = env.clock.now()
        client.put("a.bin", deterministic_bytes(1_000_000, 5))
        t1 = env.clock.now()
        client.get("a.bin")
        t2 = env.clock.now()
        assert t0 < t1 < t2


class TestOutageInjection:
    def make_env(self, outage_csp="fast0", window=(0.0, 1e9)):
        links = {}
        for i in range(4):
            links[f"fast{i}"] = Link.symmetric(f"fast{i}", 15e6)
        for i in range(3):
            links[f"slow{i}"] = Link.symmetric(f"slow{i}", 2e6)
        return build_environment(
            links,
            availability={outage_csp: AvailabilitySchedule([window])},
        )

    def test_upload_routes_around_down_csp(self):
        env = self.make_env()
        client = env.new_client(CFG)
        data = deterministic_bytes(2_000_000, 6)
        report = client.put("f.bin", data)
        assert "fast0" not in {s.csp_id for s in report.node.shares}
        assert client.get("f.bin").data == data

    def test_download_during_partial_outage(self):
        env = self.make_env(outage_csp="fast1", window=(5.0, 1e9))
        client = env.new_client(CFG)
        data = deterministic_bytes(2_000_000, 7)
        client.put("f.bin", data)  # fast1 up during upload
        env.clock.advance_to(10.0)  # fast1 now down
        assert client.get("f.bin").data == data

    def test_csp_recovery_resumes_uploads(self):
        env = self.make_env(outage_csp="fast0", window=(0.0, 50.0))
        client = env.new_client(CFG)
        client.put("a.bin", deterministic_bytes(500_000, 8))
        assert client.cloud.status_of("fast0").value == "failed"
        env.clock.advance_to(60.0)
        client.cloud.mark_recovered("fast0")
        placed = set()
        for i in range(8):
            node = client.put(
                f"b{i}.bin", deterministic_bytes(400_000, 9 + i)
            ).node
            placed |= {s.csp_id for s in node.shares}
        assert "fast0" in placed


class TestQuotaPressure:
    def test_quota_exhaustion_fails_over(self):
        links = {f"c{i}": Link.symmetric(f"c{i}", 10e6) for i in range(5)}
        env = build_environment(links, quotas={"c0": 50_000})
        client = env.new_client(CFG.with_params(**SMALL_CHUNKS))
        # keep uploading; once c0 fills, shares must land elsewhere and
        # every file must stay readable
        for i in range(12):
            client.put(f"f{i}.bin", deterministic_bytes(30_000, 30 + i))
        for i in range(12):
            assert client.get(f"f{i}.bin").data == (
                deterministic_bytes(30_000, 30 + i)
            )

    def test_consistent_hashing_balances_storage(self):
        links = {f"c{i}": Link.symmetric(f"c{i}", 10e6) for i in range(4)}
        env = build_environment(links)
        client = env.new_client(CFG.with_params(**SMALL_CHUNKS))
        for i in range(30):
            client.put(f"f{i}.bin", deterministic_bytes(20_000, 50 + i))
        stored = [csp.stored_bytes for csp in env.csps.values()]
        assert min(stored) > 0.3 * max(stored)
