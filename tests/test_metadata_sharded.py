"""Sharded metadata store: routing stability, reachability, outages.

The fleet's :class:`ShardedMetadataStore` consistent-hashes each file's
version tree onto one metadata CSP *group*.  These tests pin:

* **stable assignment** — shard routing is a pure function of
  (route key, group ids), identical across store instances and runs;
* **reachability** — files land on every group and the facade's
  list/fetch surface unions them transparently;
* **fault isolation** — an OUTAGE of one whole metadata group (via
  :class:`FaultPlan` ``restricted_to`` that group's providers) degrades
  exactly the files routed to it; everything else stays readable.
"""

from __future__ import annotations

import pytest

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp.memory import InMemoryCSP
from repro.errors import CyrusError, MetadataError
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.metadata.sharded import ShardedMetadataStore

SMALL_CHUNKS = dict(chunk_min=128, chunk_avg=512, chunk_max=4096)


def make_csps() -> list[InMemoryCSP]:
    return [InMemoryCSP(f"csp{i}") for i in range(6)]


def group(csps, index: int) -> list:
    """Three providers per metadata group: [0:3] and [3:6]."""
    return csps[index * 3:(index + 1) * 3]


def sharded_factory(csps):
    def factory(client: CyrusClient) -> ShardedMetadataStore:
        return ShardedMetadataStore(
            [group(csps, 0), group(csps, 1)],
            key=client.config.key, t=client.config.meta_t,
            health=client.health, metrics=client.obs.metrics,
            ledger=client.debt_ledger, clock=client.engine.clock,
        )
    return factory


def make_client(csps, client_id="alice", key="shard-key") -> CyrusClient:
    config = CyrusConfig(key=key, t=2, n=3, meta_t=2, **SMALL_CHUNKS)
    return CyrusClient.create(csps, config, client_id=client_id,
                              store_factory=sharded_factory(csps))


def names_per_shard(store: ShardedMetadataStore, want: int = 2) -> dict:
    """First ``want`` file names routed to each group."""
    found: dict[int, list[str]] = {0: [], 1: []}
    i = 0
    while any(len(v) < want for v in found.values()):
        name = f"file{i:03d}.dat"
        shard = store.shard_for(name)
        if len(found[shard]) < want:
            found[shard].append(name)
        i += 1
    return found


class TestRouting:
    def test_assignment_is_stable_across_instances(self):
        csps_a, csps_b = make_csps(), make_csps()
        store_a = ShardedMetadataStore(
            [group(csps_a, 0), group(csps_a, 1)], key="k")
        store_b = ShardedMetadataStore(
            [group(csps_b, 0), group(csps_b, 1)], key="k")
        names = [f"file{i:03d}.dat" for i in range(64)]
        assert ([store_a.shard_for(n) for n in names]
                == [store_b.shard_for(n) for n in names])

    def test_both_groups_get_traffic(self):
        csps = make_csps()
        store = ShardedMetadataStore([group(csps, 0), group(csps, 1)],
                                     key="k")
        shards = {store.shard_for(f"file{i:03d}.dat") for i in range(64)}
        assert shards == {0, 1}

    def test_route_prefix_gives_tenants_independent_spread(self):
        csps = make_csps()
        groups = [group(csps, 0), group(csps, 1)]
        a = ShardedMetadataStore(groups, key="k", route_prefix="t000/")
        b = ShardedMetadataStore(groups, key="k", route_prefix="t001/")
        names = [f"file{i:03d}.dat" for i in range(64)]
        assert ([a.shard_for(n) for n in names]
                != [b.shard_for(n) for n in names])

    def test_rejects_unequal_groups(self):
        csps = make_csps()
        with pytest.raises(MetadataError):
            ShardedMetadataStore([csps[:3], csps[3:5]], key="k")

    def test_rejects_duplicate_groups(self):
        csps = make_csps()
        with pytest.raises(MetadataError):
            ShardedMetadataStore([csps[:3], csps[:3]], key="k")


class TestReachability:
    def test_files_on_every_shard_are_listed_and_fetched(self):
        csps = make_csps()
        writer = make_client(csps)
        by_shard = names_per_shard(writer.store)
        payloads = {}
        for shard, names in by_shard.items():
            for name in names:
                payloads[name] = f"shard {shard}: {name}".encode()
                writer.put(name, payloads[name], sync_first=False)

        # a fresh client (same key) reassembles everything via the facade
        reader = make_client(csps, client_id="bob")
        reader.sync()
        assert ({e.name for e in reader.list_files(sync_first=False)}
                == set(payloads))
        for name, payload in payloads.items():
            assert reader.get(name, sync_first=False).data == payload

    def test_metadata_shares_live_only_in_the_routed_group(self):
        csps = make_csps()
        writer = make_client(csps)
        by_shard = names_per_shard(writer.store, want=1)
        for names in by_shard.values():
            writer.put(names[0], b"x" * 600, sync_first=False)
        for shard, names in by_shard.items():
            node = writer.tree.latest(names[0])
            in_group = [
                csp.csp_id for csp in csps
                if any(node.node_id in info.name for info in csp.list())
            ]
            assert in_group == [c.csp_id for c in group(csps, shard)]


class TestGroupOutage:
    def test_one_dead_group_degrades_only_its_files(self):
        csps = make_csps()
        writer = make_client(csps)
        by_shard = names_per_shard(writer.store)
        for shard, names in by_shard.items():
            for name in names:
                writer.put(name, f"shard {shard}".encode(),
                           sync_first=False)

        # group 1's three providers go dark for every operation
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.OUTAGE)], seed=3,
        ).restricted_to([c.csp_id for c in group(csps, 1)])
        faulted = [FaultyProvider(c, plan) for c in csps]
        reader = CyrusClient.create(
            faulted,
            CyrusConfig(key="shard-key", t=2, n=3, meta_t=2,
                        **SMALL_CHUNKS),
            client_id="carol", store_factory=sharded_factory(faulted),
        )
        reader.sync()
        # files routed to the live group are fully readable ...
        visible = {e.name for e in reader.list_files(sync_first=False)}
        assert set(by_shard[0]) <= visible
        for name in by_shard[0]:
            assert reader.get(name, sync_first=False).data == b"shard 0"
        # ... while the dead group's files are exactly the ones missing
        assert visible.isdisjoint(by_shard[1])
        for name in by_shard[1]:
            with pytest.raises(CyrusError):
                reader.get(name, sync_first=False)

    def test_every_group_dead_is_a_hard_metadata_error(self):
        csps = make_csps()
        writer = make_client(csps)
        writer.put("doomed.dat", b"payload", sync_first=False)
        plan = FaultPlan([FaultSpec(kind=FaultKind.OUTAGE)], seed=3)
        faulted = [FaultyProvider(c, plan) for c in csps]
        store = sharded_factory(faulted)(writer)
        with pytest.raises(MetadataError):
            store.list_node_ids()
