"""Unit tests for transfer engines and the event receiver."""

import pytest

from repro.core.transfer import (
    DirectEngine,
    OpKind,
    SimulatedEngine,
    TransferOp,
    TransferReceiver,
)
from repro.csp import AvailabilitySchedule, InMemoryCSP, SimulatedCSP
from repro.errors import TransferError
from repro.netsim import Link
from repro.util.clock import SimClock


class TestDirectEngine:
    def engine(self):
        providers = {f"c{i}": InMemoryCSP(f"c{i}") for i in range(2)}
        return DirectEngine(providers), providers

    def test_put_get_delete(self):
        engine, providers = self.engine()
        put = engine.execute(
            [TransferOp(OpKind.PUT, "c0", "obj", data=b"bytes")]
        )[0]
        assert put.ok
        get = engine.execute([TransferOp(OpKind.GET, "c0", "obj")])[0]
        assert get.ok and get.data == b"bytes"
        rm = engine.execute([TransferOp(OpKind.DELETE, "c0", "obj")])[0]
        assert rm.ok

    def test_missing_object_fails_op(self):
        engine, _ = self.engine()
        res = engine.execute([TransferOp(OpKind.GET, "c0", "ghost")])[0]
        assert not res.ok and res.error

    def test_unknown_provider(self):
        engine, _ = self.engine()
        with pytest.raises(TransferError):
            engine.execute([TransferOp(OpKind.GET, "zzz", "x")])

    def test_put_without_data(self):
        engine, _ = self.engine()
        with pytest.raises(TransferError):
            engine.execute([TransferOp(OpKind.PUT, "c0", "x")])

    def test_group_quota(self):
        engine, _ = self.engine()
        ops = [
            TransferOp(OpKind.PUT, "c0", f"o{i}", data=b"x", group="g")
            for i in range(3)
        ]
        results = engine.execute(ops, group_quota={"g": 2})
        assert [r.ok for r in results] == [True, True, False]
        assert results[2].cancelled

    def test_register_unregister(self):
        engine, _ = self.engine()
        engine.register_provider(InMemoryCSP("new"))
        engine.execute([TransferOp(OpKind.PUT, "new", "o", data=b"1")])
        engine.unregister_provider("new")
        with pytest.raises(TransferError):
            engine.provider("new")

    def test_uniform_link_caps(self):
        engine, _ = self.engine()
        assert engine.link_caps("down") == {"c0": 1.0, "c1": 1.0}


class TestSimulatedEngine:
    def engine(self, rates=(2e6, 2e6), rtt=0.0, schedules=None, **kwargs):
        clock = SimClock()
        links = {
            f"c{i}": Link.symmetric(f"c{i}", rate, rtt_s=rtt)
            for i, rate in enumerate(rates)
        }
        schedules = schedules or {}
        providers = {
            cid: SimulatedCSP(cid, link, clock=clock,
                              availability=schedules.get(cid))
            for cid, link in links.items()
        }
        return SimulatedEngine(providers, links, clock, **kwargs), clock

    def test_timing(self):
        engine, clock = self.engine()
        res = engine.execute(
            [TransferOp(OpKind.PUT, "c0", "o", data=b"x" * 2_000_000)]
        )[0]
        assert res.ok
        assert res.duration == pytest.approx(1.0)
        assert clock.now() == pytest.approx(1.0)

    def test_parallel_batch_advances_to_max(self):
        engine, clock = self.engine(rates=(1e6, 4e6))
        engine.execute(
            [
                TransferOp(OpKind.PUT, "c0", "a", data=b"x" * 1_000_000),
                TransferOp(OpKind.PUT, "c1", "b", data=b"y" * 1_000_000),
            ]
        )
        assert clock.now() == pytest.approx(1.0)  # slower one dominates

    def test_get_uses_size_hint(self):
        engine, _ = self.engine()
        engine.execute([TransferOp(OpKind.PUT, "c0", "o", data=b"z" * 500)])
        res = engine.execute(
            [TransferOp(OpKind.GET, "c0", "o", size=500)]
        )[0]
        assert res.ok and res.data == b"z" * 500

    def test_down_provider_fails_fast(self):
        engine, _ = self.engine(
            schedules={"c0": AvailabilitySchedule([(0.0, 100.0)])}
        )
        res = engine.execute(
            [TransferOp(OpKind.PUT, "c0", "o", data=b"x")]
        )[0]
        assert not res.ok and "unavailable" in res.error

    def test_mid_transfer_outage_fails_op(self):
        # provider up at issue, down by completion time
        engine, _ = self.engine(
            rates=(1e6,),
            schedules={"c0": AvailabilitySchedule([(1.0, 100.0)])},
        )
        res = engine.execute(
            [TransferOp(OpKind.PUT, "c0", "o", data=b"x" * 3_000_000)]
        )[0]
        assert not res.ok and "mid-transfer" in res.error

    def test_client_cap_respected(self):
        engine, clock = self.engine(rates=(10e6, 10e6), client_up=10e6)
        engine.execute(
            [
                TransferOp(OpKind.PUT, "c0", "a", data=b"x" * 10_000_000),
                TransferOp(OpKind.PUT, "c1", "b", data=b"y" * 10_000_000),
            ]
        )
        assert clock.now() == pytest.approx(2.0)

    def test_link_caps_reflect_now(self):
        engine, _ = self.engine(rates=(5e6, 1e6))
        caps = engine.link_caps("down")
        assert caps["c0"] == 5e6 and caps["c1"] == 1e6

    def test_rtt_charged(self):
        engine, clock = self.engine(rates=(1e6,), rtt=0.5)
        engine.execute([TransferOp(OpKind.GET_META, "c0", "x", size=0)])
        # GET of missing object still costs the RTT, then fails
        assert clock.now() == pytest.approx(0.5)


class TestReceiver:
    def result(self, ok=True, chunk="c" * 40, file_key="f", kind=OpKind.PUT):
        from repro.core.transfer import OpResult

        op = TransferOp(kind, "csp", "name", data=b"x", chunk_id=chunk,
                        file_key=file_key)
        return OpResult(op=op, ok=ok, start=0.0, end=1.0)

    def test_share_complete(self):
        recv = TransferReceiver()
        assert recv.share_complete(self.result(ok=True))
        assert not recv.share_complete(self.result(ok=False))

    def test_chunk_complete_counts(self):
        recv = TransferReceiver()
        recv.expect_chunk("c" * 40, shares_needed=2, file_key="f")
        recv.on_result(self.result())
        assert not recv.chunk_complete("c" * 40)
        recv.on_result(self.result())
        assert recv.chunk_complete("c" * 40)

    def test_failures_dont_count(self):
        recv = TransferReceiver()
        recv.expect_chunk("c" * 40, shares_needed=1)
        recv.on_result(self.result(ok=False))
        assert not recv.chunk_complete("c" * 40)

    def test_file_complete_needs_all_chunks(self):
        recv = TransferReceiver()
        recv.expect_chunk("a" * 40, 1, file_key="f")
        recv.expect_chunk("b" * 40, 1, file_key="f")
        recv.on_result(self.result(chunk="a" * 40))
        assert not recv.file_complete("f")
        recv.on_result(self.result(chunk="b" * 40))
        assert recv.file_complete("f")

    def test_events_logged(self):
        recv = TransferReceiver()
        recv.on_result(self.result())
        assert len(recv.events) == 1
