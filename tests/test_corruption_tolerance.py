"""Tests for corrupted-share tolerance (paper Section 5.1's claim that
R-S goes beyond secret sharing: errors in fetched shares are survivable
while a clean t-subset exists)."""

import os

import pytest

from repro.core.naming import chunk_share_object_name
from repro.erasure import KeyedSharer, RSCodec, Share
from repro.errors import CodingError, CyrusError, InsufficientSharesError
from repro.util.hashing import sha1_hex
from tests.conftest import deterministic_bytes


def corrupt(share: Share) -> Share:
    blob = bytearray(share.data)
    blob[0] ^= 0xFF
    return Share(index=share.index, data=bytes(blob), t=share.t, n=share.n,
                 chunk_size=share.chunk_size)


class TestDecodeVerified:
    def test_clean_shares_pass_through(self):
        data = os.urandom(2000)
        codec = RSCodec(2, 4)
        shares = codec.encode(data)
        digest = sha1_hex(data)
        got = codec.decode_verified(
            shares, verify=lambda b: sha1_hex(b) == digest
        )
        assert got == data

    def test_tolerates_n_minus_t_corruptions(self):
        data = os.urandom(3000)
        codec = RSCodec(2, 4)
        shares = codec.encode(data)
        digest = sha1_hex(data)
        # corrupt 2 of 4 (= n - t): a clean pair still exists
        tampered = [corrupt(shares[0]), shares[1], corrupt(shares[2]),
                    shares[3]]
        got = codec.decode_verified(
            tampered, verify=lambda b: sha1_hex(b) == digest
        )
        assert got == data

    def test_fails_beyond_tolerance(self):
        data = os.urandom(1000)
        codec = RSCodec(2, 4)
        shares = codec.encode(data)
        digest = sha1_hex(data)
        tampered = [corrupt(s) for s in shares[:3]] + [shares[3]]
        with pytest.raises(CodingError):
            codec.decode_verified(
                tampered, verify=lambda b: sha1_hex(b) == digest
            )

    def test_too_few_shares(self):
        codec = RSCodec(3, 5)
        shares = codec.encode(b"payload")
        with pytest.raises(InsufficientSharesError):
            codec.decode_verified(shares[:2], verify=lambda b: True)

    def test_keyed_sharer_wrapper(self):
        sharer = KeyedSharer("key", 2, 4)
        data = os.urandom(1500)
        shares = sharer.split(data)
        digest = sha1_hex(data)
        tampered = [corrupt(shares[0])] + shares[1:]
        got = sharer.join_verified(
            tampered, verify=lambda b: sha1_hex(b) == digest
        )
        assert got == data


class TestDownloadRepair:
    def _corrupt_share_at(self, client, csps, node, chunk_id, which=0):
        share = node.shares_of(chunk_id)[which]
        name = chunk_share_object_name(share.index, share.chunk_id)
        provider = next(c for c in csps if c.csp_id == share.csp_id)
        blob = bytearray(provider.download(name))
        blob[len(blob) // 2] ^= 0xA5
        provider.upload(name, bytes(blob))

    def test_single_corrupt_share_transparent(self, client, csps):
        data = deterministic_bytes(6000, 1)
        node = client.put("f.bin", data).node
        self._corrupt_share_at(client, csps, node, node.chunks[0].chunk_id)
        report = client.get("f.bin")
        assert report.data == data  # repaired without user intervention

    def test_corruption_on_every_chunk(self, client, csps):
        data = deterministic_bytes(20_000, 2)
        node = client.put("big.bin", data).node
        for record in node.chunks:
            self._corrupt_share_at(client, csps, node, record.chunk_id)
        assert client.get("big.bin").data == data

    def test_total_corruption_raises(self, client, csps):
        data = deterministic_bytes(4000, 3)
        node = client.put("f.bin", data).node
        target = node.chunks[0].chunk_id
        for which in range(len(node.shares_of(target))):
            self._corrupt_share_at(client, csps, node, target, which)
        with pytest.raises(CyrusError):
            client.get("f.bin")

    def test_repair_counts_extra_downloads(self, client, csps):
        data = deterministic_bytes(5000, 4)
        node = client.put("f.bin", data).node
        clean = client.get("f.bin")
        self._corrupt_share_at(client, csps, node, node.chunks[0].chunk_id)
        repaired = client.get("f.bin")
        assert repaired.data == data
        # the repair fetched at least one additional share
        assert len(repaired.share_results) >= len(clean.share_results)
