"""Regression: retries must not double-count transferred bytes.

Ad-hoc benchmark accounting used to sum payload sizes per *attempt*, so
a provider-level retry counted its payload twice.  The metrics layer is
now the single source of truth and splits the two views explicitly:

* ``cyrus_provider_bytes_total`` — once per successful call (matches
  what actually lands on disk);
* ``cyrus_provider_attempt_bytes_total`` — once per attempt (the wire
  traffic, including retries).

The gap between them is exactly the retry traffic, which this test pins
against the fault plan's ground truth on a real on-disk provider.
"""

from __future__ import annotations

from repro.csp.localfs import LocalDirectoryCSP
from repro.csp.resilient import HealthRegistry, ResilientProvider, RetryPolicy
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.obs import MetricsRegistry
from repro.util.clock import SimClock

from tests.conftest import deterministic_bytes


def _build(tmp_path, specs):
    clock = SimClock()
    metrics = MetricsRegistry()
    disk = LocalDirectoryCSP("disk", tmp_path / "disk")
    faulty = FaultyProvider(disk, FaultPlan(specs, seed=5), clock=clock)
    registry = HealthRegistry(clock=clock)
    provider = ResilientProvider(
        faulty,
        policy=RetryPolicy(max_attempts=3, base_delay=0.01),
        registry=registry,
        clock=clock,
        metrics=metrics,
    )
    return provider, faulty, metrics


FILES = {f"obj-{i}": deterministic_bytes(700 + 333 * i, seed=50 + i)
         for i in range(5)}


class TestByteAccounting:
    def test_success_bytes_match_on_disk_ground_truth(self, tmp_path):
        specs = [FaultSpec(kind=FaultKind.TRANSIENT, ops=("upload",),
                           max_hits=2)]
        provider, faulty, metrics = _build(tmp_path, specs)
        for name, data in FILES.items():
            provider.upload(name, data)
        snap = metrics.snapshot()
        on_disk = sum(
            f.stat().st_size for f in (tmp_path / "disk").rglob("*")
            if f.is_file()
        )
        assert on_disk == sum(len(d) for d in FILES.values())
        # single source of truth: payload counted once per success,
        # no matter how many retries it took to land
        assert snap.counter_total(
            "cyrus_provider_bytes_total", csp="disk", direction="up"
        ) == on_disk

    def test_attempt_bytes_exceed_success_bytes_by_retry_traffic(
            self, tmp_path):
        specs = [FaultSpec(kind=FaultKind.TRANSIENT, ops=("upload",),
                           max_hits=2)]
        provider, faulty, metrics = _build(tmp_path, specs)
        for name, data in FILES.items():
            provider.upload(name, data)
        snap = metrics.snapshot()
        success = snap.counter_total(
            "cyrus_provider_bytes_total", csp="disk", direction="up")
        attempts = snap.counter_total(
            "cyrus_provider_attempt_bytes_total", csp="disk", direction="up")
        # ground truth from the fault log: each injected transient cost
        # one extra transmission of that object's payload
        retry_traffic = sum(
            len(FILES[e.name]) for e in faulty.fault_log
            if e.kind is FaultKind.TRANSIENT and e.op == "upload"
        )
        assert retry_traffic > 0  # the plan actually bit
        assert attempts == success + retry_traffic
        assert snap.counter_total(
            "cyrus_provider_retries_total", csp="disk"
        ) == faulty.injected_faults[FaultKind.TRANSIENT]

    def test_fault_free_run_has_equal_ledgers(self, tmp_path):
        provider, _faulty, metrics = _build(tmp_path, [])
        for name, data in FILES.items():
            provider.upload(name, data)
        for name, data in FILES.items():
            assert provider.download(name) == data
        snap = metrics.snapshot()
        for direction in ("up", "down"):
            assert snap.counter_total(
                "cyrus_provider_attempt_bytes_total",
                csp="disk", direction=direction,
            ) == snap.counter_total(
                "cyrus_provider_bytes_total", csp="disk", direction=direction,
            )
        assert snap.counter_total("cyrus_provider_retries_total") == 0
        # downloads moved exactly the stored payloads
        assert snap.counter_total(
            "cyrus_provider_bytes_total", csp="disk", direction="down"
        ) == sum(len(d) for d in FILES.values())
