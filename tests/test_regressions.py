"""Regression pins for non-obvious bugs found during development.

Each test reproduces the exact failure mode; keep them even if the
implementation is rewritten — they encode hard-won failure knowledge.
"""

import random

import pytest

from repro.netsim import FlowSimulator, Link, TransferRequest


class TestSimulatorFloatAbsorption:
    """A flow whose residual bytes were too small to advance the clock
    (``now + remaining/rate == now`` in floating point) used to spin the
    event loop forever.  The fix treats an unrepresentable advance as
    completion."""

    def test_tiny_residual_at_large_now(self):
        links = {"a": Link.symmetric("a", 1e6)}
        sim = FlowSimulator(links)
        # start far from zero so absolute time eats tiny increments
        res = sim.run(
            [TransferRequest("a", 1, "down")], start_time=1e9
        )
        assert res[0].completed
        assert res[0].end >= 1e9

    def test_many_tiny_flows_terminate(self):
        links = {"a": Link.symmetric("a", 1e12)}  # huge rate, tiny times
        sim = FlowSimulator(links)
        requests = [
            TransferRequest("a", size, "down", start_at=0.0)
            for size in (1, 3, 7, 11, 13)
        ]
        results = sim.run(requests, start_time=5e8)
        assert all(r.completed for r in results)

    def test_mixed_scale_batch(self):
        # the original trigger: a realistic batch where one share's
        # remaining bytes underflow relative to the batch timescale
        rng = random.Random(2)
        links = {
            f"c{i}": Link.symmetric(f"c{i}", 15e6 if i < 2 else 2e6,
                                    rtt_s=0.05)
            for i in range(4)
        }
        sim = FlowSimulator(links, client_up=20e6, client_down=30e6)
        requests = [
            TransferRequest(f"c{rng.randrange(4)}",
                            rng.randint(1, 2_000_000), "down")
            for _ in range(40)
        ]
        results = sim.run(requests, start_time=3600.0)
        assert all(r.completed for r in results)


class TestSelectorNegativeResiduals:
    """LP round-off used to leave ~-1e-9 'loads' on idle CSPs, which the
    bandwidth allocator rejected as negative.  The selector now clamps
    fractional residues at zero."""

    def test_many_chunk_problem_with_idle_csps(self):
        from repro.selection import ChunkDownload, CyrusSelector, DownloadProblem

        caps = {f"fast{i}": 15e6 for i in range(4)} | {
            f"slow{i}": 2e6 for i in range(3)
        }
        rng = random.Random(11)
        ids = sorted(caps)
        problem = DownloadProblem(
            chunks=tuple(
                ChunkDownload(f"c{i}", rng.randint(1, 4) * 1_000_000,
                              tuple(rng.sample(ids, 4)))
                for i in range(25)
            ),
            t=2, link_caps=caps, client_cap=40e6,
        )
        # must not raise SelectionError("negative load ...")
        plan = CyrusSelector(resolve_every=1).select(problem)
        assert plan.bottleneck_time > 0


class TestConflictResolutionVisibility:
    """Sync used to run conflict detection per fetched node before all
    nodes of the round were merged, crashing on a child whose parent
    arrived later in the same batch; and resolved conflicts used to be
    re-reported forever because the fork stayed in history."""

    def test_resolution_not_rereported(self, client, second_client):
        client.put("doc.txt", b"base " * 40)
        second_client.sync()
        client.uploader.upload("doc.txt", b"AA " * 50, client_id="alice")
        second_client.uploader.upload("doc.txt", b"BB " * 50,
                                      client_id="bob")
        client.sync()
        client.resolve_conflicts()
        # a third device syncing everything at once (children + parents
        # + renames in one batch) must neither crash nor see conflicts
        from repro.core.client import CyrusClient

        third = CyrusClient.create(
            [client.cloud.provider(c) for c in client.cloud.active_csps()],
            client.config, client_id="third",
        )
        third.recover()
        assert not third.conflicts()
