"""Unit tests for key-derived dispersal (paper Sections 5.1, 7.1)."""

import os

import pytest

from repro.erasure import KeyedSharer, derive_dispersal_points
from repro.errors import CodingError, InsufficientSharesError


class TestDerivePoints:
    def test_deterministic(self):
        assert derive_dispersal_points("k", 10) == derive_dispersal_points("k", 10)

    def test_distinct_nonzero(self):
        points = derive_dispersal_points("some key", 200)
        assert len(set(points)) == 200
        assert 0 not in points

    def test_key_sensitivity(self):
        assert derive_dispersal_points("a", 8) != derive_dispersal_points("b", 8)

    def test_prefix_stability(self):
        # growing n must keep earlier points: metadata slots are
        # append-only and old shares must stay decodable
        small = derive_dispersal_points("key", 4)
        large = derive_dispersal_points("key", 9)
        assert large[:4] == small

    def test_max_points(self):
        assert len(derive_dispersal_points("k", 255)) == 255

    def test_rejects_bad_n(self):
        with pytest.raises(CodingError):
            derive_dispersal_points("k", 0)
        with pytest.raises(CodingError):
            derive_dispersal_points("k", 256)


class TestKeyedSharer:
    def test_roundtrip(self):
        sharer = KeyedSharer("passphrase", 2, 4)
        data = os.urandom(5000)
        shares = sharer.split(data)
        assert sharer.join(shares[2:]) == data

    def test_same_key_same_shares(self):
        data = b"shared content" * 50
        a = KeyedSharer("key", 2, 3).split(data)
        b = KeyedSharer("key", 2, 3).split(data)
        assert [s.data for s in a] == [s.data for s in b]

    def test_different_key_different_shares(self):
        data = b"shared content" * 50
        a = KeyedSharer("key-one", 2, 3).split(data)
        b = KeyedSharer("key-two", 2, 3).split(data)
        assert [s.data for s in a] != [s.data for s in b]

    def test_wrong_key_cannot_decode(self):
        # t shares + wrong key => garbage (or an integrity error upstream)
        data = os.urandom(1000)
        shares = KeyedSharer("right", 2, 3).split(data)
        wrong = KeyedSharer("wrong", 2, 3)
        assert wrong.join(shares[:2]) != data

    def test_split_indices(self):
        sharer = KeyedSharer("k", 2, 5)
        data = os.urandom(777)
        full = sharer.split(data)
        only = sharer.split_indices(data, [3])
        assert only[0].data == full[3].data

    def test_regenerated_share_decodes_with_originals(self):
        # lazy migration regenerates one index; it must combine with old
        sharer = KeyedSharer("k", 2, 4)
        data = os.urandom(2048)
        originals = sharer.split(data)
        regenerated = sharer.split_indices(data, [1])[0]
        assert sharer.join([originals[3], regenerated]) == data

    def test_insufficient(self):
        sharer = KeyedSharer("k", 3, 5)
        shares = sharer.split(b"abc")
        with pytest.raises(InsufficientSharesError):
            sharer.join(shares[:2])

    def test_codec_exposed(self):
        sharer = KeyedSharer("k", 2, 3)
        assert sharer.codec.t == 2
        assert sharer.codec.n == 3
