"""Unit tests for the non-systematic Reed--Solomon codec."""

import os

import numpy as np
import pytest

from repro.erasure import RSCodec, Share
from repro.errors import CodingError, InsufficientSharesError


class TestEncode:
    def test_share_count_and_size(self):
        codec = RSCodec(2, 4)
        shares = codec.encode(b"x" * 1001)
        assert len(shares) == 4
        assert all(s.size == 501 for s in shares)  # ceil(1001/2)

    def test_share_metadata(self):
        codec = RSCodec(3, 5)
        shares = codec.encode(b"hello world")
        assert [s.index for s in shares] == [0, 1, 2, 3, 4]
        assert all((s.t, s.n, s.chunk_size) == (3, 5, 11) for s in shares)

    def test_non_systematic(self):
        # no share may contain the plaintext (Figure 5's whole point)
        data = os.urandom(4096)
        codec = RSCodec(2, 4)
        for share in codec.encode(data):
            assert share.data != data[: len(share.data)]
            assert share.data != data[len(share.data):]

    def test_empty_chunk(self):
        codec = RSCodec(2, 3)
        shares = codec.encode(b"")
        assert codec.decode(shares[:2]) == b""

    def test_single_byte(self):
        codec = RSCodec(2, 3)
        shares = codec.encode(b"A")
        assert codec.decode(shares[1:]) == b"A"

    def test_t_equals_n(self):
        codec = RSCodec(3, 3)
        data = os.urandom(100)
        shares = codec.encode(data)
        assert codec.decode(shares) == data

    def test_t_equals_one_is_replication_coded(self):
        codec = RSCodec(1, 3)
        data = os.urandom(64)
        shares = codec.encode(data)
        for share in shares:
            assert codec.decode([share]) == data

    def test_encode_rows_matches_full_encode(self):
        codec = RSCodec(2, 5)
        data = os.urandom(999)
        full = codec.encode(data)
        partial = codec.encode_rows(data, [1, 4])
        assert partial[0].data == full[1].data
        assert partial[1].data == full[4].data

    def test_encode_rows_bad_index(self):
        with pytest.raises(CodingError):
            RSCodec(2, 3).encode_rows(b"xy", [3])


class TestDecode:
    def test_every_t_subset_decodes(self):
        import itertools

        data = os.urandom(1234)
        codec = RSCodec(2, 4)
        shares = codec.encode(data)
        for combo in itertools.combinations(shares, 2):
            assert codec.decode(list(combo)) == data

    def test_extra_shares_ignored(self):
        data = os.urandom(500)
        codec = RSCodec(2, 4)
        shares = codec.encode(data)
        assert codec.decode(shares) == data

    def test_duplicate_shares_dont_count(self):
        codec = RSCodec(2, 4)
        shares = codec.encode(b"payload")
        with pytest.raises(InsufficientSharesError):
            codec.decode([shares[0], shares[0]])

    def test_too_few_shares(self):
        codec = RSCodec(3, 5)
        shares = codec.encode(b"data!")
        with pytest.raises(InsufficientSharesError):
            codec.decode(shares[:2])

    def test_mismatched_params_rejected(self):
        a = RSCodec(2, 4)
        b = RSCodec(2, 5)
        shares = b.encode(b"hello")
        with pytest.raises(CodingError):
            a.decode(shares[:2])

    def test_mismatched_chunk_size_rejected(self):
        codec = RSCodec(2, 3)
        s1 = codec.encode(b"abcd")[0]
        s2 = codec.encode(b"abcdef")[1]
        with pytest.raises(CodingError):
            codec.decode([s1, s2])

    def test_truncated_share_rejected(self):
        codec = RSCodec(2, 3)
        shares = codec.encode(b"x" * 100)
        bad = Share(index=shares[0].index, data=shares[0].data[:-1],
                    t=2, n=3, chunk_size=100)
        with pytest.raises(CodingError):
            codec.decode([bad, shares[1]])

    def test_odd_sizes_roundtrip(self):
        codec = RSCodec(3, 5)
        for size in (1, 2, 3, 7, 1000, 1001, 1002):
            data = os.urandom(size)
            assert codec.decode(codec.encode(data)[:3]) == data


class TestParams:
    def test_rejects_t_below_one(self):
        with pytest.raises(CodingError):
            RSCodec(0, 3)

    def test_rejects_n_below_t(self):
        with pytest.raises(CodingError):
            RSCodec(4, 3)

    def test_rejects_n_above_255(self):
        with pytest.raises(CodingError):
            RSCodec(2, 256)

    def test_rejects_wrong_point_count(self):
        with pytest.raises(CodingError):
            RSCodec(2, 3, points=[1, 2])

    def test_rejects_duplicate_points(self):
        with pytest.raises(CodingError):
            RSCodec(2, 3, points=[1, 1, 2])

    def test_dispersal_matrix_is_copy(self):
        codec = RSCodec(2, 3)
        m = codec.dispersal_matrix
        m[0, 0] ^= 1
        assert (codec.dispersal_matrix != m).any()

    def test_custom_points_change_shares(self):
        data = b"secret chunk content"
        default = RSCodec(2, 3)
        custom = RSCodec(2, 3, points=[7, 50, 200])
        assert [s.data for s in default.encode(data)] != [
            s.data for s in custom.encode(data)
        ]


class TestShareContainer:
    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            Share(index=3, data=b"x", t=2, n=3, chunk_size=1)

    def test_rejects_bad_tn(self):
        with pytest.raises(ValueError):
            Share(index=0, data=b"x", t=4, n=3, chunk_size=1)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Share(index=0, data=b"x", t=2, n=3, chunk_size=-1)

    def test_size_property(self):
        assert Share(index=0, data=b"abc", t=1, n=1, chunk_size=3).size == 3
