"""Resilient provider layer: retry policy, breaker, registry, wrapper."""

from __future__ import annotations

import pytest

from repro.csp.base import CloudProvider
from repro.csp.memory import InMemoryCSP
from repro.csp.resilient import (
    BreakerState,
    CircuitBreaker,
    HealthRegistry,
    ResilientProvider,
    RetryPolicy,
    wrap_resilient,
)
from repro.errors import (
    CircuitOpenError,
    CSPAuthError,
    CSPQuotaExceededError,
    CSPTimeoutError,
    CSPUnavailableError,
    ObjectNotFoundError,
    is_retryable,
)
from repro.util.clock import SimClock


class _FlakyCSP(CloudProvider):
    """Fails the first ``fail_times`` calls of every op, then delegates."""

    def __init__(self, csp_id: str, fail_times: int = 0,
                 error: type = CSPUnavailableError):
        super().__init__(csp_id)
        self.inner = InMemoryCSP(csp_id)
        self.fail_times = fail_times
        self.error = error
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.error(f"induced failure #{self.calls}",
                             csp_id=self.csp_id)

    def authenticate(self, credentials):
        self._maybe_fail()
        return self.inner.authenticate(credentials)

    def list(self, *, prefix: str = ""):
        self._maybe_fail()
        return self.inner.list(prefix=prefix)

    def upload(self, name, data):
        self._maybe_fail()
        self.inner.upload(name, data)

    def download(self, name):
        self._maybe_fail()
        return self.inner.download(name)

    def delete(self, name):
        self._maybe_fail()
        self.inner.delete(name)


class _SlowCSP(_FlakyCSP):
    """Every call takes ``op_seconds`` on the shared SimClock."""

    def __init__(self, csp_id: str, clock: SimClock, op_seconds: float):
        super().__init__(csp_id)
        self.clock = clock
        self.op_seconds = op_seconds

    def _maybe_fail(self):
        self.calls += 1
        self.clock.advance(self.op_seconds)


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(0) == 0.0

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(base_delay=0.1, jitter=0.25, seed=7)
        b = RetryPolicy(base_delay=0.1, jitter=0.25, seed=7)
        c = RetryPolicy(base_delay=0.1, jitter=0.25, seed=8)
        for attempt in range(1, 6):
            assert a.delay(attempt) == b.delay(attempt)
            raw = min(a.max_delay, 0.1 * a.multiplier ** (attempt - 1))
            assert raw * 0.75 <= a.delay(attempt) <= raw * 1.25
        assert any(a.delay(k) != c.delay(k) for k in range(1, 6))

    def test_should_retry_classifies(self):
        policy = RetryPolicy(max_attempts=3)
        outage = CSPUnavailableError("down", csp_id="x")
        auth = CSPAuthError("expired", csp_id="x")
        assert policy.should_retry(outage, 1)
        assert policy.should_retry(outage, 2)
        assert not policy.should_retry(outage, 3)  # budget exhausted
        assert not policy.should_retry(auth, 1)  # permanent

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# CircuitBreaker


class TestCircuitBreaker:
    def test_full_lifecycle(self):
        clock = SimClock()
        brk = CircuitBreaker(clock=clock, failure_threshold=3,
                             reset_timeout=10.0)
        assert brk.state is BreakerState.CLOSED
        for _ in range(3):
            assert brk.allow()
            brk.record_failure()
        assert brk.state is BreakerState.OPEN
        assert brk.opened_count == 1
        assert not brk.allow()  # failing fast
        clock.advance(10.0)
        assert brk.state is BreakerState.HALF_OPEN
        assert brk.allow()  # exactly one probe
        assert not brk.allow()  # second caller blocked during probe
        brk.record_failure()  # probe failed
        assert brk.state is BreakerState.OPEN
        assert brk.opened_count == 2
        clock.advance(10.0)
        assert brk.allow()
        brk.record_success()
        assert brk.state is BreakerState.CLOSED
        assert brk.allow()

    def test_success_while_open_does_not_close(self):
        # a force-dispatched last-resort op can succeed against an OPEN
        # circuit; that must not end the quarantine — only the HALF_OPEN
        # probe after the reset timeout may close it
        clock = SimClock()
        brk = CircuitBreaker(clock=clock, failure_threshold=1,
                             reset_timeout=10.0)
        brk.record_failure()
        assert brk.state is BreakerState.OPEN
        brk.record_success()
        assert brk.state is BreakerState.OPEN
        clock.advance(10.0)
        brk.record_success()  # the sanctioned probe
        assert brk.state is BreakerState.CLOSED

    def test_success_resets_consecutive_failures(self):
        brk = CircuitBreaker(clock=SimClock(), failure_threshold=3)
        brk.record_failure()
        brk.record_failure()
        brk.record_success()
        brk.record_failure()
        brk.record_failure()
        assert brk.state is BreakerState.CLOSED  # never 3 consecutive


# ---------------------------------------------------------------------------
# HealthRegistry


class TestHealthRegistry:
    def test_liveness_and_events(self):
        clock = SimClock()
        reg = HealthRegistry(clock=clock, failure_threshold=2,
                             reset_timeout=5.0)
        events = []
        reg.subscribe(events.append)
        assert reg.is_live("never-seen")
        reg.record_failure("a", CSPUnavailableError("down", csp_id="a"))
        assert reg.is_live("a")  # one failure is not an open circuit
        reg.record_failure("a", CSPUnavailableError("down", csp_id="a"))
        assert not reg.is_live("a")
        assert reg.live(["a", "b"]) == ["b"]
        assert not reg.allow("a")
        kinds = [e.kind for e in events]
        assert kinds == ["failure", "failure", "breaker_open"]
        clock.advance(5.0)
        assert reg.is_live("a")  # half-open counts as live
        reg.record_success("a")
        assert [e.kind for e in events][-1] == "breaker_close"

    def test_snapshot_counters(self):
        reg = HealthRegistry(clock=SimClock())
        reg.record_success("a")
        reg.record_failure("a", "boom")
        health = reg.health_of("a")
        assert (health.successes, health.failures) == (1, 1)
        assert health.last_error == "boom"
        assert set(reg.snapshot()) == {"a"}


# ---------------------------------------------------------------------------
# ResilientProvider


class TestResilientProvider:
    def test_transient_failures_retry_then_succeed(self):
        clock = SimClock()
        flaky = _FlakyCSP("c1", fail_times=2)
        reg = HealthRegistry(clock=clock)
        prov = ResilientProvider(
            flaky, policy=RetryPolicy(max_attempts=3, jitter=0.0),
            registry=reg, clock=clock,
        )
        prov.upload("obj", b"payload")
        assert flaky.calls == 3  # two failures + one success
        assert prov.download("obj") == b"payload"
        assert clock.now() > 0  # backoff advanced the sim clock
        assert reg.health_of("c1").state is BreakerState.CLOSED

    def test_budget_exhaustion_raises_last_error(self):
        flaky = _FlakyCSP("c1", fail_times=99)
        prov = ResilientProvider(
            flaky, policy=RetryPolicy(max_attempts=2, jitter=0.0,
                                      base_delay=0.0),
            clock=SimClock(),
        )
        with pytest.raises(CSPUnavailableError):
            prov.download("obj")
        assert flaky.calls == 2

    def test_permanent_errors_do_not_retry_and_count_as_up(self):
        flaky = _FlakyCSP("c1", fail_times=99, error=CSPAuthError)
        reg = HealthRegistry(clock=SimClock(), failure_threshold=1)
        prov = ResilientProvider(flaky, registry=reg, clock=SimClock())
        with pytest.raises(CSPAuthError):
            prov.list()
        assert flaky.calls == 1  # no retry
        # the provider answered: an auth refusal is not a health failure
        assert reg.is_live("c1")
        flaky2 = _FlakyCSP("c2", fail_times=99, error=CSPQuotaExceededError)
        prov2 = ResilientProvider(flaky2, registry=reg, clock=SimClock())
        with pytest.raises(CSPQuotaExceededError):
            prov2.upload("o", b"x")
        assert flaky2.calls == 1

    def test_missing_object_is_immediate(self):
        prov = ResilientProvider(InMemoryCSP("c1"), clock=SimClock())
        with pytest.raises(ObjectNotFoundError):
            prov.download("nope")

    def test_breaker_fails_fast_without_touching_provider(self):
        clock = SimClock()
        flaky = _FlakyCSP("dead", fail_times=10**6)
        reg = HealthRegistry(clock=clock, failure_threshold=3,
                             reset_timeout=60.0)
        prov = ResilientProvider(
            flaky, policy=RetryPolicy(max_attempts=1),
            registry=reg, clock=clock,
        )
        for _ in range(3):
            with pytest.raises(CSPUnavailableError):
                prov.download("obj")
        assert flaky.calls == 3
        with pytest.raises(CircuitOpenError) as ei:
            prov.download("obj")
        assert flaky.calls == 3  # not dispatched
        assert not is_retryable(ei.value)
        clock.advance(60.0)
        with pytest.raises(CSPUnavailableError):
            prov.download("obj")  # the half-open probe
        assert flaky.calls == 4
        with pytest.raises(CircuitOpenError):
            prov.download("obj")  # failed probe re-opened the circuit
        assert flaky.calls == 4

    def test_deadline_detects_stalls(self):
        clock = SimClock()
        slow = _SlowCSP("c1", clock, op_seconds=5.0)
        reg = HealthRegistry(clock=clock)
        prov = ResilientProvider(
            slow, policy=RetryPolicy(max_attempts=2, jitter=0.0),
            registry=reg, deadline_s=1.0, clock=clock,
        )
        slow.inner.upload("obj", b"x")
        with pytest.raises(CSPTimeoutError):
            prov.download("obj")
        assert slow.calls == 2  # a timeout is transient: one retry
        assert reg.health_of("c1").failures == 2

    def test_deadline_passes_fast_ops(self):
        clock = SimClock()
        slow = _SlowCSP("c1", clock, op_seconds=0.1)
        prov = ResilientProvider(slow, deadline_s=1.0, clock=clock)
        prov.upload("obj", b"x")
        assert prov.download("obj") == b"x"

    def test_wrap_resilient_shares_registry(self):
        clock = SimClock()
        fleet = wrap_resilient(
            [InMemoryCSP("a"), InMemoryCSP("b")],
            registry=HealthRegistry(clock=clock), clock=clock,
        )
        assert [p.csp_id for p in fleet] == ["a", "b"]
        assert fleet[0].registry is fleet[1].registry
        fleet[0].upload("o", b"1")
        assert fleet[0].registry.health_of("a").successes == 1
