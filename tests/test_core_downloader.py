"""Unit tests for the download pipeline (Algorithm 3)."""

import pytest

from repro.errors import InsufficientSharesError, MetadataError
from tests.conftest import deterministic_bytes


class TestBasicDownload:
    def test_roundtrip(self, client):
        data = deterministic_bytes(12_000, 1)
        client.put("f.bin", data)
        report = client.get("f.bin")
        assert report.data == data
        assert report.bytes_downloaded > 0
        assert report.plans

    def test_downloads_only_t_shares_per_chunk(self, client, config):
        data = deterministic_bytes(8000, 2)
        client.put("f.bin", data)
        report = client.get("f.bin")
        per_chunk: dict[str, int] = {}
        for res in report.share_results:
            if res.ok:
                per_chunk[res.op.chunk_id] = per_chunk.get(res.op.chunk_id, 0) + 1
        assert all(count == config.t for count in per_chunk.values())

    def test_version_traversal(self, client):
        v1 = deterministic_bytes(4000, 3)
        v2 = deterministic_bytes(4200, 4)
        client.put("f.bin", v1)
        client.put("f.bin", v2)
        assert client.get("f.bin", version=0).data == v2
        assert client.get("f.bin", version=1).data == v1

    def test_unknown_file(self, client):
        with pytest.raises(MetadataError):
            client.get("missing.bin")

    def test_get_specific_node(self, client):
        data = deterministic_bytes(3000, 5)
        node = client.put("f.bin", data).node
        assert client.get_node(node).data == data


class TestFailover:
    def test_reroutes_after_share_loss(self, client, csps, config):
        data = deterministic_bytes(10_000, 6)
        node = client.put("f.bin", data).node
        # wipe every share stored at one provider
        victim = csps[0]
        for info in list(victim.list()):
            victim.delete(info.name)
        report = client.get("f.bin")
        assert report.data == data

    def test_fails_when_too_many_csps_lost(self, client, csps, config):
        data = deterministic_bytes(5000, 7)
        client.put("f.bin", data)
        # losing n - t + 1 providers' shares makes some chunk short
        for victim in csps[:3]:
            for info in list(victim.list()):
                victim.delete(info.name)
        with pytest.raises(InsufficientSharesError):
            client.get("f.bin")

    def test_integrity_check(self, client, csps):
        from repro.core.naming import chunk_share_object_name
        from repro.errors import CyrusError

        data = deterministic_bytes(4000, 8)
        node = client.put("f.bin", data).node
        # corrupt every stored copy of one chunk's shares
        target = node.chunks[0].chunk_id
        for share in node.shares_of(target):
            name = chunk_share_object_name(share.index, share.chunk_id)
            provider = next(c for c in csps if c.csp_id == share.csp_id)
            blob = bytearray(provider.download(name))
            blob[0] ^= 0xFF
            provider.upload(name, bytes(blob))
        with pytest.raises(CyrusError):
            client.get("f.bin")


class TestConflictsSurfaced:
    def test_download_reports_conflicts(self, client, second_client):
        client.put("f.txt", b"base content " * 50)
        second_client.sync()
        client.uploader.upload("f.txt", b"alice edit " * 60, client_id="alice")
        second_client.uploader.upload("f.txt", b"bob edit " * 60, client_id="bob")
        client.sync()
        report = client.get("f.txt")
        assert any(c.kind == "divergence" for c in report.conflicts)


class TestDeletedFiles:
    def test_tombstone_resolves_to_live_version(self, client):
        data = deterministic_bytes(2000, 9)
        client.put("f.bin", data)
        client.delete("f.bin")
        assert client.get("f.bin").data == data

    def test_never_lived_file(self, client):
        # tombstone with no live ancestor
        client.put("f.bin", deterministic_bytes(100, 10))
        client.delete("f.bin")
        client.delete("f.bin") if False else None
        # direct node download of the tombstone is refused
        tomb = client.tree.latest("f.bin")
        assert tomb.deleted
        with pytest.raises(MetadataError):
            client.downloader.download(tomb)
