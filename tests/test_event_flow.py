"""Integration: the Section 5.3 event model during real transfers.

The paper's receiver sees GET / PUT / GET_META / PUT_META events and
derives ShareComplete / ChunkComplete / FileComplete.  These tests run
actual uploads/downloads through a simulated environment with a
registered receiver and check the event stream itself.
"""

from repro.bench import build_paper_testbed
from repro.core.config import CyrusConfig
from repro.core.transfer import OpKind
from tests.conftest import SMALL_CHUNKS, deterministic_bytes


def make_env_client():
    env = build_paper_testbed()
    config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
    return env, env.new_client(config, client_id="events")


class TestUploadEvents:
    def test_put_then_put_meta_ordering(self):
        env, client = make_env_client()
        client.put("f.bin", deterministic_bytes(3000, 1), sync_first=False)
        kinds = [r.op.kind for r in env.receiver.events]
        assert OpKind.PUT in kinds and OpKind.PUT_META in kinds
        # every share PUT completes before the first metadata PUT — the
        # Algorithm 2 barrier that keeps half-uploaded files invisible
        last_share = max(
            i for i, k in enumerate(kinds) if k is OpKind.PUT
        )
        first_meta = min(
            i for i, k in enumerate(kinds) if k is OpKind.PUT_META
        )
        assert last_share < first_meta

    def test_share_events_carry_chunk_ids(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(3000, 2),
                          sync_first=False).node
        chunk_ids = {c.chunk_id for c in node.chunks}
        put_chunks = {
            r.op.chunk_id
            for r in env.receiver.events
            if r.op.kind is OpKind.PUT and r.op.chunk_id
        }
        assert put_chunks == chunk_ids

    def test_n_put_events_per_chunk(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(2000, 3),
                          sync_first=False).node
        for record in node.chunks:
            events = [
                r for r in env.receiver.events
                if r.op.kind is OpKind.PUT and r.op.chunk_id == record.chunk_id
            ]
            assert len(events) == 3  # n = 3


class TestDownloadEvents:
    def test_t_get_events_per_chunk(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(4000, 4),
                          sync_first=False).node
        env.receiver.events.clear()
        client.get("f.bin", sync_first=False)
        for record in node.chunks:
            gets = [
                r for r in env.receiver.events
                if r.op.kind is OpKind.GET and r.op.chunk_id == record.chunk_id
            ]
            assert len(gets) == 2  # t = 2

    def test_chunk_completion_tracking(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(2000, 5),
                          sync_first=False).node
        receiver = env.receiver
        cid = node.chunks[0].chunk_id
        receiver.expect_chunk(cid, shares_needed=2, file_key="f.bin")
        receiver.events.clear()
        client.get("f.bin", sync_first=False)
        assert receiver.chunk_complete(cid)

    def test_file_completion_tracking(self):
        env, client = make_env_client()
        node = client.put("multi.bin", deterministic_bytes(6000, 6),
                          sync_first=False).node
        receiver = env.receiver
        unique = {c.chunk_id for c in node.chunks}
        for cid in unique:
            receiver.expect_chunk(cid, shares_needed=2, file_key="multi.bin")
        client.get("multi.bin", sync_first=False)
        assert receiver.file_complete("multi.bin")

    def test_failed_ops_do_not_count_toward_completion(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(2000, 7),
                          sync_first=False).node
        cid = node.chunks[0].chunk_id
        receiver = env.receiver
        receiver.expect_chunk(cid, shares_needed=2)
        # wipe the shares everywhere: GETs fail, completion never fires
        for csp in env.csps.values():
            for info in list(csp._store.list()):
                if not info.name.startswith("md-"):
                    csp._store.delete(info.name)
        try:
            client.get("f.bin", sync_first=False)
        except Exception:
            pass
        assert not receiver.chunk_complete(cid)


class TestSpanTraces:
    """The tracing view of the same transfers: every put/get yields a
    well-formed span tree whose byte totals agree with storage stats."""

    def test_trace_well_formed_after_puts_and_gets(self):
        env, client = make_env_client()
        client.put("a.bin", deterministic_bytes(5000, 21), sync_first=False)
        client.put("b.bin", deterministic_bytes(3000, 22), sync_first=False)
        client.get("a.bin", sync_first=False)
        client.get("b.bin", sync_first=False)
        assert env.obs.tracer.check_well_formed() == []

    def test_upload_span_has_pipeline_children(self):
        env, client = make_env_client()
        client.put("a.bin", deterministic_bytes(4000, 23), sync_first=False)
        uploads = env.obs.tracer.find("upload")
        assert len(uploads) == 1
        (up,) = uploads
        names = [c.name for c in up.children]
        assert names.count("chunk") == 1
        assert names.count("scatter") == 1
        assert names.count("publish_meta") == 1
        scatter = next(c for c in up.children if c.name == "scatter")
        put_ops = [s for s in scatter.children if s.name == "op"]
        assert put_ops
        assert all(s.attrs["op_kind"] == "PUT" for s in put_ops)
        publish = next(c for c in up.children if c.name == "publish_meta")
        meta_ops = [s for s in publish.children if s.name == "op"]
        assert meta_ops
        assert all(s.attrs["op_kind"] == "PUT_META" for s in meta_ops)

    def test_download_span_has_pipeline_children(self):
        env, client = make_env_client()
        client.put("a.bin", deterministic_bytes(4000, 24), sync_first=False)
        client.get("a.bin", sync_first=False)
        downloads = env.obs.tracer.find("download")
        assert len(downloads) == 1
        (down,) = downloads
        names = [c.name for c in down.children]
        for stage in ("select", "gather", "decode"):
            assert stage in names
        gather = next(c for c in down.children if c.name == "gather")
        get_ops = [s for s in gather.children if s.name == "op"]
        assert get_ops
        assert all(s.attrs["op_kind"] == "GET" for s in get_ops)

    def test_no_orphans_and_children_nest_within_parents(self):
        env, client = make_env_client()
        client.put("a.bin", deterministic_bytes(6000, 25), sync_first=False)
        client.get("a.bin", sync_first=False)
        tracer = env.obs.tracer
        # every op span recorded during a transfer hangs off that
        # transfer's tree, not the root list
        root_names = {r.name for r in tracer.roots}
        assert "op" not in root_names
        for root in tracer.roots:
            for span in root.walk():
                assert span.finished
                for child in span.children:
                    assert span.start <= child.start
                    assert child.end <= span.end

    def test_per_csp_put_bytes_match_storage_stats(self):
        env, client = make_env_client()
        for i, name in enumerate(["a.bin", "b.bin", "c.bin"]):
            client.put(name, deterministic_bytes(2500 + 700 * i, 26 + i),
                       sync_first=False)
        timeline = env.obs.timeline()
        assert (timeline.per_csp_bytes(kind="PUT")
                == client.storage_stats()["per_csp_bytes"])

    def test_engine_byte_counters_match_stored_ground_truth(self):
        env, client = make_env_client()
        client.put("a.bin", deterministic_bytes(4096, 30), sync_first=False)
        client.get("a.bin", sync_first=False)
        snap = env.obs.snapshot()
        for csp_id, csp in env.csps.items():
            stored = sum(info.size for info in csp._store.list())
            uploaded = snap.counter_total(
                "cyrus_transfer_bytes_total", csp=csp_id, direction="up"
            )
            assert uploaded == stored
