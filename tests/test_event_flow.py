"""Integration: the Section 5.3 event model during real transfers.

The paper's receiver sees GET / PUT / GET_META / PUT_META events and
derives ShareComplete / ChunkComplete / FileComplete.  These tests run
actual uploads/downloads through a simulated environment with a
registered receiver and check the event stream itself.
"""

from repro.bench import build_paper_testbed
from repro.core.config import CyrusConfig
from repro.core.transfer import OpKind
from tests.conftest import SMALL_CHUNKS, deterministic_bytes


def make_env_client():
    env = build_paper_testbed()
    config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
    return env, env.new_client(config, client_id="events")


class TestUploadEvents:
    def test_put_then_put_meta_ordering(self):
        env, client = make_env_client()
        client.put("f.bin", deterministic_bytes(3000, 1), sync_first=False)
        kinds = [r.op.kind for r in env.receiver.events]
        assert OpKind.PUT in kinds and OpKind.PUT_META in kinds
        # every share PUT completes before the first metadata PUT — the
        # Algorithm 2 barrier that keeps half-uploaded files invisible
        last_share = max(
            i for i, k in enumerate(kinds) if k is OpKind.PUT
        )
        first_meta = min(
            i for i, k in enumerate(kinds) if k is OpKind.PUT_META
        )
        assert last_share < first_meta

    def test_share_events_carry_chunk_ids(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(3000, 2),
                          sync_first=False).node
        chunk_ids = {c.chunk_id for c in node.chunks}
        put_chunks = {
            r.op.chunk_id
            for r in env.receiver.events
            if r.op.kind is OpKind.PUT and r.op.chunk_id
        }
        assert put_chunks == chunk_ids

    def test_n_put_events_per_chunk(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(2000, 3),
                          sync_first=False).node
        for record in node.chunks:
            events = [
                r for r in env.receiver.events
                if r.op.kind is OpKind.PUT and r.op.chunk_id == record.chunk_id
            ]
            assert len(events) == 3  # n = 3


class TestDownloadEvents:
    def test_t_get_events_per_chunk(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(4000, 4),
                          sync_first=False).node
        env.receiver.events.clear()
        client.get("f.bin", sync_first=False)
        for record in node.chunks:
            gets = [
                r for r in env.receiver.events
                if r.op.kind is OpKind.GET and r.op.chunk_id == record.chunk_id
            ]
            assert len(gets) == 2  # t = 2

    def test_chunk_completion_tracking(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(2000, 5),
                          sync_first=False).node
        receiver = env.receiver
        cid = node.chunks[0].chunk_id
        receiver.expect_chunk(cid, shares_needed=2, file_key="f.bin")
        receiver.events.clear()
        client.get("f.bin", sync_first=False)
        assert receiver.chunk_complete(cid)

    def test_file_completion_tracking(self):
        env, client = make_env_client()
        node = client.put("multi.bin", deterministic_bytes(6000, 6),
                          sync_first=False).node
        receiver = env.receiver
        unique = {c.chunk_id for c in node.chunks}
        for cid in unique:
            receiver.expect_chunk(cid, shares_needed=2, file_key="multi.bin")
        client.get("multi.bin", sync_first=False)
        assert receiver.file_complete("multi.bin")

    def test_failed_ops_do_not_count_toward_completion(self):
        env, client = make_env_client()
        node = client.put("f.bin", deterministic_bytes(2000, 7),
                          sync_first=False).node
        cid = node.chunks[0].chunk_id
        receiver = env.receiver
        receiver.expect_chunk(cid, shares_needed=2)
        # wipe the shares everywhere: GETs fail, completion never fires
        for csp in env.csps.values():
            for info in list(csp._store.list()):
                if not info.name.startswith("md-"):
                    csp._store.delete(info.name)
        try:
            client.get("f.bin", sync_first=False)
        except Exception:
            pass
        assert not receiver.chunk_complete(cid)
