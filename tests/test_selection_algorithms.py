"""Unit tests for the CYRUS selector, its relaxations, and baselines."""

import random

import pytest

from repro.errors import SelectionError
from repro.selection import (
    BruteForceSelector,
    ChunkDownload,
    CyrusSelector,
    DownloadProblem,
    GreedySelector,
    RandomSelector,
    RoundRobinSelector,
)
from repro.selection.relaxation import (
    solve_fractional_alternating,
    solve_fractional_convexified,
)

TESTBED_CAPS = {f"fast{i}": 15e6 for i in range(4)} | {
    f"slow{i}": 2e6 for i in range(3)
}


def make_problem(chunks=6, t=2, n=4, seed=0, caps=None, client=40e6):
    caps = caps or TESTBED_CAPS
    rng = random.Random(seed)
    ids = sorted(caps)
    out = []
    for i in range(chunks):
        avail = tuple(rng.sample(ids, n))
        out.append(
            ChunkDownload(f"c{i}", rng.randint(1, 4) * 500_000, avail)
        )
    return DownloadProblem(
        chunks=tuple(out), t=t, link_caps=caps, client_cap=client
    )


class TestRelaxations:
    def test_alternating_feasible(self):
        p = make_problem(chunks=5, seed=1)
        sol = solve_fractional_alternating(p)
        for chunk in p.chunks:
            fracs = sol.chunk_fractions(chunk.chunk_id)
            assert sum(fracs.values()) == pytest.approx(p.t, abs=1e-6)
            assert all(-1e-9 <= v <= 1 + 1e-9 for v in fracs.values())

    def test_alternating_lower_bounds_integral(self):
        p = make_problem(chunks=4, seed=2)
        frac = solve_fractional_alternating(p)
        integral = BruteForceSelector().select(p)
        assert frac.y <= integral.bottleneck_time + 1e-6

    def test_convexified_feasible(self):
        p = make_problem(chunks=3, seed=3)
        sol = solve_fractional_convexified(p)
        for chunk in p.chunks:
            fracs = sol.chunk_fractions(chunk.chunk_id)
            assert sum(fracs.values()) == pytest.approx(p.t, abs=1e-3)

    def test_engines_agree_roughly(self):
        p = make_problem(chunks=3, seed=4)
        alt = solve_fractional_alternating(p)
        cvx = solve_fractional_convexified(p)
        assert cvx.y == pytest.approx(alt.y, rel=0.25) or cvx.y >= alt.y

    def test_fixed_chunks_respected(self):
        p = make_problem(chunks=4, seed=5)
        first = p.chunks[0]
        fixed_loads = {c: 0.0 for c in p.csps}
        for c in first.available[: p.t]:
            fixed_loads[c] += first.share_size
        sol = solve_fractional_alternating(
            p, fixed_loads=fixed_loads, fixed_chunks={first.chunk_id}
        )
        assert first.chunk_id not in {r for r, _ in sol.d}


class TestCyrusSelector:
    def test_matches_brute_force_small(self):
        for seed in range(5):
            p = make_problem(chunks=4, t=2, n=3, seed=seed)
            cyrus = CyrusSelector().select(p)
            brute = BruteForceSelector().select(p)
            assert cyrus.bottleneck_time <= brute.bottleneck_time * 1.15

    def test_beats_or_ties_baselines(self):
        for seed in range(4):
            p = make_problem(chunks=10, seed=seed + 10)
            y_cyrus = CyrusSelector().select(p).bottleneck_time
            for baseline in (
                RandomSelector(seed=seed),
                RoundRobinSelector(),
                GreedySelector(),
            ):
                assert y_cyrus <= baseline.select(p).bottleneck_time + 1e-9

    def test_resolve_every_tradeoff(self):
        p = make_problem(chunks=20, seed=42)
        exact = CyrusSelector(resolve_every=1).select(p)
        amortized = CyrusSelector(resolve_every=8).select(p)
        assert amortized.bottleneck_time <= exact.bottleneck_time * 1.5

    def test_greedy_fallback_for_wide_problems(self):
        p = make_problem(chunks=3, t=2, n=6, seed=7)
        plan = CyrusSelector(enumeration_limit=1).select(p)
        assert plan.bottleneck_time > 0  # feasible despite greedy path

    def test_largest_first_order(self):
        p = make_problem(chunks=8, seed=8)
        plan = CyrusSelector(order="largest-first").select(p)
        assert set(plan.assignments) == {c.chunk_id for c in p.chunks}

    def test_convexified_relaxation_engine(self):
        p = make_problem(chunks=3, seed=9)
        plan = CyrusSelector(relaxation="convexified").select(p)
        brute = BruteForceSelector().select(p)
        assert plan.bottleneck_time <= brute.bottleneck_time * 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            CyrusSelector(resolve_every=0)
        with pytest.raises(ValueError):
            CyrusSelector(relaxation="magic")
        with pytest.raises(ValueError):
            CyrusSelector(order="backwards")

    def test_avoids_slow_csp_when_possible(self):
        caps = {"fast1": 10e6, "fast2": 10e6, "crawl": 0.1e6}
        p = DownloadProblem(
            chunks=tuple(
                ChunkDownload(f"c{i}", 1_000_000, ("fast1", "fast2", "crawl"))
                for i in range(4)
            ),
            t=2, link_caps=caps, client_cap=50e6,
        )
        plan = CyrusSelector().select(p)
        for chosen in plan.assignments.values():
            assert "crawl" not in chosen


class TestBaselines:
    def test_random_deterministic_per_seed(self):
        p = make_problem(chunks=6, seed=1)
        a = RandomSelector(seed=5).select(p).assignments
        b = RandomSelector(seed=5).select(p).assignments
        assert a == b

    def test_random_varies_with_seed(self):
        p = make_problem(chunks=10, seed=1)
        a = RandomSelector(seed=1).select(p).assignments
        b = RandomSelector(seed=2).select(p).assignments
        assert a != b

    def test_round_robin_spreads(self):
        caps = {c: 1e6 for c in "abcd"}
        p = DownloadProblem(
            chunks=tuple(
                ChunkDownload(f"c{i}", 100, ("a", "b", "c", "d"))
                for i in range(4)
            ),
            t=2, link_caps=caps, client_cap=10e6,
        )
        plan = RoundRobinSelector().select(p)
        counts = {}
        for chosen in plan.assignments.values():
            for c in chosen:
                counts[c] = counts.get(c, 0) + 1
        assert max(counts.values()) == min(counts.values())

    def test_greedy_picks_fastest(self):
        p = make_problem(chunks=1, t=2, n=4, seed=3)
        plan = GreedySelector().select(p)
        chunk = p.chunks[0]
        chosen = plan.assignments[chunk.chunk_id]
        speeds = sorted(
            (TESTBED_CAPS[c] for c in chunk.available), reverse=True
        )
        assert sorted(
            (TESTBED_CAPS[c] for c in chosen), reverse=True
        ) == speeds[:2]

    def test_brute_force_guard(self):
        p = make_problem(chunks=30, t=2, n=4, seed=4)
        with pytest.raises(SelectionError):
            BruteForceSelector(combo_limit=100).select(p)

    def test_all_selectors_produce_valid_plans(self):
        from repro.selection.problem import validate_plan

        p = make_problem(chunks=7, seed=11)
        for selector in (
            CyrusSelector(), RandomSelector(), RoundRobinSelector(),
            GreedySelector(),
        ):
            validate_plan(p, selector.select(p))
