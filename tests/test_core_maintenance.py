"""Unit tests for maintenance: import, pruning, GC, and the chunk cache."""

import pytest

from repro.core.cache import ChunkCache
from repro.core.client import CyrusClient
from repro.errors import CSPError, MetadataError
from tests.conftest import deterministic_bytes


class TestImportObject:
    def test_adopts_plain_object(self, client, csps):
        # a file the user uploaded directly to one provider, pre-CYRUS
        legacy = deterministic_bytes(8000, 1)
        csps[1].upload("vacation.jpg", legacy)
        report = client.import_object("csp1", "vacation.jpg")
        assert report.node.name == "vacation.jpg"
        assert client.get("vacation.jpg").data == legacy

    def test_target_name(self, client, csps):
        csps[0].upload("old-name.bin", b"payload " * 100)
        client.import_object("csp0", "old-name.bin",
                             target_name="imported/new-name.bin")
        assert client.get("imported/new-name.bin").data == b"payload " * 100

    def test_original_left_in_place(self, client, csps):
        csps[2].upload("keep-me", b"original")
        client.import_object("csp2", "keep-me")
        assert csps[2].download("keep-me") == b"original"

    def test_missing_object(self, client):
        with pytest.raises(CSPError):
            client.import_object("csp0", "no-such-object")

    def test_imported_data_is_scattered(self, client, csps):
        legacy = deterministic_bytes(9000, 2)
        csps[3].upload("solo.bin", legacy)
        report = client.import_object("csp3", "solo.bin")
        holders = {s.csp_id for s in report.node.shares}
        assert len(holders) >= client.config.t


class TestPruneHistory:
    def put_versions(self, client, count=4):
        versions = []
        for i in range(count):
            data = deterministic_bytes(3000 + i * 100, 10 + i)
            client.put("doc.bin", data)
            versions.append(data)
        return versions

    def test_prunes_old_versions(self, client):
        versions = self.put_versions(client)
        report = client.prune_history("doc.bin", keep_versions=2)
        assert report.nodes_deleted == 2
        assert len(client.history("doc.bin")) == 2
        assert client.get("doc.bin").data == versions[-1]
        assert client.get("doc.bin", version=1).data == versions[-2]

    def test_pruned_versions_unreachable(self, client):
        self.put_versions(client)
        client.prune_history("doc.bin", keep_versions=1)
        with pytest.raises(MetadataError):
            client.get("doc.bin", version=1)

    def test_prune_removes_remote_metadata(self, client, csps, config):
        self.put_versions(client)
        client.prune_history("doc.bin", keep_versions=1)
        fresh = CyrusClient.create(csps, config, client_id="verifier")
        fresh.recover()
        assert len(fresh.history("doc.bin")) == 1

    def test_noop_when_short(self, client):
        self.put_versions(client, count=2)
        report = client.prune_history("doc.bin", keep_versions=5)
        assert report.nodes_deleted == 0

    def test_requires_resolved_conflicts(self, client, second_client):
        client.put("doc.bin", b"base " * 50)
        second_client.sync()
        client.uploader.upload("doc.bin", b"AA " * 60, client_id="alice")
        second_client.uploader.upload("doc.bin", b"BB " * 60, client_id="bob")
        client.sync()
        with pytest.raises(MetadataError):
            client.prune_history("doc.bin")

    def test_keep_zero_rejected(self, client):
        self.put_versions(client, count=1)
        with pytest.raises(MetadataError):
            client.prune_history("doc.bin", keep_versions=0)


class TestGarbageCollection:
    def test_nothing_to_collect_when_referenced(self, client):
        client.put("a.bin", deterministic_bytes(5000, 20))
        report = client.collect_garbage()
        assert report.chunks_deleted == 0

    def test_reclaims_pruned_chunks(self, client, csps):
        old = deterministic_bytes(6000, 21)
        new = deterministic_bytes(6000, 22)  # fully different content
        client.put("doc.bin", old)
        client.put("doc.bin", new)
        before = sum(c.stored_bytes for c in csps)
        client.prune_history("doc.bin", keep_versions=1)
        report = client.collect_garbage()
        after = sum(c.stored_bytes for c in csps)
        assert report.chunks_deleted > 0
        assert report.bytes_reclaimed > 0
        assert after < before
        # the kept version still reads back
        assert client.get("doc.bin").data == new

    def test_shared_chunks_survive(self, client):
        shared = deterministic_bytes(5000, 23)
        client.put("a.bin", shared)
        client.put("b.bin", shared)
        client.put("a.bin", deterministic_bytes(5000, 24))
        client.prune_history("a.bin", keep_versions=1)
        client.collect_garbage()
        # b.bin still references the shared chunks
        assert client.get("b.bin").data == shared

    def test_tombstoned_files_keep_chunks(self, client):
        data = deterministic_bytes(4000, 25)
        client.put("f.bin", data)
        client.delete("f.bin")
        report = client.collect_garbage()
        assert report.chunks_deleted == 0  # history still references them
        assert client.get("f.bin").data == data


class TestChunkCache:
    def test_lru_semantics(self):
        cache = ChunkCache(capacity_bytes=100)
        cache.put("a", b"x" * 40)
        cache.put("b", b"y" * 40)
        assert cache.get("a") == b"x" * 40  # refresh a
        cache.put("c", b"z" * 40)  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_size_accounting(self):
        cache = ChunkCache(capacity_bytes=1000)
        cache.put("a", b"1" * 300)
        cache.put("a", b"2" * 500)  # replace
        assert cache.size_bytes == 500
        assert len(cache) == 1

    def test_oversized_entry_skipped(self):
        cache = ChunkCache(capacity_bytes=10)
        cache.put("big", b"x" * 100)
        assert cache.get("big") is None

    def test_zero_capacity_disables(self):
        cache = ChunkCache(capacity_bytes=0)
        cache.put("a", b"x")
        assert cache.get("a") is None

    def test_clear(self):
        cache = ChunkCache()
        cache.put("a", b"x")
        cache.clear()
        assert len(cache) == 0 and cache.size_bytes == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ChunkCache(capacity_bytes=-1)

    def test_hit_miss_counters(self):
        cache = ChunkCache()
        cache.put("a", b"x")
        cache.get("a")
        cache.get("ghost")
        assert cache.hits == 1 and cache.misses == 1


class TestCachedDownloads:
    def test_second_download_skips_network(self, csps, config):
        cache = ChunkCache()
        client = CyrusClient.create(csps, config, client_id="c",
                                    cache=cache)
        data = deterministic_bytes(10_000, 30)
        client.put("f.bin", data)
        first = client.get("f.bin")
        assert first.data == data
        second = client.get("f.bin")
        assert second.data == data
        assert second.bytes_downloaded == 0  # everything came from cache
        assert not second.share_results

    def test_cache_shared_across_versions(self, csps, config):
        cache = ChunkCache()
        client = CyrusClient.create(csps, config, client_id="c",
                                    cache=cache)
        v1 = deterministic_bytes(20_000, 31)
        client.put("f.bin", v1)
        client.get("f.bin")
        v2 = v1[:10_000] + b"EDIT" + v1[10_000:]
        client.put("f.bin", v2)
        report = client.get("f.bin")
        assert report.data == v2
        # most chunks were already cached from v1
        assert report.bytes_downloaded < len(v2) // 2

    def test_cached_download_timed_as_instant(self, config):
        from repro.bench import build_paper_testbed

        env = build_paper_testbed()
        cache = ChunkCache()
        client = env.new_client(
            config.with_params(chunk_min=32 * 1024, chunk_avg=128 * 1024,
                               chunk_max=1024 * 1024),
            cache=cache,
        )
        data = deterministic_bytes(2_000_000, 32)
        client.put("f.bin", data)
        cold = client.get("f.bin")
        warm = client.get("f.bin")
        assert warm.duration < cold.duration / 5
