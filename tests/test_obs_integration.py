"""Acceptance tests for the observability layer.

Two ends of the truth spectrum:

* a simulated multi-CSP run on the paper testbed, where the netsim's
  own flow accounting and the providers' stored objects are the ground
  truth the trace and metrics must match byte-for-byte;
* a scripted fault plan on a direct engine, where the injected
  transient count is the ground truth the retry/failure counters must
  match exactly.
"""

from __future__ import annotations

import json

from repro.bench import build_paper_testbed
from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.transfer import DirectEngine
from repro.csp.memory import InMemoryCSP
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.util.clock import SimClock

from tests.conftest import SMALL_CHUNKS, deterministic_bytes


class TestSimulatedAcceptance:
    """Paper-testbed sync: trace + metrics vs netsim/storage ground truth."""

    def _run(self):
        env = build_paper_testbed()
        config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        client = env.new_client(config)
        files = {
            f"f{i}.bin": deterministic_bytes(3000 + 500 * i, seed=40 + i)
            for i in range(3)
        }
        for name, data in files.items():
            client.put(name, data, sync_first=False)
        for name, data in files.items():
            assert client.get(name, sync_first=False).data == data
        client.sync()
        return env, client

    def test_trace_is_well_formed_and_exports_parse(self):
        env, _client = self._run()
        tracer = env.obs.tracer
        assert tracer.check_well_formed() == []
        parsed = json.loads(tracer.to_json())
        assert parsed["spans"]
        chrome = json.loads(tracer.to_chrome_json())
        assert any(e.get("ph") == "X" for e in chrome["traceEvents"])
        # the spans of record exist: one upload/download per file, a sync
        assert len(tracer.find("upload")) == 3
        assert len(tracer.find("download")) == 3
        assert len(tracer.find("sync")) == 1

    def test_engine_byte_counters_match_netsim_flow_accounting(self):
        env, _client = self._run()
        snap = env.obs.snapshot()
        # nothing was cancelled, so the two ledgers must agree exactly
        assert snap.counter_total("netsim_flows_total",
                                  outcome="cancelled") == 0
        for csp_id in env.csps:
            for direction in ("up", "down"):
                engine_bytes = snap.counter_total(
                    "cyrus_transfer_bytes_total",
                    csp=csp_id, direction=direction,
                )
                netsim_bytes = snap.counter_total(
                    "netsim_bytes_total", link=csp_id, direction=direction,
                )
                assert engine_bytes == netsim_bytes, (
                    f"{csp_id}/{direction}: engine says {engine_bytes}, "
                    f"netsim says {netsim_bytes}"
                )

    def test_op_counts_match_netsim_flow_counts(self):
        env, _client = self._run()
        snap = env.obs.snapshot()
        for csp_id in env.csps:
            ops = snap.counter_total("cyrus_ops_total", csp=csp_id,
                                     outcome="ok")
            flows = snap.counter_total("netsim_flows_total", link=csp_id,
                                       outcome="completed")
            assert ops == flows

    def test_uploaded_bytes_match_stored_objects(self):
        env, _client = self._run()
        snap = env.obs.snapshot()
        for csp_id, csp in env.csps.items():
            stored = sum(info.size for info in csp._store.list())
            uploaded = snap.counter_total(
                "cyrus_transfer_bytes_total", csp=csp_id, direction="up"
            )
            assert uploaded == stored

    def test_timeline_reconstructs_parallel_share_transfers(self):
        env, client = self._run()
        timeline = env.obs.timeline()
        lanes = timeline.lanes()
        # every provider that holds shares has a lane
        assert set(lanes) == set(env.csps)
        # chunk transfer intervals cover every stored chunk
        stats = client.storage_stats()
        assert stats["files"] == 3
        chunk_ids = {
            bar.chunk_id for bar in timeline.bars if bar.chunk_id
        }
        assert len(chunk_spans := timeline.chunk_spans()) == len(chunk_ids)
        for start, end in chunk_spans.values():
            assert timeline.start <= start <= end <= timeline.end
        # the ASCII sketch renders one row per lane plus the axis
        art = timeline.render_ascii(width=60)
        assert len(art.splitlines()) == len(lanes) + 1


class TestScriptedFaultAccounting:
    """A deterministic fault plan; metrics must match it exactly."""

    def _run(self, max_hits: int = 2):
        clock = SimClock()
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.TRANSIENT,
                       ops=("upload", "download"),
                       max_hits=max_hits)],
            seed=11,
        )
        providers = [
            FaultyProvider(InMemoryCSP(f"csp{i}"), plan, clock=clock)
            for i in range(4)
        ]
        config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        engine = DirectEngine({p.csp_id: p for p in providers}, clock=clock)
        client = CyrusClient.create(
            providers, config, client_id="alice", engine=engine
        )
        for i in range(4):
            name = f"f{i}.bin"
            data = deterministic_bytes(1500 + 300 * i, seed=70 + i)
            client.put(name, data, sync_first=False)
            assert client.get(name, sync_first=False).data == data
        return providers, client, client.obs.snapshot()

    def test_injected_transients_equal_retried_ops(self):
        providers, _client, snap = self._run()
        injected = sum(
            p.injected_faults.get(FaultKind.TRANSIENT, 0) for p in providers
        )
        assert injected > 0  # the plan actually bit
        retried = (snap.counter_total("cyrus_share_retries_total")
                   + snap.counter_total("cyrus_meta_retries_total"))
        # every injected transient fails exactly one op, and every such
        # failure is retried on the same provider (budget 3 > max_hits 2,
        # breaker threshold 5 > max_hits): the two ledgers match exactly
        assert retried == injected
        # ...and no failure escalated to a failover
        assert snap.counter_total("cyrus_share_failovers_total") == 0

    def test_per_provider_failure_counters_match_fault_logs(self):
        providers, _client, snap = self._run()
        for p in providers:
            injected = p.injected_faults.get(FaultKind.TRANSIENT, 0)
            failures = snap.counter_total(
                "cyrus_op_failures_total",
                csp=p.csp_id, error_type="CSPUnavailableError",
            )
            assert failures == injected

    def test_fault_free_run_counts_no_retries(self):
        providers, _client, snap = self._run(max_hits=1)
        # sanity check on the other side: remove the hits and re-run clean
        clock = SimClock()
        clean = [InMemoryCSP(f"csp{i}") for i in range(4)]
        config = CyrusConfig(key="k", t=2, n=3, **SMALL_CHUNKS)
        engine = DirectEngine({p.csp_id: p for p in clean}, clock=clock)
        client = CyrusClient.create(clean, config, client_id="alice",
                                    engine=engine)
        client.put("f.bin", deterministic_bytes(2000, seed=90),
                   sync_first=False)
        snap2 = client.obs.snapshot()
        assert snap2.counter_total("cyrus_share_retries_total") == 0
        assert snap2.counter_total("cyrus_meta_retries_total") == 0
        assert snap2.counter_total("cyrus_op_failures_total") == 0
