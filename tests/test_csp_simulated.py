"""Unit tests for the simulated CSP: quota, auth, outages."""

import pytest

from repro.csp import AvailabilitySchedule, Credentials, SimulatedCSP
from repro.errors import (
    CSPAuthError,
    CSPQuotaExceededError,
    CSPUnavailableError,
    ObjectNotFoundError,
)
from repro.netsim import Link
from repro.util.clock import SimClock


def make_csp(**kwargs):
    clock = kwargs.pop("clock", SimClock())
    return SimulatedCSP(
        "sim", Link.symmetric("sim", 1e6), clock=clock, **kwargs
    ), clock


class TestQuota:
    def test_enforced(self):
        csp, _ = make_csp(quota_bytes=10)
        csp.upload("a", b"12345")
        with pytest.raises(CSPQuotaExceededError):
            csp.upload("b", b"123456")

    def test_replacement_frees_space(self):
        csp, _ = make_csp(quota_bytes=10)
        csp.upload("a", b"1234567890")
        csp.upload("a", b"abcdefghij")  # same name: replaces, fits
        assert csp.download("a") == b"abcdefghij"

    def test_delete_frees_space(self):
        csp, _ = make_csp(quota_bytes=10)
        csp.upload("a", b"1234567890")
        csp.delete("a")
        csp.upload("b", b"0987654321")

    def test_stored_bytes(self):
        csp, _ = make_csp()
        csp.upload("a", b"123")
        csp.upload("b", b"4567")
        assert csp.stored_bytes == 7
        assert csp.object_count == 2


class TestOutages:
    def test_down_interval(self):
        sched = AvailabilitySchedule([(5.0, 10.0)])
        csp, clock = make_csp(availability=sched)
        csp.upload("o", b"x")
        clock.advance(6)
        with pytest.raises(CSPUnavailableError):
            csp.download("o")
        clock.advance(5)
        assert csp.download("o") == b"x"

    def test_all_operations_blocked_when_down(self):
        sched = AvailabilitySchedule([(0.0, 10.0)])
        csp, _ = make_csp(availability=sched)
        for op in (
            lambda: csp.upload("o", b"x"),
            lambda: csp.download("o"),
            lambda: csp.list(),
            lambda: csp.delete("o"),
            lambda: csp.authenticate(Credentials("u")),
        ):
            with pytest.raises(CSPUnavailableError):
                op()

    def test_is_up(self):
        sched = AvailabilitySchedule([(5.0, 10.0)])
        csp, _ = make_csp(availability=sched)
        assert csp.is_up(0)
        assert not csp.is_up(7)
        assert csp.is_up(10)


class TestAuth:
    def test_required(self):
        csp, _ = make_csp(require_auth=True)
        with pytest.raises(CSPAuthError):
            csp.list()

    def test_token_grants_access(self):
        csp, _ = make_csp(require_auth=True)
        csp.authenticate(Credentials("user", "pw"))
        csp.upload("o", b"x")
        assert csp.download("o") == b"x"

    def test_token_expiry(self):
        csp, clock = make_csp(require_auth=True, token_ttl=100.0)
        csp.authenticate(Credentials("user", "pw"))
        csp.upload("o", b"x")
        clock.advance(101)
        with pytest.raises(CSPAuthError):
            csp.download("o")

    def test_reauth_after_expiry(self):
        csp, clock = make_csp(require_auth=True, token_ttl=100.0)
        csp.authenticate(Credentials("user", "pw"))
        clock.advance(200)
        csp.authenticate(Credentials("user", "pw"))
        csp.list()


class TestAvailabilitySchedule:
    def test_always_up(self):
        sched = AvailabilitySchedule.always_up()
        assert sched.is_up(0) and sched.is_up(1e12)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            AvailabilitySchedule([(0, 10), (5, 15)])

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            AvailabilitySchedule([(5, 5)])

    def test_downtime_accounting(self):
        sched = AvailabilitySchedule([(10, 20), (30, 35)])
        assert sched.downtime(0, 100) == 15
        assert sched.downtime(15, 32) == 7

    def test_next_up(self):
        sched = AvailabilitySchedule([(10, 20)])
        assert sched.next_up(5) == 5
        assert sched.next_up(15) == 20

    def test_from_annual_downtime_total(self):
        year = 365 * 24 * 3600.0
        sched = AvailabilitySchedule.from_annual_downtime(
            10.0, horizon_s=year, seed=7
        )
        assert sched.downtime(0, year) / 3600 == pytest.approx(10.0, rel=0.2)

    def test_zero_downtime(self):
        sched = AvailabilitySchedule.from_annual_downtime(0.0, horizon_s=1000)
        assert sched.is_up(500)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AvailabilitySchedule.from_annual_downtime(-1, horizon_s=100)


class TestMissingObjects:
    def test_not_found_when_up(self):
        csp, _ = make_csp()
        with pytest.raises(ObjectNotFoundError):
            csp.download("ghost")
