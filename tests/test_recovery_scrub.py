"""The anti-entropy scrub: detect, repair, budget, and report.

Damage is injected straight into the in-memory providers' object
stores — deleted shares, bit-flipped shares, unrecorded shares — and
the scrub must find and fix exactly that damage, within its transfer
budget, journaling every repair as a ``migrate`` intent.
"""

from __future__ import annotations

import pytest

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.daemon import SyncDaemon
from repro.core.naming import chunk_share_object_name
from repro.core.transfer import DirectEngine
from repro.csp.memory import InMemoryCSP
from repro.recovery import IntentJournal
from repro.util.clock import SimClock

from tests.conftest import SMALL_CHUNKS, deterministic_bytes


def _world(tmp_path, n_csps=4):
    clock = SimClock()
    providers = [InMemoryCSP(f"csp{i}") for i in range(n_csps)]
    engine = DirectEngine({p.csp_id: p for p in providers}, clock=clock)
    client = CyrusClient.create(
        providers,
        CyrusConfig(key="scrub-key", t=2, n=3, **SMALL_CHUNKS),
        client_id="alice",
        engine=engine,
        journal=IntentJournal(tmp_path / "journal.jsonl", clock=clock,
                              fsync=False),
    )
    return client, providers


def _share_locations(client):
    """Every recorded (csp_id, object name) pair in the chunk table."""
    out = []
    for chunk_id in client.chunk_table.all_chunk_ids():
        location = client.chunk_table.get(chunk_id)
        for index, csp_id in location.placements:
            out.append((csp_id, chunk_share_object_name(index, chunk_id)))
    return out


def _provider(providers, csp_id):
    return next(p for p in providers if p.csp_id == csp_id)


class TestScrubDetection:
    def test_healthy_table_scrubs_clean(self, tmp_path):
        client, _providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(2000, seed=1))
        report = client.scrub()
        assert report.complete and report.healthy
        assert report.shares_verified > 0
        assert report.shares_repaired == 0

    def test_deleted_share_is_found_and_regenerated(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(2000, seed=2))
        victim_csp, victim_obj = _share_locations(client)[0]
        del _provider(providers, victim_csp)._objects[victim_obj]
        report = client.scrub()
        assert report.shares_missing >= 1
        assert report.shares_repaired >= 1
        # the object is back, byte-identical to its sibling-reconstruction
        assert victim_obj in _provider(providers, victim_csp)._objects
        assert client.scrub().healthy  # second pass: nothing left to fix

    def test_corrupt_share_is_found_and_rewritten(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(2000, seed=3))
        victim_csp, victim_obj = _share_locations(client)[0]
        store = _provider(providers, victim_csp)._objects
        modified, blob = store[victim_obj][-1]
        store[victim_obj][-1] = (
            modified, bytes([blob[0] ^ 0xFF]) + blob[1:],
        )
        report = client.scrub()
        assert report.shares_corrupt >= 1
        assert report.shares_repaired >= 1
        assert client.scrub().healthy
        # the repaired file still reads intact
        assert client.get("a.bin").data == deterministic_bytes(2000, seed=3)

    def test_repairs_are_journaled_as_migrate_intents(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(1500, seed=4))
        victim_csp, victim_obj = _share_locations(client)[0]
        del _provider(providers, victim_csp)._objects[victim_obj]
        client.scrub()
        migrates = [i for i in client.journal.intents() if i.op == "migrate"]
        assert migrates and all(i.committed for i in migrates)

    def test_report_only_mode_repairs_nothing(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(2000, seed=5))
        victim_csp, victim_obj = _share_locations(client)[0]
        del _provider(providers, victim_csp)._objects[victim_obj]
        report = client.scrub(repair=False)
        assert report.shares_missing >= 1
        assert report.shares_repaired == 0
        assert victim_obj not in _provider(providers, victim_csp)._objects

    def test_scrub_metrics_match_report(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(2000, seed=6))
        victim_csp, victim_obj = _share_locations(client)[0]
        del _provider(providers, victim_csp)._objects[victim_obj]
        report = client.scrub()
        snap = client.obs.snapshot()
        assert snap.counter_total(
            "cyrus_scrub_shares_verified_total"
        ) == report.shares_verified
        assert snap.counter_total(
            "cyrus_scrub_shares_repaired_total"
        ) == report.shares_repaired


class TestScrubOrphans:
    def test_orphans_reported_not_deleted_by_default(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(1000, seed=7))
        stray = "f" * 40  # share-shaped name no chunk accounts for
        providers[0].upload(stray, b"stray bytes")
        report = client.scrub()
        assert ("csp0", stray) in report.orphans
        assert report.orphans_deleted == 0
        assert stray in providers[0]._objects
        snap = client.obs.snapshot()
        assert snap.counter_total("cyrus_scrub_orphans_total") >= 1

    def test_delete_orphans_reclaims_them(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(1000, seed=8))
        stray = "e" * 40
        providers[1].upload(stray, b"stray bytes")
        report = client.scrub(delete_orphans=True)
        assert report.orphans_deleted == 1
        assert stray not in providers[1]._objects

    def test_non_share_names_are_never_orphans(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(1000, seed=9))
        providers[0].upload("notes.txt", b"operator file")
        report = client.scrub(delete_orphans=True)
        assert all(name != "notes.txt" for _csp, name in report.orphans)
        assert "notes.txt" in providers[0]._objects

    def test_adopts_unrecorded_share_of_known_chunk(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(1000, seed=10))
        # simulate a crashed migration whose upload landed: copy one
        # share to a CSP the table does not record for it
        chunk_id = client.chunk_table.all_chunk_ids()[0]
        location = client.chunk_table.get(chunk_id)
        index, src_csp = location.placements[0]
        spare = next(
            p.csp_id for p in providers
            if p.csp_id not in {c for _i, c in location.placements}
        )
        name = chunk_share_object_name(index, chunk_id)
        blob = _provider(providers, src_csp).download(name)
        _provider(providers, spare).upload(name, blob)
        report = client.scrub()
        assert report.placements_adopted >= 1
        assert (index, spare) in client.chunk_table.get(chunk_id).placements
        assert not report.orphans  # adopted, hence not an orphan


class TestScrubBudget:
    def test_budget_limits_transfers_and_sets_cursor(self, tmp_path):
        client, _providers = _world(tmp_path)
        for i in range(4):
            client.put(f"f{i}.bin", deterministic_bytes(2000, seed=20 + i))
        total = len(client.chunk_table.all_chunk_ids())
        assert total > 2
        report = client.scrub(budget_shares=3)
        assert report.budget_exhausted
        assert report.shares_verified <= 3
        assert 0 < report.chunks_scanned < total
        assert report.cursor == report.chunks_scanned % total

    def test_slices_cover_the_whole_table(self, tmp_path):
        client, providers = _world(tmp_path)
        for i in range(3):
            client.put(f"f{i}.bin", deterministic_bytes(1800, seed=30 + i))
        victim_csp, victim_obj = _share_locations(client)[-1]
        del _provider(providers, victim_csp)._objects[victim_obj]
        from repro.recovery import Scrubber

        scrubber = Scrubber(client, budget_shares=4)
        repaired = 0
        for _ in range(20):
            report = scrubber.run_slice()
            repaired += report.shares_repaired
            if repaired and not report.budget_exhausted:
                break
        assert repaired >= 1
        assert victim_obj in _provider(providers, victim_csp)._objects

    def test_unbudgeted_scrub_is_one_full_pass(self, tmp_path):
        client, _providers = _world(tmp_path)
        for i in range(3):
            client.put(f"f{i}.bin", deterministic_bytes(1500, seed=40 + i))
        report = client.scrub()
        assert report.complete and not report.budget_exhausted
        assert report.cursor == 0  # wrapped all the way around


class TestScrubDaemonIntegration:
    def test_daemon_tick_runs_scrub_slices(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(2400, seed=50))
        victim_csp, victim_obj = _share_locations(client)[0]
        del _provider(providers, victim_csp)._objects[victim_obj]
        daemon = SyncDaemon(client, interval_s=10.0, scrub_budget=6)
        ticks = daemon.run_until(100.0)
        assert sum(t.scrub_verified for t in ticks) > 0
        assert sum(t.scrub_repaired for t in ticks) >= 1
        assert victim_obj in _provider(providers, victim_csp)._objects

    def test_zero_budget_disables_the_scrub(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(2400, seed=51))
        victim_csp, victim_obj = _share_locations(client)[0]
        del _provider(providers, victim_csp)._objects[victim_obj]
        daemon = SyncDaemon(client, interval_s=10.0)  # scrub_budget=0
        ticks = daemon.run_until(50.0)
        assert all(t.scrub_verified == 0 for t in ticks)
        assert victim_obj not in _provider(providers, victim_csp)._objects


class TestScrubUnrecoverable:
    def test_too_few_shares_is_reported_not_hidden(self, tmp_path):
        client, providers = _world(tmp_path)
        client.put("a.bin", deterministic_bytes(900, seed=60))
        chunk_id = client.chunk_table.all_chunk_ids()[0]
        location = client.chunk_table.get(chunk_id)
        survivors = 0
        for index, csp_id in location.placements:
            name = chunk_share_object_name(index, chunk_id)
            store = _provider(providers, csp_id)._objects
            if name in store and survivors < location.t - 1:
                survivors += 1
                continue
            store.pop(name, None)
        report = client.scrub()
        assert chunk_id in report.unrecoverable_chunks
        assert not report.healthy
