"""Unit tests for GF(2^8) matrix algebra."""

import numpy as np
import pytest

from repro.gf import gf_mat_inv, gf_mat_mul, gf_mat_rank, gf_mat_vec, vandermonde
from repro.gf.field import gf_mul


def random_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestMatMul:
    def test_identity(self):
        rng = np.random.default_rng(0)
        m = random_matrix(rng, 4, 4)
        eye = np.eye(4, dtype=np.uint8)
        assert (gf_mat_mul(m, eye) == m).all()
        assert (gf_mat_mul(eye, m) == m).all()

    def test_matches_scalar_definition(self):
        rng = np.random.default_rng(1)
        a = random_matrix(rng, 3, 5)
        b = random_matrix(rng, 5, 2)
        got = gf_mat_mul(a, b)
        for i in range(3):
            for j in range(2):
                acc = 0
                for k in range(5):
                    acc ^= gf_mul(int(a[i, k]), int(b[k, j]))
                assert got[i, j] == acc

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf_mat_mul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))

    def test_zero_matrix(self):
        z = np.zeros((3, 3), np.uint8)
        m = np.full((3, 3), 7, np.uint8)
        assert (gf_mat_mul(z, m) == 0).all()

    def test_mat_vec(self):
        rng = np.random.default_rng(2)
        a = random_matrix(rng, 4, 3)
        x = rng.integers(0, 256, size=3, dtype=np.uint8)
        assert (gf_mat_vec(a, x) == gf_mat_mul(a, x[:, None])[:, 0]).all()

    def test_mat_vec_rejects_matrix(self):
        with pytest.raises(ValueError):
            gf_mat_vec(np.zeros((2, 2), np.uint8), np.zeros((2, 2), np.uint8))


class TestInverse:
    def test_inverse_roundtrip(self):
        v = vandermonde(np.arange(1, 5, dtype=np.uint8), 4)
        inv = gf_mat_inv(v)
        assert (gf_mat_mul(inv, v) == np.eye(4, dtype=np.uint8)).all()
        assert (gf_mat_mul(v, inv) == np.eye(4, dtype=np.uint8)).all()

    def test_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_mat_inv(singular)

    def test_zero_matrix_singular(self):
        with pytest.raises(np.linalg.LinAlgError):
            gf_mat_inv(np.zeros((3, 3), np.uint8))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            gf_mat_inv(np.zeros((2, 3), np.uint8))

    def test_identity_self_inverse(self):
        eye = np.eye(5, dtype=np.uint8)
        assert (gf_mat_inv(eye) == eye).all()

    def test_requires_pivot_swap(self):
        # leading zero forces a row swap inside elimination
        m = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        inv = gf_mat_inv(m)
        assert (gf_mat_mul(inv, m) == np.eye(2, dtype=np.uint8)).all()


class TestRank:
    def test_full_rank_vandermonde(self):
        v = vandermonde(np.arange(1, 7, dtype=np.uint8), 3)
        assert gf_mat_rank(v) == 3

    def test_rank_deficient(self):
        m = np.array([[1, 2, 3], [1, 2, 3], [0, 0, 0]], dtype=np.uint8)
        assert gf_mat_rank(m) == 1

    def test_zero_rank(self):
        assert gf_mat_rank(np.zeros((4, 4), np.uint8)) == 0

    def test_rank_bounded_by_dims(self):
        rng = np.random.default_rng(3)
        m = random_matrix(rng, 3, 7)
        assert gf_mat_rank(m) <= 3


class TestVandermonde:
    def test_shape_and_first_column(self):
        v = vandermonde(np.array([1, 2, 3], dtype=np.uint8), 4)
        assert v.shape == (3, 4)
        assert (v[:, 0] == 1).all()

    def test_second_column_is_points(self):
        pts = np.array([5, 9, 200], dtype=np.uint8)
        v = vandermonde(pts, 3)
        assert (v[:, 1] == pts).all()

    def test_every_square_submatrix_invertible(self):
        # the MDS property that makes RS erasure decoding always work
        import itertools

        v = vandermonde(np.arange(1, 8, dtype=np.uint8), 3)
        for rows in itertools.combinations(range(7), 3):
            gf_mat_inv(v[list(rows)])  # must not raise

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            vandermonde(np.array([1, 1, 2], dtype=np.uint8), 2)

    def test_rejects_zero_point(self):
        with pytest.raises(ValueError):
            vandermonde(np.array([0, 1], dtype=np.uint8), 2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            vandermonde(np.zeros((2, 2), np.uint8), 2)
