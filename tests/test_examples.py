"""Smoke tests: every shipped example must run to completion.

Examples are executable documentation; a broken example is a broken
promise.  Each is imported as a module and its ``main()`` run in
process (stdout captured by pytest).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the repo promises at least three examples"
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    module = load_example(path)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    module.main()  # must not raise
