"""Byzantine share defense: fingerprint verification at decode time.

``FaultKind.CORRUPT_READ`` models a provider whose *stored* data is
wrong — tampered or rotted — so every fetch of a given object returns
the same wrong bytes (unlike ``CORRUPT``'s per-transfer line noise).
With per-share fingerprints in the chunk records, the downloader
detects the lie before decoding, fails over to an honest provider,
attributes a ``corrupt_share`` health event, and quarantines repeat
offenders — while every read still returns bit-exact plaintext as long
as at most ``n - t`` providers lie.
"""

from __future__ import annotations

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.transfer import DirectEngine
from repro.csp.memory import InMemoryCSP
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.redundancy import DebtLedger
from repro.selection import RoundRobinSelector
from repro.util.clock import SimClock

from tests.conftest import SMALL_CHUNKS, deterministic_bytes

CONFIG = dict(key="byz-key", t=2, n=3, **SMALL_CHUNKS)

#: Chunk-share objects have bare 40-hex names; metadata shares use the
#: ``md-`` prefix.  Per-prefix rules corrupt every chunk share a lying
#: provider serves while leaving the metadata sync clean.
HEX = "0123456789abcdef"


def _byzantine_plan(seed, liar_ids, kind=FaultKind.CORRUPT_READ):
    return FaultPlan(
        [FaultSpec(kind=kind, csp_ids=tuple(liar_ids), name_prefix=p,
                   flip_bits=5)
         for p in HEX],
        seed=seed,
    )


def _reader_world(tmp_path, seed, liar_ids, parallelism=1):
    """A writer over clean providers, then a fresh reader over the same
    stores wrapped so ``liar_ids`` serve corrupt chunk shares."""
    inner = [InMemoryCSP(f"csp{i}") for i in range(3)]
    writer = CyrusClient.create(
        inner, CyrusConfig(**CONFIG), client_id="writer",
    )
    data = deterministic_bytes(12000, seed=seed)
    writer.put("big.bin", data)

    clock = SimClock()
    wrapped = [
        FaultyProvider(p, _byzantine_plan(seed, liar_ids), clock=clock)
        for p in inner
    ]
    config = CyrusConfig(parallelism=parallelism, **CONFIG)
    engine = DirectEngine({p.csp_id: p for p in wrapped}, clock=clock)
    reader = CyrusClient.create(
        wrapped, config, client_id="reader", engine=engine,
        selector=RoundRobinSelector(),
        debt_ledger=DebtLedger(tmp_path / "debts.jsonl", fsync=False),
    )
    return reader, data


class TestCorruptReadFault:
    """The fault primitive itself: persistent, seeded, download-only."""

    def test_same_object_corrupts_identically_every_fetch(self):
        inner = InMemoryCSP("csp0")
        inner.upload("obj", b"x" * 256)
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CORRUPT_READ, flip_bits=3)], seed=9,
        )
        faulty = FaultyProvider(inner, plan)
        first = faulty.download("obj")
        assert first != b"x" * 256
        assert faulty.download("obj") == first  # a Byzantine *store*

    def test_transient_corrupt_differs_between_fetches(self):
        inner = InMemoryCSP("csp0")
        inner.upload("obj", b"x" * 256)
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CORRUPT, flip_bits=3)], seed=9,
        )
        faulty = FaultyProvider(inner, plan)
        assert faulty.download("obj") != faulty.download("obj")

    def test_corrupt_read_never_fires_on_uploads(self):
        inner = InMemoryCSP("csp0")
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CORRUPT_READ)], seed=9,
        )
        faulty = FaultyProvider(inner, plan)
        faulty.upload("obj", b"clean")
        assert inner.download("obj") == b"clean"


class TestByzantineReads:
    def test_reads_are_bit_exact_despite_a_lying_provider(self, tmp_path,
                                                          fault_seed):
        reader, data = _reader_world(tmp_path, fault_seed, ("csp0",))
        assert reader.get("big.bin").data == data

        # the lie was detected and attributed, not silently tolerated
        snap = reader.obs.snapshot()
        corrupt = snap.counter_by("cyrus_corrupt_shares_total", "csp")
        assert corrupt.get("csp0", 0) >= 1
        assert set(corrupt) == {"csp0"}  # honest providers unblamed
        events = snap.counter_by("cyrus_health_events_total", "kind")
        assert events.get("corrupt_share", 0) >= 1

    def test_repeat_offender_is_quarantined(self, tmp_path, fault_seed):
        reader, data = _reader_world(tmp_path, fault_seed, ("csp0",))
        seen: list = []
        reader.health.subscribe(seen.append)
        assert reader.get("big.bin").data == data
        assert reader.health.corruption_count("csp0") >= 3
        assert any(e.kind == "quarantined" and e.csp_id == "csp0"
                   for e in seen)
        assert not reader.health.is_live("csp0")

    def test_corrupt_shares_open_debts_against_the_liar(self, tmp_path,
                                                        fault_seed):
        reader, data = _reader_world(tmp_path, fault_seed, ("csp0",))
        assert reader.get("big.bin").data == data
        debts = reader.debt_ledger.open_debts()
        assert debts, "decode-time detection must record debt"
        for entry in debts:
            assert entry.failed_csps == ("csp0",)

    def test_parallel_read_is_bit_identical_to_serial(self, tmp_path,
                                                      fault_seed):
        serial, data = _reader_world(tmp_path / "s", fault_seed, ("csp0",),
                                     parallelism=1)
        parallel, _ = _reader_world(tmp_path / "p", fault_seed, ("csp0",),
                                    parallelism=4)
        got_serial = serial.get("big.bin").data
        got_parallel = parallel.get("big.bin").data
        assert got_serial == got_parallel == data
        # both worlds blame the same (and only the same) provider
        for client in (serial, parallel):
            blamed = client.obs.snapshot().counter_by(
                "cyrus_corrupt_shares_total", "csp",
            )
            assert set(blamed) == {"csp0"}

    def test_legacy_nodes_without_fingerprints_still_recover(self,
                                                             tmp_path,
                                                             fault_seed):
        """A node written before fingerprints existed falls back to the
        post-decode t-subset search — bit-exact, just without per-share
        attribution."""
        reader, data = _reader_world(tmp_path, fault_seed, ("csp0",))
        # simulate a pre-fingerprint deployment: strip the digests from
        # the reader's view of every chunk record
        import dataclasses

        reader.sync()
        head = reader.tree.latest("big.bin")
        stripped = dataclasses.replace(head, chunks=tuple(
            dataclasses.replace(c, share_digests=())
            for c in head.chunks
        ))
        reader.tree._nodes[stripped.node_id] = stripped  # same id: lineage
        for chunk in stripped.chunks:
            entry = reader.chunk_table._chunks.get(chunk.chunk_id)
            if entry is not None:
                entry["digests"] = ()
        assert reader.get("big.bin", sync_first=False).data == data
