"""Deterministic unit tests for the asyncio transfer core.

Mirrors the scatter/gather pool suite's philosophy: concurrency claims
are proven with counters and cooperative yields on the event loop, not
timing luck.  The native fake provider yields control inside each
operation so overlapping admissions genuinely interleave, making the
semaphore high-water marks exact.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.async_engine import AsyncTransferEngine
from repro.core.retry import ShareRetryLoop
from repro.core.transfer import OpKind, TransferOp
from repro.csp.aio import AsyncCloudProvider, SyncProviderAdapter
from repro.csp.base import ObjectInfo
from repro.csp.memory import InMemoryCSP
from repro.csp.resilient import RetryPolicy
from repro.errors import (
    CSPAuthError,
    CSPUnavailableError,
    ObjectNotFoundError,
    TransferError,
)


class NativeMemCSP(AsyncCloudProvider):
    """Dict-backed native async provider with concurrency accounting.

    Every operation yields to the loop twice while "in flight", so any
    other admitted coroutine gets a chance to overlap — the recorded
    high-water mark is therefore the true admission concurrency.
    """

    def __init__(self, csp_id: str, probe: dict | None = None):
        super().__init__(csp_id)
        self.store: dict[str, bytes] = {}
        #: shared mutable {"current": int, "peak": int} counter
        self.probe = probe if probe is not None else {"current": 0, "peak": 0}

    async def _occupy(self):
        self.probe["current"] += 1
        self.probe["peak"] = max(self.probe["peak"], self.probe["current"])
        await asyncio.sleep(0)
        await asyncio.sleep(0)
        self.probe["current"] -= 1

    async def authenticate(self, credentials):
        raise NotImplementedError

    async def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        await self._occupy()
        return [ObjectInfo(name=n, size=len(b))
                for n, b in sorted(self.store.items())
                if n.startswith(prefix)]

    async def upload(self, name: str, data) -> None:
        await self._occupy()
        self.store[name] = bytes(data)

    async def download(self, name: str) -> bytes:
        await self._occupy()
        try:
            return self.store[name]
        except KeyError:
            raise ObjectNotFoundError(name, csp_id=self.csp_id) from None

    async def delete(self, name: str) -> None:
        await self._occupy()
        self.store.pop(name, None)


def _put_ops(csp_id: str, n: int, group=None) -> list[TransferOp]:
    return [TransferOp(kind=OpKind.PUT, csp_id=csp_id, name=f"obj-{i}",
                       data=bytes([i]) * 16, group=group)
            for i in range(n)]


# ---------------------------------------------------------------------------
# serial short-circuit: parallelism=1 + sync providers never touch asyncio


def test_serial_sync_path_never_starts_loop_or_executor():
    engine = AsyncTransferEngine({"m": InMemoryCSP("m")}, parallelism=1)
    results = engine.execute(_put_ops("m", 3))
    assert all(r.ok for r in results)
    assert engine._loop is None
    assert engine._executor is None
    engine.close()


def test_serial_streaming_emulation_runs_followups():
    engine = AsyncTransferEngine({"m": InMemoryCSP("m")}, parallelism=1)
    fired = []

    def on_result(result):
        fired.append(result.op.name)
        if result.op.name == "obj-0":
            return [TransferOp(kind=OpKind.PUT, csp_id="m",
                               name="followup", data=b"f")]
        return []

    results = engine.execute(_put_ops("m", 2), on_result=on_result)
    assert [r.op.name for r in results] == ["obj-0", "obj-1", "followup"]
    assert "followup" in fired  # the hook saw the follow-up's result too
    engine.close()


# ---------------------------------------------------------------------------
# semaphore admission caps


def test_per_csp_and_total_caps_bound_native_concurrency():
    probe_a = {"current": 0, "peak": 0}
    probe_b = {"current": 0, "peak": 0}
    a, b = NativeMemCSP("a", probe_a), NativeMemCSP("b", probe_b)
    engine = AsyncTransferEngine(
        {"a": a, "b": b}, parallelism=8,
        max_inflight_per_csp=2, max_inflight_total=3,
    )
    try:
        ops = _put_ops("a", 6) + [
            TransferOp(kind=OpKind.PUT, csp_id="b", name=f"b-{i}", data=b"z")
            for i in range(6)
        ]
        results = engine.execute(ops)
        assert all(r.ok for r in results)
        assert probe_a["peak"] <= 2 and probe_b["peak"] <= 2
        assert probe_a["peak"] + probe_b["peak"] >= 2  # genuinely concurrent
        assert len(a.store) == 6 and len(b.store) == 6
    finally:
        engine.close()


def test_total_cap_of_one_serialises_native_ops():
    probe = {"current": 0, "peak": 0}
    csp = NativeMemCSP("n", probe)
    engine = AsyncTransferEngine({"n": csp}, parallelism=4,
                                 max_inflight_total=1)
    try:
        results = engine.execute(_put_ops("n", 5))
        assert all(r.ok for r in results)
        assert probe["peak"] == 1
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# group quota: stragglers queued behind the cap are cancelled, not run


def test_group_quota_cancels_queued_stragglers():
    csp = NativeMemCSP("n")
    engine = AsyncTransferEngine({"n": csp}, parallelism=2,
                                 max_inflight_total=1)
    try:
        results = engine.execute(_put_ops("n", 3, group="chunk-A"),
                                 group_quota={"chunk-A": 1})
        assert sum(1 for r in results if r.ok) == 1
        cancelled = [r for r in results if r.cancelled]
        assert len(cancelled) == 2
        assert all(not r.ok and r.error_type is None for r in cancelled)
        assert len(csp.store) == 1  # the extras never reached the provider
    finally:
        engine.close()


def test_on_result_followups_join_the_same_batch():
    csp = NativeMemCSP("n")
    engine = AsyncTransferEngine({"n": csp}, parallelism=2)
    try:
        def on_result(result):
            if result.op.name == "obj-0":
                return [TransferOp(kind=OpKind.PUT, csp_id="n",
                                   name="followup", data=b"f")]
            return []

        results = engine.execute(_put_ops("n", 2), on_result=on_result)
        names = {r.op.name for r in results}
        assert names == {"obj-0", "obj-1", "followup"}
        assert all(r.ok for r in results)
        assert "followup" in csp.store
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# loop discipline


def test_run_coro_refuses_to_run_from_the_loop_thread():
    engine = AsyncTransferEngine({"m": InMemoryCSP("m")}, parallelism=2)

    async def script():
        with pytest.raises(TransferError, match="event loop"):
            engine.run_coro(engine.execute_async(_put_ops("m", 1)))

    try:
        asyncio.run(script())
    finally:
        engine.close()


def test_execute_async_awaits_directly_on_callers_loop():
    csp = NativeMemCSP("n")
    engine = AsyncTransferEngine({"n": csp}, parallelism=2)

    async def script():
        return await engine.execute_async(_put_ops("n", 3))

    try:
        results = asyncio.run(script())
        assert all(r.ok for r in results)
        assert len(csp.store) == 3
        # the engine borrowed the caller's loop; it owns nothing to stop
        assert engine._owns_loop is False
    finally:
        engine.close()


def test_native_provider_forces_loop_even_at_parallelism_one():
    csp = NativeMemCSP("n")
    engine = AsyncTransferEngine({"n": csp}, parallelism=1)
    try:
        results = engine.execute(_put_ops("n", 2))
        assert all(r.ok for r in results)
        assert engine._loop is not None  # background loop was required
    finally:
        engine.close()


def test_close_is_idempotent_and_leaves_a_serial_usable_engine():
    engine = AsyncTransferEngine({"m": InMemoryCSP("m")}, parallelism=4)
    assert all(r.ok for r in engine.execute(_put_ops("m", 2)))
    assert engine._loop is not None
    loop_thread = engine._loop_thread
    engine.close()
    engine.close()  # idempotent
    assert engine._loop is None and engine._executor is None
    assert engine.parallelism == 1
    if loop_thread is not None:
        loop_thread.join(timeout=10)
        assert not loop_thread.is_alive()
    # closed engine still serves serial sync batches (like ParallelEngine)
    results = engine.execute(
        [TransferOp(kind=OpKind.GET, csp_id="m", name="obj-0", size=16)]
    )
    assert results[0].ok


# ---------------------------------------------------------------------------
# provider faces


def test_sync_face_refuses_native_only_providers():
    engine = AsyncTransferEngine(
        {"n": NativeMemCSP("n"), "m": InMemoryCSP("m")}
    )
    try:
        with pytest.raises(TransferError, match="native async"):
            engine.provider("n")
        assert engine.provider("m").csp_id == "m"
        adapter = engine.async_provider("m")
        assert isinstance(adapter, SyncProviderAdapter)
        assert engine.async_provider("m") is adapter  # cached
        assert isinstance(engine.async_provider("n"), NativeMemCSP)
    finally:
        engine.close()


def test_register_and_unregister_move_providers_between_faces():
    engine = AsyncTransferEngine({"m": InMemoryCSP("m")})
    try:
        engine.register_provider(NativeMemCSP("m"))  # sync -> native swap
        with pytest.raises(TransferError):
            engine.provider("m")
        engine.register_provider(InMemoryCSP("m"))  # native -> sync swap
        assert engine.provider("m").csp_id == "m"
        engine.unregister_provider("m")
        with pytest.raises(TransferError):
            engine.provider("m")
        assert "m" in engine.link_caps("up") or True  # no crash on caps
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# async retry campaign (ShareRetryLoop delegation)


class FlakyOnce(InMemoryCSP):
    def __init__(self, csp_id: str):
        super().__init__(csp_id)
        self.calls = 0

    def upload(self, name, data):
        self.calls += 1
        if self.calls == 1:
            raise CSPUnavailableError("blip", csp_id=self.csp_id)
        super().upload(name, data)


class AlwaysAuthFail(InMemoryCSP):
    def upload(self, name, data):
        raise CSPAuthError("injected permanent failure", csp_id=self.csp_id)


def test_retry_loop_transient_defers_to_next_round_on_async_engine():
    flaky = FlakyOnce("flaky")
    engine = AsyncTransferEngine({"flaky": flaky}, parallelism=2)
    try:
        loop = ShareRetryLoop(engine, policy=RetryPolicy(max_attempts=3,
                                                         base_delay=0.0))
        results, attempts = loop.run(
            items=[("s0", "flaky")],
            build_op=lambda key, csp: TransferOp(
                kind=OpKind.PUT, csp_id=csp, name="s0", data=b"y" * 16),
            on_success=lambda key, csp, result: None,
            on_giveup=lambda key, csp, result: None,
            pick_alternate=lambda key, csp, tried: None,
        )
        assert [a.ok for a in attempts["s0"]] == [False, True]
        assert [a.round_no for a in attempts["s0"]] == [0, 1]
        assert flaky.object_count == 1
    finally:
        engine.close()


def test_retry_loop_fails_over_to_alternate_on_async_engine():
    bad, alt = AlwaysAuthFail("bad"), InMemoryCSP("alt")
    engine = AsyncTransferEngine({"bad": bad, "alt": alt}, parallelism=2)
    try:
        loop = ShareRetryLoop(engine, policy=RetryPolicy(max_attempts=2,
                                                         base_delay=0.0))
        landed = {}
        results, attempts = loop.run(
            items=[("s0", "bad")],
            build_op=lambda key, csp: TransferOp(
                kind=OpKind.PUT, csp_id=csp, name="s0", data=b"x" * 16),
            on_success=lambda key, csp, result: landed.setdefault(key, csp),
            on_giveup=lambda key, csp, result: None,
            pick_alternate=lambda key, csp, tried: (
                "alt" if "alt" not in tried else None),
        )
        assert landed == {"s0": "alt"}
        assert alt.object_count == 1
        assert [a.csp_id for a in attempts["s0"]] == ["bad", "alt"]
    finally:
        engine.close()


def test_retry_loop_verify_reclassifies_as_permanent_on_async_engine():
    # a provider that "succeeds" but serves a corrupt share: verify=False
    # must fail over, never retry the same provider
    src, alt = InMemoryCSP("src"), InMemoryCSP("alt")
    src.upload("s0", b"corrupt")
    alt.upload("s0", b"genuine")
    engine = AsyncTransferEngine({"src": src, "alt": alt}, parallelism=2)
    try:
        loop = ShareRetryLoop(engine, policy=RetryPolicy(max_attempts=3,
                                                         base_delay=0.0))
        got = {}
        results, attempts = loop.run(
            items=[("s0", "src")],
            build_op=lambda key, csp: TransferOp(
                kind=OpKind.GET, csp_id=csp, name="s0", size=7),
            on_success=lambda key, csp, result: got.setdefault(
                key, (csp, result.data)),
            on_giveup=lambda key, csp, result: None,
            pick_alternate=lambda key, csp, tried: (
                "alt" if "alt" not in tried else None),
            verify=lambda key, csp, result: result.data == b"genuine",
        )
        assert got == {"s0": ("alt", b"genuine")}
        history = [(a.csp_id, a.ok) for a in attempts["s0"]]
        assert history == [("src", False), ("alt", True)]
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# sync pipelines from multiple threads share one engine safely


def test_concurrent_sync_callers_share_the_background_loop():
    csp = NativeMemCSP("n")
    engine = AsyncTransferEngine({"n": csp}, parallelism=4)
    errors: list[BaseException] = []

    def worker(tag: int) -> None:
        try:
            ops = [TransferOp(kind=OpKind.PUT, csp_id="n",
                              name=f"t{tag}-{i}", data=b"d") for i in range(4)]
            results = engine.execute(ops)
            assert all(r.ok for r in results)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    try:
        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(csp.store) == 24
    finally:
        engine.close()
