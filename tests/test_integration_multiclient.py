"""Integration tests: several clients sharing one CYRUS cloud.

These exercise the paper's headline scenario (Figure 1): multiple
autonomous devices — possibly different users — reading and writing the
same files through nothing but their shared CSP accounts and key.
"""

import pytest

from repro.core.client import CyrusClient
from tests.conftest import deterministic_bytes


class TestThreeClients:
    @pytest.fixture
    def clients(self, csps, config):
        return [
            CyrusClient.create(csps, config, client_id=f"device-{i}")
            for i in range(3)
        ]

    def test_fanout(self, clients):
        data = deterministic_bytes(10_000, 1)
        clients[0].put("shared.bin", data)
        for client in clients[1:]:
            assert client.get("shared.bin").data == data

    def test_serial_edits_converge(self, clients):
        content = deterministic_bytes(5000, 2)
        clients[0].put("doc.bin", content)
        for round_no, client in enumerate(clients * 2):
            content = content + deterministic_bytes(100, 10 + round_no)
            client.put("doc.bin", content)
        for client in clients:
            assert client.get("doc.bin").data == content
        # the lineage is one unbroken chain: no spurious conflicts
        for client in clients:
            assert not client.conflicts()

    def test_three_way_conflict(self, clients):
        clients[0].put("f.txt", b"base " * 100)
        for c in clients:
            c.sync()
        for i, c in enumerate(clients):
            c.uploader.upload(
                "f.txt", f"version {i} ".encode() * 80,
                client_id=c.client_id,
            )
        clients[0].sync()
        divergences = [
            c for c in clients[0].conflicts() if c.kind == "divergence"
        ]
        assert len(divergences) == 1
        assert len(divergences[0].node_ids) == 3

    def test_resolution_converges_across_clients(self, clients):
        clients[0].put("f.txt", b"base " * 100)
        for c in clients:
            c.sync()
        clients[0].uploader.upload("f.txt", b"zero " * 90, client_id="device-0")
        clients[1].uploader.upload("f.txt", b"one " * 90, client_id="device-1")
        clients[2].sync()
        clients[2].resolve_conflicts()
        names = set()
        for c in clients:
            c.sync()
            names.update(e.name for e in c.list_files(sync_first=False))
            assert not c.conflicts()
        assert "f.txt" in names
        assert any("conflicted copy" in n for n in names)

    def test_cross_client_dedup(self, clients, csps):
        data = deterministic_bytes(20_000, 3)
        clients[0].put("a.bin", data)
        clients[1].sync()
        report = clients[1].put("b.bin", data)
        assert report.new_chunks == 0

    def test_delete_propagates(self, clients):
        clients[0].put("f.bin", deterministic_bytes(1000, 4))
        clients[1].sync()
        clients[1].delete("f.bin")
        assert "f.bin" not in [
            e.name for e in clients[2].list_files()
        ]

    def test_version_history_shared(self, clients):
        for i in range(3):
            clients[i].put("f.bin", deterministic_bytes(1000 + i, 20 + i))
        clients[0].sync()
        assert len(clients[0].history("f.bin")) == 3
        assert clients[0].get("f.bin", version=2).data == (
            deterministic_bytes(1000, 20)
        )


class TestPrivacyInvariants:
    def test_no_single_csp_holds_a_chunk(self, client, csps, config):
        # t=2: every chunk needs two CSPs; verify storage layout agrees
        data = deterministic_bytes(12_000, 5)
        node = client.put("f.bin", data).node
        for record in node.chunks:
            holders = {s.csp_id for s in node.shares_of(record.chunk_id)}
            assert len(holders) >= config.t

    def test_csp_bytes_are_not_plaintext(self, client, csps):
        data = deterministic_bytes(8_000, 6)
        client.put("f.bin", data)
        for provider in csps:
            for info in provider.list():
                blob = provider.download(info.name)
                assert data not in blob
                assert blob not in data if blob else True

    def test_share_names_reveal_nothing(self, client, csps):
        client.put("secret-report.docx", deterministic_bytes(4000, 7))
        for provider in csps:
            for info in provider.list():
                assert "secret" not in info.name
                assert "docx" not in info.name

    def test_wrong_key_cannot_read_chunks(self, client, csps, config):
        data = deterministic_bytes(6_000, 8)
        client.put("f.bin", data)
        attacker = CyrusClient.create(
            csps, config.with_params(key="stolen-guess"), client_id="eve"
        )
        from repro.errors import CyrusError

        with pytest.raises(CyrusError):
            attacker.recover()
            attacker.get("f.bin", sync_first=False)


class TestReliabilityInvariants:
    def test_survives_any_single_csp_loss(self, client, csps, config):
        data = deterministic_bytes(15_000, 9)
        client.put("f.bin", data)
        for victim in csps:
            fresh = CyrusClient.create(csps, config, client_id="probe")
            fresh.cloud.mark_failed(victim.csp_id)
            fresh.recover()
            assert fresh.get("f.bin", sync_first=False).data == data

    def test_survives_n_minus_t_losses(self, client, csps, config):
        # (t, n) = (2, 3): any one of each chunk's three holders may die;
        # with four CSPs, killing one whole provider is always safe, and
        # killing two may or may not strand a chunk (not guaranteed)
        data = deterministic_bytes(15_000, 10)
        client.put("f.bin", data)
        client.cloud.mark_failed(csps[3].csp_id)
        assert client.get("f.bin").data == data
