"""Cross-validation: the selection model vs the flow simulator.

The Section 4.3 optimiser predicts a bottleneck completion time
``y = max_c L_c / beta_c`` under optimal bandwidth allocation.  The
flow simulator realises the same transfers with max--min fair sharing.
For a single batch of downloads the two must agree closely — the
optimal allocation is feasible under max--min fairness when it is the
unique bottleneck-minimising split — which is what makes the model's
plans meaningful.  (The example `optimized_download.py` shows this
agreement end-to-end; these tests pin it down numerically.)
"""

import random

import pytest

from repro.netsim import FlowSimulator, Link, TransferRequest
from repro.selection import (
    ChunkDownload,
    CyrusSelector,
    DownloadProblem,
    GreedySelector,
    RandomSelector,
)


def realize(plan, problem, links, client_cap):
    """Run a plan's share transfers on the flow simulator."""
    sim = FlowSimulator(links, client_down=client_cap)
    requests = []
    for chunk in problem.chunks:
        for csp in plan.assignments[chunk.chunk_id]:
            requests.append(
                TransferRequest(csp, chunk.share_size, "down")
            )
    results = sim.run(requests)
    return max(r.end for r in results)


def make_setup(seed, chunks=12):
    caps = {f"fast{i}": 15e6 for i in range(4)} | {
        f"slow{i}": 2e6 for i in range(3)
    }
    links = {c: Link.symmetric(c, rate) for c, rate in caps.items()}
    rng = random.Random(seed)
    ids = sorted(caps)
    problem = DownloadProblem(
        chunks=tuple(
            ChunkDownload(f"c{i}", rng.randint(1, 8) * 250_000,
                          tuple(rng.sample(ids, 4)))
            for i in range(chunks)
        ),
        t=2, link_caps=caps, client_cap=40e6,
    )
    return problem, links


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_cyrus_plan_prediction_matches_simulation(seed):
    problem, links = make_setup(seed)
    plan = CyrusSelector(resolve_every=4).select(problem)
    realized = realize(plan, problem, links, problem.client_cap)
    # the model is a lower bound (it ignores nothing here: zero RTT,
    # divisible bandwidth); max-min fairness achieves it within a few %
    assert realized >= plan.bottleneck_time - 1e-9
    assert realized <= plan.bottleneck_time * 1.10, (
        realized, plan.bottleneck_time
    )


@pytest.mark.parametrize("seed", [7, 8, 9])
def test_model_ordering_predicts_simulated_ordering(seed):
    # if the model says plan A beats plan B by a clear margin, the
    # simulator must agree on the ordering
    problem, links = make_setup(seed, chunks=16)
    plans = {
        "cyrus": CyrusSelector(resolve_every=4).select(problem),
        "random": RandomSelector(seed=seed).select(problem),
        "greedy": GreedySelector().select(problem),
    }
    model = {k: p.bottleneck_time for k, p in plans.items()}
    real = {
        k: realize(p, problem, links, problem.client_cap)
        for k, p in plans.items()
    }
    for a in plans:
        for b in plans:
            if model[a] < model[b] * 0.8:  # clear model margin
                assert real[a] < real[b] * 1.05, (a, b, model, real)


def test_rtt_makes_model_a_lower_bound():
    # with RTTs the realization exceeds the model by about one RTT
    problem, _ = make_setup(11, chunks=6)
    links = {
        c: Link.symmetric(c, rate, rtt_s=0.2)
        for c, rate in problem.link_caps.items()
    }
    plan = CyrusSelector().select(problem)
    realized = realize(plan, problem, links, problem.client_cap)
    assert realized >= plan.bottleneck_time + 0.2 - 1e-9
