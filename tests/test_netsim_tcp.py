"""Unit tests for the TCP throughput model (Table 2's derivation)."""

import math

import pytest

from repro.csp.catalog import TABLE2, TABLE2_THROUGHPUT_MBPS
from repro.netsim.tcp import mathis_throughput, throughput_mbps


class TestMathisModel:
    def test_reproduces_every_table2_row(self):
        for spec in TABLE2:
            expected = TABLE2_THROUGHPUT_MBPS[spec.name]
            got = throughput_mbps(spec.rtt_ms)
            assert got == pytest.approx(expected, abs=0.02), spec.name

    def test_inverse_in_rtt(self):
        assert mathis_throughput(0.1) == pytest.approx(
            2 * mathis_throughput(0.2)
        )

    def test_window_cap_binds_at_low_loss(self):
        # loss -> 0 makes the Mathis term huge; window must cap it
        capped = mathis_throughput(0.1, loss=1e-12, window=65535)
        assert capped == pytest.approx(65535 / 0.1)

    def test_zero_loss_pure_window(self):
        assert mathis_throughput(0.05, loss=0) == pytest.approx(65535 / 0.05)

    def test_higher_loss_lower_throughput(self):
        assert mathis_throughput(0.1, loss=0.01) < mathis_throughput(0.1, loss=0.001)

    def test_mss_scales_loss_limited_rate(self):
        small = mathis_throughput(0.1, mss=512)
        large = mathis_throughput(0.1, mss=1024)
        assert large == pytest.approx(2 * small)

    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            mathis_throughput(0)
        with pytest.raises(ValueError):
            mathis_throughput(-1)

    def test_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            mathis_throughput(0.1, loss=-0.1)

    def test_units(self):
        # bytes/s * 8 / 1e6 == Mbps wrapper
        assert throughput_mbps(100) == pytest.approx(
            mathis_throughput(0.1) * 8 / 1e6
        )
