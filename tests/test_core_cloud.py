"""Unit tests for CyrusCloud: membership, clusters, placement, slots."""

import pytest

from repro.core.cloud import CSPStatus, CyrusCloud
from repro.csp import InMemoryCSP
from repro.errors import ConfigurationError, CSPUnavailableError, SelectionError


def make_cloud(count=5, clusters=None):
    providers = [InMemoryCSP(f"csp{i}") for i in range(count)]
    return CyrusCloud(providers, clusters=clusters), providers


class TestMembership:
    def test_initial_all_active(self):
        cloud, _ = make_cloud(3)
        assert cloud.active_csps() == ["csp0", "csp1", "csp2"]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CyrusCloud([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            CyrusCloud([InMemoryCSP("x"), InMemoryCSP("x")])

    def test_add(self):
        cloud, _ = make_cloud(2)
        cloud.add_csp(InMemoryCSP("new"))
        assert "new" in cloud.active_csps()
        assert "new" in cloud.metadata_slot_ids()

    def test_add_duplicate_rejected(self):
        cloud, _ = make_cloud(2)
        with pytest.raises(ConfigurationError):
            cloud.add_csp(InMemoryCSP("csp0"))

    def test_remove(self):
        cloud, _ = make_cloud(3)
        cloud.remove_csp("csp1")
        assert cloud.status_of("csp1") is CSPStatus.REMOVED
        assert "csp1" not in cloud.active_csps()
        assert "csp1" in cloud.unusable_csps()

    def test_fail_and_recover(self):
        cloud, _ = make_cloud(3)
        cloud.mark_failed("csp0")
        assert cloud.status_of("csp0") is CSPStatus.FAILED
        cloud.mark_recovered("csp0")
        assert cloud.status_of("csp0") is CSPStatus.ACTIVE

    def test_recover_does_not_resurrect_removed(self):
        cloud, _ = make_cloud(3)
        cloud.remove_csp("csp0")
        cloud.mark_recovered("csp0")
        assert cloud.status_of("csp0") is CSPStatus.REMOVED

    def test_unknown_csp(self):
        cloud, _ = make_cloud(2)
        with pytest.raises(KeyError):
            cloud.status_of("ghost")
        with pytest.raises(KeyError):
            cloud.provider("ghost")


class TestPlacement:
    def test_distinct_csps(self):
        cloud, _ = make_cloud(5)
        chosen = cloud.place_chunk("a" * 40, 3)
        assert len(set(chosen)) == 3

    def test_deterministic(self):
        cloud, _ = make_cloud(5)
        assert cloud.place_chunk("b" * 40, 3) == cloud.place_chunk("b" * 40, 3)

    def test_skips_failed(self):
        cloud, _ = make_cloud(4)
        cloud.mark_failed("csp0")
        for key in ("k1", "k2", "k3"):
            assert "csp0" not in cloud.place_chunk(key, 3)

    def test_too_few_active(self):
        cloud, _ = make_cloud(3)
        cloud.remove_csp("csp0")
        with pytest.raises(SelectionError):
            cloud.place_chunk("k", 3)

    def test_cluster_disjoint_placement(self):
        cloud, _ = make_cloud(5, clusters=[["csp0", "csp1", "csp2"]])
        for key in (f"key{i}" for i in range(20)):
            chosen = cloud.place_chunk(key, 3)
            in_cluster = [c for c in chosen if c in {"csp0", "csp1", "csp2"}]
            assert len(in_cluster) <= 1, chosen

    def test_cluster_overflow_degrades_gracefully(self):
        # only 2 clusters but n=3: fill from the same cluster rather
        # than refuse the upload
        cloud, _ = make_cloud(4, clusters=[["csp0", "csp1", "csp2"]])
        chosen = cloud.place_chunk("key", 3, respect_clusters=True)
        assert len(set(chosen)) == 3

    def test_clusters_ignorable(self):
        cloud, _ = make_cloud(4, clusters=[["csp0", "csp1", "csp2", "csp3"]])
        chosen = cloud.place_chunk("key", 3, respect_clusters=False)
        assert len(set(chosen)) == 3

    def test_cluster_count(self):
        cloud, _ = make_cloud(5, clusters=[["csp0", "csp1"]])
        assert cloud.cluster_count() == 4  # 1 pair + 3 singletons

    def test_replacement_csp(self):
        cloud, _ = make_cloud(4)
        holder = cloud.place_chunk("key", 3)
        replacement = cloud.replacement_csp("key", holder)
        assert replacement is not None
        assert replacement not in holder

    def test_replacement_none_when_all_hold(self):
        cloud, _ = make_cloud(3)
        assert cloud.replacement_csp("key", ["csp0", "csp1", "csp2"]) is None


class TestMetadataSlots:
    def test_slots_fixed_order(self):
        cloud, _ = make_cloud(3)
        assert cloud.metadata_slot_ids() == ["csp0", "csp1", "csp2"]

    def test_slots_append_only_on_add(self):
        cloud, _ = make_cloud(2)
        cloud.add_csp(InMemoryCSP("zzz"))
        assert cloud.metadata_slot_ids() == ["csp0", "csp1", "zzz"]

    def test_removed_slot_raises_but_keeps_position(self):
        cloud, providers = make_cloud(3)
        cloud.remove_csp("csp1")
        slots = cloud.metadata_slots()
        assert [s.csp_id for s in slots] == ["csp0", "csp1", "csp2"]
        with pytest.raises(CSPUnavailableError):
            slots[1].upload("x", b"data")
        slots[0].upload("x", b"data")  # active slots still work
        assert slots[0].download("x") == b"data"

    def test_slot_proxies_all_primitives(self):
        cloud, providers = make_cloud(2)
        slot = cloud.metadata_slots()[0]
        slot.upload("o", b"v")
        assert slot.download("o") == b"v"
        assert [i.name for i in slot.list()] == ["o"]
        slot.delete("o")
        from repro.csp import Credentials

        slot.authenticate(Credentials("u"))
