"""Unit tests for CSP platform clustering (Section 4.1, Figure 3)."""

import pytest

from repro.csp.catalog import TABLE2
from repro.topology import (
    CLIENT_NODE,
    Route,
    cluster_at_level,
    cluster_csps,
    render_tree,
    route_tree,
    synthesize_routes,
)


class TestRoutes:
    def test_one_route_per_csp(self):
        routes = synthesize_routes(["a", "b"], platforms={})
        assert [r.csp for r in routes] == ["a", "b"]

    def test_shared_platform_shares_backbone(self):
        routes = synthesize_routes(
            ["x", "y", "z"], platforms={"x": "aws", "y": "aws"}
        )
        by_csp = {r.csp: r.hops for r in routes}
        # x and y share every hop except the storage endpoint
        assert by_csp["x"][:-1] == by_csp["y"][:-1]
        assert by_csp["x"][:-1] != by_csp["z"][:-1]

    def test_deterministic(self):
        a = synthesize_routes(["a", "b"], {}, seed=5)
        b = synthesize_routes(["a", "b"], {}, seed=5)
        assert a == b

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            Route(csp="a", hops=())


class TestTree:
    def test_rooted_at_client(self):
        routes = synthesize_routes(["a", "b"], {})
        tree = route_tree(routes)
        assert tree.nodes[CLIENT_NODE]["depth"] == 0

    def test_leaves_carry_csp_labels(self):
        routes = synthesize_routes(["a", "b"], {})
        tree = route_tree(routes)
        labels = {
            data["csp"] for _, data in tree.nodes(data=True) if "csp" in data
        }
        assert labels == {"a", "b"}

    def test_is_a_tree(self):
        import networkx as nx

        routes = synthesize_routes(list("abcdef"), {"a": "p", "b": "p"})
        tree = route_tree(routes)
        assert nx.is_arborescence(tree)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            route_tree([])

    def test_render(self):
        routes = synthesize_routes(["a"], {})
        text = render_tree(route_tree(routes))
        assert text.startswith(CLIENT_NODE)
        assert "[a]" in text


class TestClustering:
    def test_shared_platform_co_clusters(self):
        routes = synthesize_routes(
            ["x", "y", "z"], platforms={"x": "aws", "y": "aws"}
        )
        clusters = cluster_csps(routes)
        assert {"x", "y"} in clusters
        assert {"z"} in clusters

    def test_paper_amazon_cluster(self):
        # Figure 3 / Table 2: the five asterisked CSPs share Amazon
        platforms = {
            s.name: "amazon" for s in TABLE2 if s.amazon_platform
        }
        routes = synthesize_routes([s.name for s in TABLE2], platforms)
        clusters = cluster_csps(routes)
        multi = [c for c in clusters if len(c) > 1]
        assert multi == [{s.name for s in TABLE2 if s.amazon_platform}]
        assert len(clusters) == 16  # 1 amazon + 15 singletons

    def test_shallow_cut_merges_everything(self):
        routes = synthesize_routes(["a", "b", "c"], {}, isp_hops=2)
        tree = route_tree(routes)
        clusters = cluster_at_level(tree, 1)
        assert clusters == [{"a", "b", "c"}]  # still inside the shared ISP

    def test_deep_cut_separates_platform_members(self):
        routes = synthesize_routes(
            ["x", "y"], platforms={"x": "p", "y": "p"}, backbone_hops=2
        )
        tree = route_tree(routes)
        max_depth = max(
            d["depth"] for _, d in tree.nodes(data=True) if "csp" in d
        )
        clusters = cluster_at_level(tree, max_depth)
        assert {"x"} in clusters and {"y"} in clusters

    def test_level_validation(self):
        routes = synthesize_routes(["a"], {})
        with pytest.raises(ValueError):
            cluster_at_level(route_tree(routes), 0)

    def test_auto_level_prefers_informative_cut(self):
        routes = synthesize_routes(
            ["x", "y", "z"], platforms={"x": "p", "y": "p"}
        )
        clusters = cluster_csps(routes)  # no level given
        assert any(len(c) > 1 for c in clusters)
        assert sum(len(c) for c in clusters) == 3
