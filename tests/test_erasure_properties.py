"""Property-based tests for erasure coding (hypothesis)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.erasure import KeyedSharer, RSCodec

params = st.tuples(st.integers(1, 5), st.integers(0, 4)).map(
    lambda tn: (tn[0], tn[0] + tn[1])
)


@given(data=st.binary(min_size=0, max_size=2000), tn=params)
@settings(max_examples=60, deadline=None)
def test_any_t_subset_roundtrips(data, tn):
    t, n = tn
    codec = RSCodec(t, n)
    shares = codec.encode(data)
    # try up to 5 random-ish subsets rather than all C(n, t)
    for combo in itertools.islice(itertools.combinations(shares, t), 5):
        assert codec.decode(list(combo)) == data


@given(data=st.binary(min_size=1, max_size=1000), key=st.text(min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_keyed_sharer_determinism(data, key):
    a = KeyedSharer(key, 2, 4)
    b = KeyedSharer(key, 2, 4)
    assert [s.data for s in a.split(data)] == [s.data for s in b.split(data)]
    assert b.join(a.split(data)[1:3]) == data


@given(data=st.binary(min_size=0, max_size=1500), tn=params)
@settings(max_examples=60, deadline=None)
def test_share_sizes_are_ceil_div(data, tn):
    t, n = tn
    shares = RSCodec(t, n).encode(data)
    expected = max(1, -(-len(data) // t))
    assert all(s.size == expected for s in shares)


@given(tn=params)
@settings(max_examples=40, deadline=None)
def test_dispersal_matrix_is_non_systematic(tn):
    # the structural guarantee behind Figure 5: for t >= 2 no encoding
    # row is a unit vector, so no share is a verbatim data stripe
    # (degenerate data like all-zeros still maps to equal bytes, which
    # is why the guarantee is about the matrix, not specific payloads)
    t, n = tn
    if t < 2:
        return
    matrix = RSCodec(t, n).dispersal_matrix
    for row in matrix:
        nonzero = [int(x) for x in row if x != 0]
        assert not (len(nonzero) == 1 and nonzero[0] == 1)


@given(
    data=st.binary(min_size=1, max_size=800),
    idx=st.integers(0, 4),
)
@settings(max_examples=40, deadline=None)
def test_encode_rows_consistent_with_full(data, idx):
    codec = RSCodec(2, 5)
    assert codec.encode_rows(data, [idx])[0].data == codec.encode(data)[idx].data
