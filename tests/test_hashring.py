"""Unit tests for the consistent hash ring."""

import collections

import pytest

from repro.errors import SelectionError
from repro.hashring import ConsistentHashRing


def ring_with(*ids, replicas=64):
    ring = ConsistentHashRing(replicas=replicas)
    for csp in ids:
        ring.add(csp)
    return ring


class TestMembership:
    def test_add_and_contains(self):
        ring = ring_with("a", "b")
        assert "a" in ring and "b" in ring and "c" not in ring
        assert len(ring) == 2

    def test_duplicate_add_rejected(self):
        ring = ring_with("a")
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove(self):
        ring = ring_with("a", "b")
        ring.remove("a")
        assert "a" not in ring
        assert ring.members == ["b"]

    def test_remove_unknown(self):
        with pytest.raises(KeyError):
            ring_with("a").remove("zzz")

    def test_bad_weight(self):
        ring = ConsistentHashRing()
        with pytest.raises(ValueError):
            ring.add("a", weight=0)

    def test_bad_replicas(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)


class TestLookup:
    def test_successors_distinct(self):
        ring = ring_with("a", "b", "c", "d")
        chosen = ring.successors("chunk-1", 3)
        assert len(set(chosen)) == 3

    def test_deterministic(self):
        ring = ring_with("a", "b", "c")
        assert ring.successors("k", 2) == ring.successors("k", 2)

    def test_all_members_when_count_equals_size(self):
        ring = ring_with("a", "b", "c")
        assert sorted(ring.successors("key", 3)) == ["a", "b", "c"]

    def test_too_many_requested(self):
        ring = ring_with("a", "b")
        with pytest.raises(SelectionError):
            ring.successors("k", 3)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            ring_with("a").successors("k", 0)

    def test_owner_is_first_successor(self):
        ring = ring_with("a", "b", "c")
        assert ring.owner("key") == ring.successors("key", 2)[0]


class TestBalance:
    def test_load_roughly_uniform(self):
        ring = ring_with("a", "b", "c", "d", "e")
        counts = collections.Counter(
            ring.owner(f"chunk-{i}") for i in range(5000)
        )
        assert min(counts.values()) > 0.4 * max(counts.values())

    def test_weight_biases_load(self):
        ring = ConsistentHashRing(replicas=64)
        ring.add("heavy", weight=3)
        ring.add("light", weight=1)
        counts = collections.Counter(
            ring.owner(f"k{i}") for i in range(4000)
        )
        assert counts["heavy"] > 1.8 * counts["light"]


class TestMinimalRemapping:
    def test_add_moves_bounded_fraction(self):
        ring = ring_with("a", "b", "c", "d")
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(3000)}
        ring.add("e")
        moved = sum(1 for k, v in before.items() if ring.owner(k) != v)
        # ideal is 1/5 = 20%; allow generous slack for hash variance
        assert moved / 3000 < 0.35

    def test_remove_only_moves_removed_keys(self):
        ring = ring_with("a", "b", "c", "d")
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(3000)}
        ring.remove("d")
        for key, owner in before.items():
            if owner != "d":
                assert ring.owner(key) == owner

    def test_readding_restores_ownership(self):
        ring = ring_with("a", "b", "c")
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(500)}
        ring.remove("b")
        ring.add("b")
        after = {k: ring.owner(k) for k in before}
        assert before == after
