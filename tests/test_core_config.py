"""Unit tests for CyrusConfig."""

import pytest

from repro.core.config import CyrusConfig
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        cfg = CyrusConfig(key="k")
        assert cfg.t == 2 and cfg.n == 3

    def test_empty_key(self):
        with pytest.raises(ConfigurationError):
            CyrusConfig(key="")

    def test_n_below_t(self):
        with pytest.raises(ConfigurationError):
            CyrusConfig(key="k", t=3, n=2)

    def test_needs_n_or_epsilon(self):
        with pytest.raises(ConfigurationError):
            CyrusConfig(key="k", n=None, epsilon=None)

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            CyrusConfig(key="k", n=None, epsilon=1.5)

    def test_bad_t(self):
        with pytest.raises(ConfigurationError):
            CyrusConfig(key="k", t=0)


class TestPlanN:
    def test_fixed_n(self):
        assert CyrusConfig(key="k", t=2, n=3).plan_n(10) == 3

    def test_fixed_n_capped_by_csps(self):
        assert CyrusConfig(key="k", t=2, n=5).plan_n(4) == 4

    def test_epsilon_driven(self):
        cfg = CyrusConfig(key="k", t=2, n=None, epsilon=1e-6,
                          csp_failure_prob=0.01)
        n = cfg.plan_n(20)
        from repro.reliability import chunk_failure_probability

        assert chunk_failure_probability(2, n, 0.01) <= 1e-6

    def test_too_few_csps(self):
        with pytest.raises(ConfigurationError):
            CyrusConfig(key="k", t=3, n=4).plan_n(2)

    def test_with_params(self):
        cfg = CyrusConfig(key="k", t=2, n=3)
        changed = cfg.with_params(n=4)
        assert changed.n == 4 and cfg.n == 3
