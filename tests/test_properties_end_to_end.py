"""Property-based tests over the whole client stack (hypothesis)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp import InMemoryCSP

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_client(t=2, n=3, key="prop-key"):
    csps = [InMemoryCSP(f"p{i}") for i in range(max(4, n + 1))]
    cfg = CyrusConfig(key=key, t=t, n=n, chunk_min=64, chunk_avg=256,
                      chunk_max=2048)
    return CyrusClient.create(csps, cfg, client_id="prop"), csps, cfg


@given(data=st.binary(min_size=0, max_size=20_000))
@SETTINGS
def test_put_get_roundtrip(data):
    client, _, _ = fresh_client()
    client.put("file.bin", data)
    assert client.get("file.bin").data == data


@given(
    versions=st.lists(st.binary(min_size=1, max_size=4_000), min_size=2,
                      max_size=5, unique=True),
)
@SETTINGS
def test_every_version_recoverable(versions):
    client, _, _ = fresh_client()
    for v in versions:
        client.put("f.bin", v)
    for back, expected in enumerate(reversed(versions)):
        assert client.get("f.bin", version=back).data == expected


@given(data=st.binary(min_size=1, max_size=10_000), t=st.integers(2, 3))
@SETTINGS
def test_roundtrip_across_configs(data, t):
    client, _, _ = fresh_client(t=t, n=t + 1)
    client.put("f.bin", data)
    assert client.get("f.bin").data == data


@given(data=st.binary(min_size=1, max_size=8_000))
@SETTINGS
def test_fresh_device_recovers_everything(data):
    client, csps, cfg = fresh_client()
    client.put("f.bin", data)
    other = CyrusClient.create(csps, cfg, client_id="other-device")
    other.recover()
    assert other.get("f.bin", sync_first=False).data == data


@given(
    data=st.binary(min_size=2_000, max_size=12_000),
    victim=st.integers(0, 3),
)
@SETTINGS
def test_any_single_csp_loss_harmless(data, victim):
    client, csps, _ = fresh_client()
    client.put("f.bin", data)
    client.cloud.mark_failed(csps[victim].csp_id)
    assert client.get("f.bin").data == data


@given(
    first=st.binary(min_size=500, max_size=5_000),
    second=st.binary(min_size=500, max_size=5_000),
)
@SETTINGS
def test_dedup_never_corrupts(first, second):
    client, _, _ = fresh_client()
    client.put("a.bin", first)
    client.put("b.bin", second)
    client.put("c.bin", first + second)
    assert client.get("a.bin").data == first
    assert client.get("b.bin").data == second
    assert client.get("c.bin").data == first + second
