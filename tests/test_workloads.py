"""Unit tests for workload generation (Table 4, trial profiles)."""

import pytest

from repro.workloads import (
    TABLE4_PROFILE,
    TRIAL_PROFILES,
    edited_copy,
    generate_dataset,
    random_bytes,
    redundant_bytes,
    trial_environment,
)
from repro.workloads.dataset import TABLE4_TOTAL_BYTES, TABLE4_TOTAL_FILES


class TestTable4:
    def test_profile_totals_match_paper(self):
        assert sum(p.files for p in TABLE4_PROFILE) == TABLE4_TOTAL_FILES
        assert sum(p.total_bytes for p in TABLE4_PROFILE) == TABLE4_TOTAL_BYTES

    def test_full_scale_dataset_matches(self):
        dataset = generate_dataset(scale=1.0)
        assert len(dataset.files) == 172
        assert dataset.total_bytes == TABLE4_TOTAL_BYTES
        by_ext = dataset.by_extension()
        for profile in TABLE4_PROFILE:
            files = by_ext[profile.extension]
            assert len(files) == profile.files
            assert sum(f.size for f in files) == profile.total_bytes

    def test_scaled_dataset(self):
        dataset = generate_dataset(scale=0.01)
        assert len(dataset.files) == 172
        assert dataset.total_bytes == pytest.approx(
            TABLE4_TOTAL_BYTES * 0.01, rel=0.01
        )

    def test_deterministic(self):
        a = generate_dataset(scale=0.01, seed=5)
        b = generate_dataset(scale=0.01, seed=5)
        assert a == b
        assert a.files[0].content() == b.files[0].content()

    def test_content_sizes_match(self):
        dataset = generate_dataset(scale=0.005)
        for f in dataset.files[:5]:
            assert len(f.content()) == f.size

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            generate_dataset(scale=0)


class TestGenerators:
    def test_random_bytes_deterministic(self):
        assert random_bytes(100, 1) == random_bytes(100, 1)
        assert random_bytes(100, 1) != random_bytes(100, 2)

    def test_redundant_bytes_dedup_friendly(self):
        from repro.chunking import ContentDefinedChunker

        data = redundant_bytes(200_000, seed=1, redundancy=0.5, span=4096)
        chunker = ContentDefinedChunker(min_size=256, avg_size=1024,
                                        max_size=4096)
        chunks = chunker.chunk_bytes(data)
        unique = {c.id for c in chunks}
        assert len(unique) < len(chunks)  # real duplication exists

    def test_redundancy_zero_is_unique(self):
        data = redundant_bytes(50_000, seed=2, redundancy=0.0, span=1024)
        assert len(data) == 50_000

    def test_redundancy_validation(self):
        with pytest.raises(ValueError):
            redundant_bytes(100, 0, redundancy=1.0)

    def test_edited_copy_mostly_same(self):
        data = random_bytes(100_000, 3)
        edited = edited_copy(data, seed=4, edits=2, max_edit=512)
        assert edited != data
        # bulk survives at chunk granularity
        from repro.chunking import ContentDefinedChunker

        chunker = ContentDefinedChunker(min_size=256, avg_size=1024,
                                        max_size=8192)
        before = {c.id for c in chunker.chunk_bytes(data)}
        after = {c.id for c in chunker.chunk_bytes(edited)}
        assert len(before & after) / len(before) > 0.5


class TestTrialProfiles:
    def test_both_countries(self):
        assert set(TRIAL_PROFILES) == {"US", "Korea"}

    def test_korea_uplinks_near_table2(self):
        from repro.csp.catalog import spec_by_name

        korea = trial_environment("Korea")
        for name, rate in korea.up_rates.items():
            table2 = spec_by_name(name).throughput_bytes
            assert 0.5 * table2 < rate < 2.0 * table2

    def test_us_faster_per_csp(self):
        us = trial_environment("US")
        korea = trial_environment("Korea")
        for name in us.up_rates:
            assert us.up_rates[name] > korea.up_rates[name]
            assert us.down_rates[name] > korea.down_rates[name]

    def test_us_uplink_is_bottleneck_korea_not(self):
        us = trial_environment("US")
        korea = trial_environment("Korea")
        # the structural facts Figure 19 rests on (Section 7.4)
        assert us.client_up < sum(us.up_rates.values())
        assert korea.client_up > sum(korea.up_rates.values())

    def test_korea_downlinks_skewed(self):
        # what makes (2,4) save so much download time in Korea
        korea = trial_environment("Korea")
        rates = sorted(korea.down_rates.values())
        assert rates[-1] > 3 * rates[0]

    def test_links_constructed(self):
        links = trial_environment("Korea").links()
        assert set(links) == set(trial_environment("Korea").up_rates)
        link = links["Google Drive"]
        assert link.capacity_at(0, "up") != link.capacity_at(0, "down")

    def test_unknown_country(self):
        with pytest.raises(KeyError):
            trial_environment("Atlantis")
