"""Acceptance: the scatter/gather pool actually buys wall-clock time.

Four providers with equal, fixed per-request latency (the simulated
testbed's symmetric-CSP shape); a multi-chunk file is uploaded and read
back at parallelism 1 and at parallelism 4.  With every request costing
the same fixed service time, the serial engine pays for each share
transfer sequentially while the pool overlaps four — so the parallel
run must be at least 2x faster end to end (theoretical ceiling 4x;
the 2x floor leaves room for scheduler jitter on CI runners).
"""

from __future__ import annotations

import time

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp.base import CloudProvider
from repro.csp.memory import InMemoryCSP

from tests.conftest import SMALL_CHUNKS, deterministic_bytes

#: Per-request service time; small enough to keep the test under a
#: second, large enough to dwarf the in-memory work it gates.
SERVICE_TIME_S = 0.002
FILE_SIZE = 16 * 1024  # ~32 chunks at SMALL_CHUNKS' 512 B average


class EqualLatencyCSP(CloudProvider):
    """An in-memory provider that charges a fixed latency per transfer."""

    def __init__(self, csp_id: str, service_time_s: float):
        super().__init__(csp_id)
        self.inner = InMemoryCSP(csp_id)
        self.service_time_s = service_time_s

    def authenticate(self, credentials):
        return self.inner.authenticate(credentials)

    def list(self, *, prefix: str = ""):
        return self.inner.list(prefix=prefix)

    def upload(self, name: str, data: bytes) -> None:
        time.sleep(self.service_time_s)
        self.inner.upload(name, data)

    def download(self, name: str) -> bytes:
        time.sleep(self.service_time_s)
        return self.inner.download(name)

    def delete(self, name: str) -> None:
        self.inner.delete(name)


def _timed_roundtrip(parallelism: int) -> float:
    providers = [
        EqualLatencyCSP(f"csp{i}", SERVICE_TIME_S) for i in range(4)
    ]
    config = CyrusConfig(
        key="bench-key", t=2, n=3, parallelism=parallelism, **SMALL_CHUNKS
    )
    client = CyrusClient.create(providers, config, client_id="alice")
    data = deterministic_bytes(FILE_SIZE, seed=77)
    start = time.perf_counter()
    client.put("big.bin", data)
    got = client.get("big.bin")
    elapsed = time.perf_counter() - start
    assert got.data == data
    return elapsed


def test_parallelism_4_is_at_least_2x_faster_than_serial():
    serial = _timed_roundtrip(parallelism=1)
    parallel = _timed_roundtrip(parallelism=4)
    assert parallel < serial / 2.0, (
        f"parallel run took {parallel:.3f}s vs serial {serial:.3f}s "
        f"(speedup {serial / parallel:.2f}x, need >= 2x)"
    )
