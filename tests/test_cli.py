"""Unit tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import CONFIG_NAME, main


@pytest.fixture
def store(tmp_path):
    """An initialised store over three directory providers."""
    store_dir = tmp_path / "store"
    csps = [f"d{i}={tmp_path / f'drive{i}'}" for i in range(3)]
    rc = main(
        ["--store", str(store_dir), "init", "--key", "cli-key"]
        + [arg for c in csps for arg in ("--csp", c)]
        + ["--chunk-min", "512", "--chunk-avg", "2048", "--chunk-max",
           "16384", "--client-id", "cli-test"]
    )
    assert rc == 0
    return store_dir


def run(store, *argv):
    return main(["--store", str(store), *map(str, argv)])


class TestInit:
    def test_creates_config(self, store):
        settings = json.loads((store / CONFIG_NAME).read_text())
        assert settings["t"] == 2 and settings["n"] == 3
        assert len(settings["providers"]) == 3

    def test_refuses_double_init(self, store, tmp_path, capsys):
        rc = main(
            ["--store", str(store), "init", "--key", "k",
             "--csp", f"x={tmp_path / 'x'}",
             "--csp", f"y={tmp_path / 'y'}",
             "--csp", f"z={tmp_path / 'z'}"]
        )
        assert rc == 2
        assert "already exists" in capsys.readouterr().err

    def test_needs_n_providers(self, tmp_path, capsys):
        rc = main(
            ["--store", str(tmp_path / "s"), "init", "--key", "k",
             "--csp", f"only={tmp_path / 'only'}"]
        )
        assert rc == 2

    def test_bad_csp_spec(self, tmp_path):
        rc = main(
            ["--store", str(tmp_path / "s"), "init", "--key", "k",
             "--csp", "no-equals-sign"]
        )
        assert rc == 2


class TestDataCommands:
    def test_put_get_roundtrip(self, store, tmp_path, capsys):
        source = tmp_path / "hello.txt"
        source.write_bytes(b"hello cyrus cli " * 100)
        assert run(store, "put", source) == 0
        out = tmp_path / "restored.txt"
        assert run(store, "get", "hello.txt", "-o", out) == 0
        assert out.read_bytes() == source.read_bytes()

    def test_put_as_name(self, store, tmp_path):
        source = tmp_path / "local-name.bin"
        source.write_bytes(b"content")
        assert run(store, "put", source, "--as", "cloud/name.bin") == 0
        out = tmp_path / "x.bin"
        assert run(store, "get", "cloud/name.bin", "-o", out) == 0
        assert out.read_bytes() == b"content"

    def test_versions(self, store, tmp_path):
        source = tmp_path / "f.txt"
        source.write_bytes(b"version one")
        run(store, "put", source)
        source.write_bytes(b"version two!")
        run(store, "put", source)
        out = tmp_path / "old.txt"
        assert run(store, "get", "f.txt", "--version", "1", "-o", out) == 0
        assert out.read_bytes() == b"version one"

    def test_ls_and_history(self, store, tmp_path, capsys):
        source = tmp_path / "a.txt"
        source.write_bytes(b"a" * 100)
        run(store, "put", source)
        capsys.readouterr()
        assert run(store, "ls") == 0
        out = capsys.readouterr().out
        assert "a.txt" in out and "100" in out
        assert run(store, "history", "a.txt") == 0
        out = capsys.readouterr().out
        assert "(current)" in out

    def test_rm_then_restore(self, store, tmp_path, capsys):
        source = tmp_path / "f.txt"
        source.write_bytes(b"precious data")
        run(store, "put", source)
        assert run(store, "rm", "f.txt") == 0
        capsys.readouterr()
        assert run(store, "ls") == 0
        assert "f.txt" not in capsys.readouterr().out
        out = tmp_path / "back.txt"
        assert run(store, "get", "f.txt", "-o", out) == 0
        assert out.read_bytes() == b"precious data"

    def test_unknown_file(self, store, capsys):
        assert run(store, "get", "ghost.txt") == 1
        assert "error:" in capsys.readouterr().err

    def test_no_store(self, tmp_path, capsys):
        assert main(["--store", str(tmp_path / "nowhere"), "ls"]) == 2


class TestRecovery:
    def test_second_store_recovers(self, store, tmp_path, capsys):
        source = tmp_path / "f.txt"
        source.write_bytes(b"shared state")
        run(store, "put", source)
        # a second machine: fresh store dir, same provider paths + key
        settings = json.loads((store / CONFIG_NAME).read_text())
        csp_args = [
            arg
            for name, path in settings["providers"].items()
            for arg in ("--csp", f"{name}={path}")
        ]
        other = tmp_path / "other-store"
        rc = main(["--store", str(other), "init", "--key", "cli-key",
                   "--chunk-min", "512", "--chunk-avg", "2048",
                   "--chunk-max", "16384", *csp_args])
        assert rc == 0
        assert "recovered 1 existing" in capsys.readouterr().out
        out = tmp_path / "recovered.txt"
        assert main(["--store", str(other), "get", "f.txt", "-o",
                     str(out)]) == 0
        assert out.read_bytes() == b"shared state"


class TestMembership:
    def test_status(self, store, capsys):
        assert run(store, "status") == 0
        out = capsys.readouterr().out
        assert "t=2, n=3" in out
        assert out.count("objects") == 3

    def test_add_csp(self, store, tmp_path, capsys):
        assert run(store, "add-csp", f"d9={tmp_path / 'drive9'}") == 0
        settings = json.loads((store / CONFIG_NAME).read_text())
        assert "d9" in settings["providers"]

    def test_add_duplicate(self, store, tmp_path):
        assert run(store, "add-csp", f"d0={tmp_path / 'x'}") == 2

    def test_remove_csp_guard(self, store):
        # removing below n providers is refused
        assert run(store, "remove-csp", "d0") == 2

    def test_remove_csp(self, store, tmp_path):
        run(store, "add-csp", f"d9={tmp_path / 'drive9'}")
        assert run(store, "remove-csp", "d0") == 0
        settings = json.loads((store / CONFIG_NAME).read_text())
        assert "d0" not in settings["providers"]

    def test_remove_unknown(self, store):
        assert run(store, "remove-csp", "nope") == 2


class TestMaintenanceCommands:
    def test_prune_and_gc(self, store, tmp_path, capsys):
        source = tmp_path / "f.bin"
        source.write_bytes(b"version one " * 300)
        run(store, "put", source)
        source.write_bytes(b"version two " * 350)
        run(store, "put", source)
        capsys.readouterr()
        assert run(store, "prune", "f.bin", "--keep", "1") == 0
        assert "pruned 1 old version" in capsys.readouterr().out
        assert run(store, "gc") == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out
        # the kept version still restores
        target = tmp_path / "restored.bin"
        assert run(store, "get", "f.bin", "-o", target) == 0
        assert target.read_bytes() == b"version two " * 350

    def test_import_command(self, store, tmp_path, capsys):
        # drop a legacy object directly into one provider directory
        settings = json.loads((store / CONFIG_NAME).read_text())
        name, path = next(iter(settings["providers"].items()))
        (Path(path) / "legacyobject").write_bytes(b"pre-cyrus data " * 50)
        assert run(store, "import", name, "legacyobject",
                   "--as", "adopted.bin") == 0
        target = tmp_path / "adopted.bin"
        assert run(store, "get", "adopted.bin", "-o", target) == 0
        assert target.read_bytes() == b"pre-cyrus data " * 50


class TestSyncDir:
    def test_push_and_pull(self, store, tmp_path, capsys):
        # machine A pushes a working directory
        work_a = tmp_path / "work-a"
        (work_a / "docs").mkdir(parents=True)
        (work_a / "docs" / "readme.md").write_bytes(b"# readme\n" * 20)
        (work_a / "data.bin").write_bytes(b"\x00\x01" * 500)
        assert run(store, "sync-dir", work_a) == 0
        out = capsys.readouterr().out
        assert "2 uploaded" in out

        # machine B (same store for the test) pulls into an empty dir
        work_b = tmp_path / "work-b"
        assert run(store, "sync-dir", work_b) == 0
        assert (work_b / "docs" / "readme.md").read_bytes() == (
            b"# readme\n" * 20
        )
        assert (work_b / "data.bin").read_bytes() == b"\x00\x01" * 500

    def test_idempotent(self, store, tmp_path, capsys):
        work = tmp_path / "work"
        work.mkdir()
        (work / "f.txt").write_bytes(b"stable content")
        run(store, "sync-dir", work)
        capsys.readouterr()
        run(store, "sync-dir", work)
        out = capsys.readouterr().out
        assert "0 uploaded, 0 downloaded" in out

    def test_edit_propagates(self, store, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        (work / "f.txt").write_bytes(b"v1")
        run(store, "sync-dir", work)
        (work / "f.txt").write_bytes(b"v2 edited")
        run(store, "sync-dir", work)
        other = tmp_path / "other"
        run(store, "sync-dir", other)
        assert (other / "f.txt").read_bytes() == b"v2 edited"


class TestRecoverScrubCommands:
    def _library_client(self, store, journal=True, faults=None):
        """A library client over the store's provider directories (the
        'crashed process' the CLI later recovers after)."""
        from repro.core.client import CyrusClient
        from repro.core.config import CyrusConfig
        from repro.csp.localfs import LocalDirectoryCSP
        from repro.faults import FaultyProvider
        from repro.recovery import IntentJournal

        settings = json.loads((store / CONFIG_NAME).read_text())
        providers = [
            LocalDirectoryCSP(name, Path(path))
            for name, path in settings["providers"].items()
        ]
        if faults is not None:
            providers = [FaultyProvider(p, faults) for p in providers]
        config = CyrusConfig(key="cli-key", t=2, n=3, chunk_min=512,
                             chunk_avg=2048, chunk_max=16384)
        return CyrusClient.create(
            providers, config, client_id="cli-test",
            journal=IntentJournal(store / "journal.jsonl")
            if journal else None,
        )

    def test_recover_clean_journal(self, store, capsys):
        assert run(store, "recover") == 0
        assert "journal clean" in capsys.readouterr().out

    def test_recover_after_crash(self, store, tmp_path, capsys):
        from repro.faults import FaultKind, FaultPlan, FaultSpec
        from repro.faults.plan import SimulatedCrash

        # ops are 0-indexed per provider: list, share upload, metadata
        # upload — dying at op 2 kills the client mid-publish
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CRASH, window_ops=(2, None),
                       max_hits=1)],
            seed=0,
        )
        victim = self._library_client(store, faults=plan)
        with pytest.raises(SimulatedCrash):
            victim.put("crashy.bin", b"died mid-flight " * 200)
        assert len(victim.journal.incomplete()) == 1

        capsys.readouterr()
        assert run(store, "recover") == 0
        out = capsys.readouterr().out
        assert "recovery: replayed 1 interrupted" in out
        assert "recovered 1 interrupted operation(s)" in out
        # and the journal really is clean now
        capsys.readouterr()
        assert run(store, "recover") == 0
        assert "journal clean" in capsys.readouterr().out

    def test_scrub_healthy_store(self, store, tmp_path, capsys):
        source = tmp_path / "f.bin"
        source.write_bytes(b"scrub me " * 400)
        run(store, "put", source)
        capsys.readouterr()
        assert run(store, "scrub") == 0
        out = capsys.readouterr().out
        assert "share(s) verified" in out
        assert "0 missing, 0 corrupt, 0 repaired" in out

    def test_scrub_repairs_deleted_share(self, store, tmp_path, capsys):
        source = tmp_path / "f.bin"
        source.write_bytes(b"redundant " * 500)
        run(store, "put", source)
        # reach into one provider directory and delete a share object
        settings = json.loads((store / CONFIG_NAME).read_text())
        victim = None
        for path in settings["providers"].values():
            hexfiles = [p for p in Path(path).iterdir()
                        if len(p.name) == 40]
            if hexfiles:
                victim = hexfiles[0]
                break
        assert victim is not None
        victim.unlink()

        capsys.readouterr()
        assert run(store, "scrub") == 0
        out = capsys.readouterr().out
        assert "1 missing" in out and "1 repaired" in out
        assert victim.exists()  # regenerated in place

    def test_scrub_no_repair_flag(self, store, tmp_path, capsys):
        source = tmp_path / "f.bin"
        source.write_bytes(b"look dont touch " * 300)
        run(store, "put", source)
        settings = json.loads((store / CONFIG_NAME).read_text())
        victim = next(
            p for path in settings["providers"].values()
            for p in Path(path).iterdir() if len(p.name) == 40
        )
        victim.unlink()
        capsys.readouterr()
        assert run(store, "scrub", "--no-repair") == 0
        assert "0 repaired" in capsys.readouterr().out
        assert not victim.exists()

    def test_help_mentions_new_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "recover" in out and "scrub" in out


class TestConflictCommands:
    def test_no_conflicts(self, store, capsys):
        assert run(store, "conflicts") == 0
        assert "no conflicts" in capsys.readouterr().out

    def test_conflict_cycle(self, store, tmp_path, capsys):
        # every CLI invocation syncs before writing, so sequential CLI
        # runs can never conflict — which is the correct behaviour.  To
        # exercise detection/resolution, create the concurrent writes
        # through the library (two clients that never sync, i.e. a
        # network partition) against the same provider directories.
        from repro.core.client import CyrusClient
        from repro.core.config import CyrusConfig
        from repro.csp.localfs import LocalDirectoryCSP

        settings = json.loads((store / CONFIG_NAME).read_text())
        providers = [
            LocalDirectoryCSP(name, Path(path))
            for name, path in settings["providers"].items()
        ]
        config = CyrusConfig(key="cli-key", t=2, n=3, chunk_min=512,
                             chunk_avg=2048, chunk_max=16384)
        machine1 = CyrusClient.create(providers, config, client_id="m1")
        machine2 = CyrusClient.create(providers, config, client_id="m2")
        machine1.uploader.upload("doc.txt", b"one " * 50, client_id="m1")
        machine2.uploader.upload("doc.txt", b"two " * 60, client_id="m2")

        capsys.readouterr()
        assert run(store, "conflicts") == 1
        assert "doc.txt" in capsys.readouterr().out
        assert run(store, "resolve") == 0
        assert run(store, "conflicts") == 0
