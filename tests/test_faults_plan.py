"""Fault plans, schedules, and the fault-injecting provider wrapper."""

from __future__ import annotations

import pytest

from repro.csp.memory import InMemoryCSP
from repro.errors import (
    CSPAuthError,
    CSPQuotaExceededError,
    CSPUnavailableError,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.util.clock import SimClock


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.TRANSIENT, probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.LATENCY, delay_s=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.CORRUPT, flip_bits=0)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.TRANSIENT, max_hits=0)

    def test_matching_dimensions(self):
        spec = FaultSpec(
            kind=FaultKind.TRANSIENT, ops=("download",), csp_ids=("a",),
            name_prefix="md-", window_ops=(2, 5),
        )
        ok = dict(csp_id="a", op="download", name="md-x", op_no=3, now=0.0)
        assert spec.matches(**ok)
        assert not spec.matches(**{**ok, "csp_id": "b"})
        assert not spec.matches(**{**ok, "op": "upload"})
        assert not spec.matches(**{**ok, "name": "chunk-x"})
        assert not spec.matches(**{**ok, "op_no": 1})
        assert not spec.matches(**{**ok, "op_no": 5})  # half-open window

    def test_time_window(self):
        spec = FaultSpec(kind=FaultKind.OUTAGE, window_time=(10.0, 20.0))
        base = dict(csp_id="a", op="upload", name="x", op_no=0)
        assert not spec.matches(**base, now=9.9)
        assert spec.matches(**base, now=10.0)
        assert not spec.matches(**base, now=20.0)

    def test_kind_op_constraints(self):
        quota = FaultSpec(kind=FaultKind.QUOTA)
        corrupt = FaultSpec(kind=FaultKind.CORRUPT)
        base = dict(csp_id="a", name="x", op_no=0, now=0.0)
        assert quota.matches(op="upload", **base)
        assert not quota.matches(op="download", **base)
        assert corrupt.matches(op="download", **base)
        assert not corrupt.matches(op="upload", **base)


class TestProviderSchedule:
    def test_identical_seeds_fire_identically(self):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.TRANSIENT, probability=0.4)], seed=42
        )
        decisions_a = [
            bool(plan.for_provider("c").decide("upload", "x", k, 0.0))
            for k in range(50)
        ]
        sched = plan.for_provider("c")
        decisions_b = [
            bool(sched.decide("upload", "x", k, 0.0)) for k in range(50)
        ]
        # fresh schedule or reused one: the op_no keys the roll
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_providers_get_independent_streams(self):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.TRANSIENT, probability=0.5)], seed=1
        )
        a = [bool(plan.for_provider("a").decide("upload", "x", k, 0.0))
             for k in range(64)]
        b = [bool(plan.for_provider("b").decide("upload", "x", k, 0.0))
             for k in range(64)]
        assert a != b

    def test_max_hits_caps_firing(self):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.TRANSIENT, max_hits=2)], seed=0
        )
        sched = plan.for_provider("c")
        fired = [bool(sched.decide("upload", "x", k, 0.0)) for k in range(5)]
        assert fired == [True, True, False, False, False]

    def test_restricted_to(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.OUTAGE)], seed=0)
        restricted = plan.restricted_to(["only"])
        assert restricted.for_provider("other").decide("upload", "x", 0, 0.0) == []
        assert restricted.for_provider("only").decide("upload", "x", 0, 0.0)


class TestFaultyProvider:
    def _wrap(self, specs, seed=0, clock=None, csp_id="c1"):
        inner = InMemoryCSP(csp_id)
        return FaultyProvider(inner, FaultPlan(specs, seed=seed), clock=clock)

    def test_outage_raises_with_csp_id(self):
        prov = self._wrap([FaultSpec(kind=FaultKind.OUTAGE)])
        with pytest.raises(CSPUnavailableError) as ei:
            prov.upload("x", b"data")
        assert ei.value.csp_id == "c1"
        assert prov.calls_reaching_inner == 0
        assert prov.injected_faults == {FaultKind.OUTAGE: 1}

    def test_quota_and_auth(self):
        prov = self._wrap([FaultSpec(kind=FaultKind.QUOTA)])
        with pytest.raises(CSPQuotaExceededError):
            prov.upload("x", b"data")
        assert prov.list() == []  # quota applies to uploads only
        prov2 = self._wrap([FaultSpec(kind=FaultKind.AUTH)])
        with pytest.raises(CSPAuthError):
            prov2.list()

    def test_latency_and_slow_advance_the_clock(self):
        clock = SimClock()
        prov = self._wrap(
            [FaultSpec(kind=FaultKind.LATENCY, ops=("upload",), delay_s=0.5)],
            clock=clock,
        )
        prov.upload("x", b"data")
        assert clock.now() == pytest.approx(0.5)
        clock2 = SimClock()
        slow = self._wrap(
            [FaultSpec(kind=FaultKind.SLOW, ops=("upload",), delay_s=2.0)],
            clock=clock2,
        )
        slow.upload("x", b"\0" * (512 * 1024))  # half a MiB
        assert clock2.now() == pytest.approx(1.0)
        assert slow.injected_delay_s == pytest.approx(1.0)

    def test_corruption_is_deterministic_and_bounded(self):
        specs = [FaultSpec(kind=FaultKind.CORRUPT, flip_bits=3)]
        payload = bytes(range(256))
        a = self._wrap(specs, seed=5)
        b = self._wrap(specs, seed=5)
        c = self._wrap(specs, seed=6)
        for prov in (a, b, c):
            prov.inner.upload("x", payload)
        got_a, got_b, got_c = (p.download("x") for p in (a, b, c))
        assert got_a != payload
        assert got_a == got_b  # same seed, same flips
        assert got_c != got_a  # different seed, different flips
        diff_bits = sum(
            bin(x ^ y).count("1") for x, y in zip(got_a, payload)
        )
        assert 1 <= diff_bits <= 3
        # the stored object is untouched; only the returned bytes lie
        assert a.inner.download("x") == payload

    def test_observability_counters(self):
        prov = self._wrap(
            [FaultSpec(kind=FaultKind.TRANSIENT, ops=("download",),
                       max_hits=1)]
        )
        prov.upload("x", b"data")
        with pytest.raises(CSPUnavailableError):
            prov.download("x")
        assert prov.download("x") == b"data"
        assert prov.op_counts == {"upload": 1, "download": 2}
        assert prov.calls_reaching_inner == 2
        assert [e.kind for e in prov.fault_log] == [FaultKind.TRANSIENT]
        assert prov.fault_log[0].op == "download"

    def test_chaos_builder_composition(self):
        plan = FaultPlan.chaos(
            seed=3, transient_rate=0.2, corrupt_csp_ids=("b",),
            outage_csp_id="a", latency_rate=0.1,
        )
        kinds = [s.kind for s in plan.specs]
        assert kinds == [FaultKind.TRANSIENT, FaultKind.CORRUPT,
                         FaultKind.OUTAGE, FaultKind.LATENCY]
        assert plan.seed == 3
