"""Unit tests for scalar GF(2^8) arithmetic."""

import pytest

from repro.gf import (
    EXP_TABLE,
    GF_ORDER,
    LOG_TABLE,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
)


class TestTables:
    def test_exp_table_doubled(self):
        assert (EXP_TABLE[:255] == EXP_TABLE[255:510]).all()

    def test_exp_covers_all_nonzero(self):
        assert sorted(set(EXP_TABLE[:255].tolist())) == list(range(1, 256))

    def test_log_exp_inverse(self):
        for a in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[a]] == a


class TestAdd:
    def test_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_self_inverse(self):
        for a in (0, 1, 77, 255):
            assert gf_add(a, a) == 0

    def test_identity(self):
        assert gf_add(123, 0) == 123

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gf_add(256, 1)
        with pytest.raises(ValueError):
            gf_add(1, -1)


class TestMul:
    def test_zero_annihilates(self):
        assert gf_mul(0, 200) == 0
        assert gf_mul(200, 0) == 0

    def test_one_is_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a

    def test_commutative(self):
        for a, b in [(3, 7), (200, 99), (255, 255)]:
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_associative_sample(self):
        for a, b, c in [(3, 7, 11), (100, 200, 50)]:
            assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    def test_distributes_over_add(self):
        for a, b, c in [(5, 9, 17), (130, 66, 200)]:
            assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    def test_known_value(self):
        # 0x02 * 0x80 = 0x100 -> reduced by 0x11B = 0x1B
        assert gf_mul(0x02, 0x80) == 0x1B

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gf_mul(300, 2)


class TestDivInv:
    def test_div_inverts_mul(self):
        for a, b in [(7, 13), (250, 3), (1, 255)]:
            assert gf_div(gf_mul(a, b), b) == a

    def test_inverse_property(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_zero_numerator(self):
        assert gf_div(0, 17) == 0


class TestPow:
    def test_pow_zero(self):
        for a in range(256):
            assert gf_pow(a, 0) == 1

    def test_pow_one(self):
        for a in (0, 1, 99, 255):
            assert gf_pow(a, 1) == a

    def test_pow_matches_repeated_mul(self):
        for a in (2, 3, 77):
            acc = 1
            for k in range(1, 10):
                acc = gf_mul(acc, a)
                assert gf_pow(a, k) == acc

    def test_order_divides_255(self):
        # a^255 == 1 for all non-zero a (multiplicative group order 255)
        for a in range(1, 256):
            assert gf_pow(a, 255) == 1

    def test_zero_base_positive_exponent(self):
        assert gf_pow(0, 5) == 0

    def test_zero_base_negative_exponent(self):
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)

    def test_field_order_constant(self):
        assert GF_ORDER == 256
