"""Benchmark harness: testbed construction, runners, and reporting."""

from repro.bench.harness import (
    download_files,
    summarize_durations,
    upload_files,
)
from repro.bench.reporting import fmt_mb, fmt_seconds, render_table
from repro.bench.testbed import SimEnvironment, build_paper_testbed, build_environment

__all__ = [
    "SimEnvironment",
    "build_paper_testbed",
    "build_environment",
    "upload_files",
    "download_files",
    "summarize_durations",
    "render_table",
    "fmt_seconds",
    "fmt_mb",
]
