"""Table 1: feature comparison with similar cloud-integration systems.

The rows for prior systems are the paper's claims, recorded verbatim.
CYRUS's row is *computed* — each feature predicate probes the actual
implementation in this repository, so the benchmark fails if a claimed
capability regresses.
"""

from __future__ import annotations

import os

FEATURES: tuple[str, ...] = (
    "Erasure coding",
    "Data deduplication",
    "Concurrency",
    "Versioning",
    "Optimal CSP selection",
    "Customizable reliability",
    "Client-based architecture",
)

#: Paper Table 1 rows for the prior systems.
PRIOR_SYSTEMS: dict[str, dict[str, bool]] = {
    "Attasena": {
        "Erasure coding": True, "Data deduplication": False,
        "Concurrency": True, "Versioning": False,
        "Optimal CSP selection": False, "Customizable reliability": False,
        "Client-based architecture": False,
    },
    "DepSky": {
        "Erasure coding": True, "Data deduplication": False,
        "Concurrency": True, "Versioning": True,
        "Optimal CSP selection": False, "Customizable reliability": False,
        "Client-based architecture": True,
    },
    "InterCloud RAIDer": {
        "Erasure coding": True, "Data deduplication": True,
        "Concurrency": False, "Versioning": True,
        "Optimal CSP selection": False, "Customizable reliability": False,
        "Client-based architecture": True,
    },
    "PiCsMu": {
        "Erasure coding": False, "Data deduplication": False,
        "Concurrency": False, "Versioning": False,
        "Optimal CSP selection": False, "Customizable reliability": False,
        "Client-based architecture": False,
    },
}


def _check_erasure_coding() -> bool:
    from repro.erasure import RSCodec

    codec = RSCodec(2, 4)
    data = os.urandom(1000)
    shares = codec.encode(data)
    return codec.decode(shares[1:3]) == data


def _check_dedup() -> bool:
    from repro import CyrusClient, CyrusConfig
    from repro.csp import InMemoryCSP

    csps = [InMemoryCSP(f"f{i}") for i in range(3)]
    client = CyrusClient.create(
        csps, CyrusConfig(key="k", t=2, n=3, chunk_min=64, chunk_avg=256,
                          chunk_max=1024),
    )
    data = os.urandom(4000)
    client.put("a.bin", data)
    report = client.put("b.bin", data)
    return report.new_chunks == 0 and report.dedup_chunks > 0


def _check_concurrency() -> bool:
    from repro import CyrusClient, CyrusConfig
    from repro.csp import InMemoryCSP

    csps = [InMemoryCSP(f"c{i}") for i in range(3)]
    cfg = CyrusConfig(key="k", t=2, n=3, chunk_min=64, chunk_avg=256,
                      chunk_max=1024)
    a = CyrusClient.create(csps, cfg, client_id="a")
    b = CyrusClient.create(csps, cfg, client_id="b")
    a.put("f.txt", b"base " * 100)
    b.sync()
    # concurrent (unsynced) updates both succeed; conflict detected after
    a.uploader.upload("f.txt", b"a" * 500, client_id="a")
    b.uploader.upload("f.txt", b"b" * 500, client_id="b")
    a.sync()
    return any(c.kind == "divergence" for c in a.conflicts())


def _check_versioning() -> bool:
    from repro import CyrusClient, CyrusConfig
    from repro.csp import InMemoryCSP

    csps = [InMemoryCSP(f"v{i}") for i in range(3)]
    client = CyrusClient.create(
        csps, CyrusConfig(key="k", t=2, n=3, chunk_min=64, chunk_avg=256,
                          chunk_max=1024),
    )
    client.put("f.bin", b"one" * 200)
    client.put("f.bin", b"two" * 300)
    return client.get("f.bin", version=1).data == b"one" * 200


def _check_optimal_selection() -> bool:
    from repro.selection import (
        BruteForceSelector, ChunkDownload, CyrusSelector, DownloadProblem,
    )

    caps = {"a": 10e6, "b": 10e6, "c": 1e6}
    problem = DownloadProblem(
        chunks=tuple(
            ChunkDownload(f"c{i}", 1_000_000, ("a", "b", "c"))
            for i in range(3)
        ),
        t=2, link_caps=caps, client_cap=30e6,
    )
    best = BruteForceSelector().select(problem).bottleneck_time
    ours = CyrusSelector().select(problem).bottleneck_time
    return ours <= best * 1.05


def _check_customizable_reliability() -> bool:
    from repro.core.config import CyrusConfig

    planned = CyrusConfig(key="k", t=2, n=None, epsilon=1e-6,
                          csp_failure_prob=0.01).plan_n(20)
    stricter = CyrusConfig(key="k", t=2, n=None, epsilon=1e-9,
                           csp_failure_prob=0.01).plan_n(20)
    return stricter > planned >= 2


def _check_client_based() -> bool:
    # client-based means: providers need only the five primitives and a
    # fresh client can rebuild all state from them alone (recover())
    from repro import CyrusClient, CyrusConfig
    from repro.csp import InMemoryCSP
    from repro.csp.base import CloudProvider

    primitives = {"authenticate", "list", "upload", "download", "delete"}
    abstract = set(getattr(CloudProvider, "__abstractmethods__", set()))
    if abstract != primitives:
        return False
    csps = [InMemoryCSP(f"r{i}") for i in range(3)]
    cfg = CyrusConfig(key="k", t=2, n=3, chunk_min=64, chunk_avg=256,
                      chunk_max=1024)
    writer = CyrusClient.create(csps, cfg, client_id="w")
    writer.put("x.bin", b"payload " * 100)
    fresh = CyrusClient.create(csps, cfg, client_id="fresh")
    fresh.recover()
    return fresh.get("x.bin").data == b"payload " * 100


def cyrus_feature_row() -> dict[str, bool]:
    """CYRUS's Table 1 row, proven by probing the implementation."""
    return {
        "Erasure coding": _check_erasure_coding(),
        "Data deduplication": _check_dedup(),
        "Concurrency": _check_concurrency(),
        "Versioning": _check_versioning(),
        "Optimal CSP selection": _check_optimal_selection(),
        "Customizable reliability": _check_customizable_reliability(),
        "Client-based architecture": _check_client_based(),
    }


def full_matrix() -> dict[str, dict[str, bool]]:
    """All Table 1 rows: priors verbatim + CYRUS computed."""
    matrix = dict(PRIOR_SYSTEMS)
    matrix["CYRUS"] = cyrus_feature_row()
    return matrix
