"""The CI perf-regression gate.

A committed baseline file holds conservative *floors* for the bench
metrics that matter (absolute MB/s floors set well below any healthy
machine, plus machine-independent speedup ratios like
``encode_speedup``).  The gate passes a metric when

    current >= floor * (1 - tolerance)

— equality passes, and the tolerance absorbs run-to-run noise on shared
CI hardware.  Metrics present in a report but absent from the baseline
are ignored (new metrics don't fail the gate until a floor is
committed); a floor whose metric is *missing* from the report fails,
so a silently dropped measurement cannot slip through.

Baseline format (``cyrus-bench-baseline/v1``)::

    {"schema": "cyrus-bench-baseline/v1",
     "tolerance": 0.5,
     "floors": {"codec": {"encode_speedup": 10.0, ...},
                "e2e":   {"put_mbps": 5.0, ...}}}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.bench.reporting import BENCH_KINDS, validate_bench_report

BASELINE_SCHEMA = "cyrus-bench-baseline/v1"


def validate_baseline(baseline: dict) -> None:
    """Raise ValueError unless ``baseline`` is a well-formed floor set."""
    if not isinstance(baseline, dict):
        raise ValueError("baseline must be a dict")
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {baseline.get('schema')!r} != {BASELINE_SCHEMA!r}"
        )
    tolerance = baseline.get("tolerance")
    if not isinstance(tolerance, (int, float)) or not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    floors = baseline.get("floors")
    if not isinstance(floors, dict):
        raise ValueError("baseline 'floors' must be a dict")
    for kind, metrics in floors.items():
        if kind not in BENCH_KINDS:
            raise ValueError(f"baseline floor kind {kind!r} not in {BENCH_KINDS}")
        if not isinstance(metrics, dict):
            raise ValueError(f"floors[{kind!r}] must be a dict")
        for name, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"floor {kind}/{name} must be a number")
            if value <= 0:
                raise ValueError(f"floor {kind}/{name} must be positive")


def load_baseline(path) -> dict:
    """Read and validate a baseline file."""
    with open(path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    validate_baseline(baseline)
    return baseline


@dataclass
class MetricCheck:
    """One metric's verdict against its floor."""

    kind: str
    metric: str
    floor: float
    threshold: float  # floor * (1 - tolerance)
    current: float | None  # None = metric missing from the report
    passed: bool

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        shown = "missing" if self.current is None else f"{self.current:.3f}"
        return (
            f"{status} {self.kind}/{self.metric}: {shown} "
            f"(floor {self.floor:.3f}, threshold {self.threshold:.3f})"
        )


@dataclass
class GateResult:
    """Outcome of gating one or more reports against a baseline."""

    checks: list[MetricCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[MetricCheck]:
        return [c for c in self.checks if not c.passed]

    def describe(self) -> str:
        lines = [c.describe() for c in self.checks]
        verdict = "gate PASSED" if self.passed else "gate FAILED"
        return "\n".join(lines + [f"{verdict} ({len(self.checks)} checks)"])


def check_report(
    report: dict, baseline: dict, tolerance: float | None = None
) -> GateResult:
    """Gate one validated bench report against the baseline floors.

    ``tolerance`` overrides the baseline's committed tolerance when
    given (the CLI's ``--tolerance`` flag).
    """
    validate_bench_report(report)
    validate_baseline(baseline)
    tol = baseline["tolerance"] if tolerance is None else tolerance
    if not 0 <= tol < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tol!r}")
    kind = report["kind"]
    floors = baseline["floors"].get(kind, {})
    result = GateResult()
    for metric, floor in sorted(floors.items()):
        threshold = floor * (1 - tol)
        current = report["metrics"].get(metric)
        passed = current is not None and current >= threshold
        result.checks.append(
            MetricCheck(
                kind=kind, metric=metric, floor=float(floor),
                threshold=threshold, current=current, passed=passed,
            )
        )
    return result


def check_reports(
    reports: dict[str, dict], baseline: dict, tolerance: float | None = None
) -> GateResult:
    """Gate several reports ({kind: report}) in one combined result."""
    combined = GateResult()
    for kind in sorted(reports):
        combined.checks.extend(
            check_report(reports[kind], baseline, tolerance).checks
        )
    return combined
