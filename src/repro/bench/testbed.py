"""Simulated evaluation environments.

:func:`build_paper_testbed` reproduces Section 7.2's lab setup: a
client and seven private cloud servers on 1 Gbps ethernet, shaped with
tc/netem to four "fast" clouds at 15 MB/s and three "slow" clouds at
2 MB/s.  :func:`build_environment` builds an environment from arbitrary
links (Table 2 rates, trial profiles, time-varying traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.transfer import SimulatedEngine, TransferReceiver
from repro.csp.simulated import AvailabilitySchedule, SimulatedCSP
from repro.netsim.link import Link
from repro.obs import Observability
from repro.util.clock import SimClock

#: Paper testbed shaping (Section 7.2).
FAST_RATE = 15e6
SLOW_RATE = 2e6
#: 1 Gbps ethernet in bytes/s.
GIGABIT = 1e9 / 8


@dataclass
class SimEnvironment:
    """A clock, providers, links and an engine, ready for clients."""

    clock: SimClock
    links: dict[str, Link]
    csps: dict[str, SimulatedCSP]
    engine: SimulatedEngine
    receiver: TransferReceiver = field(default_factory=TransferReceiver)
    #: Shared observability (clients created via new_client adopt it)
    obs: Observability | None = None

    def new_client(
        self,
        config: CyrusConfig,
        client_id: str = "client-1",
        selector=None,
        chunker=None,
        clusters=None,
        cache=None,
    ) -> CyrusClient:
        """A CYRUS client over this environment's providers."""
        return CyrusClient.create(
            list(self.csps.values()), config, client_id=client_id,
            engine=self.engine, selector=selector, chunker=chunker,
            clusters=clusters, cache=cache,
        )

    def csp_ids(self) -> list[str]:
        return sorted(self.csps)


def build_environment(
    links: Mapping[str, Link],
    client_up: float = GIGABIT,
    client_down: float = GIGABIT,
    availability: Mapping[str, AvailabilitySchedule] | None = None,
    quotas: Mapping[str, float] | None = None,
) -> SimEnvironment:
    """An environment from explicit links."""
    clock = SimClock()
    availability = dict(availability or {})
    quotas = dict(quotas or {})
    csps = {
        link_id: SimulatedCSP(
            link_id,
            link,
            clock=clock,
            availability=availability.get(link_id),
            quota_bytes=quotas.get(link_id, float("inf")),
        )
        for link_id, link in links.items()
    }
    receiver = TransferReceiver()
    obs = Observability(clock=clock)
    engine = SimulatedEngine(
        csps, dict(links), clock,
        client_up=client_up, client_down=client_down,
        receiver=receiver, obs=obs,
    )
    return SimEnvironment(clock=clock, links=dict(links), csps=csps,
                          engine=engine, receiver=receiver, obs=obs)


def build_paper_testbed(
    fast: int = 4,
    slow: int = 3,
    fast_rate: float = FAST_RATE,
    slow_rate: float = SLOW_RATE,
    rtt_s: float = 0.001,
    client_up: float = GIGABIT,
    client_down: float = GIGABIT,
) -> SimEnvironment:
    """Section 7.2's testbed: 4 fast (15 MB/s) + 3 slow (2 MB/s) clouds."""
    links: dict[str, Link] = {}
    for i in range(fast):
        links[f"fast{i}"] = Link.symmetric(f"fast{i}", fast_rate, rtt_s=rtt_s)
    for i in range(slow):
        links[f"slow{i}"] = Link.symmetric(f"slow{i}", slow_rate, rtt_s=rtt_s)
    return build_environment(links, client_up=client_up, client_down=client_down)
