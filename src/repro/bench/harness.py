"""Experiment runners shared by the table/figure benchmarks, plus the
``cyrus bench`` hot-path measurements.

The ``bench_*`` functions time the three layers this codebase
vectorised — GF(2^8) coding, chunk-boundary detection, and the
end-to-end sync pipeline — and :func:`run_bench` persists the results
as the schema-checked ``BENCH_codec.json`` / ``BENCH_e2e.json`` the CI
regression gate compares against its committed baseline.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.client import CyrusClient
from repro.core.downloader import DownloadReport
from repro.core.uploader import UploadReport


@dataclass
class DurationSummary:
    """Aggregate statistics over completion times."""

    count: int
    total: float
    mean: float
    median: float
    p90: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, durations: Sequence[float]) -> "DurationSummary":
        if not durations:
            raise ValueError("no durations to summarise")
        ordered = sorted(durations)
        p90_index = min(len(ordered) - 1, int(0.9 * len(ordered)))
        return cls(
            count=len(ordered),
            total=sum(ordered),
            mean=statistics.fmean(ordered),
            median=statistics.median(ordered),
            p90=ordered[p90_index],
            minimum=ordered[0],
            maximum=ordered[-1],
        )


def upload_files(
    client: CyrusClient,
    files: Iterable[tuple[str, bytes]],
    sync_first: bool = False,
) -> list[UploadReport]:
    """Put every (name, content) pair; returns per-file reports."""
    return [
        client.put(name, content, sync_first=sync_first)
        for name, content in files
    ]


def download_files(
    client: CyrusClient,
    names: Iterable[str],
    sync_first: bool = False,
) -> list[DownloadReport]:
    """Get every named file; returns per-file reports."""
    return [client.get(name, sync_first=sync_first) for name in names]


def summarize_durations(
    reports: Sequence[UploadReport | DownloadReport],
) -> DurationSummary:
    """Completion-time summary over a batch of reports."""
    return DurationSummary.of([r.duration for r in reports])


def throughputs(
    reports: Sequence[UploadReport | DownloadReport],
    sizes: Sequence[int],
) -> list[float]:
    """Per-file achieved throughput (original file bytes / duration)."""
    out = []
    for report, size in zip(reports, sizes):
        if report.duration > 0:
            out.append(size / report.duration)
    return out


# ----------------------------------------------------------------------
# `cyrus bench` hot-path measurements
# ----------------------------------------------------------------------


def _best_rate(fn, payload_bytes: int, repeats: int) -> float:
    """MB/s of the best of ``repeats`` timed runs (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return payload_bytes / best / 1e6


def bench_codec(
    quick: bool = True,
    t: int = 2,
    n: int = 4,
    vec_bytes: int | None = None,
    sca_bytes: int | None = None,
    repeats: int | None = None,
) -> dict:
    """Encode/decode MB/s for both codec backends, plus chunking MB/s.

    The scalar oracle runs on a smaller payload (it is ~two orders of
    magnitude slower); MB/s normalises the comparison, and the
    ``*_speedup`` ratios are the machine-independent gate metrics.
    Size/repeat overrides exist for the smoke tests — real runs use the
    quick/full defaults.
    """
    from repro.chunking.cdc import ContentDefinedChunker
    from repro.erasure.rs import RSCodec

    if vec_bytes is None:
        vec_bytes = (4 if quick else 32) * 1024 * 1024
    if sca_bytes is None:
        sca_bytes = (256 if quick else 1024) * 1024
    if repeats is None:
        repeats = 2 if quick else 4
    rng = random.Random(0xC0DEC)
    vec_data = rng.randbytes(vec_bytes)
    sca_data = vec_data[:sca_bytes]

    vector = RSCodec(t, n, backend="vector")
    scalar = RSCodec(t, n, backend="scalar")
    metrics: dict[str, float] = {}

    metrics["encode_vector_mbps"] = _best_rate(
        lambda: vector.encode(vec_data), vec_bytes, repeats
    )
    vec_shares = vector.encode(vec_data)[:t]
    metrics["decode_vector_mbps"] = _best_rate(
        lambda: vector.decode(vec_shares), vec_bytes, repeats
    )
    metrics["encode_scalar_mbps"] = _best_rate(
        lambda: scalar.encode(sca_data), sca_bytes, 1
    )
    sca_shares = scalar.encode(sca_data)[:t]
    metrics["decode_scalar_mbps"] = _best_rate(
        lambda: scalar.decode(sca_shares), sca_bytes, 1
    )
    metrics["encode_speedup"] = (
        metrics["encode_vector_mbps"] / metrics["encode_scalar_mbps"]
    )
    metrics["decode_speedup"] = (
        metrics["decode_vector_mbps"] / metrics["decode_scalar_mbps"]
    )

    # chunk-boundary detection: all three engines over the same buffer
    chunk_kw = dict(min_size=2048, avg_size=8192, max_size=65536)
    for engine, payload in (
        ("vectorized", vec_data),
        ("rabin", vec_data),
        ("reference", sca_data),
    ):
        chunker = ContentDefinedChunker(engine=engine, **chunk_kw)
        chunker.boundaries(payload[: 64 * 1024])  # warm tables
        metrics[f"chunk_{engine}_mbps"] = _best_rate(
            lambda: chunker.boundaries(payload), len(payload), repeats
        )
    metrics["chunk_rabin_speedup"] = (
        metrics["chunk_rabin_mbps"] / metrics["chunk_reference_mbps"]
    )

    from repro.bench.reporting import BENCH_SCHEMA

    return {
        "schema": BENCH_SCHEMA,
        "kind": "codec",
        "quick": quick,
        "params": {
            "t": t,
            "n": n,
            "vector_bytes": vec_bytes,
            "scalar_bytes": sca_bytes,
            "repeats": repeats,
        },
        "metrics": metrics,
    }


def bench_e2e(
    quick: bool = True, encode_workers: int = 0, size: int | None = None
) -> dict:
    """Wall-clock put/get throughput against in-memory providers.

    Providers are in-memory, so this isolates the *client* pipeline —
    chunk, dedup, encode, scatter, metadata — exactly the layers the
    vectorised hot path covers.
    """
    from repro.core.config import CyrusConfig
    from repro.csp.memory import InMemoryCSP

    if size is None:
        size = (8 if quick else 64) * 1024 * 1024
    rng = random.Random(0xE2E)
    data = rng.randbytes(size)
    providers = [InMemoryCSP(f"bench-csp-{i}") for i in range(4)]
    config = CyrusConfig(
        key="bench-key",
        chunk_min=64 * 1024,
        chunk_avg=256 * 1024,
        chunk_max=2 * 1024 * 1024,
        encode_workers=encode_workers,
    )
    client = CyrusClient.create(providers, config, client_id="bench")
    try:
        t0 = time.perf_counter()
        report = client.put("bench/file.bin", data, sync_first=False)
        put_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        fetched = client.get("bench/file.bin", sync_first=False)
        get_s = time.perf_counter() - t0
        if fetched.data != data:
            raise RuntimeError("bench e2e round-trip corrupted the payload")
    finally:
        client.close()

    from repro.bench.reporting import BENCH_SCHEMA

    return {
        "schema": BENCH_SCHEMA,
        "kind": "e2e",
        "quick": quick,
        "params": {
            "file_bytes": size,
            "csps": len(providers),
            "t": config.t,
            "n": config.n,
            "encode_workers": encode_workers,
            "new_chunks": report.new_chunks,
        },
        "metrics": {
            "put_mbps": size / put_s / 1e6,
            "get_mbps": size / get_s / 1e6,
            "put_seconds": put_s,
            "get_seconds": get_s,
        },
    }


def run_bench(quick: bool = True, out_dir=".") -> dict[str, dict]:
    """Run both bench suites and write BENCH_codec.json / BENCH_e2e.json.

    Returns ``{"codec": report, "e2e": report}`` (already validated).
    """
    import os

    from repro.bench.reporting import write_bench_report

    reports = {"codec": bench_codec(quick=quick), "e2e": bench_e2e(quick=quick)}
    for kind, report in reports.items():
        write_bench_report(report, os.path.join(out_dir, f"BENCH_{kind}.json"))
    return reports
