"""Experiment runners shared by the table/figure benchmarks."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.client import CyrusClient
from repro.core.downloader import DownloadReport
from repro.core.uploader import UploadReport


@dataclass
class DurationSummary:
    """Aggregate statistics over completion times."""

    count: int
    total: float
    mean: float
    median: float
    p90: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, durations: Sequence[float]) -> "DurationSummary":
        if not durations:
            raise ValueError("no durations to summarise")
        ordered = sorted(durations)
        p90_index = min(len(ordered) - 1, int(0.9 * len(ordered)))
        return cls(
            count=len(ordered),
            total=sum(ordered),
            mean=statistics.fmean(ordered),
            median=statistics.median(ordered),
            p90=ordered[p90_index],
            minimum=ordered[0],
            maximum=ordered[-1],
        )


def upload_files(
    client: CyrusClient,
    files: Iterable[tuple[str, bytes]],
    sync_first: bool = False,
) -> list[UploadReport]:
    """Put every (name, content) pair; returns per-file reports."""
    return [
        client.put(name, content, sync_first=sync_first)
        for name, content in files
    ]


def download_files(
    client: CyrusClient,
    names: Iterable[str],
    sync_first: bool = False,
) -> list[DownloadReport]:
    """Get every named file; returns per-file reports."""
    return [client.get(name, sync_first=sync_first) for name in names]


def summarize_durations(
    reports: Sequence[UploadReport | DownloadReport],
) -> DurationSummary:
    """Completion-time summary over a batch of reports."""
    return DurationSummary.of([r.duration for r in reports])


def throughputs(
    reports: Sequence[UploadReport | DownloadReport],
    sizes: Sequence[int],
) -> list[float]:
    """Per-file achieved throughput (original file bytes / duration)."""
    out = []
    for report, size in zip(reports, sizes):
        if report.duration > 0:
            out.append(size / report.duration)
    return out
