"""The Section 7.3 real-world benchmarking environment, calibrated.

The paper benchmarks CYRUS, DepSky, full replication and full striping
against the four prototype CSPs (Dropbox, Google Drive, SkyDrive/
OneDrive, Box).  Its qualitative results need two properties of the
real links that a single RTT-derived rate cannot express:

* **uplink** rates to the four CSPs are similar (every scheme that
  touches the slowest cloud pays about the same per-byte price) — we
  use Table 2's RTT-derived rates, which are within 2x of each other;
* **downlink** rates are *skewed* (CYRUS's selector beats full striping
  only because striping must read from the slowest cloud while CYRUS
  avoids it) — we use a calibrated skewed profile, fastest ~8x the
  slowest, which is typical of CDN-backed download paths and is the
  regime the paper's Figure 16 download ordering implies.

The calibration is documented per-experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.csp.catalog import spec_by_name
from repro.netsim.link import Link
from repro.netsim.trace import RateTrace

#: Calibrated download rates (bytes/s): skewed, fastest first.
REALWORLD_DOWN_RATES: dict[str, float] = {
    "Google Drive": 4.0e6,
    "Dropbox": 3.0e6,
    "OneDrive": 2.5e6,
    "Box": 0.5e6,
}

#: Fixed per-request service time of a commercial REST storage API —
#: TLS setup, HTTP framing, server-side commit — on top of the network
#: RTT.  Small transfers (lock files, metadata) are dominated by it.
API_OVERHEAD_S = 0.5


def realworld_links(
    diurnal_amplitude: float = 0.0,
    periods: int = 2,
    api_overhead_s: float = API_OVERHEAD_S,
) -> dict[str, Link]:
    """Asymmetric links for the Section 7.3 benchmarks.

    ``diurnal_amplitude`` > 0 superimposes a sampled 24-hour sinusoid on
    both directions (Figure 17's two-day measurement).  All CSPs swing
    in phase — real diurnal load follows the user population's day, so
    the *relative* ordering of providers is stable hour to hour, which
    is what lets DepSky starve one "consistently slower" provider
    (Figure 18).
    """
    links: dict[str, Link] = {}
    for name, down_rate in REALWORLD_DOWN_RATES.items():
        spec = spec_by_name(name)
        up_rate = spec.throughput_bytes
        if diurnal_amplitude > 0:
            up = RateTrace.diurnal(up_rate, diurnal_amplitude,
                                   periods=periods)
            down = RateTrace.diurnal(down_rate, diurnal_amplitude,
                                     periods=periods)
        else:
            up = RateTrace.constant(up_rate)
            down = RateTrace.constant(down_rate)
        links[name] = Link(
            link_id=name,
            rtt_s=spec.rtt_ms / 1000.0 + api_overhead_s,
            up=up, down=down,
        )
    return links
