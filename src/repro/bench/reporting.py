"""Plain-text rendering of benchmark tables and series.

The benchmarks print the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and readable
in pytest's captured output (run with ``-s`` or read the benchmark
logs).
"""

from __future__ import annotations

from typing import Sequence

from repro.util.units import format_bytes


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def fmt_seconds(value: float) -> str:
    """Seconds with sensible precision (milliseconds when tiny)."""
    if value < 0.1:
        return f"{value * 1000:.2f}ms"
    if value < 10:
        return f"{value:.3f}s"
    return f"{value:.1f}s"


def fmt_mb(size: float) -> str:
    """Byte counts via the shared unit formatter."""
    return format_bytes(size)


def fmt_mbps(bytes_per_second: float) -> str:
    """Rate in Mbit/s (how the paper quotes Table 2)."""
    return f"{bytes_per_second * 8 / 1e6:.3f} Mbps"
