"""Plain-text rendering of benchmark tables and series, and the
checked BENCH_*.json report format.

The benchmarks print the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and readable
in pytest's captured output (run with ``-s`` or read the benchmark
logs).

``cyrus bench`` persists machine-readable reports
(``BENCH_codec.json`` / ``BENCH_e2e.json``) in the ``cyrus-bench/v1``
schema validated by :func:`validate_bench_report` — the CI regression
gate (:mod:`repro.bench.gate`) refuses malformed reports rather than
silently passing them.
"""

from __future__ import annotations

import json
import math
from typing import Sequence

from repro.util.units import format_bytes

#: Schema tag every bench report must carry.
BENCH_SCHEMA = "cyrus-bench/v1"

#: The report kinds ``cyrus bench`` emits (one file per kind).
BENCH_KINDS = ("codec", "e2e")


def validate_bench_report(report: dict) -> None:
    """Raise ValueError unless ``report`` is a well-formed bench report.

    Required shape::

        {"schema": "cyrus-bench/v1", "kind": "codec"|"e2e",
         "quick": bool, "params": {str: ...},
         "metrics": {str: finite number}}

    ``metrics`` must be non-empty — an empty report would make every
    regression gate vacuously pass.
    """
    if not isinstance(report, dict):
        raise ValueError(f"bench report must be a dict, got {type(report).__name__}")
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench report schema {report.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    kind = report.get("kind")
    if kind not in BENCH_KINDS:
        raise ValueError(f"bench report kind {kind!r} not in {BENCH_KINDS}")
    if not isinstance(report.get("quick"), bool):
        raise ValueError("bench report 'quick' must be a bool")
    params = report.get("params")
    if not isinstance(params, dict) or not all(
        isinstance(k, str) for k in params
    ):
        raise ValueError("bench report 'params' must be a str-keyed dict")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("bench report 'metrics' must be a non-empty dict")
    for name, value in metrics.items():
        if not isinstance(name, str):
            raise ValueError(f"metric name {name!r} must be a string")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"metric {name!r} must be a number, got {value!r}")
        if not math.isfinite(value):
            raise ValueError(f"metric {name!r} must be finite, got {value!r}")


def write_bench_report(report: dict, path) -> None:
    """Validate then write one bench report as pretty-printed JSON."""
    validate_bench_report(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench_report(path) -> dict:
    """Read and validate one bench report."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    validate_bench_report(report)
    return report


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def fmt_seconds(value: float) -> str:
    """Seconds with sensible precision (milliseconds when tiny)."""
    if value < 0.1:
        return f"{value * 1000:.2f}ms"
    if value < 10:
        return f"{value:.3f}s"
    return f"{value:.1f}s"


def fmt_mb(size: float) -> str:
    """Byte counts via the shared unit formatter."""
    return format_bytes(size)


def fmt_mbps(bytes_per_second: float) -> str:
    """Rate in Mbit/s (how the paper quotes Table 2)."""
    return f"{bytes_per_second * 8 / 1e6:.3f} Mbps"
