"""The global chunk table (paper Section 5.2).

"CYRUS maintains a global chunk table listing the chunks whose shares
are stored at each CSP."  The table is derivable from the ShareMaps of
all known metadata nodes, so we maintain it as an index over the local
metadata tree: rebuilt on sync, updated incrementally on upload.  It
answers the two questions the upload and download paths ask:

* dedup — is this chunk already stored (skip re-encoding/upload)?
* recovery — which shares does a removed CSP take with it?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.metadata.node import MetadataNode


@dataclass(frozen=True)
class ChunkLocation:
    """Where one chunk lives: (t, n), size and share placements.

    ``share_digests`` (one SHA-1 per index, empty for chunks recorded
    only by pre-digest nodes) lets the downloader and scrub verify a
    fetched share without re-deriving it from plaintext.
    """

    chunk_id: str
    size: int
    t: int
    n: int
    placements: tuple[tuple[int, str], ...]  # (share index, csp_id)
    share_digests: tuple[str, ...] = ()

    def digest_of(self, index: int) -> str | None:
        """Expected SHA-1 of one share, or None when unknown."""
        if not self.share_digests or not 0 <= index < self.n:
            return None
        return self.share_digests[index]

    def csps(self) -> list[str]:
        """CSPs currently holding a share of this chunk."""
        return sorted({csp for _, csp in self.placements})

    def indices_at(self, csp_id: str) -> list[int]:
        """Share indices stored at one CSP."""
        return sorted(i for i, csp in self.placements if csp == csp_id)


class GlobalChunkTable:
    """Chunk -> share placements, aggregated over all metadata nodes."""

    def __init__(self) -> None:
        self._chunks: dict[str, dict] = {}

    def __contains__(self, chunk_id: str) -> bool:
        return chunk_id in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def record_node(self, node: MetadataNode) -> None:
        """Fold one metadata node's ChunkMap + ShareMap into the table."""
        sizes = {
            c.chunk_id: (c.size, c.t, c.n, c.share_digests)
            for c in node.chunks
        }
        for share in node.shares:
            size, t, n, digests = sizes[share.chunk_id]
            entry = self._chunks.setdefault(
                share.chunk_id,
                {"size": size, "t": t, "n": n, "placements": set(),
                 "digests": ()},
            )
            entry["placements"].add((share.index, share.csp_id))
            # deterministic coding: every node that fingerprints this
            # chunk computes the same digests, so first-non-empty wins
            if digests and not entry["digests"]:
                entry["digests"] = tuple(digests)

    def rebuild(self, nodes: Iterable[MetadataNode]) -> None:
        """Recompute the table from scratch (used after metadata sync)."""
        self._chunks.clear()
        for node in nodes:
            self.record_node(node)

    def get(self, chunk_id: str) -> ChunkLocation | None:
        """Placement info for one chunk, or None if unknown."""
        entry = self._chunks.get(chunk_id)
        if entry is None:
            return None
        return ChunkLocation(
            chunk_id=chunk_id,
            size=entry["size"],
            t=entry["t"],
            n=entry["n"],
            placements=tuple(sorted(entry["placements"])),
            share_digests=tuple(entry.get("digests", ())),
        )

    def is_stored(self, chunk_id: str) -> bool:
        """Dedup test: Algorithm 2's "if chunk is not stored"."""
        return chunk_id in self._chunks

    def chunks_at(self, csp_id: str) -> list[str]:
        """Chunks with at least one share at the given CSP.

        This is the per-CSP view the paper's global chunk table provides;
        CSP removal uses it to know what needs migration (Section 5.5).
        """
        return sorted(
            chunk_id
            for chunk_id, entry in self._chunks.items()
            if any(csp == csp_id for _, csp in entry["placements"])
        )

    def add_placement(self, chunk_id: str, index: int, csp_id: str) -> None:
        """Record a share created after the fact (lazy migration)."""
        if chunk_id not in self._chunks:
            raise KeyError(f"unknown chunk {chunk_id[:8]}")
        self._chunks[chunk_id]["placements"].add((index, csp_id))

    def drop_csp(self, csp_id: str) -> int:
        """Forget all placements at a removed CSP; returns count dropped."""
        dropped = 0
        for entry in self._chunks.values():
            before = len(entry["placements"])
            entry["placements"] = {
                (i, c) for i, c in entry["placements"] if c != csp_id
            }
            dropped += before - len(entry["placements"])
        return dropped

    def all_chunk_ids(self) -> list[str]:
        """Every chunk the table knows about (sorted)."""
        return sorted(self._chunks)

    def forget(self, chunk_id: str) -> bool:
        """Drop a chunk entirely (after garbage collection deletes it)."""
        return self._chunks.pop(chunk_id, None) is not None

    def bytes_at(self, csp_id: str) -> int:
        """Total share bytes stored at one CSP (share size = size/t)."""
        total = 0
        for entry in self._chunks.values():
            share_size = -(-entry["size"] // entry["t"])  # ceil
            count = sum(1 for _, c in entry["placements"] if c == csp_id)
            total += share_size * count
        return total
