"""Scattered metadata storage (paper Section 5.2, footnote 3).

Metadata nodes are secret-shared with (t, m) coding "at a fixed set of m
CSPs" — the paper stores metadata pieces at *all* CSPs so clients can
always find them.  The store handles encode -> split -> upload and
list -> download -> join, tolerating up to ``m - t`` unreachable
providers on both paths.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.csp.base import CloudProvider
from repro.erasure import KeyedSharer, Share
from repro.errors import CSPError, InsufficientSharesError, MetadataError
from repro.metadata.codec import (
    METADATA_PREFIX,
    decode_node,
    encode_node,
    metadata_share_name,
    parse_metadata_share_name,
)
from repro.metadata.node import MetadataNode


class MetadataStore:
    """Reads and writes metadata nodes across a fixed provider set.

    Args:
        providers: The m metadata CSPs, in a stable order — share index
            i goes to ``providers[i]`` on every client, so the key-
            derived codec lines up.
        key: The user key string (drives the dispersal matrix).
        t: Shares needed to reconstruct a node (privacy threshold).
    """

    def __init__(
        self,
        providers: Sequence[CloudProvider],
        key: str,
        t: int = 2,
    ):
        if len(providers) < t:
            raise MetadataError(
                f"need at least t={t} metadata providers, got {len(providers)}"
            )
        self.providers = list(providers)
        self.key = key
        self.t = t
        self._sharer = KeyedSharer(key, t, len(self.providers))

    @property
    def m(self) -> int:
        """Number of metadata providers."""
        return len(self.providers)

    # -- encoding helpers (used by the timed transfer engine too) --------

    def shares_for(self, node: MetadataNode) -> list[tuple[CloudProvider, str, Share]]:
        """(provider, object name, share) triples for one node."""
        payload = encode_node(node)
        shares = self._sharer.split(payload)
        node_id = node.node_id
        return [
            (self.providers[s.index], metadata_share_name(node_id, s.index), s)
            for s in shares
        ]

    def decode_shares(self, shares: Sequence[Share]) -> MetadataNode:
        """Reassemble a node from t+ shares."""
        return decode_node(self._sharer.join(shares))

    def share_size(self, node: MetadataNode) -> int:
        """Byte size of one metadata share (for transfer accounting)."""
        payload_len = len(encode_node(node))
        return max(1, -(-payload_len // self.t))

    # -- direct (untimed) data plane ------------------------------------

    def publish(self, node: MetadataNode) -> None:
        """Upload the node's m shares; tolerates m - t provider failures."""
        failures = 0
        for provider, name, share in self.shares_for(node):
            try:
                provider.upload(name, self._pack(share))
            except CSPError:
                failures += 1
        if self.m - failures < self.t:
            raise MetadataError(
                f"only {self.m - failures} metadata shares stored, "
                f"need {self.t} for recoverability"
            )

    def fetch(self, node_id: str) -> MetadataNode:
        """Download any t shares of the node and decode it."""
        shares: list[Share] = []
        for index, provider in enumerate(self.providers):
            if len(shares) >= self.t:
                break
            try:
                blob = provider.download(metadata_share_name(node_id, index))
            except CSPError:
                continue
            shares.append(self._unpack(blob, index))
        if len(shares) < self.t:
            raise InsufficientSharesError(
                f"metadata node {node_id[:8]}: found {len(shares)} shares, "
                f"need {self.t}"
            )
        return self.decode_shares(shares)

    def list_node_ids(self) -> set[str]:
        """Node ids with at least t shares visible across providers.

        The union of per-provider listings, filtered to reconstructible
        nodes — a node mid-upload (fewer than t shares landed) is
        invisible, which is what delays visibility until the uploader's
        final metadata write completes.
        """
        counts: dict[str, int] = {}
        reachable = 0
        for provider in self.providers:
            try:
                infos = provider.list(prefix=METADATA_PREFIX)
            except CSPError:
                continue
            reachable += 1
            for info in infos:
                try:
                    node_id, _ = parse_metadata_share_name(info.name)
                except MetadataError:
                    continue
                counts[node_id] = counts.get(node_id, 0) + 1
        if reachable < self.t:
            raise MetadataError(
                f"only {reachable} metadata providers reachable, need {self.t}"
            )
        return {nid for nid, c in counts.items() if c >= self.t}

    def fetch_all(self) -> list[MetadataNode]:
        """Every reconstructible node (full sync)."""
        return [self.fetch(nid) for nid in sorted(self.list_node_ids())]

    # -- share (de)framing -------------------------------------------------

    @staticmethod
    def _pack(share: Share) -> bytes:
        """Frame a share for storage: chunk_size header + payload."""
        return share.chunk_size.to_bytes(8, "big") + share.data

    def _unpack(self, blob: bytes, index: int) -> Share:
        if len(blob) < 8:
            raise MetadataError("metadata share too short")
        size = int.from_bytes(blob[:8], "big")
        return Share(
            index=index,
            data=blob[8:],
            t=self.t,
            n=self.m,
            chunk_size=size,
        )
