"""Scattered metadata storage (paper Section 5.2, footnote 3).

Metadata nodes are secret-shared with (t, m) coding "at a fixed set of m
CSPs" — the paper stores metadata pieces at *all* CSPs so clients can
always find them.  The store handles encode -> split -> upload and
list -> download -> join, tolerating up to ``m - t`` unreachable
providers on both paths.

The read path is a **verified quorum fetch**: every downloaded share is
unframed and checked against its envelope digests
(:mod:`repro.metadata.codec`), shares are grouped by the node plaintext
they claim to encode, and the store fails over across all m slots until
a group of t shares decodes to a plaintext that matches its digest.
When an interrupted publish leaves slots disagreeing, the group with
the highest publish stamp wins — the latest version, not the first
reachable one.  Corrupt shares are attributed to their CSP through the
shared :class:`repro.csp.resilient.HealthRegistry` (same quarantine and
breaker rules as data shares), and every missing, stale or corrupt slot
becomes a metadata repair debt in the attached
:class:`repro.redundancy.DebtLedger`.
"""

from __future__ import annotations

from typing import Sequence

from repro.csp.base import CloudProvider
from repro.erasure import KeyedSharer, Share
from repro.errors import (
    CSPError,
    CyrusError,
    InsufficientSharesError,
    MetadataError,
    ObjectNotFoundError,
)
from repro.metadata.codec import (
    METADATA_PREFIX,
    MetaShareFrame,
    decode_node,
    encode_node,
    metadata_share_name,
    pack_meta_share,
    parse_metadata_share_name,
    unpack_meta_share,
)
from repro.metadata.node import MetadataNode
from repro.util.hashing import sha1_hex

#: Metric names (mirrors the repro.obs constant style).
META_PUBLISH_FAILURES = "cyrus_metadata_publish_failures_total"
META_CORRUPT_SHARES = "cyrus_metadata_corrupt_shares_total"
META_DEBTS_RECORDED = "cyrus_metadata_debts_recorded_total"


class NodeAssembler:
    """Incremental verified decode of one metadata node.

    Both fetch paths feed it — :meth:`MetadataStore.fetch` share by
    share, :class:`repro.core.sync.SyncService` from a parallel GET
    batch — so serial and async backends verify identically.  Shares
    are grouped by the node digest their envelope claims; a group
    decodes only when a t-subset joins to a plaintext matching that
    digest (legacy undigested shares form their own group, verified by
    decoding to the requested node id).  :meth:`finish` performs the
    liar attribution and debt recording against the store's health
    registry and ledger.
    """

    def __init__(self, store: "MetadataStore", node_id: str):
        self.store = store
        self.node_id = node_id
        # node-digest -> {index: (csp_id, frame)}; None = legacy group
        self._groups: dict[str | None, dict[int, tuple[str, MetaShareFrame]]] = {}
        self._stamps: dict[str | None, int] = {}
        self.missing: set[int] = set()  # slots definitively absent
        self.tried: set[int] = set()
        # (index, csp_id, detail) failing their own envelope — attributed
        # the moment they are seen, decode success or not
        self.corrupt: list[tuple[int, str, str]] = []
        self._node: MetadataNode | None = None
        self._plaintext: bytes | None = None
        self._win_key: str | None = None
        self._finished = False

    # -- feeding ----------------------------------------------------------

    def add(self, index: int, csp_id: str, blob: bytes) -> bool:
        """Feed one downloaded share blob; False if it fails its envelope."""
        self.tried.add(index)
        try:
            frame = unpack_meta_share(blob)
        except MetadataError as exc:
            self._attribute(index, csp_id, f"unparseable frame: {exc}")
            return False
        if not frame.payload_intact():
            self._attribute(index, csp_id, "share digest mismatch")
            return False
        key = frame.node_digest
        self._groups.setdefault(key, {})[index] = (csp_id, frame)
        self._stamps[key] = max(self._stamps.get(key, 0), frame.stamp)
        return True

    def note_missing(self, index: int) -> None:
        """The slot's provider answered and the object is gone."""
        self.tried.add(index)
        self.missing.add(index)

    def note_unreachable(self, index: int) -> None:
        """The slot's provider could not answer; no verdict on the share."""
        self.tried.add(index)

    def _attribute(self, index: int, csp_id: str, detail: str) -> None:
        self.corrupt.append((index, csp_id, detail))
        store = self.store
        if store.health is not None:
            store.health.record_corruption(
                csp_id,
                detail=f"metadata {self.node_id[:8]} share {index}: {detail}",
            )
        if store.metrics is not None:
            store.metrics.inc(META_CORRUPT_SHARES, csp=csp_id)

    # -- decoding ---------------------------------------------------------

    def _ordered_keys(self) -> list[str | None]:
        """Candidate groups, freshest first (stamp, then size, then key)."""
        return sorted(
            self._groups,
            key=lambda k: (-self._stamps.get(k, 0),
                           -len(self._groups[k]), k or ""),
        )

    def try_decode(self, final: bool = False) -> MetadataNode | None:
        """Attempt a verified decode from the shares collected so far.

        Until ``final``, a group older (lower stamp) than the freshest
        stamp observed is held back — a fresher publish may still
        complete as more slots are probed; at the end the best verified
        group wins regardless.
        """
        if self._node is not None:
            return self._node
        best_stamp = max(self._stamps.values(), default=0)
        for key in self._ordered_keys():
            group = self._groups[key]
            if len(group) < self.store.t:
                continue
            if not final and self._stamps.get(key, 0) < best_stamp:
                continue
            shares = [
                frame.to_share(index, self.store.t, self.store.m)
                for index, (_csp, frame) in sorted(group.items())
            ]
            if key is None:
                verify = self._legacy_plaintext_ok
            else:
                def verify(pt: bytes, digest=key) -> bool:
                    return sha1_hex(pt) == digest
            try:
                plaintext = self.store._sharer.join_verified(
                    shares, verify=verify,
                )
            except CyrusError:
                continue  # no verifying t-subset in this group (yet)
            try:
                node = decode_node(plaintext)
            except MetadataError:
                continue
            if node.node_id != self.node_id:
                continue  # a valid node, but not the one this name claims
            self._node, self._plaintext, self._win_key = node, plaintext, key
            return node
        return None

    def _legacy_plaintext_ok(self, plaintext: bytes) -> bool:
        """Pre-envelope shares: the only verification is that the bytes
        decode to the node this share name belongs to."""
        try:
            return decode_node(plaintext).node_id == self.node_id
        except MetadataError:
            return False

    # -- settlement -------------------------------------------------------

    def finish(self) -> MetadataNode | None:
        """Final decode + attribution + debt recording.  Idempotent."""
        node = self.try_decode(final=True)
        if self._finished:
            return node
        self._finished = True
        stale: set[int] = set()
        if node is not None and self._plaintext is not None:
            truth = {
                s.index: s.data
                for s in self.store._sharer.split(self._plaintext)
            }
            for key, group in self._groups.items():
                for index, (csp_id, frame) in sorted(group.items()):
                    if frame.payload == truth.get(index):
                        continue
                    if key is not None and key == self._win_key:
                        # intact envelope claiming the verified digest
                        # around wrong bytes: a forged share, not a stale
                        # one — same attribution as a digest mismatch
                        self._attribute(
                            index, csp_id,
                            "payload does not match verified node",
                        )
                    else:
                        # an honest slot left behind by an interrupted
                        # publish (or a legacy share we cannot convict):
                        # needs re-dispersal, not quarantine
                        stale.add(index)
        bad = self.missing | stale | {index for index, _c, _d in self.corrupt}
        if bad:
            self.store._record_meta_debt(
                self.node_id,
                missing=sorted(bad),
                failed_csps=sorted({csp for _i, csp, _d in self.corrupt}),
            )
        return node

    def raise_unverified(self) -> None:
        collected = sum(len(g) for g in self._groups.values())
        raise InsufficientSharesError(
            f"metadata node {self.node_id[:8]}: no verified t={self.store.t} "
            f"quorum among {collected} intact shares "
            f"({len(self.corrupt)} corrupt, {len(self.missing)} missing)"
        )


class MetadataStore:
    """Reads and writes metadata nodes across a fixed provider set.

    Args:
        providers: The m metadata CSPs, in a stable order — share index
            i goes to ``providers[i]`` on every client, so the key-
            derived codec lines up.
        key: The user key string (drives the dispersal matrix).
        t: Shares needed to reconstruct a node (privacy threshold).
        health: Optional :class:`repro.csp.resilient.HealthRegistry`;
            corrupt metadata shares are attributed through it, sharing
            the data path's quarantine and breaker rules.
        metrics: Optional metrics registry (``obs.metrics``).
        ledger: Optional :class:`repro.redundancy.DebtLedger`; missing,
            stale and corrupt metadata shares become ``meta`` debts.
        clock: Optional clock; stamps each publish so a verified fetch
            can prefer the latest version when slots disagree.
    """

    def __init__(
        self,
        providers: Sequence[CloudProvider],
        key: str,
        t: int = 2,
        health=None,
        metrics=None,
        ledger=None,
        clock=None,
    ):
        if len(providers) < t:
            raise MetadataError(
                f"need at least t={t} metadata providers, got {len(providers)}"
            )
        self.providers = list(providers)
        self.key = key
        self.t = t
        self.health = health
        self.metrics = metrics
        self.ledger = ledger
        self.clock = clock
        self._sharer = KeyedSharer(key, t, len(self.providers))

    @property
    def m(self) -> int:
        """Number of metadata providers."""
        return len(self.providers)

    # -- encoding helpers (used by the timed transfer engine too) --------

    def shares_for(self, node: MetadataNode) -> list[tuple[CloudProvider, str, Share]]:
        """(provider, object name, share) triples for one node."""
        payload = encode_node(node)
        shares = self._sharer.split(payload)
        node_id = node.node_id
        return [
            (self.providers[s.index], metadata_share_name(node_id, s.index), s)
            for s in shares
        ]

    def frames_for(
        self, node: MetadataNode, stamp: int | None = None
    ) -> list[tuple[CloudProvider, str, bytes, int]]:
        """(provider, object name, framed bytes, index) for one node.

        The frame is the authenticated v2 envelope: per-share digest,
        node-plaintext digest, and the publish stamp used to rank
        versions when an interrupted publish leaves slots disagreeing.
        """
        payload = encode_node(node)
        node_digest = sha1_hex(payload)
        if stamp is None:
            stamp = self.publish_stamp()
        return [
            (provider, name,
             pack_meta_share(share.data, share.chunk_size, node_digest, stamp),
             share.index)
            for provider, name, share in self.shares_for(node)
        ]

    def publish_stamp(self) -> int:
        """Millisecond stamp for the next publish (0 without a clock)."""
        if self.clock is None:
            return 0
        return max(0, int(self.clock.now() * 1000))

    def decode_shares(self, shares: Sequence[Share]) -> MetadataNode:
        """Reassemble a node from t+ shares."""
        return decode_node(self._sharer.join(shares))

    def share_size(self, node: MetadataNode) -> int:
        """Byte size of one metadata share (for transfer accounting)."""
        payload_len = len(encode_node(node))
        return max(1, -(-payload_len // self.t))

    def assembler(self, node_id: str) -> NodeAssembler:
        """A verified-decode accumulator bound to this store's health
        registry and ledger (used by the sync service's batch path)."""
        return NodeAssembler(self, node_id)

    # -- direct (untimed) data plane ------------------------------------

    def publish(self, node: MetadataNode, stamp: int | None = None) -> None:
        """Upload the node's m shares; tolerates m - t provider failures.

        Failed slots are named (and counted per CSP under
        ``cyrus_metadata_publish_failures_total``); a degraded publish —
        accepted, but short of full m-way dispersal — records a ``meta``
        repair debt so the missing shares are re-dispersed later.
        """
        failures: list[tuple[str, CSPError]] = []
        failed_indices: list[int] = []
        for provider, name, blob, index in self.frames_for(node, stamp):
            try:
                provider.upload(name, blob)
            except CSPError as exc:
                failures.append((provider.csp_id, exc))
                failed_indices.append(index)
                if self.metrics is not None:
                    self.metrics.inc(META_PUBLISH_FAILURES, csp=provider.csp_id)
        stored = self.m - len(failures)
        if stored < self.t:
            detail = "; ".join(
                f"{csp}: {type(exc).__name__}: {exc}" for csp, exc in failures
            )
            raise MetadataError(
                f"metadata node {node.node_id[:8]}: only {stored}/{self.m} "
                f"shares stored, need t={self.t} for recoverability "
                f"(failed providers: {detail})"
            )
        if failures:
            self._record_meta_debt(
                node.node_id,
                missing=sorted(failed_indices),
                failed_csps=sorted({csp for csp, _exc in failures}),
            )

    def fetch(self, node_id: str) -> MetadataNode:
        """Verified quorum fetch: fail over across all m slots.

        Every share is checked against its envelope; corrupt shares are
        attributed to their CSP and skipped, shares of distinct publish
        generations are grouped apart, and the highest-stamped group
        that decodes to digest-verified plaintext wins.  All reachable
        slots are probed — stopping at the first t would let up to
        ``m - t`` stale or lying slots serve an old version.
        """
        asm = self.assembler(node_id)
        for index, provider in enumerate(self.providers):
            try:
                blob = provider.download(metadata_share_name(node_id, index))
            except ObjectNotFoundError:
                asm.note_missing(index)
                continue
            except CSPError:
                asm.note_unreachable(index)
                continue
            asm.add(index, provider.csp_id, blob)
        node = asm.finish()
        if node is None:
            asm.raise_unverified()
        return node

    def list_node_ids(self) -> set[str]:
        """Node ids with at least t shares visible across providers.

        The union of per-provider listings, filtered to reconstructible
        nodes — a node mid-upload (fewer than t shares landed) is
        invisible, which is what delays visibility until the uploader's
        final metadata write completes.
        """
        counts: dict[str, int] = {}
        reachable = 0
        for provider in self.providers:
            try:
                infos = provider.list(prefix=METADATA_PREFIX)
            except CSPError:
                continue
            reachable += 1
            for info in infos:
                try:
                    node_id, _ = parse_metadata_share_name(info.name)
                except MetadataError:
                    continue
                counts[node_id] = counts.get(node_id, 0) + 1
        if reachable < self.t:
            raise MetadataError(
                f"only {reachable} metadata providers reachable, need {self.t}"
            )
        return {nid for nid, c in counts.items() if c >= self.t}

    def fetch_all(self) -> list[MetadataNode]:
        """Every reconstructible node (full sync)."""
        return [self.fetch(nid) for nid in sorted(self.list_node_ids())]

    # -- repair-debt plumbing ---------------------------------------------

    def _record_meta_debt(self, node_id: str, missing, failed_csps=()) -> None:
        """Durable obligation to re-disperse a node's damaged slots."""
        if self.ledger is None:
            return
        self.ledger.record(node_id, missing=tuple(missing),
                           failed_csps=tuple(failed_csps), kind="meta")
        if self.metrics is not None:
            self.metrics.inc(META_DEBTS_RECORDED)

    # -- share (de)framing -------------------------------------------------

    @staticmethod
    def _pack(share: Share) -> bytes:
        """Legacy v1 framing: chunk_size header + payload (kept so old
        stored shares — and tests exercising them — stay readable)."""
        return share.chunk_size.to_bytes(8, "big") + share.data

    def _unpack(self, blob: bytes, index: int) -> Share:
        """Unframe either envelope version into a bare share."""
        return unpack_meta_share(blob).to_share(index, self.t, self.m)
