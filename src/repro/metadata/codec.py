"""Metadata serialization and share naming.

Nodes serialise to canonical JSON (so node bytes — and therefore the
shares cut from them — are identical across clients).  Metadata share
object names embed the node id and share index, ``md-<node_id>-<idx>``:
unlike chunk shares, metadata shares must be *discoverable* by listing
("Changes at CSPs can be seen by looking up the list of metadata files
stored in the cloud", Section 5.4), and a node id is itself a hash that
reveals nothing about file contents.
"""

from __future__ import annotations

from repro.errors import MetadataError
from repro.metadata.node import ChunkRecord, MetadataNode, ShareRecord
from repro.util.serialization import canonical_dumps, canonical_loads

#: Format version embedded in every encoded node.
CODEC_VERSION = 1

#: Listing prefix for metadata shares.
METADATA_PREFIX = "md-"


def encode_node(node: MetadataNode) -> bytes:
    """Canonical byte encoding of a metadata node."""
    doc = {
        "v": CODEC_VERSION,
        "fileMap": {
            "id": node.file_id,
            "prevId": node.prev_id,
            "clientId": node.client_id,
            "name": node.name,
            "deleted": node.deleted,
            "modified": node.modified,
            "size": node.size,
        },
        # share digests ride as an optional 6th element so pre-digest
        # readers (and nodes) keep the exact 5-element row bytes
        "chunkMap": [
            [c.chunk_id, c.offset, c.size, c.t, c.n]
            + ([list(c.share_digests)] if c.share_digests else [])
            for c in node.chunks
        ],
        "shareMap": [[s.chunk_id, s.index, s.csp_id] for s in node.shares],
    }
    return canonical_dumps(doc)


def decode_node(data: bytes) -> MetadataNode:
    """Inverse of :func:`encode_node`."""
    try:
        doc = canonical_loads(data)
        if doc.get("v") != CODEC_VERSION:
            raise MetadataError(f"unsupported metadata version {doc.get('v')!r}")
        fm = doc["fileMap"]
        return MetadataNode(
            file_id=fm["id"],
            prev_id=fm["prevId"],
            client_id=fm["clientId"],
            name=fm["name"],
            deleted=fm["deleted"],
            modified=fm["modified"],
            size=fm["size"],
            chunks=tuple(
                ChunkRecord(
                    chunk_id=c[0], offset=c[1], size=c[2], t=c[3], n=c[4],
                    share_digests=tuple(c[5]) if len(c) > 5 else (),
                )
                for c in doc["chunkMap"]
            ),
            shares=tuple(
                ShareRecord(chunk_id=s[0], index=s[1], csp_id=s[2])
                for s in doc["shareMap"]
            ),
        )
    except MetadataError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise MetadataError(f"corrupt metadata node: {exc}") from exc


def metadata_share_name(node_id: str, index: int) -> str:
    """Object name for one metadata share."""
    if len(node_id) != 40:
        raise MetadataError(f"node id must be 40 hex chars, got {node_id!r}")
    if index < 0:
        raise MetadataError(f"share index must be non-negative, got {index}")
    return f"{METADATA_PREFIX}{node_id}-{index:03d}"


def parse_metadata_share_name(name: str) -> tuple[str, int]:
    """Extract ``(node_id, index)``; raises MetadataError on other names."""
    if not name.startswith(METADATA_PREFIX):
        raise MetadataError(f"not a metadata share name: {name!r}")
    body = name[len(METADATA_PREFIX):]
    node_id, _, idx = body.rpartition("-")
    if len(node_id) != 40 or not idx.isdigit():
        raise MetadataError(f"malformed metadata share name: {name!r}")
    return node_id, int(idx)
