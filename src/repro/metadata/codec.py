"""Metadata serialization, share naming, and the share envelope.

Nodes serialise to canonical JSON (so node bytes — and therefore the
shares cut from them — are identical across clients).  Metadata share
object names embed the node id and share index, ``md-<node_id>-<idx>``:
unlike chunk shares, metadata shares must be *discoverable* by listing
("Changes at CSPs can be seen by looking up the list of metadata files
stored in the cloud", Section 5.4), and a node id is itself a hash that
reveals nothing about file contents.

Stored shares are wrapped in an authenticated **envelope** (v2 frame):
a magic marker, a publish stamp, the plaintext chunk size, a SHA-1 over
the share payload (detects a provider that rotted or tampered with the
bytes it returns), and a SHA-1 over the node plaintext (detects a
provider that forged a self-consistent envelope around wrong share
bytes, and groups shares of the same encoding when an interrupted
publish leaves slots disagreeing).  The legacy v1 frame — a bare
8-byte chunk-size header — still parses, with the same backward-compat
discipline as the optional 6th chunkMap column: pre-envelope shares
are unverifiable-but-usable, never rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.erasure import Share
from repro.errors import MetadataError
from repro.metadata.node import ChunkRecord, MetadataNode, ShareRecord
from repro.util.hashing import sha1_hex
from repro.util.serialization import canonical_dumps, canonical_loads

#: Format version embedded in every encoded node.
CODEC_VERSION = 1

#: Listing prefix for metadata shares.
METADATA_PREFIX = "md-"

#: Magic marker opening a v2 (authenticated) share frame.  A legacy v1
#: frame opens with an 8-byte big-endian chunk size whose first bytes
#: are zero for any real metadata node, so the two cannot collide.
FRAME_MAGIC = b"CYM2"

_DIGEST_LEN = 20  # raw SHA-1


def encode_node(node: MetadataNode) -> bytes:
    """Canonical byte encoding of a metadata node."""
    doc = {
        "v": CODEC_VERSION,
        "fileMap": {
            "id": node.file_id,
            "prevId": node.prev_id,
            "clientId": node.client_id,
            "name": node.name,
            "deleted": node.deleted,
            "modified": node.modified,
            "size": node.size,
        },
        # share digests ride as an optional 6th element so pre-digest
        # readers (and nodes) keep the exact 5-element row bytes
        "chunkMap": [
            [c.chunk_id, c.offset, c.size, c.t, c.n]
            + ([list(c.share_digests)] if c.share_digests else [])
            for c in node.chunks
        ],
        "shareMap": [[s.chunk_id, s.index, s.csp_id] for s in node.shares],
    }
    return canonical_dumps(doc)


def decode_node(data: bytes) -> MetadataNode:
    """Inverse of :func:`encode_node`."""
    try:
        doc = canonical_loads(data)
        if doc.get("v") != CODEC_VERSION:
            raise MetadataError(f"unsupported metadata version {doc.get('v')!r}")
        fm = doc["fileMap"]
        return MetadataNode(
            file_id=fm["id"],
            prev_id=fm["prevId"],
            client_id=fm["clientId"],
            name=fm["name"],
            deleted=fm["deleted"],
            modified=fm["modified"],
            size=fm["size"],
            chunks=tuple(
                ChunkRecord(
                    chunk_id=c[0], offset=c[1], size=c[2], t=c[3], n=c[4],
                    share_digests=tuple(c[5]) if len(c) > 5 else (),
                )
                for c in doc["chunkMap"]
            ),
            shares=tuple(
                ShareRecord(chunk_id=s[0], index=s[1], csp_id=s[2])
                for s in doc["shareMap"]
            ),
        )
    except MetadataError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise MetadataError(f"corrupt metadata node: {exc}") from exc


@dataclass(frozen=True)
class MetaShareFrame:
    """One unframed metadata share as stored at a provider.

    Attributes:
        payload: The share bytes (the secret-shared node slice).
        chunk_size: Plaintext length the sharer must truncate to.
        stamp: Publish generation (milliseconds of the publisher's
            clock; 0 for legacy frames and clock-less stores).  Higher
            stamps are preferred when shares of one node id disagree —
            an interrupted publish leaves stale slots behind.
        share_digest: SHA-1 hex of ``payload``, or None for legacy v1
            frames (unverifiable-but-usable).
        node_digest: SHA-1 hex of the node plaintext this share was cut
            from, or None for legacy frames.  Shares are only ever
            combined within one node-digest group.
    """

    payload: bytes
    chunk_size: int
    stamp: int = 0
    share_digest: str | None = None
    node_digest: str | None = None

    @property
    def authenticated(self) -> bool:
        return self.node_digest is not None

    def payload_intact(self) -> bool:
        """Does the payload match its own digest?  (Always True for
        legacy frames — there is nothing to check against.)"""
        if self.share_digest is None:
            return True
        return sha1_hex(self.payload) == self.share_digest

    def to_share(self, index: int, t: int, n: int) -> Share:
        return Share(index=index, data=self.payload, t=t, n=n,
                     chunk_size=self.chunk_size)


def pack_meta_share(payload: bytes, chunk_size: int, node_digest: str,
                    stamp: int = 0) -> bytes:
    """Frame one share in the authenticated v2 envelope."""
    if len(node_digest) != 2 * _DIGEST_LEN:
        raise MetadataError(f"node digest must be SHA-1 hex, got {node_digest!r}")
    return (
        FRAME_MAGIC
        + max(0, int(stamp)).to_bytes(8, "big")
        + chunk_size.to_bytes(8, "big")
        + bytes.fromhex(sha1_hex(payload))
        + bytes.fromhex(node_digest)
        + payload
    )


def unpack_meta_share(blob: bytes) -> MetaShareFrame:
    """Parse either frame version; raises MetadataError on garbage."""
    if blob[:4] == FRAME_MAGIC:
        header = 4 + 8 + 8 + 2 * _DIGEST_LEN
        if len(blob) < header:
            raise MetadataError("metadata share frame truncated")
        stamp = int.from_bytes(blob[4:12], "big")
        size = int.from_bytes(blob[12:20], "big")
        share_digest = blob[20:20 + _DIGEST_LEN].hex()
        node_digest = blob[20 + _DIGEST_LEN:header].hex()
        return MetaShareFrame(
            payload=blob[header:], chunk_size=size, stamp=stamp,
            share_digest=share_digest, node_digest=node_digest,
        )
    if len(blob) < 8:
        raise MetadataError("metadata share too short")
    return MetaShareFrame(
        payload=blob[8:], chunk_size=int.from_bytes(blob[:8], "big"),
    )


def metadata_share_name(node_id: str, index: int) -> str:
    """Object name for one metadata share."""
    if len(node_id) != 40:
        raise MetadataError(f"node id must be 40 hex chars, got {node_id!r}")
    if index < 0:
        raise MetadataError(f"share index must be non-negative, got {index}")
    return f"{METADATA_PREFIX}{node_id}-{index:03d}"


def parse_metadata_share_name(name: str) -> tuple[str, int]:
    """Extract ``(node_id, index)``; raises MetadataError on other names."""
    if not name.startswith(METADATA_PREFIX):
        raise MetadataError(f"not a metadata share name: {name!r}")
    body = name[len(METADATA_PREFIX):]
    node_id, _, idx = body.rpartition("-")
    if len(node_id) != 40 or not idx.isdigit():
        raise MetadataError(f"malformed metadata share name: {name!r}")
    return node_id, int(idx)
