"""The metadata version tree (paper Section 5.2).

Nodes hang under a dummy root; each node's ``prev_id`` points at the
version it was derived from.  The tree is a CRDT-ish grow-only set:
``add`` is idempotent and commutative, so two clients merging each
other's nodes in any order converge to the same tree — the property
that lets CYRUS be "as consistent as the CSPs where it stores files".
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import MetadataError
from repro.metadata.node import ROOT_ID, MetadataNode


class MetadataTree:
    """All known file versions, indexed every way the client needs."""

    def __init__(self) -> None:
        self._nodes: dict[str, MetadataNode] = {}
        self._children: dict[str, set[str]] = {}

    # -- growth ------------------------------------------------------------

    def add(self, node: MetadataNode) -> bool:
        """Insert a node; returns False if it was already present.

        A re-publication of a known node that differs *only* in its
        ShareMap merges placements (union): lazy migration adds share
        locations after the fact (Section 5.5), and placement sets only
        grow, so the union is the correct join.  Any other divergence
        under one node id is corruption and raises.
        """
        node_id = node.node_id
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing == node:
                return False
            if self._same_except_shares(existing, node):
                merged_shares = tuple(
                    sorted(
                        set(existing.shares) | set(node.shares),
                        key=lambda s: (s.chunk_id, s.index, s.csp_id),
                    )
                )
                from dataclasses import replace

                self._nodes[node_id] = replace(existing, shares=merged_shares)
                return False
            raise MetadataError(
                f"node id collision with differing content: {node_id[:8]}"
            )
        self._nodes[node_id] = node
        self._children.setdefault(node.prev_id, set()).add(node_id)
        return True

    @staticmethod
    def _same_except_shares(a: MetadataNode, b: MetadataNode) -> bool:
        from dataclasses import replace

        return replace(a, shares=()) == replace(b, shares=())

    def merge(self, nodes: Iterable[MetadataNode]) -> int:
        """Insert many nodes; returns how many were new."""
        return sum(1 for node in nodes if self.add(node))

    def remove(self, node_id: str) -> bool:
        """Forget a node (history pruning); returns False when unknown.

        Only maintenance code calls this — the tree is otherwise
        grow-only.  Children of the removed node keep their ``prev_id``
        (a dangling parent reference, which traversals treat as a break;
        pruning rewrites the survivor's lineage to avoid that).
        """
        node = self._nodes.pop(node_id, None)
        if node is None:
            return False
        kids = self._children.get(node.prev_id)
        if kids is not None:
            kids.discard(node_id)
            if not kids:
                del self._children[node.prev_id]
        return True

    # -- lookup --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[MetadataNode]:
        return iter(self._nodes.values())

    def get(self, node_id: str) -> MetadataNode:
        node = self._nodes.get(node_id)
        if node is None:
            raise MetadataError(f"unknown metadata node {node_id[:8]}")
        return node

    def node_ids(self) -> set[str]:
        """All known node ids."""
        return set(self._nodes)

    def children(self, node_id: str) -> list[MetadataNode]:
        """Direct successors of a node (concurrent edits if > 1)."""
        return sorted(
            (self._nodes[c] for c in self._children.get(node_id, ())),
            key=lambda n: (n.modified, n.node_id),
        )

    def leaves(self) -> list[MetadataNode]:
        """Nodes with no successors — candidate current versions."""
        return sorted(
            (
                node
                for node_id, node in self._nodes.items()
                if not self._children.get(node_id)
            ),
            key=lambda n: (n.modified, n.node_id),
        )

    # -- per-file views ---------------------------------------------------

    def file_names(self, include_deleted: bool = False) -> list[str]:
        """Names with at least one live head (or any head when asked)."""
        names = set()
        for node in self.leaves():
            if include_deleted or not node.deleted:
                names.add(node.name)
        return sorted(names)

    def heads(self, name: str) -> list[MetadataNode]:
        """Leaf versions of one file; > 1 means an unresolved conflict."""
        return [n for n in self.leaves() if n.name == name]

    def latest(self, name: str) -> MetadataNode:
        """The most recent head (ties broken by node id for determinism)."""
        heads = self.heads(name)
        if not heads:
            raise MetadataError(f"no versions of {name!r}")
        return max(heads, key=lambda n: (n.modified, n.node_id))

    def history(self, node_id: str) -> list[MetadataNode]:
        """The version chain from a node back to its oldest known version.

        The chain ends at a first-version node (prevID = 0) or at a
        *pruned* ancestor — history pruning deletes old nodes without
        rewriting survivors, leaving a dangling parent reference that is
        treated as the start of history.
        """
        out: list[MetadataNode] = []
        seen: set[str] = set()
        cursor = node_id
        while cursor != ROOT_ID and cursor in self._nodes:
            if cursor in seen:
                raise MetadataError(f"metadata cycle at {cursor[:8]}")
            seen.add(cursor)
            node = self._nodes[cursor]
            out.append(node)
            cursor = node.prev_id
        if not out:
            raise MetadataError(f"unknown metadata node {node_id[:8]}")
        return out

    def version_at_depth(self, name: str, back: int) -> MetadataNode:
        """Walk ``back`` versions up from the latest head (0 = latest).

        This is the paper's versioning interface: "Clients can recover
        previous versions of files by traversing the metadata tree up
        from the current file version" (Section 5.4).
        """
        chain = self.history(self.latest(name).node_id)
        if back >= len(chain):
            raise MetadataError(
                f"{name!r} has only {len(chain)} versions, asked for {back}"
            )
        return chain[back]

    # -- chunk-level views --------------------------------------------------

    def referenced_chunks(self) -> set[str]:
        """Chunk ids referenced by any non-deleted lineage.

        Used by share garbage-collection: "Shares of the file's component
        chunks are left alone, since other files may contain these
        chunks" — a chunk is reclaimable only when *no* version of *any*
        file references it.
        """
        out: set[str] = set()
        for node in self._nodes.values():
            out.update(c.chunk_id for c in node.chunks)
        return out
