"""Local metadata-tree persistence.

Paper Section 3.2: "clients maintaining local copies of the metadata
tree for efficiency."  A snapshot serialises every known node so a
client can restart without re-fetching all metadata from the CSPs —
the next sync only pulls nodes published since the snapshot.

The snapshot is a convenience copy, never an authority: it contains
node documents exactly as they are scattered to CSPs, so a stale or
deleted snapshot costs only a longer first sync.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

from repro.errors import MetadataError
from repro.metadata.codec import decode_node, encode_node
from repro.metadata.node import MetadataNode
from repro.metadata.tree import MetadataTree
from repro.util.serialization import canonical_dumps, canonical_loads

#: Snapshot format version.
SNAPSHOT_VERSION = 1


def dump_snapshot(nodes: Iterable[MetadataNode]) -> bytes:
    """Serialise nodes to snapshot bytes."""
    docs = [encode_node(node).decode("utf-8") for node in nodes]
    return canonical_dumps({"v": SNAPSHOT_VERSION, "nodes": sorted(docs)})


def load_snapshot(blob: bytes) -> list[MetadataNode]:
    """Parse snapshot bytes back into nodes."""
    try:
        doc = canonical_loads(blob)
        if doc.get("v") != SNAPSHOT_VERSION:
            raise MetadataError(
                f"unsupported snapshot version {doc.get('v')!r}"
            )
        return [decode_node(raw.encode("utf-8")) for raw in doc["nodes"]]
    except MetadataError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise MetadataError(f"corrupt metadata snapshot: {exc}") from exc


def save_tree(tree: MetadataTree, path: str | Path) -> int:
    """Write a tree snapshot to disk; returns the node count.

    Atomic: the bytes go to a sibling temp file first and replace the
    snapshot in one rename, so a crash mid-write leaves the previous
    snapshot intact instead of a torn file.
    """
    nodes = list(tree)
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(dump_snapshot(nodes))
    os.replace(tmp, target)
    return len(nodes)


def quarantine_path(path: str | Path) -> Path:
    """Where :func:`load_tree` sets aside an unreadable snapshot."""
    target = Path(path)
    return target.with_name(target.name + ".corrupt")


def load_tree(tree: MetadataTree, path: str | Path) -> int:
    """Merge a disk snapshot into a tree; returns newly added nodes.

    A missing file is not an error (fresh client): returns 0.  A
    corrupt or truncated snapshot is *quarantined* — renamed aside to
    :func:`quarantine_path` for inspection — and also returns 0: the
    snapshot is only ever a convenience copy of metadata that lives at
    the CSPs, so the correct response to damage is a full sync, not a
    crash loop.
    """
    target = Path(path)
    if not target.exists():
        return 0
    try:
        nodes = load_snapshot(target.read_bytes())
    except MetadataError:
        os.replace(target, quarantine_path(target))
        return 0
    return tree.merge(nodes)
