"""Distributed conflict detection (paper Section 5.4, Figure 8).

Two conflict types:

* ``"same-name"`` — two clients create files with the same filename but
  different contents: two first-level nodes (prevID = 0) share a name.
* ``"divergence"`` — concurrent edits of one version: a node with
  multiple children.

Clients never lock; they upload freely and run this detection when new
metadata arrives (Algorithm 3 line 6).  Resolution keeps the most
recent sibling as the winner and re-labels the losers as conflicted
copies, preserving their data — the same policy Dropbox applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metadata.node import ROOT_ID, MetadataNode
from repro.metadata.tree import MetadataTree


@dataclass(frozen=True)
class Conflict:
    """One detected conflict.

    Attributes:
        kind: ``"same-name"`` or ``"divergence"``.
        name: The contested filename.
        node_ids: The conflicting sibling nodes (2+).
        parent_id: Common parent (ROOT_ID for same-name conflicts).
    """

    kind: str
    name: str
    node_ids: tuple[str, ...]
    parent_id: str


def _branch_leads_to_name(tree: MetadataTree, node: MetadataNode,
                          name: str) -> bool:
    """Whether ``node``'s subtree contains a leaf still named ``name``.

    This is what makes a conflict *resolved*: renaming the losing branch
    to a conflicted-copy name moves its head off the contested filename,
    so the branch stops competing even though the fork stays in history.
    """
    kids = tree.children(node.node_id)
    if not kids:
        return node.name == name
    return any(_branch_leads_to_name(tree, kid, name) for kid in kids)


def _live_branches(
    tree: MetadataTree, siblings: list[MetadataNode], name: str
) -> list[MetadataNode]:
    return [s for s in siblings if _branch_leads_to_name(tree, s, name)]


def detect_conflicts(tree: MetadataTree) -> list[Conflict]:
    """Scan the whole tree for both conflict types.

    A fork only counts as a conflict while two or more of its branches
    still lead to a head under the contested filename; resolved losers
    (renamed to conflicted copies) no longer compete.
    """
    conflicts: list[Conflict] = []
    # type 1: same filename created independently at the first level
    first_level: dict[str, list[MetadataNode]] = {}
    for node in tree.children(ROOT_ID):
        first_level.setdefault(node.name, []).append(node)
    for name, nodes in sorted(first_level.items()):
        live = _live_branches(tree, nodes, name)
        if len(live) > 1:
            conflicts.append(
                Conflict(
                    kind="same-name",
                    name=name,
                    node_ids=tuple(sorted(n.node_id for n in live)),
                    parent_id=ROOT_ID,
                )
            )
    # type 2: any node with multiple children (concurrent edits)
    for node in tree:
        kids = tree.children(node.node_id)
        if len(kids) > 1:
            live = _live_branches(tree, kids, node.name)
            if len(live) > 1:
                conflicts.append(
                    Conflict(
                        kind="divergence",
                        name=node.name,
                        node_ids=tuple(sorted(k.node_id for k in live)),
                        parent_id=node.node_id,
                    )
                )
    return conflicts


def conflicts_for_node(tree: MetadataTree, node: MetadataNode) -> list[Conflict]:
    """The paper's incremental check when one new node arrives.

    "When new metadata is downloaded from the cloud, we check for
    conflicts by first checking if it has a parent.  If so [new file],
    we check for the first type ... The second type of conflict arises
    if the new node has a parent.  We traverse the tree upwards from
    this node, and detect a conflict if we find a node with multiple
    children."
    """
    conflicts: list[Conflict] = []
    if node.is_new_file:
        same = [
            n
            for n in tree.children(ROOT_ID)
            if n.name == node.name and n.node_id != node.node_id
        ]
        if same:
            live = _live_branches(tree, same + [node], node.name)
            if len(live) > 1:
                conflicts.append(
                    Conflict(
                        kind="same-name", name=node.name,
                        node_ids=tuple(sorted(n.node_id for n in live)),
                        parent_id=ROOT_ID,
                    )
                )
        return conflicts
    cursor = node
    while not cursor.is_new_file:
        if cursor.prev_id not in tree:
            break  # ancestor not (yet) synced; next sync will re-check
        parent = tree.get(cursor.prev_id)
        siblings = tree.children(cursor.prev_id)
        if len(siblings) > 1:
            live = _live_branches(tree, siblings, parent.name)
            if len(live) > 1:
                conflicts.append(
                    Conflict(
                        kind="divergence",
                        name=parent.name,
                        node_ids=tuple(sorted(s.node_id for s in live)),
                        parent_id=cursor.prev_id,
                    )
                )
        cursor = parent
    return conflicts


def resolution_winner(tree: MetadataTree, conflict: Conflict) -> str:
    """Deterministic winner: latest modified, ties by node id.

    Every client computes the same winner from the same tree, so no
    coordination is needed to agree.
    """
    nodes = [tree.get(i) for i in conflict.node_ids]
    return max(nodes, key=lambda n: (n.modified, n.node_id)).node_id


def conflicted_copy_name(name: str, client_id: str) -> str:
    """Label for the losing version, preserving the original extension."""
    if "." in name:
        stem, _, ext = name.rpartition(".")
        return f"{stem} (conflicted copy {client_id}).{ext}"
    return f"{name} (conflicted copy {client_id})"
