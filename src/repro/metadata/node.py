"""Metadata nodes: the paper's FileMap / ChunkMap / ShareMap (Figure 6).

A node describes one version of one file.  Its identity is the SHA-1 of
its lineage-defining fields (content id, parent, name, client), so

* re-uploading an identical version from the same client is idempotent
  (same node id), and
* two clients creating different content under one name — or editing
  the same parent differently — produce *different* node ids, which is
  precisely what makes conflicts detectable after the fact (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.hashing import sha1_hex
from repro.util.serialization import canonical_dumps

#: Id of the dummy root node every new file hangs from.
ROOT_ID = "0" * 40


@dataclass(frozen=True)
class ChunkRecord:
    """ChunkMap row: one chunk of the file version.

    ``share_digests`` carries one SHA-1 per share index (the Byzantine
    defense: a downloaded share is verified against its fingerprint
    before decoding, so a lying provider is detected and attributed
    rather than silently poisoning the decode).  Empty on nodes written
    before fingerprints existed; readers must treat those as
    unverifiable-but-trusted and fall back to post-decode checks.
    """

    chunk_id: str
    offset: int
    size: int
    t: int
    n: int
    share_digests: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size < 0:
            raise ValueError("offset and size must be non-negative")
        if not 1 <= self.t <= self.n:
            raise ValueError(f"bad (t, n) = ({self.t}, {self.n})")
        if self.share_digests and len(self.share_digests) != self.n:
            raise ValueError(
                f"need one share digest per index: got "
                f"{len(self.share_digests)} for n={self.n}"
            )

    def digest_of(self, index: int) -> str | None:
        """Expected SHA-1 of one share, or None on a pre-digest node."""
        if not self.share_digests or not 0 <= index < self.n:
            return None
        return self.share_digests[index]


@dataclass(frozen=True)
class ShareRecord:
    """ShareMap row: one share's location."""

    chunk_id: str
    index: int
    csp_id: str

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("share index must be non-negative")


@dataclass(frozen=True)
class MetadataNode:
    """One file version: FileMap fields plus chunk and share tables."""

    file_id: str  # SHA-1 of the file content
    prev_id: str  # parent node id; ROOT_ID for new files
    client_id: str
    name: str
    deleted: bool
    modified: float
    size: int
    chunks: tuple[ChunkRecord, ...] = ()
    shares: tuple[ShareRecord, ...] = ()

    def __post_init__(self) -> None:
        if len(self.file_id) != 40:
            raise ValueError(f"file_id must be a 40-hex SHA-1, got {self.file_id!r}")
        if len(self.prev_id) != 40:
            raise ValueError(f"prev_id must be a 40-hex SHA-1, got {self.prev_id!r}")
        if not self.name:
            raise ValueError("file name must be non-empty")
        if self.size < 0:
            raise ValueError("size must be non-negative")
        chunk_ids = {c.chunk_id for c in self.chunks}
        for share in self.shares:
            if share.chunk_id not in chunk_ids:
                raise ValueError(
                    f"share references unknown chunk {share.chunk_id[:8]}"
                )

    @property
    def node_id(self) -> str:
        """Identity: SHA-1 over (file_id, prev_id, name, client_id)."""
        return sha1_hex(
            canonical_dumps(
                [self.file_id, self.prev_id, self.name, self.client_id]
            )
        )

    @property
    def is_new_file(self) -> bool:
        """Whether this node starts a lineage (prevID = 0, Section 5.2)."""
        return self.prev_id == ROOT_ID

    def shares_of(self, chunk_id: str) -> list[ShareRecord]:
        """ShareMap rows for one chunk."""
        return [s for s in self.shares if s.chunk_id == chunk_id]

    def chunk_span(self) -> int:
        """Total bytes covered by the ChunkMap (== size when intact)."""
        return sum(c.size for c in self.chunks)
