"""Sharded metadata: per-file version trees consistent-hashed across
metadata CSP groups.

The paper stores metadata "at a fixed set of m CSPs" (Section 5.2,
footnote 3) — fine for one user, but a fleet of tenants hammering one
m-provider group turns the metadata plane into the scaling bottleneck
the data plane's consistent-hash placement was built to avoid.  The
fleet harness therefore shards: providers are organised into *groups*
of m CSPs each, and a file's whole version tree is consistent-hashed
(:class:`repro.hashring.ConsistentHashRing`, the same ring the data
plane uses) onto one group by its routing key ``route_prefix + name``.

Keeping every version of a file in one group preserves the paper's
invariants *within* the group — share index i of a node always lives on
``group[i]``, publishes tolerate ``m - t`` group failures, the verified
quorum fetch sees all m slots of its group — while the fleet's load
spreads across groups.  A group-wide outage therefore degrades exactly
the files (and, with per-tenant routing prefixes, exactly the tenants)
whose keys hash into it; everyone else's metadata plane is untouched.

The facade deliberately *quacks like* :class:`MetadataStore`: every
group shares one ``(key, t, m)`` codec, so the facade exposes the same
``t``/``m``/``_sharer``/``providers`` surface and the core's sync
service, uploader and repair workers run against it unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.csp.base import CloudProvider
from repro.errors import (
    CSPError,
    CyrusError,
    InsufficientSharesError,
    MetadataError,
)
from repro.hashring import ConsistentHashRing
from repro.metadata.codec import metadata_share_name
from repro.metadata.node import MetadataNode
from repro.metadata.store import META_DEBTS_RECORDED, MetadataStore, NodeAssembler


class ShardedMetadataStore:
    """Consistent-hash routing over equal-size metadata CSP groups.

    Args:
        groups: The metadata CSP groups, each a sequence of exactly m
            providers in stable order (share index i of a routed node
            goes to ``group[i]``).  All groups must be the same size so
            one ``(key, t, m)`` codec serves every shard.
        key: The user key string (drives the dispersal matrix).
        t: Shares needed to reconstruct a node.
        route_prefix: Prepended to file names before hashing — the
            fleet passes ``f"{tenant_id}/"`` so each tenant's files get
            an independent spot on the ring (and a tenant's whole
            namespace can be audited against its group assignment).
        ring_replicas: Virtual nodes per group on the routing ring.
        health / metrics / ledger / clock: As for
            :class:`MetadataStore`; shared by all groups.
    """

    def __init__(
        self,
        groups: Sequence[Sequence[CloudProvider]],
        key: str,
        t: int = 2,
        health=None,
        metrics=None,
        ledger=None,
        clock=None,
        route_prefix: str = "",
        ring_replicas: int = 64,
    ):
        if not groups:
            raise MetadataError("need at least one metadata group")
        sizes = {len(g) for g in groups}
        if len(sizes) != 1:
            raise MetadataError(
                f"metadata groups must be equal-sized (one (t, m) codec "
                f"serves all shards), got sizes {sorted(sizes)}"
            )
        self.groups = [
            MetadataStore(g, key, t, health=health, metrics=metrics,
                          ledger=ledger, clock=clock)
            for g in groups
        ]
        self.group_ids = [
            "|".join(p.csp_id for p in g) for g in groups
        ]
        if len(set(self.group_ids)) != len(self.group_ids):
            raise MetadataError("metadata groups must be distinct")
        self.key = key
        self.t = t
        self.health = health
        self.metrics = metrics
        self.ledger = ledger
        self.clock = clock
        self.route_prefix = route_prefix
        self.ring = ConsistentHashRing(replicas=ring_replicas)
        for gid in self.group_ids:
            self.ring.add(gid)
        self._index_of = {gid: i for i, gid in enumerate(self.group_ids)}
        # node_id -> group index, learned from publishes and listings so
        # fetches (which only carry the node id, not the routable file
        # name) usually skip the locate step
        self._located: dict[str, int] = {}

    # -- MetadataStore surface (what sync/upload/repair touch) -----------

    @property
    def m(self) -> int:
        """Providers per group — the codec's m, not the fleet total."""
        return self.groups[0].m

    @property
    def providers(self) -> list[CloudProvider]:
        """All providers across all groups, group-major.

        The sync service lists these directly; shares of a node exist
        only in its own group, so the union listing still yields one
        coherent (index, csp) set per node.
        """
        return [p for g in self.groups for p in g.providers]

    @property
    def _sharer(self):
        """One codec serves every group (equal m enforced above)."""
        return self.groups[0]._sharer

    def publish_stamp(self) -> int:
        return self.groups[0].publish_stamp()

    def decode_shares(self, shares) -> MetadataNode:
        return self.groups[0].decode_shares(shares)

    def share_size(self, node: MetadataNode) -> int:
        return self.groups[0].share_size(node)

    def assembler(self, node_id: str) -> NodeAssembler:
        """A verified-decode accumulator bound to this facade."""
        return NodeAssembler(self, node_id)

    def _record_meta_debt(self, node_id: str, missing, failed_csps=()) -> None:
        if self.ledger is None:
            return
        self.ledger.record(node_id, missing=tuple(missing),
                           failed_csps=tuple(failed_csps), kind="meta")
        if self.metrics is not None:
            self.metrics.inc(META_DEBTS_RECORDED)

    # -- routing ----------------------------------------------------------

    def route_key(self, name: str) -> str:
        return self.route_prefix + name

    def shard_for(self, name: str) -> int:
        """Group index owning a file's version tree."""
        return self._index_of[self.ring.owner(self.route_key(name))]

    def store_for(self, name: str) -> MetadataStore:
        """The group store a file's versions live in."""
        return self.groups[self.shard_for(name)]

    def _remember(self, node: MetadataNode) -> int:
        shard = self.shard_for(node.name)
        self._located[node.node_id] = shard
        return shard

    # -- write path --------------------------------------------------------

    def shares_for(self, node: MetadataNode):
        return self.groups[self._remember(node)].shares_for(node)

    def frames_for(self, node: MetadataNode, stamp: int | None = None):
        return self.groups[self._remember(node)].frames_for(node, stamp)

    def publish(self, node: MetadataNode, stamp: int | None = None) -> None:
        """Publish to the owning group (tolerating its m - t failures)."""
        self.groups[self._remember(node)].publish(node, stamp)

    # -- read path ---------------------------------------------------------

    def _locate(self, node_id: str) -> tuple[int | None, list[int]]:
        """(group listing the node's shares, groups that couldn't answer).

        Locating via listings — not trial fetches — keeps a probe of the
        wrong group from minting bogus "missing share" repair debts.
        """
        dark: list[int] = []
        order = sorted(
            range(len(self.groups)),
            key=lambda g: (self._located.get(node_id) != g, g),
        )
        for g in order:
            reachable = False
            for index, provider in enumerate(self.groups[g].providers):
                try:
                    infos = provider.list(
                        prefix=metadata_share_name(node_id, index)
                    )
                except CSPError:
                    continue
                reachable = True
                if infos:
                    return g, dark
            if not reachable:
                dark.append(g)
        return None, dark

    def fetch(self, node_id: str) -> MetadataNode:
        """Verified quorum fetch from the node's group.

        The owning group is the location cache entry, else the group
        whose listing shows the node's shares; groups that are entirely
        unreachable are fetch-probed last (their shares may exist behind
        the outage, and an unreachable probe records no debts).
        """
        found, dark = self._locate(node_id)
        last: CyrusError | None = None
        candidates = ([found] if found is not None else []) + dark
        for g in candidates:
            try:
                node = self.groups[g].fetch(node_id)
            except CyrusError as exc:
                last = exc
                continue
            self._located[node_id] = g
            return node
        if last is not None:
            raise last
        raise InsufficientSharesError(
            f"metadata node {node_id[:8]}: no group lists its shares "
            f"({len(self.groups)} groups probed)"
        )

    def list_node_ids(self) -> set[str]:
        """Union of per-group listings; unreachable groups degrade.

        A group that cannot muster t reachable providers is skipped —
        its files are unavailable, everyone else's stay listed.  Only
        when *every* group is below quorum does the listing fail.
        """
        out: set[str] = set()
        errors: list[MetadataError] = []
        for g, group in enumerate(self.groups):
            try:
                ids = group.list_node_ids()
            except MetadataError as exc:
                errors.append(exc)
                continue
            for nid in ids:
                self._located.setdefault(nid, g)
            out |= ids
        if errors and len(errors) == len(self.groups):
            raise MetadataError(
                f"all {len(self.groups)} metadata groups below quorum "
                f"(first: {errors[0]})"
            )
        return out

    def fetch_all(self) -> list[MetadataNode]:
        return [self.fetch(nid) for nid in sorted(self.list_node_ids())]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ShardedMetadataStore groups={len(self.groups)} "
                f"m={self.m} t={self.t}>")
