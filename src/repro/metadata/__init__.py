"""File metadata: version trees, conflict detection, scattered storage.

Every file stored in CYRUS has per-version metadata nodes holding the
paper's three tables (Figure 6): FileMap (identity, lineage, naming),
ChunkMap (how to rebuild the file from chunks) and ShareMap (where each
chunk's shares live).  Nodes form a logical tree under a dummy root;
children of a node are successive versions, and siblings are concurrent
— possibly conflicting — updates (Figure 8).  Metadata is itself secret-
shared across a fixed set of CSPs (Section 5.2), so no central metadata
server exists.
"""

from repro.metadata.chunktable import GlobalChunkTable
from repro.metadata.codec import (
    decode_node,
    encode_node,
    metadata_share_name,
    parse_metadata_share_name,
)
from repro.metadata.conflicts import Conflict, detect_conflicts
from repro.metadata.node import ROOT_ID, ChunkRecord, MetadataNode, ShareRecord
from repro.metadata.sharded import ShardedMetadataStore
from repro.metadata.store import MetadataStore
from repro.metadata.tree import MetadataTree

__all__ = [
    "MetadataNode",
    "ChunkRecord",
    "ShareRecord",
    "ROOT_ID",
    "MetadataTree",
    "Conflict",
    "detect_conflicts",
    "encode_node",
    "decode_node",
    "metadata_share_name",
    "parse_metadata_share_name",
    "MetadataStore",
    "ShardedMetadataStore",
    "GlobalChunkTable",
]
