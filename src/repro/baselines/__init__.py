"""Simple storage baselines for Figure 16: full replication and striping."""

from repro.baselines.replication import FullReplicationClient
from repro.baselines.striping import FullStripingClient

__all__ = ["FullReplicationClient", "FullStripingClient"]
