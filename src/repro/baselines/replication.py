"""Full replication baseline (paper Figure 16).

"Full Replication stores a 40 MB replica ... at each of the four CSPs."
Upload pushes a complete copy to every CSP in parallel; download fetches
one copy from a chosen CSP.  The paper reports the download averaged
over all CSPs, and also quotes the best/worst single-CSP times, so the
client exposes per-CSP downloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.transfer import OpKind, TransferEngine, TransferOp
from repro.errors import ObjectNotFoundError, TransferError
from repro.util.hashing import sha1_hex


@dataclass
class BaselineReport:
    """Timing of one replication/striping operation."""

    started: float
    finished: float
    bytes_moved: int
    data: bytes | None = None

    @property
    def duration(self) -> float:
        return self.finished - self.started


class FullReplicationClient:
    """One full copy per CSP; reliability n-of-n, privacy none."""

    def __init__(self, engine: TransferEngine, csp_ids: list[str]):
        if not csp_ids:
            raise TransferError("need at least one CSP")
        self.engine = engine
        self.csp_ids = list(csp_ids)

    def _name(self, name: str) -> str:
        return f"repl-{sha1_hex(name.encode())}"

    def upload(self, name: str, data: bytes) -> BaselineReport:
        """PUT the whole object to every CSP in parallel."""
        started = self.engine.clock.now()
        ops = [
            TransferOp(kind=OpKind.PUT, csp_id=csp, name=self._name(name),
                       data=data)
            for csp in self.csp_ids
        ]
        results = self.engine.execute(ops)
        stored = sum(1 for r in results if r.ok)
        if stored == 0:
            raise TransferError(f"replication of {name!r} failed everywhere")
        finished = self.engine.clock.now()
        return BaselineReport(
            started=started, finished=finished,
            bytes_moved=sum(r.op.payload_size() for r in results if r.ok),
        )

    def download(self, name: str, csp_id: str, size: int) -> BaselineReport:
        """GET the full object from one specific CSP."""
        started = self.engine.clock.now()
        result = self.engine.execute(
            [TransferOp(kind=OpKind.GET, csp_id=csp_id, name=self._name(name),
                        size=size)]
        )[0]
        if not result.ok:
            raise ObjectNotFoundError(
                f"replica of {name!r} unavailable at {csp_id}", csp_id=csp_id
            )
        finished = self.engine.clock.now()
        return BaselineReport(
            started=started, finished=finished,
            bytes_moved=result.op.payload_size(), data=result.data,
        )
