"""Full striping baseline (paper Figure 16).

"Full Striping [stores] a 10 MB fragment at each of the four CSPs."
The file is split into one plaintext fragment per CSP: the least data
moved of any scheme (hence the fastest uploads) but zero redundancy —
any CSP failure loses the file — and zero privacy (fragments are
plaintext).
"""

from __future__ import annotations

from repro.baselines.replication import BaselineReport
from repro.core.transfer import OpKind, TransferEngine, TransferOp
from repro.errors import ObjectNotFoundError, TransferError
from repro.util.hashing import sha1_hex


class FullStripingClient:
    """One plaintext fragment per CSP; no redundancy, no privacy."""

    def __init__(self, engine: TransferEngine, csp_ids: list[str]):
        if not csp_ids:
            raise TransferError("need at least one CSP")
        self.engine = engine
        self.csp_ids = list(csp_ids)

    def _name(self, name: str, index: int) -> str:
        return f"stripe-{sha1_hex(name.encode())}-{index:03d}"

    def _fragments(self, data: bytes) -> list[bytes]:
        count = len(self.csp_ids)
        frag = -(-len(data) // count) if data else 0
        return [data[i * frag : (i + 1) * frag] for i in range(count)]

    def upload(self, name: str, data: bytes) -> BaselineReport:
        """PUT fragment i to CSP i, all in parallel."""
        started = self.engine.clock.now()
        ops = [
            TransferOp(kind=OpKind.PUT, csp_id=csp,
                       name=self._name(name, i), data=frag)
            for i, (csp, frag) in enumerate(
                zip(self.csp_ids, self._fragments(data))
            )
        ]
        results = self.engine.execute(ops)
        if not all(r.ok for r in results):
            failed = [r.op.csp_id for r in results if not r.ok]
            raise TransferError(
                f"striping of {name!r} failed at {failed}; the file is "
                f"unrecoverable (no redundancy)"
            )
        finished = self.engine.clock.now()
        return BaselineReport(
            started=started, finished=finished,
            bytes_moved=sum(r.op.payload_size() for r in results if r.ok),
        )

    def download(self, name: str, size: int) -> BaselineReport:
        """GET every fragment in parallel; any failure loses the file."""
        started = self.engine.clock.now()
        count = len(self.csp_ids)
        frag = -(-size // count) if size else 0
        ops = []
        for i, csp in enumerate(self.csp_ids):
            frag_size = min(frag, max(0, size - i * frag))
            ops.append(
                TransferOp(kind=OpKind.GET, csp_id=csp,
                           name=self._name(name, i), size=frag_size)
            )
        results = self.engine.execute(ops)
        if not all(r.ok for r in results):
            failed = [r.op.csp_id for r in results if not r.ok]
            raise ObjectNotFoundError(
                f"stripe fragments of {name!r} missing at {failed}"
            )
        data = b"".join(r.data for r in results)[:size]
        finished = self.engine.clock.now()
        return BaselineReport(
            started=started, finished=finished,
            bytes_moved=sum(r.op.payload_size() for r in results if r.ok),
            data=data,
        )
