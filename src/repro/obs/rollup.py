"""Fleet-level metric rollups: latency percentiles and load balance.

A fleet run produces one :class:`MetricsSnapshot` per tenant (each
client owns its Observability) plus per-tenant latency samples from the
harness.  This module folds them into the two fleet-level views the
paper's evaluation cares about:

* **latency percentiles** — per-tenant and fleet p50/p99 of sync and
  transfer times, computed with the nearest-rank method (exact on the
  sample set, no interpolation, deterministic);
* **load balance** — per-CSP byte and operation totals from the merged
  snapshots (``cyrus_transfer_bytes_total`` / ``cyrus_ops_total``, the
  engine-recorded single source of byte/op truth), summarised as a
  *skew* ratio max/mean.  Consistent-hash placement should keep skew
  near 1; the CI gate fails a fleet run whose skew reaches 2.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.obs import OPS_TOTAL, TRANSFER_BYTES
from repro.obs.metrics import MetricsSnapshot


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); NaN on no samples."""
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not samples:
        return math.nan
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def latency_summary(samples: Sequence[float]) -> dict[str, float]:
    """count/p50/p99/mean/max of one latency sample set."""
    if not samples:
        return {"count": 0, "p50": math.nan, "p99": math.nan,
                "mean": math.nan, "max": math.nan}
    return {
        "count": len(samples),
        "p50": percentile(samples, 50),
        "p99": percentile(samples, 99),
        "mean": sum(samples) / len(samples),
        "max": max(samples),
    }


def merge_snapshots(snapshots: Sequence[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold per-tenant snapshots into one fleet snapshot (associative)."""
    if not snapshots:
        raise ValueError("need at least one snapshot")
    merged = snapshots[0]
    for snap in snapshots[1:]:
        merged = merged.merge(snap)
    return merged


def per_csp_bytes(snapshot: MetricsSnapshot) -> dict[str, float]:
    """Bytes moved per CSP (uploads + downloads), from the registry."""
    return snapshot.counter_by(TRANSFER_BYTES, "csp")


def per_csp_ops(snapshot: MetricsSnapshot) -> dict[str, float]:
    """Operations dispatched per CSP, from the registry."""
    return snapshot.counter_by(OPS_TOTAL, "csp")


def load_skew(per_csp: Mapping[str, float]) -> float:
    """max/mean load ratio across CSPs (1.0 = perfectly balanced).

    NaN when nothing was recorded — a run that moved zero bytes has no
    balance to speak of, and NaN trips the CI finiteness gate rather
    than masquerading as perfect balance.
    """
    loads = [v for v in per_csp.values() if v > 0]
    if not loads:
        return math.nan
    return max(loads) / (sum(loads) / len(loads))
