"""Zero-dependency metrics: counters, gauges, fixed-bucket histograms.

The paper's evaluation (Sections 6-8) is built on *measured* quantities
— bytes moved per CSP, per-chunk completion times, retry counts under
churn — which the repro previously re-derived ad hoc inside each
benchmark.  :class:`MetricsRegistry` is the single place those numbers
accumulate: the transfer engines, the retry loops, the resilient
provider wrapper, the chunk cache and the network simulator all record
into one registry, and tests/benchmarks read an immutable
:class:`MetricsSnapshot` instead of recomputing from reports.

Design rules (all load-bearing for the test suite):

* label sets are normalised to sorted tuples, so a series is identified
  independently of keyword order;
* counters only go up; negative increments are errors;
* histograms have *fixed* bucket bounds chosen at creation — observing
  never changes the layout, so snapshots of the same metric are always
  merge-compatible;
* :meth:`MetricsRegistry.snapshot` deep-copies into read-only mappings:
  later registry activity never mutates an existing snapshot;
* :meth:`MetricsSnapshot.merge` is associative (counters and histogram
  buckets add; gauges add; min/max combine), so per-worker snapshots
  can be folded in any grouping.
"""

from __future__ import annotations

import bisect
import json
import threading
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, Mapping, Sequence

LabelKey = tuple  # tuple[tuple[str, str], ...]

#: Default duration buckets (seconds): sub-millisecond API calls up to
#: minutes-long simulated WAN transfers.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 300.0,
)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelKey) -> dict[str, str]:
    return dict(key)


def _matches(key: LabelKey, subset: Mapping[str, object]) -> bool:
    have = dict(key)
    return all(have.get(k) == str(v) for k, v in subset.items())


class Counter:
    """A monotonically increasing, labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """The value of one exact label set (0 if never incremented)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self, **labels) -> float:
        """Sum over every series matching the given label *subset*."""
        with self._lock:
            return sum(v for k, v in self._series.items() if _matches(k, labels))

    def series(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)


class Gauge:
    """A labelled value that can move both ways (e.g. cache occupancy)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels) -> None:
        """Raise the gauge to ``value`` if below (atomic high-water mark)."""
        key = _label_key(labels)
        with self._lock:
            if value > self._series.get(key, 0.0):
                self._series[key] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)


@dataclass(frozen=True)
class HistogramData:
    """One series' frozen histogram state.

    ``counts`` has ``len(bounds) + 1`` entries: one per upper bound plus
    the overflow bucket.  Invariants (asserted by the property tests):
    ``sum(counts) == count``; the cumulative sequence is monotone and
    ends at ``count``; ``bound(min) <= ... <= bound(max)``.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    sum: float
    min: float | None
    max: float | None

    def cumulative(self) -> tuple[int, ...]:
        """Prometheus-style cumulative ``le`` counts (ends at count)."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return tuple(out)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram:
    """A labelled histogram with fixed bucket upper bounds."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name}: need at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name}: bucket bounds must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        # per label set: [counts list, count, sum, min, max]
        self._series: dict[LabelKey, list] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = [[0] * (len(self.bounds) + 1), 0, 0.0, None, None]
                self._series[key] = state
            idx = bisect.bisect_left(self.bounds, value)
            state[0][idx] += 1
            state[1] += 1
            state[2] += value
            state[3] = value if state[3] is None else min(state[3], value)
            state[4] = value if state[4] is None else max(state[4], value)

    def data(self, **labels) -> HistogramData:
        with self._lock:
            state = self._series.get(_label_key(labels))
            if state is None:
                return HistogramData(self.bounds,
                                     (0,) * (len(self.bounds) + 1),
                                     0, 0.0, None, None)
            counts, count, total, lo, hi = state
            return HistogramData(self.bounds, tuple(counts), count, total,
                                 lo, hi)

    def series(self) -> dict[LabelKey, HistogramData]:
        with self._lock:
            keys = list(self._series)
        return {key: self.data(**_labels_dict(key)) for key in keys}


def _merge_hist(a: HistogramData, b: HistogramData) -> HistogramData:
    if a.bounds != b.bounds:
        raise ValueError("cannot merge histograms with different buckets")
    lo = a.min if b.min is None else (b.min if a.min is None else min(a.min, b.min))
    hi = a.max if b.max is None else (b.max if a.max is None else max(a.max, b.max))
    return HistogramData(
        bounds=a.bounds,
        counts=tuple(x + y for x, y in zip(a.counts, b.counts)),
        count=a.count + b.count,
        sum=a.sum + b.sum,
        min=lo,
        max=hi,
    )


class MetricsSnapshot:
    """A frozen, read-only view of a registry at one instant.

    The nested mappings are :class:`types.MappingProxyType` over private
    copies: mutating the source registry afterwards does not change the
    snapshot, and attempts to assign into the snapshot raise.
    """

    def __init__(
        self,
        counters: Mapping[str, Mapping[LabelKey, float]],
        gauges: Mapping[str, Mapping[LabelKey, float]],
        histograms: Mapping[str, Mapping[LabelKey, HistogramData]],
    ):
        self.counters = MappingProxyType(
            {n: MappingProxyType(dict(s)) for n, s in counters.items()}
        )
        self.gauges = MappingProxyType(
            {n: MappingProxyType(dict(s)) for n, s in gauges.items()}
        )
        self.histograms = MappingProxyType(
            {n: MappingProxyType(dict(s)) for n, s in histograms.items()}
        )

    # -- reads ------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        return self.counters.get(name, {}).get(_label_key(labels), 0.0)

    def counter_total(self, name: str, **labels) -> float:
        """Sum of a counter over every series matching a label subset."""
        series = self.counters.get(name, {})
        return sum(v for k, v in series.items() if _matches(k, labels))

    def counter_by(self, name: str, label: str, **labels) -> dict[str, float]:
        """A counter aggregated by one label (e.g. per-CSP totals)."""
        out: dict[str, float] = {}
        for key, value in self.counters.get(name, {}).items():
            if not _matches(key, labels):
                continue
            who = dict(key).get(label)
            if who is not None:
                out[who] = out.get(who, 0.0) + value
        return dict(sorted(out.items()))

    def gauge_value(self, name: str, **labels) -> float:
        return self.gauges.get(name, {}).get(_label_key(labels), 0.0)

    def histogram_data(self, name: str, **labels) -> HistogramData | None:
        series = self.histograms.get(name, {})
        merged: HistogramData | None = None
        for key, data in series.items():
            if not _matches(key, labels):
                continue
            merged = data if merged is None else _merge_hist(merged, data)
        return merged

    # -- algebra ----------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Pointwise sum of two snapshots (associative)."""
        counters: dict[str, dict[LabelKey, float]] = {}
        for src in (self.counters, other.counters):
            for name, series in src.items():
                bucket = counters.setdefault(name, {})
                for key, value in series.items():
                    bucket[key] = bucket.get(key, 0.0) + value
        gauges: dict[str, dict[LabelKey, float]] = {}
        for src in (self.gauges, other.gauges):
            for name, series in src.items():
                bucket = gauges.setdefault(name, {})
                for key, value in series.items():
                    bucket[key] = bucket.get(key, 0.0) + value
        hists: dict[str, dict[LabelKey, HistogramData]] = {}
        for src in (self.histograms, other.histograms):
            for name, series in src.items():
                bucket = hists.setdefault(name, {})
                for key, data in series.items():
                    prior = bucket.get(key)
                    bucket[key] = data if prior is None else _merge_hist(prior, data)
        return MetricsSnapshot(counters, gauges, hists)

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        def series_out(series: Mapping[LabelKey, float]) -> list[dict]:
            return [
                {"labels": _labels_dict(k), "value": v}
                for k, v in sorted(series.items())
            ]

        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, series in sorted(self.counters.items()):
            out["counters"][name] = series_out(series)
        for name, series in sorted(self.gauges.items()):
            out["gauges"][name] = series_out(series)
        for name, series in sorted(self.histograms.items()):
            out["histograms"][name] = [
                {
                    "labels": _labels_dict(k),
                    "bounds": list(d.bounds),
                    "counts": list(d.counts),
                    "count": d.count,
                    "sum": d.sum,
                    "min": d.min,
                    "max": d.max,
                }
                for k, d in sorted(series.items())
            ]
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class MetricsRegistry:
    """The process-wide family store: name -> Counter/Gauge/Histogram.

    Re-requesting an existing name returns the existing metric; asking
    for the same name as a different kind (or a histogram with different
    buckets) is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def __iter__(self) -> Iterator[object]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def _get(self, name: str, kind: type, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] | None = None) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if buckets is not None and tuple(float(b) for b in buckets) != existing.bounds:
                raise ValueError(
                    f"histogram {name!r} already registered with different buckets"
                )
            return existing
        return self._get(name, Histogram, help=help,
                         buckets=tuple(buckets) if buckets else DEFAULT_BUCKETS)

    # -- one-line conveniences -------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        self.counter(name).inc(amount, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        self.histogram(name).observe(value, **labels)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauge(name).set(value, **labels)

    def snapshot(self) -> MetricsSnapshot:
        counters: dict[str, dict[LabelKey, float]] = {}
        gauges: dict[str, dict[LabelKey, float]] = {}
        hists: dict[str, dict[LabelKey, HistogramData]] = {}
        with self._lock:
            metrics = list(self._metrics.items())
        for name, metric in metrics:
            if isinstance(metric, Counter):
                counters[name] = metric.series()
            elif isinstance(metric, Gauge):
                gauges[name] = metric.series()
            elif isinstance(metric, Histogram):
                hists[name] = metric.series()
        return MetricsSnapshot(counters, gauges, hists)
