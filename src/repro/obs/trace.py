"""Lightweight tracing: nested spans over a deterministic clock.

A :class:`Tracer` records :class:`Span` trees — sync → file → chunk →
share put/get — with timestamps taken from a :class:`repro.util.clock.Clock`,
so traces of simulated runs are bit-for-bit reproducible.  Spans export
as plain JSON (for tests) and as a Chrome-trace ``traceEvents`` file
(open in ``chrome://tracing`` / Perfetto) where each CSP gets its own
thread lane.

No globals: a tracer is an explicit object owned by the
:class:`repro.obs.Observability` facade.  The active-span stack belongs
to the pipeline thread that opens spans; pool workers attach their
already-timed op intervals via :meth:`Tracer.record` under the tracer's
lock, so concurrent recording interleaves children without corrupting
the tree (attachment order between workers is scheduling-dependent,
timestamps are not).
"""

from __future__ import annotations

import itertools
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.util.clock import Clock, WallClock


@dataclass
class Span:
    """One timed operation; children nest inside the parent interval."""

    span_id: int
    name: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendants (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Records span trees against an injected clock."""

    def __init__(self, clock: Clock | None = None):
        self.clock = clock or WallClock()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)
        self._lock = threading.RLock()

    # -- recording --------------------------------------------------------

    def start_span(self, name: str, **attrs) -> Span:
        with self._lock:
            parent = self._stack[-1] if self._stack else None
            span = Span(
                span_id=next(self._ids),
                name=name,
                start=self.clock.now(),
                parent_id=parent.span_id if parent else None,
                attrs=attrs,
            )
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
            self._stack.append(span)
            return span

    def end_span(self, span: Span) -> None:
        with self._lock:
            if span.end is None:
                span.end = self.clock.now()
            while self._stack and self._stack[-1] is not span:
                # close abandoned inner spans rather than corrupting nesting
                dangling = self._stack.pop()
                if dangling.end is None:
                    dangling.end = span.end
            if self._stack and self._stack[-1] is span:
                self._stack.pop()

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        span = self.start_span(name, **attrs)
        try:
            yield span
        finally:
            self.end_span(span)

    def record(self, name: str, start: float, end: float, **attrs) -> Span:
        """Attach an already-timed interval (e.g. an engine OpResult)
        as a child of the currently open span."""
        with self._lock:
            parent = self._stack[-1] if self._stack else None
            span = Span(
                span_id=next(self._ids),
                name=name,
                start=start,
                end=end,
                parent_id=parent.span_id if parent else None,
                attrs=attrs,
            )
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
            return span

    # -- queries ----------------------------------------------------------

    def all_spans(self) -> list[Span]:
        with self._lock:
            roots = list(self.roots)
        return [s for root in roots for s in root.walk()]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.all_spans() if s.name == name]

    def check_well_formed(self, slack: float = 1e-9) -> list[str]:
        """Structural validation; returns a list of problems (empty = ok).

        Checks: every span is finished; end >= start; every child
        interval lies within its parent's (within ``slack``); parent ids
        match the actual tree; span ids are unique.
        """
        problems: list[str] = []
        seen: set[int] = set()
        for root in self.roots:
            for span in root.walk():
                if span.span_id in seen:
                    problems.append(f"duplicate span id {span.span_id}")
                seen.add(span.span_id)
                if not span.finished:
                    problems.append(f"unfinished span {span.name!r}")
                    continue
                if span.end < span.start:
                    problems.append(
                        f"span {span.name!r} ends before it starts"
                    )
                for child in span.children:
                    if child.parent_id != span.span_id:
                        problems.append(
                            f"span {child.name!r} has wrong parent_id"
                        )
                    if not child.finished:
                        continue
                    if (child.start < span.start - slack
                            or (span.end is not None
                                and child.end > span.end + slack)):
                        problems.append(
                            f"child {child.name!r} "
                            f"[{child.start:.6f}, {child.end:.6f}] outside "
                            f"parent {span.name!r} "
                            f"[{span.start:.6f}, {span.end:.6f}]"
                        )
        return problems

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {"spans": [root.to_dict() for root in self.roots]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON: one complete (``ph: "X"``) event per
        span, timestamps in microseconds.  Spans carrying a ``csp``
        attribute land on that CSP's thread lane; the rest go to the
        ``client`` lane, so the paper's parallel per-CSP transfer
        pictures (Figures 14/17) fall straight out of the viewer."""
        lanes: dict[str, int] = {"client": 0}
        events: list[dict] = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "cyrus"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "client"}},
        ]
        for span in self.all_spans():
            if not span.finished:
                continue
            csp = span.attrs.get("csp")
            lane_name = str(csp) if csp else "client"
            tid = lanes.get(lane_name)
            if tid is None:
                tid = len(lanes)
                lanes[lane_name] = tid
                events.append(
                    {"name": "thread_name", "ph": "M", "pid": 1,
                     "tid": tid, "args": {"name": lane_name}}
                )
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "args": {k: v for k, v in span.attrs.items()
                             if isinstance(v, (str, int, float, bool))},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent)
