"""repro.obs — zero-dependency observability for the transfer stack.

Three cooperating pieces, all driven by the injected
:class:`repro.util.clock.Clock` so simulated runs stay deterministic:

* :class:`MetricsRegistry` / :class:`MetricsSnapshot` — labelled
  counters, gauges and fixed-bucket histograms (bytes per CSP, retries,
  breaker transitions, cache hit rate, encode/decode time);
* :class:`Tracer` / :class:`Span` — nested span trees per operation
  (sync → chunk → share put/get), exportable as JSON and Chrome-trace;
* :class:`TransferTimeline` — the paper's Figure 14/17 per-CSP parallel
  transfer picture, rebuilt from op results or op spans.

:class:`Observability` bundles one registry + one tracer and owns the
single integration point with the engines: every ``OpResult`` that flows
through ``TransferEngine._emit`` lands in :meth:`Observability.record_op`,
making the metrics layer the one source of byte/retry truth (reports and
benchmarks derive from it instead of re-counting).
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.timeline import TimelineBar, TransferTimeline
from repro.obs.trace import Span, Tracer
from repro.util.clock import Clock, WallClock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observability",
    "Span",
    "TimelineBar",
    "Tracer",
    "TransferTimeline",
    "span_if",
    "latency_summary",
    "load_skew",
    "merge_snapshots",
    "per_csp_bytes",
    "per_csp_ops",
    "percentile",
]

# Metric names (single place, so tests and docs cannot drift):
OPS_TOTAL = "cyrus_ops_total"                        # {csp, kind, outcome}
TRANSFER_BYTES = "cyrus_transfer_bytes_total"        # {csp, direction}
OP_FAILURES = "cyrus_op_failures_total"              # {csp, error_type}
OP_DURATION = "cyrus_op_duration_seconds"            # {kind}


class Observability:
    """One metrics registry + one tracer sharing one clock."""

    def __init__(self, clock: Clock | None = None):
        self.clock = clock if clock is not None else WallClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock)

    # -- engine hook ------------------------------------------------------

    def record_op(self, result) -> None:
        """Ingest one engine ``OpResult``: the authoritative accounting
        of every dispatched provider operation.

        Bytes are counted exactly once per *successful* op — retries and
        failed attempts never inflate ``cyrus_transfer_bytes_total``,
        which is what makes this layer the single source of truth the
        ad-hoc benchmark accounting was not.
        """
        op = result.op
        kind = op.kind.value if hasattr(op.kind, "value") else str(op.kind)
        outcome = ("cancelled" if result.cancelled
                   else "ok" if result.ok else "error")
        self.metrics.inc(OPS_TOTAL, csp=op.csp_id, kind=kind, outcome=outcome)
        nbytes = (len(result.data) if result.data is not None
                  else op.payload_size())
        if result.ok:
            self.metrics.inc(TRANSFER_BYTES, nbytes,
                             csp=op.csp_id, direction=op.kind.direction)
        elif not result.cancelled:
            self.metrics.inc(OP_FAILURES, csp=op.csp_id,
                             error_type=result.error_type or "unknown")
        if not result.cancelled:
            self.metrics.observe(OP_DURATION, result.duration, kind=kind)
        attrs = {
            "csp": op.csp_id,
            "op_kind": kind,
            "object": op.name,
            "bytes": nbytes if result.ok else 0,
            "ok": result.ok,
        }
        if result.cancelled:
            attrs["cancelled"] = True
        if op.chunk_id:
            attrs["chunk"] = op.chunk_id
        if result.error_type:
            attrs["error_type"] = result.error_type
        self.tracer.record("op", result.start, result.end, **attrs)

    # -- passthroughs -----------------------------------------------------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def timeline(self) -> TransferTimeline:
        return TransferTimeline.from_tracer(self.tracer)


def span_if(obs: Observability | None, name: str, **attrs):
    """A span context when observability is attached, else a no-op —
    lets instrumented code read the same with or without an observer."""
    return obs.span(name, **attrs) if obs is not None else nullcontext()


# Imported last: rollup reads the metric-name constants above from this
# package, so it must only load once they exist.
from repro.obs.rollup import (  # noqa: E402
    latency_summary,
    load_skew,
    merge_snapshots,
    per_csp_bytes,
    per_csp_ops,
    percentile,
)
