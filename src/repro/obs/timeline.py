"""Per-CSP transfer timelines (the paper's Figure 14/17 pictures).

The evaluation figures show each share transfer as a horizontal bar on
its CSP's lane, making stragglers and parallelism visible at a glance.
:class:`TransferTimeline` rebuilds that view from either source of
timing truth in this repo:

* :meth:`from_results` — a list of engine ``OpResult``s (duck-typed:
  anything with ``.op.csp_id``, ``.op.kind``, ``.start``, ``.end``);
* :meth:`from_tracer` — the ``op`` spans a traced run produced.

Benchmarks use it instead of hand-rolled duration lists: makespan,
per-CSP busy time and byte totals all come from one structure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimelineBar:
    """One transfer interval on one CSP lane."""

    csp_id: str
    kind: str           # "get", "put", "get_meta", ...
    name: str           # object name
    start: float
    end: float
    nbytes: int
    ok: bool
    chunk_id: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TransferTimeline:
    bars: list[TimelineBar] = field(default_factory=list)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_results(cls, results) -> "TransferTimeline":
        """Build from engine ``OpResult``s (skips cancelled ops, which
        never occupied a lane)."""
        bars = []
        for r in results:
            if getattr(r, "cancelled", False):
                continue
            op = r.op
            bars.append(TimelineBar(
                csp_id=op.csp_id,
                kind=op.kind.value if hasattr(op.kind, "value") else str(op.kind),
                name=op.name,
                start=r.start,
                end=r.end,
                nbytes=op.payload_size(),
                ok=r.ok,
                chunk_id=getattr(op, "chunk_id", None),
            ))
        return cls(sorted(bars, key=lambda b: (b.start, b.csp_id, b.name)))

    @classmethod
    def from_tracer(cls, tracer, span_name: str = "op") -> "TransferTimeline":
        """Build from a :class:`repro.obs.trace.Tracer`'s op spans (spans
        whose attrs carry ``csp``/``op_kind``, as the engines emit)."""
        bars = []
        for span in tracer.find(span_name):
            if not span.finished or span.attrs.get("cancelled"):
                continue
            bars.append(TimelineBar(
                csp_id=str(span.attrs.get("csp", "?")),
                kind=str(span.attrs.get("op_kind", "?")),
                name=str(span.attrs.get("object", span.name)),
                start=span.start,
                end=span.end,
                nbytes=int(span.attrs.get("bytes", 0)),
                ok=bool(span.attrs.get("ok", True)),
                chunk_id=span.attrs.get("chunk"),
            ))
        return cls(sorted(bars, key=lambda b: (b.start, b.csp_id, b.name)))

    # -- aggregate views --------------------------------------------------

    def lanes(self) -> dict[str, list[TimelineBar]]:
        out: dict[str, list[TimelineBar]] = {}
        for bar in self.bars:
            out.setdefault(bar.csp_id, []).append(bar)
        return dict(sorted(out.items()))

    @property
    def start(self) -> float:
        return min((b.start for b in self.bars), default=0.0)

    @property
    def end(self) -> float:
        return max((b.end for b in self.bars), default=0.0)

    @property
    def makespan(self) -> float:
        return self.end - self.start if self.bars else 0.0

    def per_csp_bytes(self, kind: str | None = None,
                      ok_only: bool = True) -> dict[str, int]:
        out: dict[str, int] = {}
        for bar in self.bars:
            if ok_only and not bar.ok:
                continue
            if kind is not None and bar.kind != kind:
                continue
            out[bar.csp_id] = out.get(bar.csp_id, 0) + bar.nbytes
        return dict(sorted(out.items()))

    def busy_seconds(self) -> dict[str, float]:
        """Per-CSP union of bar intervals (overlaps merged) — the time
        each provider actually spent transferring."""
        out: dict[str, float] = {}
        for csp_id, bars in self.lanes().items():
            intervals = sorted((b.start, b.end) for b in bars)
            total = 0.0
            cur_start, cur_end = None, None
            for s, e in intervals:
                if cur_end is None or s > cur_end:
                    if cur_end is not None:
                        total += cur_end - cur_start
                    cur_start, cur_end = s, e
                else:
                    cur_end = max(cur_end, e)
            if cur_end is not None:
                total += cur_end - cur_start
            out[csp_id] = total
        return out

    def chunk_spans(self) -> dict[str, tuple[float, float]]:
        """Per-chunk (first share start, last share end) — the chunk's
        effective transfer interval across all its parallel shares."""
        out: dict[str, tuple[float, float]] = {}
        for bar in self.bars:
            if not bar.chunk_id or not bar.ok:
                continue
            prior = out.get(bar.chunk_id)
            if prior is None:
                out[bar.chunk_id] = (bar.start, bar.end)
            else:
                out[bar.chunk_id] = (min(prior[0], bar.start),
                                     max(prior[1], bar.end))
        return out

    def durations(self, kind: str | None = None,
                  ok_only: bool = True) -> list[float]:
        return [b.duration for b in self.bars
                if (not ok_only or b.ok)
                and (kind is None or b.kind == kind)]

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "bars": [
                {
                    "csp": b.csp_id, "kind": b.kind, "name": b.name,
                    "start": b.start, "end": b.end, "bytes": b.nbytes,
                    "ok": b.ok, "chunk": b.chunk_id,
                }
                for b in self.bars
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_ascii(self, width: int = 72) -> str:
        """A terminal sketch of the figure: one row per CSP, ``=`` bars
        on a shared time axis (``x`` marks failed transfers)."""
        if not self.bars:
            return "(empty timeline)"
        t0, t1 = self.start, self.end
        scale = (width - 1) / (t1 - t0) if t1 > t0 else 0.0
        label_w = max(len(c) for c in self.lanes()) + 1
        lines = []
        for csp_id, bars in self.lanes().items():
            row = [" "] * width
            for bar in bars:
                i0 = int((bar.start - t0) * scale)
                i1 = max(i0 + 1, int((bar.end - t0) * scale))
                ch = "=" if bar.ok else "x"
                for i in range(i0, min(i1, width)):
                    row[i] = ch
            lines.append(f"{csp_id:<{label_w}}|{''.join(row)}")
        axis = f"{'':<{label_w}}|{t0:<.3f}{'':^{max(0, width - 16)}}{t1:>.3f}"
        return "\n".join(lines + [axis])
