"""Share-count planning: the paper's Equation (1).

The user picks the privacy threshold ``t`` (CSPs needed to reconstruct)
and a failure bound ``epsilon``; CYRUS finds the minimum number of
shares ``n`` such that the probability of fewer than ``t`` CSPs
surviving stays below ``epsilon``:

    sum_{s=0}^{t-1} C(n, s) (1-p)^s p^(n-s) <= epsilon

where ``p`` is the per-CSP failure probability — taken as the largest
observed value to be conservative (footnote 6).  Minimising ``n`` also
minimises stored data, since share size is independent of ``n``.
"""

from __future__ import annotations

from math import comb

from repro.errors import ConfigurationError, ReliabilityError


def chunk_failure_probability(t: int, n: int, p: float) -> float:
    """Probability that fewer than ``t`` of ``n`` CSPs survive.

    Each CSP independently fails with probability ``p`` (uniform and
    independent by construction: CYRUS places shares on CSPs with
    distinct physical infrastructure, Section 4.1).
    """
    if not 1 <= t <= n:
        raise ConfigurationError(f"need 1 <= t <= n, got (t, n) = ({t}, {n})")
    if not 0 <= p <= 1:
        raise ConfigurationError(f"failure probability must be in [0, 1], got {p}")
    return sum(
        comb(n, s) * (1 - p) ** s * p ** (n - s) for s in range(t)
    )


def minimum_shares(t: int, p: float, epsilon: float, max_n: int) -> int:
    """Smallest ``n`` in ``[t, max_n]`` meeting the failure bound.

    Args:
        t: Privacy threshold (shares needed to reconstruct).
        p: Per-CSP failure probability (use the worst observed).
        epsilon: Acceptable chunk-loss probability.
        max_n: Number of usable CSPs (or platform clusters).

    Raises:
        ReliabilityError: No ``n`` up to ``max_n`` satisfies the bound —
            the user must add CSPs, raise ``epsilon``, or lower ``t``.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if max_n < t:
        raise ConfigurationError(f"max_n ({max_n}) below t ({t})")
    for n in range(t, max_n + 1):
        if chunk_failure_probability(t, n, p) <= epsilon:
            return n
    raise ReliabilityError(
        f"no n <= {max_n} meets failure bound {epsilon} with t={t}, p={p}; "
        f"best achievable is {chunk_failure_probability(t, max_n, p):.3e}"
    )
