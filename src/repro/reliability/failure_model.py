"""CSP failure estimation and Monte Carlo failure simulation.

Two pieces:

* :class:`FailureEstimator` — the client-side estimator the paper
  describes in Section 4.2: a CSP counts as failed when it cannot be
  contacted for longer than a user threshold (e.g. one day); the failure
  probability ``p`` is estimated from the fraction of such events.

* :func:`simulate_request_failures` — the Figure 13 experiment: draw
  independent request trials against CSPs with given unavailability
  probabilities and count, cumulatively, how many requests fail for (a)
  each single CSP and (b) CYRUS configurations that survive as long as
  at least ``t`` of ``n`` providers are up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Hours per (non-leap) year; converts annual downtime to probability.
HOURS_PER_YEAR = 365.0 * 24.0


def downtime_to_probability(hours_per_year: float) -> float:
    """Unavailability probability from annual downtime hours."""
    if hours_per_year < 0:
        raise ConfigurationError("downtime must be non-negative")
    return min(1.0, hours_per_year / HOURS_PER_YEAR)


@dataclass
class FailureEstimator:
    """Streaming estimator of one CSP's failure probability.

    Contact attempts are reported with timestamps; when consecutive
    failures span longer than ``outage_threshold_s`` (paper suggests one
    day) a *CSP failure* is counted.  ``probability`` is the fraction of
    observation windows containing a failure, floored at ``prior`` so a
    short observation history never reports an implausible zero.
    """

    outage_threshold_s: float = 24 * 3600.0
    prior: float = 1e-4
    _failure_events: int = field(default=0, init=False)
    _windows: int = field(default=0, init=False)
    _run_start: float | None = field(default=None, init=False)
    _counted_current_run: bool = field(default=False, init=False)

    def record_success(self, timestamp: float) -> None:
        """A successful contact ends any failure run."""
        self._windows += 1
        self._run_start = None
        self._counted_current_run = False

    def record_failure(self, timestamp: float) -> None:
        """A failed contact; long-enough runs count as one CSP failure."""
        self._windows += 1
        if self._run_start is None:
            self._run_start = timestamp
            return
        run = timestamp - self._run_start
        if run >= self.outage_threshold_s and not self._counted_current_run:
            self._failure_events += 1
            self._counted_current_run = True

    @property
    def failure_events(self) -> int:
        """Number of threshold-exceeding outages observed."""
        return self._failure_events

    @property
    def probability(self) -> float:
        """Estimated per-request failure probability."""
        if self._windows == 0:
            return self.prior
        return max(self.prior, self._failure_events / self._windows)


def simulate_request_failures(
    csp_downtime_hours: Mapping[str, float],
    configs: Sequence[tuple[int, int]],
    trials: int,
    seed: int = 0,
    batch: int = 1_000_000,
) -> dict[str, np.ndarray]:
    """The Figure 13 Monte Carlo.

    For each trial, every CSP is independently down with its
    downtime-derived probability.  A *single-CSP* request fails when that
    CSP is down; a *CYRUS (t, n)* request (using the ``n``
    most-listed... precisely: the first ``n`` CSPs in mapping order)
    fails when more than ``n - t`` of its CSPs are down.

    Returns cumulative failure counts per trial (length ``trials``
    arrays) keyed by CSP name or ``"CYRUS (t,n)"``.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    names = list(csp_downtime_hours)
    probs = np.array(
        [downtime_to_probability(csp_downtime_hours[c]) for c in names]
    )
    for t, n in configs:
        if n > len(names):
            raise ConfigurationError(
                f"config (t, n) = ({t}, {n}) needs {n} CSPs, have {len(names)}"
            )
        if not 1 <= t <= n:
            raise ConfigurationError(f"bad config (t, n) = ({t}, {n})")
    rng = np.random.default_rng(seed)
    single_fail = {c: np.zeros(0, dtype=np.int64) for c in names}
    cyrus_fail = {f"CYRUS ({t},{n})": np.zeros(0, dtype=np.int64) for t, n in configs}
    single_chunks: dict[str, list[np.ndarray]] = {c: [] for c in names}
    cyrus_chunks: dict[str, list[np.ndarray]] = {k: [] for k in cyrus_fail}
    done = 0
    while done < trials:
        size = min(batch, trials - done)
        down = rng.random((size, len(names))) < probs[None, :]
        for i, c in enumerate(names):
            single_chunks[c].append(down[:, i].astype(np.int64))
        for t, n in configs:
            down_count = down[:, :n].sum(axis=1)
            cyrus_chunks[f"CYRUS ({t},{n})"].append(
                (down_count > (n - t)).astype(np.int64)
            )
        done += size
    out: dict[str, np.ndarray] = {}
    for key, chunks in {**single_chunks, **cyrus_chunks}.items():
        out[key] = np.cumsum(np.concatenate(chunks))
    return out
