"""Reliability planning and failure simulation (paper Section 4.2, Figure 13)."""

from repro.reliability.failure_model import (
    FailureEstimator,
    downtime_to_probability,
    simulate_request_failures,
)
from repro.reliability.planner import chunk_failure_probability, minimum_shares

__all__ = [
    "FailureEstimator",
    "downtime_to_probability",
    "simulate_request_failures",
    "chunk_failure_probability",
    "minimum_shares",
]
