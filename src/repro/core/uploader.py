"""The upload pipeline — the paper's Algorithm 2 and Figure 7.

Steps: resolve the file's head in the local metadata tree (the caller
syncs first), chunk the content, skip chunks whose shares already exist
anywhere in the cloud (dedup via the global chunk table), scatter new
chunks' shares to consistent-hash-selected CSPs in one parallel batch,
and only then publish the version's metadata — "so that no other client
will attempt to download the file before all shares have been uploaded."

Upload failures run through the shared :class:`ShareRetryLoop`:
transient errors back off and retry the same provider, permanent ones
fail over to a health-checked replacement, and exhausted providers are
marked failed (or write-full on quota).  A chunk that cannot reach ``t``
stored shares aborts the upload (the data would be unrecoverable) with
the full per-CSP attempt history; one that reaches ``t`` but not ``n``
is accepted and reported as degraded.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.chunking import Chunk, ContentDefinedChunker
from repro.core.cloud import CyrusCloud
from repro.core.config import CyrusConfig
from repro.core.naming import chunk_share_object_name
from repro.core.retry import ShareRetryLoop
from repro.core.transfer import OpKind, OpResult, TransferEngine, TransferOp
from repro.csp.resilient import HealthRegistry, RetryPolicy
from repro.erasure import KeyedSharer
from repro.erasure.rs import default_backend
from repro.errors import TransferError
from repro.metadata import (
    ChunkRecord,
    GlobalChunkTable,
    MetadataNode,
    MetadataStore,
    MetadataTree,
    ShareRecord,
)
from repro.metadata.codec import encode_node
from repro.metadata.node import ROOT_ID
from repro.obs import span_if
from repro.util.hashing import sha1_hex


@functools.lru_cache(maxsize=64)
def _cached_sharer(key: str, t: int, n: int, backend: str) -> KeyedSharer:
    return KeyedSharer(key, t, n, backend=backend)


def get_sharer(key: str, t: int, n: int) -> KeyedSharer:
    """Cached keyed sharers — (t, n) pairs recur across every chunk.

    The resolved codec backend is part of the cache key so a
    ``CYRUS_CODEC`` change between calls cannot hand back a sharer
    built for the other backend.
    """
    return _cached_sharer(key, t, n, default_backend())


@dataclass
class UploadReport:
    """What one put() did and what it cost."""

    node: MetadataNode
    started: float
    finished: float
    bytes_uploaded: int
    new_chunks: int
    dedup_chunks: int
    degraded_chunks: tuple[str, ...] = ()
    share_results: tuple[OpResult, ...] = ()
    meta_results: tuple[OpResult, ...] = ()
    unchanged: bool = False

    @property
    def duration(self) -> float:
        return self.finished - self.started


@dataclass
class _ChunkPlan:
    chunk: Chunk
    t: int
    n: int
    placements: dict[int, str] = field(default_factory=dict)  # index -> csp
    _share_cache: dict[int, bytes] = field(default_factory=dict)
    # an in-flight EncodePool future; collected on first share_data call
    prefetch: object | None = None
    # pool workers may pull different shares of one chunk concurrently;
    # the lock makes the one-time encode exactly-once
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def share_data(self, key: str, index: int, obs=None) -> bytes:
        """Coded bytes for one share index (all n computed on first use)."""
        with self._lock:
            if not self._share_cache:
                t0 = obs.clock.now() if obs is not None else 0.0
                if self.prefetch is not None:
                    # encoded out-of-process while earlier chunks flew
                    self._share_cache = self.prefetch.get()
                    self.prefetch = None
                else:
                    sharer = get_sharer(key, self.t, self.n)
                    self._share_cache = {
                        s.index: s.data for s in sharer.split(self.chunk.data)
                    }
                if obs is not None:
                    obs.metrics.observe("cyrus_chunk_encode_seconds",
                                        obs.clock.now() - t0)
            return self._share_cache[index]

    def share_digests(self, key: str, obs=None) -> tuple[str, ...]:
        """Per-index SHA-1 fingerprints (the decode-time verify truth).

        The coding is keyed and deterministic, so these digests are
        stable across clients — any node fingerprinting this chunk
        computes the same values.
        """
        self.share_data(key, 0, obs=obs)  # ensure the one-time encode ran
        with self._lock:
            return tuple(
                sha1_hex(self._share_cache[i]) for i in range(self.n)
            )


class Uploader:
    """Executes Algorithm 2 against a cloud + metadata store."""

    def __init__(
        self,
        cloud: CyrusCloud,
        store: MetadataStore,
        tree: MetadataTree,
        chunk_table: GlobalChunkTable,
        config: CyrusConfig,
        engine: TransferEngine,
        chunker: ContentDefinedChunker | None = None,
        retry_rounds: int = 2,
        policy: RetryPolicy | None = None,
        health: HealthRegistry | None = None,
        journal=None,
        ledger=None,
        encode_pool=None,
    ):
        self.cloud = cloud
        # optional repro.erasure.pool.EncodePool: when attached, planned
        # chunks are submitted for out-of-process encoding at scatter
        # start, overlapping encode with transfer across CPU cores
        self.encode_pool = encode_pool
        self.store = store
        self.tree = tree
        self.chunk_table = chunk_table
        self.config = config
        self.engine = engine
        # optional repro.recovery.IntentJournal: when attached, every
        # mutating pipeline run is bracketed by begin/.../commit records
        self.journal = journal
        # optional repro.redundancy.DebtLedger: when attached, every
        # degraded write (t <= stored < n) is recorded as a repair debt
        self.ledger = ledger
        self.chunker = chunker or ContentDefinedChunker(
            min_size=config.chunk_min,
            avg_size=config.chunk_avg,
            max_size=config.chunk_max,
            engine=config.chunker_engine,
            seed=config.chunker_seed,
        )
        # legacy retry_rounds maps onto the shared policy's attempt budget
        if policy is None:
            policy = RetryPolicy(max_attempts=retry_rounds + 1)
        self.retry_loop = ShareRetryLoop(
            engine, policy=policy,
            health=health if health is not None else engine.health,
        )

    # ------------------------------------------------------------------

    def upload(
        self,
        name: str,
        data: bytes,
        client_id: str,
        modified: float | None = None,
    ) -> UploadReport:
        """Store one file version; returns a report with the new node."""
        started = self.engine.clock.now()
        if modified is None:
            modified = started
        # Algorithm 2 lines 2-4: resolve head, compute new head
        heads = self.tree.heads(name)
        if heads:
            head = max(heads, key=lambda h: (h.modified, h.node_id))
            prev_id = head.node_id
        else:
            head = None
            prev_id = ROOT_ID
        file_id = sha1_hex(data)
        if head is not None and head.file_id == file_id and not head.deleted:
            return UploadReport(
                node=head, started=started, finished=started,
                bytes_uploaded=0, new_chunks=0, dedup_chunks=len(head.chunks),
                unchanged=True,
            )
        obs = getattr(self.engine, "obs", None)
        with span_if(obs, "upload", file=name, size=len(data)):
            # line 5: chunking
            with span_if(obs, "chunk"):
                chunks = self.chunker.chunk_bytes(data)
            # lines 6-9: dedup + scatter
            plans, dedup_count = self._plan_chunks(chunks)
            if obs is not None:
                obs.metrics.inc("cyrus_chunks_new_total", len(plans))
                obs.metrics.inc("cyrus_chunks_dedup_total", dedup_count)
            # journal the intent (planned share objects = the rollback
            # set) before any provider is touched
            intent_id = self._journal_begin("put", name, file_id, plans)
            with span_if(obs, "scatter", chunks=len(plans)):
                share_results, degraded = self._scatter(plans, intent_id)
            # degraded writes become durable redundancy debts *inside*
            # the intent: a crash before commit replays the put, and the
            # recovery pass reconciles these records into the ledger
            for cid, (missing, failed_csps) in sorted(degraded.items()):
                if obs is not None:
                    obs.metrics.inc("cyrus_upload_degraded_chunks_total")
                if intent_id is not None:
                    self.journal.record(
                        intent_id, "debt", chunk=cid,
                        missing=list(missing), failed=list(failed_csps),
                    )
                if self.ledger is not None:
                    self.ledger.record(
                        cid, missing=missing, failed_csps=failed_csps,
                    )
                    if obs is not None:
                        from repro.redundancy.ledger import DEBT_RECORDED
                        obs.metrics.inc(DEBT_RECORDED)
            # line 10: metadata — only after every chunk upload resolved
            node = self._build_node(
                name=name, file_id=file_id, prev_id=prev_id,
                client_id=client_id, modified=modified, size=len(data),
                chunks=chunks, plans=plans,
            )
            if intent_id is not None:
                # the roll-forward payload: shares are all durable now,
                # so a crash past this point finishes the publish
                self.journal.record(
                    intent_id, "meta-intent",
                    node=encode_node(node).decode("utf-8"),
                )
            with span_if(obs, "publish_meta"):
                meta_results = self._publish(node)
            if intent_id is not None:
                self.journal.record(intent_id, "meta-published",
                                    node_id=node.node_id)
        self.tree.add(node)
        self.chunk_table.record_node(node)
        if intent_id is not None:
            self.journal.commit(intent_id)
        finished = self.engine.clock.now()
        uploaded = sum(
            r.op.payload_size() for r in share_results if r.ok
        ) + sum(r.op.payload_size() for r in meta_results if r.ok)
        return UploadReport(
            node=node,
            started=started,
            finished=finished,
            bytes_uploaded=uploaded,
            new_chunks=len(plans),
            dedup_chunks=dedup_count,
            degraded_chunks=tuple(sorted(degraded)),
            share_results=tuple(share_results),
            meta_results=tuple(meta_results),
        )

    # ------------------------------------------------------------------

    def _journal_begin(self, op: str, name: str, file_id: str,
                       plans: list[_ChunkPlan]) -> str | None:
        """Open a journal intent naming every planned share object."""
        if self.journal is None:
            return None
        placements = [
            {"chunk": plan.chunk.id, "index": index, "csp": csp,
             "object": chunk_share_object_name(index, plan.chunk.id)}
            for plan in plans
            for index, csp in sorted(plan.placements.items())
        ]
        return self.journal.begin(
            op, name=name, file_id=file_id, placements=placements,
        )

    def _plan_chunks(
        self, chunks: Sequence[Chunk]
    ) -> tuple[list[_ChunkPlan], int]:
        """Split chunks into new (to scatter) vs already stored."""
        plans: list[_ChunkPlan] = []
        seen: set[str] = set()
        dedup = 0
        cluster_aware = self.config.respect_clusters
        limit = (
            self.cloud.cluster_count()
            if cluster_aware
            else len(self.cloud.active_csps())
        )
        for chunk in chunks:
            if chunk.id in seen:
                dedup += 1
                continue
            seen.add(chunk.id)
            if self.chunk_table.is_stored(chunk.id):
                dedup += 1
                continue
            n = self.config.plan_n(limit)
            # demote breaker-open providers (quarantined or dark): a
            # share assigned there costs a guaranteed fail-fast plus a
            # failover round before landing anywhere useful
            unhealthy = {
                c for c in self.cloud.writable_csps()
                if not self.retry_loop.alternate_is_live(c)
            }
            csps = self.cloud.place_chunk(
                chunk.id, n, respect_clusters=cluster_aware,
                avoid=unhealthy,
            )
            plans.append(
                _ChunkPlan(
                    chunk=chunk,
                    t=self.config.t,
                    n=n,
                    placements={i: csp for i, csp in enumerate(csps)},
                )
            )
        return plans, dedup

    def _scatter(
        self, plans: list[_ChunkPlan], intent_id: str | None = None
    ) -> tuple[list[OpResult], dict[str, tuple[tuple[int, ...], tuple[str, ...]]]]:
        """Upload all new chunks' shares via the shared retry loop."""
        outstanding: dict[str, _ChunkPlan] = {p.chunk.id: p for p in plans}
        succeeded: dict[str, set[int]] = {cid: set() for cid in outstanding}

        obs = getattr(self.engine, "obs", None)

        if self.encode_pool is not None:
            # fan every planned chunk out to the worker processes now;
            # share_data() collects each future on first use, so chunk
            # k+1 encodes while chunk k's shares upload
            for plan in plans:
                plan.prefetch = self.encode_pool.submit(
                    self.config.key, plan.t, plan.n, plan.chunk.data
                )

        # On a parallel engine the encode is deferred into the op itself:
        # the pool worker that dispatches chunk k+1's first share runs
        # the erasure code while chunk k's shares are still uploading
        # (the chunk -> encode -> scatter pipeline of the tentpole).
        lazy = bool(getattr(self.engine, "parallel_enabled", False))

        def build_op(key, csp: str) -> TransferOp:
            cid, idx = key
            plan = outstanding[cid]
            if lazy:
                return TransferOp(
                    kind=OpKind.PUT,
                    csp_id=csp,
                    name=chunk_share_object_name(idx, cid),
                    data_fn=lambda: plan.share_data(
                        self.config.key, idx, obs=obs
                    ),
                    chunk_id=cid,
                    file_key=None,
                )
            return TransferOp(
                kind=OpKind.PUT,
                csp_id=csp,
                name=chunk_share_object_name(idx, cid),
                data=plan.share_data(self.config.key, idx, obs=obs),
                chunk_id=cid,
                file_key=None,
            )

        def on_success(key, csp: str, result: OpResult) -> None:
            cid, idx = key
            succeeded[cid].add(idx)
            if intent_id is not None:
                self.journal.record(
                    intent_id, "share-uploaded", chunk=cid, index=idx,
                    csp=csp, object=chunk_share_object_name(idx, cid),
                )

        def on_giveup(key, csp: str, result: OpResult) -> None:
            if result.quota_exceeded:
                # full, not broken: keep it readable, stop placing new
                # shares there (Section 8)
                self.cloud.mark_write_full(csp)
            elif result.error_type != "CircuitOpenError":
                # genuine provider failure, retries exhausted; an open
                # breaker already embargoes the CSP without a status flip
                self.cloud.mark_failed(csp)

        def pick_alternate(key, failed_csp: str, tried: set[str]) -> str | None:
            cid, idx = key
            plan = outstanding[cid]
            dead = {
                c for c in self.cloud.writable_csps()
                if not self.retry_loop.alternate_is_live(c)
            }
            replacement = self.cloud.replacement_csp(
                cid, holding=plan.placements.values(), exclude=tried | dead
            )
            if replacement is None:
                plan.placements.pop(idx, None)
                return None
            plan.placements[idx] = replacement
            if intent_id is not None:
                # extend the rollback set *before* the re-dispatch: a
                # crash mid-batch must know this object may exist
                self.journal.record(
                    intent_id, "share-intent", chunk=cid, index=idx,
                    csp=replacement,
                    object=chunk_share_object_name(idx, cid),
                )
            return replacement

        items = [
            ((plan.chunk.id, idx), csp)
            for plan in plans
            for idx, csp in sorted(plan.placements.items())
        ]
        all_results, attempts = self.retry_loop.run(
            items, build_op, on_success, on_giveup, pick_alternate
        )
        # degraded chunks (t <= stored < n) map to their redundancy
        # debt: the missing share indices and the CSPs that failed them
        degraded: dict[str, tuple[tuple[int, ...], tuple[str, ...]]] = {}
        for cid, plan in outstanding.items():
            stored = len(succeeded[cid])
            history = [
                attempt
                for (chunk_id, _idx), tries in sorted(attempts.items())
                if chunk_id == cid
                for attempt in tries
            ]
            if stored < plan.t:
                raise TransferError(
                    f"chunk {cid[:8]}: only {stored} shares stored, "
                    f"need t={plan.t} for recoverability "
                    f"({len(history)} attempts: "
                    f"{'; '.join(str(a) for a in history if not a.ok)})",
                    attempts=history,
                )
            if stored < plan.n:
                missing = tuple(sorted(set(range(plan.n)) - succeeded[cid]))
                failed_csps = tuple(sorted(
                    {a.csp_id for a in history if not a.ok}
                ))
                degraded[cid] = (missing, failed_csps)
            # keep only placements that actually landed
            plan.placements = {
                i: c for i, c in plan.placements.items() if i in succeeded[cid]
            }
        return all_results, degraded

    def _build_node(
        self,
        name: str,
        file_id: str,
        prev_id: str,
        client_id: str,
        modified: float,
        size: int,
        chunks: Sequence[Chunk],
        plans: list[_ChunkPlan],
    ) -> MetadataNode:
        plan_by_id = {p.chunk.id: p for p in plans}
        chunk_records = []
        share_records: list[ShareRecord] = []
        recorded: set[str] = set()
        obs = getattr(self.engine, "obs", None)
        for chunk in chunks:
            plan = plan_by_id.get(chunk.id)
            if plan is not None:
                t, n = plan.t, plan.n
                digests = plan.share_digests(self.config.key, obs=obs)
            else:
                location = self.chunk_table.get(chunk.id)
                assert location is not None, "dedup chunk missing from table"
                t, n = location.t, location.n
                # dedup chunks inherit whatever fingerprints the table
                # has; pre-digest chunks stay unfingerprinted (their
                # recorded rows must keep matching the stored node)
                digests = location.share_digests
            chunk_records.append(
                ChunkRecord(
                    chunk_id=chunk.id, offset=chunk.offset,
                    size=chunk.size, t=t, n=n,
                    share_digests=digests,
                )
            )
            if chunk.id in recorded:
                continue
            recorded.add(chunk.id)
            if plan is not None:
                share_records.extend(
                    ShareRecord(chunk_id=chunk.id, index=i, csp_id=c)
                    for i, c in sorted(plan.placements.items())
                )
            else:
                location = self.chunk_table.get(chunk.id)
                share_records.extend(
                    ShareRecord(chunk_id=chunk.id, index=i, csp_id=c)
                    for i, c in location.placements
                )
        return MetadataNode(
            file_id=file_id,
            prev_id=prev_id,
            client_id=client_id,
            name=name,
            deleted=False,
            modified=modified,
            size=size,
            chunks=tuple(chunk_records),
            shares=tuple(share_records),
        )

    def _publish(self, node: MetadataNode) -> list[OpResult]:
        """Scatter the node's metadata shares (PUT_META batch).

        Metadata slots are fixed (the name encodes the slot), so there
        is no failing over to an alternate CSP — but transient failures
        are retried in place with backoff, on the same attempt budget
        as share transfers.  Shares go out in the authenticated v2
        envelope; a publish that lands t but not m shares is accepted
        *and* recorded as a metadata repair debt, with the failed
        providers named in metrics and (on abort) in the error.
        """
        frames = self.store.frames_for(node)
        ops = [
            TransferOp(
                kind=OpKind.PUT_META,
                csp_id=provider.csp_id,
                name=obj_name,
                data=blob,
            )
            for provider, obj_name, blob, _index in frames
        ]
        policy = self.retry_loop.policy
        final: dict[int, OpResult] = {}
        pending = list(enumerate(ops))
        for round_no in range(policy.max_attempts):
            if round_no:
                self.engine.sleep(policy.delay(round_no))
            batch = self.engine.execute([op for _, op in pending])
            retry: list[tuple[int, TransferOp]] = []
            obs = getattr(self.engine, "obs", None)
            for (slot, op), res in zip(pending, batch):
                final[slot] = res
                if not res.ok and res.retryable and round_no + 1 < policy.max_attempts:
                    if obs is not None:
                        obs.metrics.inc("cyrus_meta_retries_total",
                                        csp=op.csp_id)
                    retry.append((slot, op))
            pending = retry
            if not pending:
                break
        results = [final[i] for i in range(len(ops))]
        stored = sum(1 for r in results if r.ok)
        failed = [
            (frames[i][0].csp_id, frames[i][3], results[i])
            for i in range(len(ops)) if not results[i].ok
        ]
        obs = getattr(self.engine, "obs", None)
        if obs is not None:
            from repro.metadata.store import META_PUBLISH_FAILURES

            for csp_id, _index, _res in failed:
                obs.metrics.inc(META_PUBLISH_FAILURES, csp=csp_id)
        if stored < self.store.t:
            names = ", ".join(sorted({csp for csp, _i, _r in failed}))
            raise TransferError(
                f"metadata for {node.name!r}: only {stored} shares stored, "
                f"need {self.store.t} (failed providers: {names})"
            )
        if failed and self.ledger is not None:
            # degraded publish: accepted, but short of m-way dispersal —
            # a durable obligation the repair loop re-disperses
            self.ledger.record(
                node.node_id,
                missing=tuple(sorted(index for _c, index, _r in failed)),
                failed_csps=tuple(sorted({csp for csp, _i, _r in failed})),
                kind="meta",
            )
            if obs is not None:
                from repro.metadata.store import META_DEBTS_RECORDED
                from repro.redundancy.ledger import DEBT_RECORDED

                obs.metrics.inc(DEBT_RECORDED)
                obs.metrics.inc(META_DEBTS_RECORDED)
        return results

    def publish_tombstone(
        self, name: str, client_id: str, modified: float | None = None
    ) -> UploadReport:
        """Mark a file deleted (Section 5.4): a tombstone version node.

        Shares are left alone — other files may reference the chunks —
        and the metadata chain is preserved so the file can be
        recovered by version traversal.
        """
        started = self.engine.clock.now()
        head = self.tree.latest(name)
        if modified is None:
            modified = started
        node = MetadataNode(
            file_id=head.file_id,
            prev_id=head.node_id,
            client_id=client_id,
            name=name,
            deleted=True,
            modified=modified,
            size=head.size,
            chunks=head.chunks,
            shares=head.shares,
        )
        intent_id = None
        if self.journal is not None:
            # tombstones create no shares, so the intent is pure
            # metadata: roll forward from meta-intent, or nothing to undo
            intent_id = self.journal.begin(
                "delete", name=name, file_id=head.file_id, placements=[],
            )
            self.journal.record(
                intent_id, "meta-intent",
                node=encode_node(node).decode("utf-8"),
            )
        meta_results = self._publish(node)
        if intent_id is not None:
            self.journal.record(intent_id, "meta-published",
                                node_id=node.node_id)
        self.tree.add(node)
        if intent_id is not None:
            self.journal.commit(intent_id)
        finished = self.engine.clock.now()
        return UploadReport(
            node=node, started=started, finished=finished,
            bytes_uploaded=sum(r.op.payload_size() for r in meta_results if r.ok),
            new_chunks=0, dedup_chunks=len(node.chunks),
            meta_results=tuple(meta_results),
        )
