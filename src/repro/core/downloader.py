"""The download pipeline — the paper's Algorithm 3.

Resolve the requested version in the (already synced) metadata tree,
build the Section 4.3 selection problem over the version's unique
chunks, pick the t download CSPs per chunk with the configured selector
(health-filtered so breaker-open providers are never chosen), fetch
shares through the shared :class:`repro.core.retry.ShareRetryLoop`
(transient failures back off and retry, permanent ones fail over to the
chunk's remaining CSPs), decode, assemble, verify content hash, check
for conflicts (Section 5.4), and lazily migrate shares stranded on
removed/failed CSPs (Section 5.5, Figure 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.cloud import CSPStatus, CyrusCloud
from repro.core.config import CyrusConfig
from repro.core.migration import ShareMigration, migrate_chunk_shares
from repro.core.naming import chunk_share_object_name
from repro.core.retry import ShareRetryLoop
from repro.core.transfer import OpKind, OpResult, TransferEngine, TransferOp
from repro.core.uploader import get_sharer
from repro.csp.resilient import HealthRegistry, RetryPolicy
from repro.erasure import Share
from repro.errors import (
    CyrusError,
    InsufficientSharesError,
    MetadataError,
    SelectionError,
    ShareGatherError,
    ShareIntegrityError,
)
from repro.metadata import GlobalChunkTable, MetadataNode, MetadataTree
from repro.metadata.conflicts import Conflict, conflicts_for_node
from repro.obs import span_if
from repro.selection import (
    ChunkDownload,
    CyrusSelector,
    DownloadProblem,
    SelectionPlan,
    restrict_to_live,
)
from repro.util.hashing import sha1_hex


@dataclass
class DownloadReport:
    """What one get() returned and what it cost."""

    data: bytes = field(repr=False)
    node: MetadataNode
    started: float
    finished: float
    bytes_downloaded: int
    plans: tuple[SelectionPlan, ...] = ()
    conflicts: tuple[Conflict, ...] = ()
    migrations: tuple[ShareMigration, ...] = ()
    share_results: tuple[OpResult, ...] = ()
    #: True when the bytes came from the local chunk cache because
    #: fewer than t providers were reachable (possibly a stale version,
    #: never stale bytes — content hashes are re-verified)
    degraded: bool = False

    @property
    def duration(self) -> float:
        return self.finished - self.started


@dataclass
class _ChunkState:
    chunk_id: str
    size: int
    t: int
    n: int
    placements: dict[int, str]  # index -> csp (usable only)
    digests: tuple[str, ...] = ()  # per-index share SHA-1s (may be empty)
    shares: dict[int, bytes] = field(default_factory=dict)
    tried: set[str] = field(default_factory=set)
    decoded: bytes | None = None

    def share_size(self) -> int:
        return max(1, -(-self.size // self.t))

    def digest_of(self, index: int) -> str | None:
        if not self.digests or not 0 <= index < self.n:
            return None
        return self.digests[index]

    def index_at(self, csp: str) -> int:
        for index, holder in sorted(self.placements.items()):
            if holder == csp:
                return index
        raise SelectionError(f"no share of {self.chunk_id[:8]} at {csp}")


class Downloader:
    """Executes Algorithm 3 against a cloud + metadata tree."""

    def __init__(
        self,
        cloud: CyrusCloud,
        tree: MetadataTree,
        chunk_table: GlobalChunkTable,
        config: CyrusConfig,
        engine: TransferEngine,
        selector=None,
        retry_rounds: int = 2,
        lazy_migration: bool = True,
        cache=None,
        policy: RetryPolicy | None = None,
        health: HealthRegistry | None = None,
    ):
        self.cloud = cloud
        self.tree = tree
        self.chunk_table = chunk_table
        self.config = config
        self.engine = engine
        self.selector = selector or CyrusSelector(resolve_every=4)
        self.lazy_migration = lazy_migration
        self.cache = cache  # optional repro.core.cache.ChunkCache
        if policy is None:
            policy = RetryPolicy(max_attempts=retry_rounds + 1)
        self.retry_loop = ShareRetryLoop(
            engine, policy=policy,
            health=health if health is not None else engine.health,
        )
        # set by the client so migrations can persist (optional)
        self.store = None
        # set by the client so migrations are crash-journaled (optional)
        self.journal = None
        # set by the client so corrupt shares become repair debts
        # (optional repro.redundancy.DebtLedger)
        self.ledger = None

    # ------------------------------------------------------------------

    def download(self, node: MetadataNode) -> DownloadReport:
        """Fetch and reconstruct the file version described by ``node``."""
        if node.deleted:
            raise MetadataError(
                f"{node.name!r} is deleted at this version; download an "
                f"earlier version from its history"
            )
        started = self.engine.clock.now()
        cached: dict[str, bytes] = {}
        if self.cache is not None:
            for record in node.chunks:
                if record.chunk_id in cached:
                    continue
                hit = self.cache.get(record.chunk_id)
                if hit is not None:
                    cached[record.chunk_id] = hit
        obs = getattr(self.engine, "obs", None)
        with span_if(obs, "download", file=node.name, size=node.size):
            states = self._chunk_states(node, skip=set(cached))
            with span_if(obs, "select", chunks=len(states)):
                plans = self._select(states) if states else []
            with span_if(obs, "gather"):
                share_results = self._gather(states, plans)
            with span_if(obs, "decode"):
                data = self._assemble(node, states, cached)
            if sha1_hex(data) != node.file_id:
                raise ShareIntegrityError(
                    f"reconstructed {node.name!r} does not match its content id"
                )
            conflicts = tuple(conflicts_for_node(self.tree, node))
            migrations: list[ShareMigration] = []
            if self.lazy_migration:
                migrations = self._migrate(states)
        finished = self.engine.clock.now()
        downloaded = sum(r.op.payload_size() for r in share_results if r.ok)
        return DownloadReport(
            data=data,
            node=node,
            started=started,
            finished=finished,
            bytes_downloaded=downloaded,
            plans=tuple(plans),
            conflicts=conflicts,
            migrations=tuple(migrations),
            share_results=tuple(share_results),
        )

    def download_range(
        self, node: MetadataNode, offset: int, length: int
    ) -> DownloadReport:
        """Fetch only the bytes in ``[offset, offset + length)``.

        The ChunkMap records each chunk's offset and size, so a ranged
        read touches only the chunks overlapping the window — for a
        small read out of a large file, a fraction of the shares (and
        the transfer time) of a full download.  Per-chunk integrity is
        still verified (chunk ids are content hashes); the whole-file
        hash cannot be checked without the whole file, which is the
        point of the ranged read.
        """
        if node.deleted:
            raise MetadataError(f"{node.name!r} is deleted at this version")
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        end = min(offset + length, node.size)
        started = self.engine.clock.now()
        needed = [
            record
            for record in node.chunks
            if record.offset < end and record.offset + record.size > offset
        ]
        window_node = MetadataNode(
            file_id=node.file_id,
            prev_id=node.prev_id,
            client_id=node.client_id,
            name=node.name,
            deleted=False,
            modified=node.modified,
            size=node.size,
            chunks=tuple(needed),
            shares=tuple(
                s for s in node.shares
                if s.chunk_id in {r.chunk_id for r in needed}
            ),
        )
        cached: dict[str, bytes] = {}
        if self.cache is not None:
            for record in needed:
                hit = self.cache.get(record.chunk_id)
                if hit is not None:
                    cached[record.chunk_id] = hit
        states = self._chunk_states(window_node, skip=set(cached))
        plans = self._select(states) if states else []
        share_results = self._gather(states, plans)
        # assemble only the window: chunks verify individually by id
        decoded: dict[str, bytes] = dict(cached)
        for chunk_id, state in states.items():
            sharer = get_sharer(self.config.key, state.t, state.n)
            shares = [
                Share(index=i, data=blob, t=state.t, n=state.n,
                      chunk_size=state.size)
                for i, blob in sorted(state.shares.items())
            ]
            plaintext = sharer.join(shares)
            if sha1_hex(plaintext) != chunk_id:
                plaintext = self._repair_chunk(state, sharer)
            decoded[chunk_id] = plaintext
            if self.cache is not None:
                self.cache.put(chunk_id, plaintext)
        window = bytearray(end - offset if end > offset else 0)
        for record in needed:
            blob = decoded[record.chunk_id]
            src_lo = max(0, offset - record.offset)
            src_hi = min(record.size, end - record.offset)
            dst = record.offset + src_lo - offset
            window[dst : dst + (src_hi - src_lo)] = blob[src_lo:src_hi]
        finished = self.engine.clock.now()
        return DownloadReport(
            data=bytes(window),
            node=node,
            started=started,
            finished=finished,
            bytes_downloaded=sum(
                r.op.payload_size() for r in share_results if r.ok
            ),
            plans=tuple(plans),
            conflicts=(),
            migrations=(),
            share_results=tuple(share_results),
        )

    # ------------------------------------------------------------------

    def _chunk_states(
        self, node: MetadataNode, skip: set[str] = frozenset()
    ) -> dict[str, _ChunkState]:
        """Unique chunks with their usable share placements.

        Placements come from the node's ShareMap *unioned with* the
        global chunk table — lazy migrations by other clients may have
        added locations the node predates.  Chunks in ``skip`` (cache
        hits) need no network state.
        """
        states: dict[str, _ChunkState] = {}
        for record in node.chunks:
            if record.chunk_id in states or record.chunk_id in skip:
                continue
            placements: dict[int, str] = {}
            for share in node.shares_of(record.chunk_id):
                placements[share.index] = share.csp_id
            digests = record.share_digests
            table_entry = self.chunk_table.get(record.chunk_id)
            if table_entry is not None:
                for index, csp in table_entry.placements:
                    placements.setdefault(index, csp)
                if not digests:
                    # a newer node of another file may have fingerprinted
                    # this (deduped) chunk even if ours predates digests
                    digests = table_entry.share_digests
            active = set(self.cloud.active_csps())
            usable = {
                index: csp
                for index, csp in placements.items()
                if csp in active and self.retry_loop.alternate_is_live(csp)
            }
            if len({csp for csp in usable.values()}) < record.t:
                raise InsufficientSharesError(
                    f"chunk {record.chunk_id[:8]}: shares reachable on "
                    f"{sorted(set(usable.values()))}, need {record.t} CSPs"
                )
            states[record.chunk_id] = _ChunkState(
                chunk_id=record.chunk_id,
                size=record.size,
                t=record.t,
                n=record.n,
                placements=usable,
                digests=digests,
            )
        return states

    def _select(self, states: dict[str, _ChunkState]) -> list[SelectionPlan]:
        """Run the selector, grouping chunks by their threshold t."""
        caps = self.engine.link_caps("down")
        client_cap = self.engine.client_cap("down")
        if math.isinf(client_cap):
            client_cap = max(sum(caps.values()), 1.0)
        by_t: dict[int, list[_ChunkState]] = {}
        for state in states.values():
            by_t.setdefault(state.t, []).append(state)
        health = self.retry_loop.health
        plans = []
        for t, members in sorted(by_t.items()):
            problem = DownloadProblem(
                chunks=tuple(
                    ChunkDownload(
                        chunk_id=s.chunk_id,
                        share_size=s.share_size(),
                        available=tuple(sorted(set(s.placements.values()))),
                    )
                    for s in members
                ),
                t=t,
                link_caps=caps,
                client_cap=client_cap,
            )
            if health is not None:
                problem = restrict_to_live(
                    problem, health.live(problem.csps)
                )
            plans.append(self.selector.select(problem))
        return plans

    def _gather(
        self,
        states: dict[str, _ChunkState],
        plans: list[SelectionPlan],
    ) -> list[OpResult]:
        """Fetch t shares per chunk via the shared retry loop.

        Each selected (chunk, CSP) pair is one loop item: transient GET
        failures retry the same provider with backoff; exhausted or
        permanently-failed providers fail over to the chunk's remaining
        live placements.
        """

        def build_op(key, csp: str) -> TransferOp:
            state = states[key[0]]
            return TransferOp(
                kind=OpKind.GET,
                csp_id=csp,
                name=chunk_share_object_name(
                    state.index_at(csp), state.chunk_id
                ),
                size=state.share_size(),
                chunk_id=state.chunk_id,
                # a non-live target can only be pick_alternate's
                # last-resort choice (initial selection and same-provider
                # retries are both health-gated): push past the open
                # breaker for that one deliberate attempt
                force_dispatch=not self.retry_loop.alternate_is_live(csp),
            )

        def on_success(key, csp: str, result: OpResult) -> None:
            state = states[key[0]]
            state.shares[state.index_at(csp)] = result.data

        def verify(key, csp: str, result: OpResult) -> bool:
            # Byzantine defense: check the share against its recorded
            # fingerprint *before* it can poison the decode.  Nodes
            # written before fingerprints existed have no digest and
            # fall through to the post-decode t-subset search.
            state = states[key[0]]
            index = state.index_at(csp)
            expected = state.digest_of(index)
            if expected is None or sha1_hex(result.data) == expected:
                return True
            self._note_corruption(state, index, csp)
            return False

        def on_giveup(key, csp: str, result: OpResult) -> None:
            # an open breaker, a missing object, or a corrupt payload
            # says nothing bad about the provider's *availability*
            # (corruption is the quarantine path's business); everything
            # else does
            if result.error_type not in (
                "CircuitOpenError", "ObjectNotFoundError",
                "ShareIntegrityError",
            ):
                self.cloud.mark_failed(csp)

        def pick_alternate(key, failed_csp: str, tried: set[str]) -> str | None:
            state = states[key[0]]
            if len(state.shares) >= state.t:
                return None
            holders = [
                c
                for c in sorted(set(state.placements.values()))
                if c not in state.tried
                and self.cloud.status_of(c) is CSPStatus.ACTIVE
            ]
            live = [
                c for c in holders if self.retry_loop.alternate_is_live(c)
            ]
            # corruption-quarantined holders are a last resort, not a
            # lost cause: the provider is responsive (it answered with
            # bytes, just wrong ones) and every share is digest-verified
            # before use, so the worst it can do is fail verification
            # again — strictly better than failing the read while a
            # possibly clean share exists.  (Widespread rot can
            # quarantine the whole fleet mid-gather; avoidance is a
            # preference, the verify hook is the guarantee.)  Breakers
            # opened for *unavailability* stay respected: forcing those
            # is the hammering fail-fast exists to prevent.
            health = self.retry_loop.health
            suspects = [] if health is None else [
                c for c in holders if health.corruption_count(c) > 0
            ]
            pool = live or suspects
            if not pool:
                return None
            chosen = pool[0]
            state.tried.add(chosen)
            return chosen

        items = []
        for plan in plans:
            for chunk_id, csps in plan.assignments.items():
                state = states[chunk_id]
                for slot, csp in enumerate(csps):
                    state.tried.add(csp)
                    items.append(((chunk_id, slot), csp))
        all_results, attempts = self.retry_loop.run(
            items, build_op, on_success, on_giveup, pick_alternate,
            verify=verify,
        )
        for state in states.values():
            if len(state.shares) < state.t:
                history = [
                    attempt
                    for (chunk_id, _slot), tries in sorted(attempts.items())
                    if chunk_id == state.chunk_id
                    for attempt in tries
                ]
                failures = [a for a in history if not a.ok]
                raise ShareGatherError(
                    f"chunk {state.chunk_id[:8]}: fetched "
                    f"{len(state.shares)} shares, need {state.t} "
                    f"({len(history)} attempts: "
                    f"{'; '.join(str(a) for a in failures)})",
                    attempts=history,
                )
        return all_results

    def _note_corruption(self, state: _ChunkState, index: int,
                         csp: str) -> None:
        """Attribute one verified-corrupt share to its provider.

        Emits the ``corrupt_share`` health event (quarantining repeat
        offenders via the registry) and records a repair debt naming the
        provider as a suspect, so the repair loop re-disperses the index
        somewhere it can be trusted.
        """
        detail = f"chunk {state.chunk_id[:8]} share {index}: digest mismatch"
        health = self.retry_loop.health
        if health is not None:
            health.record_corruption(csp, detail=detail)
        else:
            obs = getattr(self.engine, "obs", None)
            if obs is not None:
                obs.metrics.inc("cyrus_corrupt_shares_total", csp=csp)
        if self.ledger is not None:
            self.ledger.record(
                state.chunk_id, missing=(index,), failed_csps=(csp,),
            )

    def _assemble(
        self,
        node: MetadataNode,
        states: dict[str, _ChunkState],
        cached: dict[str, bytes] | None = None,
    ) -> bytes:
        """Decode each unique chunk once and lay chunks out by offset."""
        decoded: dict[str, bytes] = dict(cached or {})
        obs = getattr(self.engine, "obs", None)
        for chunk_id, state in states.items():
            sharer = get_sharer(self.config.key, state.t, state.n)
            shares = [
                Share(index=i, data=blob, t=state.t, n=state.n,
                      chunk_size=state.size)
                for i, blob in sorted(state.shares.items())
            ]
            t0 = obs.clock.now() if obs is not None else 0.0
            plaintext = sharer.join(shares)
            if obs is not None:
                obs.metrics.observe("cyrus_chunk_decode_seconds",
                                    obs.clock.now() - t0)
            if sha1_hex(plaintext) != chunk_id:
                # a fetched share is corrupt; pull the chunk's remaining
                # shares and decode a verifying t-subset (Section 5.1's
                # beyond-secret-sharing error tolerance)
                plaintext = self._repair_chunk(state, sharer)
            decoded[chunk_id] = plaintext
            state.decoded = plaintext
            if self.cache is not None:
                self.cache.put(chunk_id, plaintext)
        out = bytearray(node.size)
        covered = 0
        for record in node.chunks:
            blob = decoded[record.chunk_id]
            if len(blob) != record.size:
                raise ShareIntegrityError(
                    f"chunk {record.chunk_id[:8]} decoded to {len(blob)} "
                    f"bytes, ChunkMap says {record.size}"
                )
            out[record.offset : record.offset + record.size] = blob
            covered += record.size
        if covered != node.size:
            raise MetadataError(
                f"ChunkMap covers {covered} bytes of a {node.size}-byte file"
            )
        return bytes(out)

    def _repair_chunk(self, state: _ChunkState, sharer) -> bytes:
        """Recover a chunk whose fetched shares include corrupt ones.

        Fetches every remaining share of the chunk from active
        placements, then searches for a t-subset whose decode matches
        the chunk's content id.  Tolerates up to ``n - t`` corrupted
        shares, as the paper claims for the non-systematic R-S code.

        When no subset verifies, every fetched share is suspect (the
        search cannot tell which ones lied), so the repair evicts them
        all and refetches with backoff — a share corrupted in transit
        (or lost to a transient blip) often comes back clean.
        """
        policy = self.retry_loop.policy
        obs = getattr(self.engine, "obs", None)
        if obs is not None:
            obs.metrics.inc("cyrus_chunk_repairs_total")
        last_exc: CyrusError | None = None
        for round_no in range(policy.max_attempts):
            if round_no:
                self.engine.sleep(policy.delay(round_no))
            missing = [
                (index, csp)
                for index, csp in sorted(state.placements.items())
                if index not in state.shares
            ]
            if missing:
                ops = [
                    TransferOp(
                        kind=OpKind.GET,
                        csp_id=csp,
                        name=chunk_share_object_name(index, state.chunk_id),
                        size=state.share_size(),
                        chunk_id=state.chunk_id,
                    )
                    for index, csp in missing
                ]
                for (index, _csp), result in zip(
                    missing, self.engine.execute(ops)
                ):
                    if result.ok:
                        state.shares[index] = result.data
            shares = [
                Share(index=i, data=blob, t=state.t, n=state.n,
                      chunk_size=state.size)
                for i, blob in sorted(state.shares.items())
            ]
            try:
                return sharer.join_verified(
                    shares,
                    verify=lambda plaintext: sha1_hex(plaintext)
                    == state.chunk_id,
                )
            except CyrusError as exc:
                last_exc = exc
                state.shares.clear()
        raise ShareIntegrityError(
            f"chunk {state.chunk_id[:8]}: corrupted beyond repair "
            f"({last_exc})"
        ) from last_exc

    def _migrate(self, states: dict[str, _ChunkState]) -> list[ShareMigration]:
        """Figure 9: re-home shares stranded on unusable CSPs."""
        migrations: list[ShareMigration] = []
        for chunk_id, state in states.items():
            location = self.chunk_table.get(chunk_id)
            if location is None:
                continue
            data = getattr(state, "decoded", None)
            if data is None:
                continue
            migrations.extend(
                migrate_chunk_shares(
                    chunk_data=data,
                    location=location,
                    cloud=self.cloud,
                    chunk_table=self.chunk_table,
                    engine=self.engine,
                    key=self.config.key,
                    journal=self.journal,
                )
            )
        return migrations
