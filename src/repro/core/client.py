"""The CYRUS client: the paper's Table 3 API.

| paper call              | method                                   |
|-------------------------|------------------------------------------|
| ``s = create()``        | :meth:`CyrusClient.create`               |
| ``add(s, c)``           | :meth:`CyrusClient.add_csp`              |
| ``remove(s, c)``        | :meth:`CyrusClient.remove_csp`           |
| ``f' = get(s, f, v)``   | :meth:`CyrusClient.get`                  |
| ``put(s, f)``           | :meth:`CyrusClient.put`                  |
| ``delete(s, f)``        | :meth:`CyrusClient.delete`               |
| ``[(f, r)] = list(s, d)``| :meth:`CyrusClient.list_files`          |
| ``s' = recover(s)``     | :meth:`CyrusClient.recover`              |

A client is one device.  Multiple clients attached to the same provider
set (and key) form one logical CYRUS cloud: they see each other's
uploads after a sync and detect conflicts exactly as Section 5.4
describes.

Failure handling: every client owns (or adopts from its engine) a
:class:`repro.csp.resilient.HealthRegistry` — the shared per-CSP
breaker state consulted by the transfer engine, both pipelines, and
the download selector.  Structured :class:`HealthEvent` records
accumulate in :attr:`CyrusClient.health_events`.  When a read cannot
reach ``t`` providers, :meth:`get` falls back to the local chunk cache
and returns a report explicitly marked ``degraded=True`` (cache entries
are content-addressed, so a degraded read is stale-versioned at worst,
never corrupt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.chunking import ContentDefinedChunker
from repro.core.cloud import CyrusCloud
from repro.core.config import CyrusConfig
from repro.core.downloader import Downloader, DownloadReport
from repro.core.migration import migrate_metadata
from repro.core.parallel import ParallelEngine
from repro.core.sync import SyncReport, SyncService
from repro.core.transfer import TransferEngine
from repro.core.uploader import Uploader, UploadReport
from repro.csp.base import CloudProvider
from repro.csp.resilient import HealthEvent, HealthRegistry, RetryPolicy
from repro.errors import (
    ConflictError,
    CyrusError,
    InsufficientSharesError,
    MetadataError,
    ShareIntegrityError,
    TransferError,
)
from repro.metadata import (
    GlobalChunkTable,
    MetadataNode,
    MetadataStore,
    MetadataTree,
)
from repro.metadata.conflicts import (
    Conflict,
    conflicted_copy_name,
    detect_conflicts,
    resolution_winner,
)
from repro.obs import Observability, span_if
from repro.util.hashing import sha1_hex


@dataclass(frozen=True)
class FileEntry:
    """One row of ``list(s, d)``: name plus its current head node."""

    name: str
    node: MetadataNode

    @property
    def size(self) -> int:
        return self.node.size

    @property
    def modified(self) -> float:
        return self.node.modified


class CyrusClient:
    """One device's view of a CYRUS cloud."""

    def __init__(
        self,
        cloud: CyrusCloud,
        config: CyrusConfig,
        engine: TransferEngine,
        client_id: str,
        selector=None,
        chunker: ContentDefinedChunker | None = None,
        cache=None,
        health: HealthRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        obs: Observability | None = None,
        journal=None,
        debt_ledger=None,
        encode_pool=None,
        admission=None,
        store_factory=None,
    ):
        self.cloud = cloud
        self.config = config
        self.engine = engine
        self.client_id = client_id
        # optional multi-tenant hooks (repro.fleet): ``admission`` is a
        # duck-typed quota gate — ``grant = reserve(client_id, name,
        # size)`` before an upload, ``release(grant)`` if it fails — and
        # ``store_factory(client)`` replaces the default MetadataStore
        # (e.g. with a ShardedMetadataStore routing this tenant's files
        # across metadata CSP groups)
        self.admission = admission
        self._store_factory = store_factory
        # engines built by create() belong to the client — close() shuts
        # them down; an injected engine belongs to its creator
        self._owns_engine = False
        # optional repro.erasure.pool.EncodePool (built automatically by
        # create() when config.encode_workers > 0); owned by the client
        # when _owns_encode_pool — close() shuts the workers down
        self.encode_pool = encode_pool
        self._owns_encode_pool = False
        if encode_pool is None and config.encode_workers > 0:
            from repro.erasure.pool import EncodePool

            self.encode_pool = EncodePool(config.encode_workers)
            self._owns_encode_pool = True
        # optional repro.recovery.IntentJournal: when attached, put /
        # delete / gc / migrate are crash-journaled and
        # :meth:`run_recovery` replays whatever a dead process left open
        self.journal = journal
        if journal is not None and getattr(journal, "clock", None) is None:
            journal.clock = engine.clock
        # optional repro.redundancy.DebtLedger: when attached, degraded
        # writes and corrupt shares become durable repair debts that
        # :meth:`repair_debts` (or a SyncDaemon tick) drains
        self.debt_ledger = debt_ledger
        if debt_ledger is not None and getattr(debt_ledger, "clock", None) is None:
            debt_ledger.clock = engine.clock
        self.last_recovery = None
        self.tree = MetadataTree()
        self.chunk_table = GlobalChunkTable()
        self._selector = selector
        self._chunker = chunker
        self.cache = cache  # optional repro.core.cache.ChunkCache
        if health is None:
            health = getattr(engine, "health", None)
        if health is None:
            health = HealthRegistry(clock=engine.clock)
        self.health = health
        # one health view everywhere: the engine gates dispatch on the
        # same breakers the pipelines and selector consult
        self.engine.health = health
        # likewise one observability view: the engine records every op
        # result into it, making its metrics the single source of
        # byte/retry truth for reports, benchmarks and the CLI
        if obs is None:
            obs = getattr(engine, "obs", None)
        if obs is None:
            obs = Observability(clock=engine.clock)
        self.obs = obs
        self.engine.obs = obs
        if self.health.metrics is None:
            self.health.bind_metrics(obs.metrics)
        if self.cache is not None and hasattr(self.cache, "bind_metrics"):
            self.cache.bind_metrics(obs.metrics)
        self._retry_policy = retry_policy
        self.health_events: list[HealthEvent] = []
        self.health.subscribe(self.health_events.append)
        # built after health/obs/ledger so the metadata plane shares the
        # data path's quarantine rules and debt ledger
        self._rebuild_store()
        self._rebuild_pipelines()

    # -- construction -------------------------------------------------------

    @classmethod
    def create(
        cls,
        providers: Sequence[CloudProvider],
        config: CyrusConfig,
        client_id: str = "client-1",
        engine: TransferEngine | None = None,
        clusters=None,
        selector=None,
        chunker: ContentDefinedChunker | None = None,
        cache=None,
        journal=None,
        debt_ledger=None,
        encode_pool=None,
        admission=None,
        store_factory=None,
    ) -> "CyrusClient":
        """Table 3's ``create()``: build a cloud over the given CSPs."""
        cloud = CyrusCloud(providers, clusters=clusters)
        owns_engine = engine is None
        if engine is None:
            # parallelism=1 (the default) keeps both backends on the
            # inherited serial DirectEngine path — identical behaviour
            if config.transfer_backend == "async":
                from repro.core.async_engine import AsyncTransferEngine

                engine_cls = AsyncTransferEngine
            else:
                engine_cls = ParallelEngine
            engine = engine_cls(
                {p.csp_id: p for p in providers},
                parallelism=config.parallelism,
                max_inflight_per_csp=config.max_inflight_per_csp,
                max_inflight_total=config.max_inflight_total,
            )
        client = cls(
            cloud, config, engine, client_id,
            selector=selector, chunker=chunker, cache=cache,
            journal=journal, debt_ledger=debt_ledger,
            encode_pool=encode_pool,
            admission=admission, store_factory=store_factory,
        )
        client._owns_engine = owns_engine
        return client

    def _rebuild_store(self) -> None:
        if self._store_factory is not None:
            self.store = self._store_factory(self)
            return
        self.store = MetadataStore(
            self.cloud.metadata_slots(), key=self.config.key,
            t=self.config.meta_t,
            health=self.health, metrics=self.obs.metrics,
            ledger=self.debt_ledger, clock=self.engine.clock,
        )

    def _rebuild_pipelines(self) -> None:
        self.uploader = Uploader(
            cloud=self.cloud, store=self.store, tree=self.tree,
            chunk_table=self.chunk_table, config=self.config,
            engine=self.engine, chunker=self._chunker,
            policy=self._retry_policy, health=self.health,
            journal=self.journal, ledger=self.debt_ledger,
            encode_pool=self.encode_pool,
        )
        self.downloader = Downloader(
            cloud=self.cloud, tree=self.tree, chunk_table=self.chunk_table,
            config=self.config, engine=self.engine, selector=self._selector,
            cache=self.cache,
            policy=self._retry_policy, health=self.health,
        )
        self.downloader.journal = self.journal
        self.downloader.ledger = self.debt_ledger
        self.syncer = SyncService(
            store=self.store, tree=self.tree, chunk_table=self.chunk_table,
            engine=self.engine,
        )

    def close(self) -> None:
        """Release every client-owned resource in one place: the encode
        pool's worker processes and the transfer engine's threads/loop.

        Idempotent; only resources the client built itself (via
        ``create()`` or ``__init__`` defaults) are shut down — injected
        pools and engines belong to their creators.  The client remains
        usable for serial work afterwards (closed engines fall back to
        the serial path), so ``with`` blocks can be followed by
        diagnostics.
        """
        if self._owns_encode_pool and self.encode_pool is not None:
            self.encode_pool.close()
            self.encode_pool = None
            self._owns_encode_pool = False
        if self._owns_engine:
            closer = getattr(self.engine, "close", None)
            if callable(closer):
                closer()
            self._owns_engine = False

    def __enter__(self) -> "CyrusClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- membership (Table 3 add / remove) -----------------------------------

    def add_csp(self, provider: CloudProvider) -> None:
        """Attach a new CSP account; existing shares stay put (Section 5.5)."""
        self.cloud.add_csp(provider)
        self.engine.register_provider(provider)
        self._rebuild_store()
        self._rebuild_pipelines()
        # metadata is cheap: replicate it onto the new slot immediately
        migrate_metadata(self.store, self.tree, self.engine)

    def remove_csp(self, csp_id: str) -> None:
        """Detach a CSP; its chunk shares migrate lazily on download."""
        self.cloud.remove_csp(csp_id)
        self.chunk_table.drop_csp(csp_id)
        self._rebuild_store()
        self._rebuild_pipelines()
        migrate_metadata(self.store, self.tree, self.engine)

    # -- data plane (Table 3 put / get / delete / list) ----------------------

    def sync(self) -> SyncReport:
        """Pull remote metadata changes (Section 5.4)."""
        with span_if(self.obs, "sync"):
            return self.syncer.sync()

    def put(self, name: str, data: bytes, sync_first: bool = True) -> UploadReport:
        """Upload a file version (Algorithm 2).

        With an ``admission`` hook attached, the write is first reserved
        against the tenant's quota (raising
        :class:`repro.errors.TenantQuotaError` before any byte is
        dispatched) and the reservation is rolled back if the upload
        fails.
        """
        if sync_first:
            self.sync()
        grant = None
        if self.admission is not None:
            grant = self.admission.reserve(self.client_id, name, len(data))
        try:
            return self.uploader.upload(name, data, client_id=self.client_id)
        except BaseException:
            if grant is not None:
                self.admission.release(grant)
            raise

    def get(
        self, name: str, version: int = 0, sync_first: bool = True
    ) -> DownloadReport:
        """Download a file (Algorithm 3); ``version`` walks history back.

        Degraded mode: when fewer than ``t`` providers are reachable
        (or shares are corrupted beyond repair), the read is served from
        the local chunk cache when every chunk of the requested version
        is cached — the returned report carries ``degraded=True`` and
        the original error is re-raised when the cache cannot cover the
        file.  A read that completes entirely from cache *after a
        failed sync* is marked degraded too: the bytes never touched
        the unreachable cloud, so the version could not be confirmed
        fresh.  A degraded read may be a stale *version* (the failed
        sync could hide newer heads) but never stale *bytes*: cache
        entries are keyed by content hash and re-verified against the
        node.
        """
        sync_failed = False
        if sync_first:
            sync_failed = self._sync_for_read() is None
        node = self.tree.version_at_depth(name, version)
        if node.deleted:
            # the paper lets clients recover deleted files by locating
            # their metadata; get() of a tombstone resolves to the last
            # live version when one exists
            chain = self.tree.history(node.node_id)
            live = next((n for n in chain if not n.deleted), None)
            if live is None:
                raise MetadataError(f"{name!r} has no non-deleted version")
            node = live
        try:
            report = self.downloader.download(node)
        except (InsufficientSharesError, TransferError,
                ShareIntegrityError) as exc:
            # a transient streak can sideline a provider that is in
            # fact up; re-probe before settling for the cache, and
            # retry the download once when anything recovered
            if self.probe_failed_csps():
                try:
                    report = self.downloader.download(node)
                except (InsufficientSharesError, TransferError,
                        ShareIntegrityError) as retry_exc:
                    return self._degraded_get(node, retry_exc)
            else:
                return self._degraded_get(node, exc)
        if (sync_failed and node.chunks and report.bytes_downloaded == 0
                and not report.degraded):
            # served entirely from the chunk cache while the cloud was
            # unreachable: correct bytes, unconfirmed version
            report.degraded = True
            self.obs.metrics.inc("cyrus_degraded_reads_total")
            self.health.emit(
                "degraded_read", csp_id="*",
                detail=(
                    f"{node.name!r}: cache-served read after a failed "
                    f"sync — version could not be confirmed fresh"
                ),
            )
        return report

    def _sync_for_read(self) -> SyncReport | None:
        """Best-effort sync before a read; reads outlive metadata loss."""
        try:
            return self.sync()
        except CyrusError as exc:
            self.health.emit(
                "sync_degraded", csp_id="*",
                detail=f"metadata sync failed, reading local tree: {exc}",
            )
            return None

    def _degraded_get(self, node: MetadataNode, exc: CyrusError) -> DownloadReport:
        """Serve a read entirely from the chunk cache, or re-raise.

        Only possible when every chunk of the version is cached; the
        assembled bytes are verified against the node's content id, so
        the degraded path can never return wrong data — only (at worst)
        a version the failed sync could not refresh.
        """
        if self.cache is None:
            raise exc
        cached: dict[str, bytes] = {}
        for record in node.chunks:
            if record.chunk_id in cached:
                continue
            hit = self.cache.get(record.chunk_id)
            if hit is None:
                raise exc
            cached[record.chunk_id] = hit
        out = bytearray(node.size)
        covered = 0
        for record in node.chunks:
            blob = cached[record.chunk_id]
            if len(blob) != record.size:
                raise exc
            out[record.offset:record.offset + record.size] = blob
            covered += record.size
        data = bytes(out)
        if covered != node.size or sha1_hex(data) != node.file_id:
            raise exc
        self.obs.metrics.inc("cyrus_degraded_reads_total")
        self.health.emit(
            "degraded_read", csp_id="*",
            detail=(
                f"{node.name!r}: served {len(data)} bytes from chunk "
                f"cache after {type(exc).__name__}"
            ),
        )
        now = self.engine.clock.now()
        return DownloadReport(
            data=data, node=node, started=now, finished=now,
            bytes_downloaded=0, degraded=True,
        )

    def get_node(self, node: MetadataNode) -> DownloadReport:
        """Download a specific version node (used for history browsing)."""
        return self.downloader.download(node)

    def get_range(
        self, name: str, offset: int, length: int,
        version: int = 0, sync_first: bool = True,
    ) -> DownloadReport:
        """Download only ``[offset, offset + length)`` of a file.

        Touches only the chunks overlapping the window — cheap random
        access into large files (previews, seeks, partial restores).
        """
        if sync_first:
            self.sync()
        node = self.tree.version_at_depth(name, version)
        return self.downloader.download_range(node, offset, length)

    def delete(self, name: str, sync_first: bool = True) -> UploadReport:
        """Tombstone a file (metadata marked deleted; shares kept)."""
        if sync_first:
            self.sync()
        report = self.uploader.publish_tombstone(name, client_id=self.client_id)
        if self.admission is not None:
            forget = getattr(self.admission, "forget", None)
            if forget is not None:
                forget(self.client_id, name)
        return report

    def list_files(self, directory: str = "", sync_first: bool = True) -> list[FileEntry]:
        """Live files under a directory prefix with their head nodes."""
        if sync_first:
            self.sync()
        out = []
        for name in self.tree.file_names():
            if directory and not name.startswith(directory):
                continue
            out.append(FileEntry(name=name, node=self.tree.latest(name)))
        return out

    def history(self, name: str) -> list[MetadataNode]:
        """Version chain of a file, newest first (Figure 11c)."""
        return self.tree.history(self.tree.latest(name).node_id)

    # -- recovery (Table 3 recover) -------------------------------------------

    def recover(self) -> SyncReport:
        """Rebuild all local state from the CSPs alone.

        A fresh device with only the key and provider list calls this to
        reconstruct the metadata tree and chunk table — nothing about
        the cloud lives anywhere else.
        """
        self.tree = MetadataTree()
        self.chunk_table = GlobalChunkTable()
        self._rebuild_pipelines()
        return self.sync()

    # -- crash recovery & anti-entropy (repro.recovery) ----------------------

    def run_recovery(self):
        """Replay incomplete journal intents from a crashed predecessor.

        Returns the :class:`repro.recovery.RecoveryReport` (also kept
        in :attr:`last_recovery`), or None when no journal is attached.
        Idempotent: a second call finds nothing to replay.
        """
        if self.journal is None:
            return None
        from repro.recovery import recover_client

        self.last_recovery = recover_client(self)
        return self.last_recovery

    def scrub(self, budget_shares: int | None = None, cursor: int = 0,
              repair: bool = True, delete_orphans: bool = False,
              meta_cursor: int = 0, scrub_metadata: bool = True):
        """One anti-entropy pass (or budgeted slice) over the chunk
        table and the metadata plane; returns the
        :class:`repro.recovery.ScrubReport`."""
        from repro.recovery import run_scrub

        return run_scrub(
            self, budget_shares=budget_shares, cursor=cursor,
            repair=repair, delete_orphans=delete_orphans,
            meta_cursor=meta_cursor, scrub_metadata=scrub_metadata,
        )

    def repair_debts(self, budget_shares: int | None = None,
                     sync_first: bool = True):
        """Drain the redundancy-debt ledger (or a budgeted slice of it);
        returns the :class:`repro.redundancy.RepairReport`, or None when
        no ledger is attached.

        ``sync_first`` matters for correctness, not just freshness: the
        repair loop retires a debt whose chunk the table no longer knows
        (the chunk was gc'd), so running it over a never-synced table
        would wrongly retire every debt.  Pass False only when the
        caller just synced (the daemon tick does).
        """
        if self.debt_ledger is None:
            return None
        if sync_first:
            try:
                self.sync()
            except CyrusError:
                pass  # degraded repair: local tables are the best view
        from repro.redundancy import run_repair

        return run_repair(self, budget_shares=budget_shares)

    # -- conflicts -----------------------------------------------------------

    def conflicts(self) -> list[Conflict]:
        """All unresolved conflicts visible in the local tree."""
        return detect_conflicts(self.tree)

    def resolve_conflicts(self) -> list[str]:
        """Keep each conflict's winner; re-label losers as conflicted copies.

        Losers become new first-class files named
        ``"<stem> (conflicted copy <client>).<ext>"`` whose lineage
        chains to the losing node, so no data is discarded.  Returns the
        new names created.
        """
        created: list[str] = []
        for conflict in self.conflicts():
            winner = resolution_winner(self.tree, conflict)
            for node_id in conflict.node_ids:
                if node_id == winner:
                    continue
                loser = self.tree.get(node_id)
                if self.tree.children(node_id):
                    continue  # already superseded; nothing to relabel
                new_name = conflicted_copy_name(loser.name, loser.client_id)
                renamed = MetadataNode(
                    file_id=loser.file_id,
                    prev_id=loser.node_id,
                    client_id=self.client_id,
                    name=new_name,
                    deleted=False,
                    modified=loser.modified,
                    size=loser.size,
                    chunks=loser.chunks,
                    shares=loser.shares,
                )
                self.uploader._publish(renamed)
                self.tree.add(renamed)
                self.chunk_table.record_node(renamed)
                created.append(new_name)
        return created

    def save_local_state(self, path) -> int:
        """Persist the local metadata tree (Section 3.2's local copy).

        Returns the number of nodes written.  On restart,
        :meth:`load_local_state` + :meth:`sync` replaces a full
        :meth:`recover` — only nodes published since the snapshot are
        fetched from the CSPs.
        """
        from repro.metadata.snapshot import save_tree

        return save_tree(self.tree, path)

    def load_local_state(self, path) -> int:
        """Merge a persisted tree snapshot; returns nodes added."""
        from repro.metadata.snapshot import load_tree

        added = load_tree(self.tree, path)
        if added:
            self.chunk_table.rebuild(list(self.tree))
        return added

    def storage_stats(self) -> dict:
        """Logical vs stored bytes and the dedup/redundancy breakdown.

        ``logical`` counts current (non-deleted) head versions;
        ``unique_chunk_bytes`` is what remains after deduplication;
        ``stored_share_bytes`` is what the CSPs actually hold
        (unique bytes times each chunk's n/t expansion).
        """
        logical = sum(
            self.tree.latest(name).size for name in self.tree.file_names()
        )
        unique = 0
        stored = 0
        per_csp: dict[str, int] = {}
        for chunk_id in self.chunk_table.all_chunk_ids():
            location = self.chunk_table.get(chunk_id)
            unique += location.size
            share_size = max(1, -(-location.size // location.t))
            stored += share_size * len(location.placements)
            for _index, csp in location.placements:
                per_csp[csp] = per_csp.get(csp, 0) + share_size
        return {
            "files": len(self.tree.file_names()),
            "versions": len(self.tree.node_ids()),
            "logical_bytes": logical,
            "unique_chunk_bytes": unique,
            "stored_share_bytes": stored,
            "per_csp_bytes": dict(sorted(per_csp.items())),
        }

    def probe_failed_csps(self) -> list[str]:
        """Re-check failed CSPs; mark the responsive ones recovered.

        Section 5.5: "once this occurs, CYRUS periodically checks if the
        failed CSP is back up.  Until that time, no shares are uploaded
        to that CSP."  The probe is a cheap listing; call this on a
        timer (or before large uploads).  Returns the recovered ids.
        """
        from repro.core.cloud import CSPStatus
        from repro.errors import CSPError

        recovered = []
        for csp_id in list(self.cloud.unusable_csps()):
            if self.cloud.status_of(csp_id) is not CSPStatus.FAILED:
                continue  # removed CSPs stay removed
            try:
                self.cloud.provider(csp_id).list(prefix="")
            except CSPError:
                continue
            self.cloud.mark_recovered(csp_id)
            # a successful probe also closes the breaker so the engine
            # resumes dispatching without waiting out the reset timeout
            self.health.record_probe_success(csp_id)
            recovered.append(csp_id)
        return recovered

    # -- maintenance (Section 7.5 extensions) -----------------------------

    def import_object(self, csp_id: str, object_name: str,
                      target_name: str | None = None) -> UploadReport:
        """Adopt a plain object already stored at one provider.

        The trial's most-requested feature after mobile support: the
        object is fetched from the named provider and stored through
        the normal pipeline; the original is left untouched.
        """
        from repro.core.maintenance import import_object

        return import_object(self, csp_id, object_name, target_name)

    def prune_history(self, name: str, keep_versions: int = 1):
        """Drop all but the newest versions of a file's metadata.

        Destructive and uncoordinated — run it only while no other
        client is writing, like ``git gc``.
        """
        from repro.core.maintenance import prune_history

        return prune_history(self.tree, self.store, self.engine, name,
                             keep_versions)

    def collect_garbage(self):
        """Delete chunk shares no remaining version references."""
        from repro.core.maintenance import collect_garbage

        return collect_garbage(self)

    # -- introspection ---------------------------------------------------------

    def require_no_conflicts(self, name: str) -> None:
        """Guard for callers that must not proceed past a conflict."""
        heads = self.tree.heads(name)
        if len(heads) > 1:
            raise ConflictError(
                f"{name!r} has {len(heads)} concurrent heads; resolve first"
            )
