"""The asyncio event-driven transfer core.

:class:`AsyncTransferEngine` executes :class:`repro.core.transfer.TransferOp`
batches on an asyncio event loop: each op is one coroutine gated by two
:class:`asyncio.Semaphore` admission caps — at most
``max_inflight_per_csp`` concurrent operations per provider and at most
``max_inflight_total`` (default ``parallelism``) in flight overall —
mirroring the bounds of :class:`repro.core.parallel.ScatterGatherPool`
at a fraction of the per-session cost: a thousand concurrent client
sessions share one loop instead of a thousand thread pools.

Providers are spoken to through :class:`repro.csp.aio.AsyncCloudProvider`;
existing synchronous CSPs are wrapped in
:class:`repro.csp.aio.SyncProviderAdapter` automatically, offloading each
blocking call to a bounded engine-owned executor.  Native async
providers are awaited directly on the loop.

The engine presents *both* faces of the stable API:

* ``await execute_async(ops, ...)`` — the native coroutine, for async
  pipelines and :class:`repro.core.async_client.AsyncCyrusClient`;
* ``execute(ops, ...)`` — the synchronous bridge the existing
  uploader/downloader/retry stack calls, which submits the coroutine to
  the engine's loop (an externally bound running loop, or a lazily
  started background loop the engine owns) and blocks the calling
  pipeline thread for the result.

Correctness anchor: at ``parallelism=1`` with synchronous providers the
engine never touches the loop at all — ``execute`` takes the inherited
serial :class:`repro.core.transfer.DirectEngine` path, bit-for-bit
identical to the serial reference engine.  The semantics of the async
path (group-quota straggler cancellation, streaming ``on_result``
follow-ups, breaker fail-fast, health recording, pool occupancy gauges)
replicate the thread pool's exactly; the hypothesis outcome-identity
suite pins cloud state equality across backends and parallelism levels.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs import Observability

from repro.core.parallel import (
    POOL_CANCELLED,
    POOL_DISPATCH,
    POOL_INFLIGHT,
    POOL_INFLIGHT_PEAK,
    POOL_INFLIGHT_TOTAL,
    POOL_QUEUE_DEPTH,
    ResultHook,
)
from repro.core.transfer import DirectEngine, OpKind, OpResult, TransferOp
from repro.csp.aio import AsyncCloudProvider, SyncProviderAdapter
from repro.csp.base import CloudProvider
from repro.csp.resilient import HealthRegistry
from repro.errors import CSPError, TransferError, is_retryable
from repro.util.clock import Clock, WallClock, sleep_on

#: Upper bound on the dispatch executor; sync-adapted providers cannot
#: usefully exceed this many truly concurrent blocking calls anyway.
_MAX_DISPATCH_THREADS = 32


class _AsyncBatch:
    """State of one in-progress batch (confined to the event loop)."""

    __slots__ = ("results", "unresolved", "quota", "on_result", "done",
                 "queued")

    def __init__(
        self,
        group_quota: Mapping[Hashable, int] | None,
        on_result: ResultHook | None,
    ):
        self.results: list[OpResult | None] = []
        self.unresolved = 0
        self.quota: dict[Hashable, int] = dict(group_quota or {})
        self.on_result = on_result
        self.done = asyncio.Event()
        self.queued = 0  # ops admitted but not yet holding a dispatch slot


class AsyncTransferEngine(DirectEngine):
    """Event-driven engine: semaphore-capped coroutines per batch.

    ``parallelism=1`` with synchronous providers short-circuits to the
    inherited serial ``DirectEngine.execute`` — identical behaviour, no
    loop or executor ever started.  ``parallelism>1`` (or any native
    async provider) routes batches through the event loop.

    Args:
        providers: Sync providers, async providers, or a mix.
        loop: An externally owned *running* loop to bind to (e.g. the
            caller's, via :func:`asyncio.get_running_loop`).  When None
            the engine lazily starts a private background loop thread
            on first parallel use and owns its lifecycle.
        executor: Dispatch executor for sync-adapted provider calls and
            lazy ``data_fn`` encodes.  When None the engine creates one
            sized ``min(max_inflight_total or parallelism, 32)`` and
            owns its shutdown.
    """

    def __init__(
        self,
        providers: Mapping[str, CloudProvider | AsyncCloudProvider],
        clock: Clock | None = None,
        receiver=None,
        health: HealthRegistry | None = None,
        obs: "Observability | None" = None,
        parallelism: int = 1,
        max_inflight_per_csp: int | None = None,
        max_inflight_total: int | None = None,
        loop: asyncio.AbstractEventLoop | None = None,
        executor: concurrent.futures.Executor | None = None,
    ):
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        sync_map: dict[str, CloudProvider] = {}
        native: dict[str, AsyncCloudProvider] = {}
        for csp_id, prov in dict(providers).items():
            if isinstance(prov, AsyncCloudProvider):
                native[csp_id] = prov
            else:
                sync_map[csp_id] = prov
        super().__init__(sync_map, clock=clock, receiver=receiver,
                         health=health, obs=obs)
        self.parallelism = parallelism
        self.max_inflight_per_csp = max_inflight_per_csp
        self.max_inflight_total = (
            max_inflight_total if max_inflight_total is not None else parallelism
        )
        self._native = native
        self._adapters: dict[str, SyncProviderAdapter] = {}
        self._loop = loop
        self._owns_loop = False
        self._loop_thread: threading.Thread | None = None
        self._executor = executor
        self._owns_executor = executor is None
        self._closed = False
        # asyncio primitives bind to a loop on first use; recreated if
        # the engine is ever re-bound (single-loop engines never are)
        self._sem_loop: asyncio.AbstractEventLoop | None = None
        self._sem_total: asyncio.Semaphore | None = None
        self._sem_csp: dict[str, asyncio.Semaphore] = {}
        # loop-confined occupancy (exported via the pool gauge names)
        self._inflight: dict[str, int] = {}
        self._inflight_total = 0
        self._lifecycle = threading.Lock()

    # -- capability flags (consulted by the pipelines) ---------------------

    @property
    def parallel_enabled(self) -> bool:
        """True when batches genuinely run concurrently — the gate for
        lazy share encoding and streaming failover in the pipelines."""
        return self.parallelism > 1

    @property
    def native_async(self) -> bool:
        """Marker for callers that can hand the engine whole coroutines
        (e.g. :class:`repro.core.retry.ShareRetryLoop` delegating to
        :class:`repro.core.async_retry.AsyncShareRetryLoop`)."""
        return True

    # -- providers ---------------------------------------------------------

    def register_provider(
        self, provider: CloudProvider | AsyncCloudProvider
    ) -> None:
        if isinstance(provider, AsyncCloudProvider):
            self._native[provider.csp_id] = provider
            self._providers.pop(provider.csp_id, None)
        else:
            super().register_provider(provider)
            self._native.pop(provider.csp_id, None)
        self._adapters.pop(provider.csp_id, None)

    def unregister_provider(self, csp_id: str) -> None:
        super().unregister_provider(csp_id)
        self._native.pop(csp_id, None)
        self._adapters.pop(csp_id, None)

    def provider(self, csp_id: str) -> CloudProvider:
        if csp_id in self._native and csp_id not in self._providers:
            raise TransferError(
                f"{csp_id!r} is a native async provider; "
                f"use async_provider() from async code"
            )
        return super().provider(csp_id)

    def async_provider(self, csp_id: str) -> AsyncCloudProvider:
        """The async face of one provider (adapting sync ones lazily)."""
        prov = self._native.get(csp_id)
        if prov is not None:
            return prov
        adapter = self._adapters.get(csp_id)
        if adapter is None:
            adapter = SyncProviderAdapter(
                super().provider(csp_id), executor=self._ensure_executor()
            )
            self._adapters[csp_id] = adapter
        return adapter

    def link_caps(self, direction: str) -> dict[str, float]:
        caps = super().link_caps(direction)
        for csp_id in self._native:
            caps.setdefault(csp_id, 1.0)
        return caps

    # -- loop / executor lifecycle ----------------------------------------

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Adopt an externally owned running loop (the caller keeps it
        alive; :meth:`close` will not stop it)."""
        with self._lifecycle:
            if self._owns_loop and self._loop is not None \
                    and self._loop is not loop:
                raise TransferError(
                    "engine already owns a background loop; close() first"
                )
            self._loop = loop

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lifecycle:
            if self._closed:
                raise TransferError("async engine is closed")
            if self._loop is not None:
                return self._loop
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="cyrus-aio-loop", daemon=True
            )
            thread.start()
            self._loop = loop
            self._loop_thread = thread
            self._owns_loop = True
            return loop

    def _ensure_executor(self) -> concurrent.futures.Executor:
        with self._lifecycle:
            if self._executor is None:
                width = self.max_inflight_total or self.parallelism
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=max(1, min(width, _MAX_DISPATCH_THREADS)),
                    thread_name_prefix="cyrus-aio-dispatch",
                )
                self._owns_executor = True
            return self._executor

    def close(self) -> None:
        """Release owned resources (idempotent; a closed engine stays
        usable on the serial sync path, like a closed ParallelEngine)."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            loop, owns_loop = self._loop, self._owns_loop
            thread = self._loop_thread
            executor, owns_executor = self._executor, self._owns_executor
            self._loop = None
            self._loop_thread = None
            self._owns_loop = False
            self._executor = None
            self._owns_executor = False
            self.parallelism = 1
        if owns_executor and executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        if owns_loop and loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=10)
            loop.close()
        # a closed engine can still run serial sync batches
        self._closed = False
        self._sem_loop = None
        self._sem_total = None
        self._sem_csp.clear()

    def run_coro(self, coro):
        """Run a coroutine on the engine's loop from a non-loop thread."""
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            coro.close()
            raise TransferError(
                "run_coro() called from an event loop; await the "
                "coroutine (or execute_async) directly instead"
            )
        loop = self._ensure_loop()
        return asyncio.run_coroutine_threadsafe(coro, loop).result()

    # -- async sleeping (retry backoff) ------------------------------------

    async def async_sleep(self, seconds: float) -> None:
        """Backoff sleep that never blocks the loop: wall clocks await
        :func:`asyncio.sleep`; fake/sim clocks advance instantly via
        :func:`repro.util.clock.sleep_on`."""
        if seconds <= 0:
            return
        if isinstance(self.clock, WallClock):
            await asyncio.sleep(seconds)
        else:
            sleep_on(self.clock, seconds)

    # -- semaphores --------------------------------------------------------

    def _caps_for(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._sem_loop is not loop:
            self._sem_loop = loop
            self._sem_total = asyncio.Semaphore(
                self.max_inflight_total or self.parallelism
            )
            self._sem_csp = {}

    def _csp_sem(self, csp_id: str) -> asyncio.Semaphore | None:
        if self.max_inflight_per_csp is None:
            return None
        sem = self._sem_csp.get(csp_id)
        if sem is None:
            sem = asyncio.Semaphore(self.max_inflight_per_csp)
            self._sem_csp[csp_id] = sem
        return sem

    # -- gauges (loop-confined state, thread-safe registry) ----------------

    def _gauge_inflight(self, csp_id: str) -> None:
        obs = self.obs
        if obs is None:
            return
        per_csp = self._inflight.get(csp_id, 0)
        metrics = obs.metrics
        metrics.set_gauge(POOL_INFLIGHT, per_csp, csp=csp_id)
        metrics.set_gauge(POOL_INFLIGHT_TOTAL, self._inflight_total)
        peak = metrics.gauge(POOL_INFLIGHT_PEAK)
        peak.set_max(per_csp, csp=csp_id)
        peak.set_max(self._inflight_total, csp="*")

    def _gauge_queue(self, batch: _AsyncBatch) -> None:
        if self.obs is not None:
            self.obs.metrics.set_gauge(POOL_QUEUE_DEPTH, batch.queued)

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        ops: Sequence[TransferOp],
        group_quota: Mapping[Hashable, int] | None = None,
        on_result: ResultHook | None = None,
    ) -> list[OpResult]:
        """Synchronous bridge for the thread-world pipelines."""
        needs_loop = self.parallel_enabled or any(
            op.csp_id in self._native for op in ops
        )
        if not needs_loop:
            results = super().execute(ops, group_quota)
            if on_result is not None:
                # serial streaming emulation, identical to ParallelEngine
                extras = [
                    extra for result in results
                    for extra in (on_result(result) or ())
                ]
                while extras:
                    batch = super().execute(extras, group_quota)
                    results.extend(batch)
                    extras = [
                        extra for result in batch
                        for extra in (on_result(result) or ())
                    ]
            return results
        return self.run_coro(
            self.execute_async(ops, group_quota=group_quota,
                               on_result=on_result)
        )

    async def execute_async(
        self,
        ops: Sequence[TransferOp],
        group_quota: Mapping[Hashable, int] | None = None,
        on_result: ResultHook | None = None,
    ) -> list[OpResult]:
        """Execute one batch natively on the running loop.

        Results come back in submission order (initial ops first, then
        ``on_result`` follow-ups in enqueue order), like the pool.
        """
        loop = asyncio.get_running_loop()
        self._caps_for(loop)
        batch = _AsyncBatch(group_quota, on_result)
        tasks = [self._submit(batch, op) for op in ops]
        if not tasks:
            return []
        await batch.done.wait()
        results = list(batch.results)
        if any(r is None for r in results):  # pragma: no cover - invariant
            raise TransferError("async engine lost an op result")
        return results  # type: ignore[return-value]

    def _submit(self, batch: _AsyncBatch, op: TransferOp) -> asyncio.Task:
        idx = len(batch.results)
        batch.results.append(None)
        batch.unresolved += 1
        batch.queued += 1
        self._gauge_queue(batch)
        return asyncio.get_running_loop().create_task(
            self._run_one(batch, idx, op)
        )

    async def _run_one(self, batch: _AsyncBatch, idx: int,
                       op: TransferOp) -> None:
        try:
            result = await self._perform(batch, op)
        except Exception as exc:  # engine invariant: a task never vanishes
            now = self.clock.now()
            result = OpResult(
                op=op, ok=False, start=now, end=now, error=str(exc),
                error_type=type(exc).__name__, retryable=is_retryable(exc),
            )
        batch.results[idx] = result
        if result.ok and op.group is not None and op.group in batch.quota:
            batch.quota[op.group] -= 1
        self._emit(result)
        followups = batch.on_result(result) if batch.on_result else None
        for extra in followups or ():
            self._submit(batch, extra)
        batch.unresolved -= 1
        if batch.unresolved == 0:
            batch.done.set()

    def _quota_satisfied(self, batch: _AsyncBatch, op: TransferOp) -> bool:
        group = op.group
        return (group is not None and group in batch.quota
                and batch.quota[group] <= 0)

    def _cancelled(self, op: TransferOp) -> OpResult:
        if self.obs is not None:
            self.obs.metrics.inc(POOL_CANCELLED, csp=op.csp_id)
        now = self.clock.now()
        return OpResult(op=op, ok=False, start=now, end=now,
                        cancelled=True, error="group quota satisfied")

    async def _perform(self, batch: _AsyncBatch, op: TransferOp) -> OpResult:
        if self._quota_satisfied(batch, op):
            batch.queued -= 1
            self._gauge_queue(batch)
            return self._cancelled(op)
        # per-CSP admission first, so ops queued behind a saturated
        # provider never hold global slots (the pool's claim-scan
        # equivalent); the global cap is acquired last, consistently
        csp_sem = self._csp_sem(op.csp_id)
        if csp_sem is not None:
            await csp_sem.acquire()
        try:
            await self._sem_total.acquire()
            try:
                batch.queued -= 1
                self._gauge_queue(batch)
                # the group may have been satisfied while we waited —
                # the straggler-cancellation point
                if self._quota_satisfied(batch, op):
                    return self._cancelled(op)
                self._inflight[op.csp_id] = (
                    self._inflight.get(op.csp_id, 0) + 1
                )
                self._inflight_total += 1
                self._gauge_inflight(op.csp_id)
                if self.obs is not None:
                    self.obs.metrics.inc(POOL_DISPATCH, csp=op.csp_id)
                try:
                    return await self._dispatch_async(op)
                finally:
                    self._inflight[op.csp_id] -= 1
                    self._inflight_total -= 1
                    self._gauge_inflight(op.csp_id)
            finally:
                self._sem_total.release()
        finally:
            if csp_sem is not None:
                csp_sem.release()

    async def _dispatch_async(self, op: TransferOp) -> OpResult:
        """One op end-to-end on the loop (provider I/O awaited/offloaded).

        Mirrors :meth:`repro.core.parallel.ParallelEngine._dispatch_one`.
        """
        start = self.clock.now()
        blocked = self._breaker_blocks(op, start)
        if blocked is not None:
            return blocked
        try:
            data = await self._apply_async(op)
            end = self.clock.now()
            self._record_health(op.csp_id, None)
            return OpResult(op=op, ok=True, start=start, end=end, data=data)
        except CSPError as exc:
            end = self.clock.now()
            self._record_health(op.csp_id, exc)
            return OpResult(op=op, ok=False, start=start, end=end,
                            error=str(exc), error_type=type(exc).__name__,
                            retryable=is_retryable(exc))

    async def _apply_async(self, op: TransferOp) -> bytes | None:
        """Perform the data operation through the async provider face."""
        prov = self.async_provider(op.csp_id)
        if op.kind in (OpKind.PUT, OpKind.PUT_META):
            data = op.data
            if data is None and op.data_fn is not None:
                # lazy encodes are CPU work: run them on the dispatch
                # executor, never the loop
                loop = asyncio.get_running_loop()
                data = await loop.run_in_executor(
                    self._ensure_executor(), op.resolve_data
                )
            if data is None:
                raise TransferError(f"PUT without data: {op.name}")
            await prov.upload(op.name, data)
            return None
        if op.kind in (OpKind.GET, OpKind.GET_META):
            return await prov.download(op.name)
        if op.kind == OpKind.DELETE:
            await prov.delete(op.name)
            return None
        raise TransferError(f"unknown op kind {op.kind}")  # pragma: no cover
