"""The asynchronous client session: ``async with AsyncCyrusClient(...)``.

:class:`AsyncCyrusClient` is the event-loop face of
:class:`repro.core.client.CyrusClient`: an async context manager owning
the full session lifecycle — an :class:`AsyncTransferEngine` bound to
the *running* loop, the encode pool, and the underlying sync client —
with every Table 3 call exposed as a coroutine.

Scale model (the thousand-session property): all sessions on one loop
share a single :class:`_LoopRuntime` — one bounded *pipeline* executor
that runs the synchronous pipeline bodies (chunk/encode/metadata logic)
off the loop, and one bounded *dispatch* executor the engines use for
sync-adapted provider calls and lazy encodes.  A thousand concurrent
``async with`` sessions therefore cost a thousand small client objects
plus two thread pools — not a thousand thread pools.  The runtime is
refcounted per loop and torn down when its last session exits.

Deadlock freedom: pipeline threads block on coroutines submitted to the
loop (``run_coroutine_threadsafe``); the loop never blocks — provider
calls and encodes go to the *separate* dispatch executor.  The wait
graph pipeline → loop → dispatch is acyclic by construction, which is
why the two executors must never be merged.

Providers are the ordinary synchronous :class:`CloudProvider`
implementations; the engine adapts them.  Natively async providers can
be registered directly on :attr:`engine` for loop-resident I/O.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.core.async_engine import AsyncTransferEngine
from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp.base import CloudProvider
from repro.errors import TransferError

#: Width of the shared per-loop executors.  Pipeline threads spend most
#: of their life blocked on loop-side I/O, so a modest pool sustains far
#: more concurrent sessions than its width; dispatch threads bound the
#: truly concurrent blocking provider calls per process.
_PIPELINE_WORKERS = 32
_DISPATCH_WORKERS = 32


class _LoopRuntime:
    """Refcounted per-event-loop shared executors.

    ``acquire(loop)`` returns the loop's runtime, creating it on first
    use; every ``acquire`` must be paired with a ``release``, and the
    executors shut down when the count reaches zero.
    """

    _registry: dict[int, "_LoopRuntime"] = {}
    _registry_lock = threading.Lock()

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self.loop = loop
        self.pipeline = ThreadPoolExecutor(
            max_workers=_PIPELINE_WORKERS,
            thread_name_prefix="cyrus-aio-pipeline",
        )
        self.dispatch = ThreadPoolExecutor(
            max_workers=_DISPATCH_WORKERS,
            thread_name_prefix="cyrus-aio-dispatch",
        )
        self.refs = 0

    @classmethod
    def acquire(cls, loop: asyncio.AbstractEventLoop) -> "_LoopRuntime":
        with cls._registry_lock:
            runtime = cls._registry.get(id(loop))
            if runtime is None or runtime.loop is not loop:
                runtime = cls(loop)
                cls._registry[id(loop)] = runtime
            runtime.refs += 1
            return runtime

    @classmethod
    def release(cls, runtime: "_LoopRuntime") -> None:
        with cls._registry_lock:
            runtime.refs -= 1
            if runtime.refs > 0:
                return
            cls._registry.pop(id(runtime.loop), None)
        runtime.pipeline.shutdown(wait=False, cancel_futures=False)
        runtime.dispatch.shutdown(wait=False, cancel_futures=False)


class AsyncCyrusClient:
    """An asyncio session over a CYRUS cloud.

    Usage::

        async with AsyncCyrusClient(providers, config) as session:
            await session.put("a.txt", b"hello")
            report = await session.get("a.txt")

    Construction is lazy: the engine, runtime and sync client are built
    inside ``__aenter__`` (binding to the running loop); outside the
    context every operation raises :class:`TransferError`.

    Keyword arguments beyond ``client_id`` are forwarded verbatim to
    :meth:`CyrusClient.create` (``journal``, ``cache``, ``selector``,
    ``debt_ledger`` ...), except ``engine``, which the session owns.
    """

    def __init__(
        self,
        providers: Sequence[CloudProvider],
        config: CyrusConfig,
        client_id: str = "client-1",
        **client_kwargs,
    ):
        if "engine" in client_kwargs:
            raise TransferError(
                "AsyncCyrusClient owns its engine; configure concurrency "
                "via CyrusConfig (parallelism / max_inflight_*)"
            )
        self._providers = list(providers)
        self._config = config
        self._client_id = client_id
        self._client_kwargs = client_kwargs
        self._client: CyrusClient | None = None
        self._runtime: _LoopRuntime | None = None
        self.engine: AsyncTransferEngine | None = None

    # -- lifecycle ---------------------------------------------------------

    async def __aenter__(self) -> "AsyncCyrusClient":
        if self._client is not None:
            raise TransferError("session already open")
        loop = asyncio.get_running_loop()
        runtime = _LoopRuntime.acquire(loop)
        try:
            engine = AsyncTransferEngine(
                {p.csp_id: p for p in self._providers},
                parallelism=self._config.parallelism,
                max_inflight_per_csp=self._config.max_inflight_per_csp,
                max_inflight_total=self._config.max_inflight_total,
                loop=loop,
                executor=runtime.dispatch,
            )
            client = CyrusClient.create(
                self._providers, self._config, client_id=self._client_id,
                engine=engine, **self._client_kwargs,
            )
        except BaseException:
            _LoopRuntime.release(runtime)
            raise
        self._runtime = runtime
        self.engine = engine
        self._client = client
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Close the session: sync client resources, engine, runtime."""
        client, self._client = self._client, None
        engine, self.engine = self.engine, None
        runtime, self._runtime = self._runtime, None
        if client is not None:
            # encode-pool shutdown may join processes: off the loop
            await asyncio.get_running_loop().run_in_executor(
                runtime.pipeline if runtime else None, client.close
            )
        if engine is not None:
            engine.close()
        if runtime is not None:
            _LoopRuntime.release(runtime)

    @property
    def client(self) -> CyrusClient:
        """The underlying sync client (open sessions only) — for
        advanced access to trees, stats and maintenance entry points."""
        if self._client is None:
            raise TransferError("session is not open (use 'async with')")
        return self._client

    # -- offload plumbing --------------------------------------------------

    async def _call(self, fn, *args, **kwargs):
        """Run one synchronous pipeline call on the shared executor.

        The pipeline body blocks its executor thread on engine
        coroutines; the loop stays free to serve every other session.
        """
        runtime = self._runtime
        if runtime is None:
            raise TransferError("session is not open (use 'async with')")
        return await asyncio.get_running_loop().run_in_executor(
            runtime.pipeline, functools.partial(fn, *args, **kwargs)
        )

    # -- the Table 3 API, as coroutines ------------------------------------

    async def put(self, name: str, data: bytes, sync_first: bool = True):
        """Upload a file version (Algorithm 2)."""
        return await self._call(self.client.put, name, data,
                                sync_first=sync_first)

    async def get(self, name: str, version: int = 0,
                  sync_first: bool = True):
        """Download a file (Algorithm 3); ``version`` walks history."""
        return await self._call(self.client.get, name, version=version,
                                sync_first=sync_first)

    async def get_range(self, name: str, offset: int, length: int,
                        version: int = 0, sync_first: bool = True):
        """Download only ``[offset, offset + length)`` of a file."""
        return await self._call(self.client.get_range, name, offset,
                                length, version=version,
                                sync_first=sync_first)

    async def delete(self, name: str, sync_first: bool = True):
        """Tombstone a file (metadata marked deleted; shares kept)."""
        return await self._call(self.client.delete, name,
                                sync_first=sync_first)

    async def sync(self):
        """Pull remote metadata changes (Section 5.4)."""
        return await self._call(self.client.sync)

    async def list_files(self, directory: str = "",
                         sync_first: bool = True):
        """Live files under a directory prefix with their head nodes."""
        return await self._call(self.client.list_files, directory,
                                sync_first=sync_first)

    async def history(self, name: str):
        """Version chain of a file, newest first (Figure 11c)."""
        return await self._call(self.client.history, name)

    async def recover(self):
        """Rebuild all local state from the CSPs alone."""
        return await self._call(self.client.recover)

    async def add_csp(self, provider: CloudProvider) -> None:
        """Attach a new CSP account (Section 5.5)."""
        return await self._call(self.client.add_csp, provider)

    async def remove_csp(self, csp_id: str) -> None:
        """Detach a CSP; its chunk shares migrate lazily on download."""
        return await self._call(self.client.remove_csp, csp_id)

    async def storage_stats(self) -> dict:
        """Logical vs stored bytes and the dedup/redundancy breakdown."""
        return await self._call(self.client.storage_stats)

    async def scrub(self, **kwargs):
        """One anti-entropy pass over the chunk table."""
        return await self._call(self.client.scrub, **kwargs)

    async def repair_debts(self, **kwargs):
        """Drain the redundancy-debt ledger."""
        return await self._call(self.client.repair_debts, **kwargs)

    async def run_recovery(self):
        """Replay incomplete journal intents from a crashed process."""
        return await self._call(self.client.run_recovery)
