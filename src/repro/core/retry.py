"""The shared share-transfer retry loop.

Before this module existed, :class:`Uploader` and :class:`Downloader`
each hard-coded their own ``retry_rounds`` loop: blind re-dispatch, no
backoff, no transient/permanent distinction, no record of what was
tried.  :class:`ShareRetryLoop` centralises the round structure both
pipelines share:

* execute the current round as one parallel batch;
* classify each failure — transient errors retry the *same* provider
  until the policy's per-provider budget runs out, permanent errors
  (and exhausted providers) fail over to a caller-chosen alternate;
* back off between rounds per the :class:`RetryPolicy` (advancing a
  SimClock exactly, sleeping a wall clock for real);
* record every try as an :class:`repro.errors.Attempt` so exhaustion
  errors can carry the full per-CSP history.

The callers keep what is genuinely theirs: how to build an op, what a
success means, and where alternate shares may live.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Hashable, Sequence

from repro.core.transfer import OpResult, TransferEngine, TransferOp
from repro.csp.resilient import HealthRegistry, RetryPolicy
from repro.errors import Attempt

# An item is one share transfer to drive to completion: (key, csp_id).
# The key identifies the share to the caller (e.g. (chunk_id, index)).
Item = tuple[Hashable, str]

#: Safety valve; the loop's budgets terminate it far earlier.
_MAX_ROUNDS = 1000


class ShareRetryLoop:
    """Round-based batch retry driver shared by upload and download.

    Args:
        engine: Executes each round's batch.
        policy: Backoff and per-provider attempt budget.
        health: Optional shared registry; the loop reports it to
            ``pick_alternate`` callers via :meth:`alternate_is_live` and
            leaves outcome recording to the engine (which sees every
            dispatch, including non-loop ones).
    """

    def __init__(
        self,
        engine: TransferEngine,
        policy: RetryPolicy | None = None,
        health: HealthRegistry | None = None,
    ):
        self.engine = engine
        self.policy = policy if policy is not None else RetryPolicy()
        self.health = health

    def alternate_is_live(self, csp_id: str) -> bool:
        """Health gate for alternate choice (True without a registry)."""
        return self.health is None or self.health.is_live(csp_id)

    @staticmethod
    def _check(verify, key, csp: str, result: OpResult) -> OpResult:
        """Apply the caller's verify hook to a transport-level success.

        A payload that fails verification becomes a *permanent* failure
        of that provider for this item (``ShareIntegrityError``,
        retryable=False): the provider answered, so re-asking it wins
        nothing — the loop fails over to an alternate instead.  Identical
        on the serial and parallel paths, preserving the parallelism=1
        bit-for-bit equivalence.
        """
        if not result.ok or verify is None or verify(key, csp, result):
            return result
        return dataclasses.replace(
            result, ok=False, data=None,
            error=f"share from {csp} failed verification",
            error_type="ShareIntegrityError", retryable=False,
        )

    def run(
        self,
        items: Sequence[Item],
        build_op: Callable[[Hashable, str], TransferOp],
        on_success: Callable[[Hashable, str, OpResult], None],
        on_giveup: Callable[[Hashable, str, OpResult], None],
        pick_alternate: Callable[[Hashable, str, set[str]], str | None],
        verify: Callable[[Hashable, str, OpResult], bool] | None = None,
    ) -> tuple[list[OpResult], dict[Hashable, list[Attempt]]]:
        """Drive every item to success or exhaustion.

        Args:
            items: Initial (key, csp) assignments.
            build_op: Materialise the op for one assignment.
            on_success: Called once per item that lands.
            on_giveup: Called when an item abandons a provider (after
                transient retries ran out or a permanent error) — the
                place to mark cloud state; an alternate may still be
                tried afterwards.
            pick_alternate: ``(key, failed_csp, tried) -> csp | None``;
                None drops the item (the caller's threshold check
                decides whether that is fatal).
            verify: Optional payload check on transport-level successes;
                returning False reclassifies the result as a permanent
                provider failure (fail over, never same-provider retry).

        Returns:
            ``(all op results, per-key attempt history)``.
        """
        if getattr(self.engine, "parallel_enabled", False):
            if getattr(self.engine, "native_async", False):
                return self._run_async(items, build_op, on_success,
                                       on_giveup, pick_alternate, verify)
            return self._run_parallel(items, build_op, on_success,
                                      on_giveup, pick_alternate, verify)
        all_results: list[OpResult] = []
        attempts: dict[Hashable, list[Attempt]] = {key: [] for key, _ in items}
        tried: dict[Hashable, set[str]] = {key: {csp} for key, csp in items}
        per_csp_tries: dict[Item, int] = {}
        pending: list[Item] = list(items)
        for round_no in range(_MAX_ROUNDS):
            if not pending:
                break
            if round_no > 0:
                # all pending items are retries/failovers: back off once
                # per round (batched, like the dispatch itself)
                self.engine.sleep(self.policy.delay(round_no))
            ops = [build_op(key, csp) for key, csp in pending]
            results = [
                self._check(verify, key, csp, result)
                for (key, csp), result in zip(
                    pending, self.engine.execute(ops)
                )
            ]
            all_results.extend(results)
            next_pending: list[Item] = []
            for (key, csp), result in zip(pending, results):
                attempts.setdefault(key, []).append(Attempt(
                    csp_id=csp, round_no=round_no, ok=result.ok,
                    error=result.error, error_type=result.error_type,
                ))
                if result.ok:
                    on_success(key, csp, result)
                    continue
                per_csp_tries[(key, csp)] = per_csp_tries.get((key, csp), 0) + 1
                retryable = bool(result.retryable) and not result.cancelled
                if (retryable
                        and per_csp_tries[(key, csp)] < self.policy.max_attempts
                        and self.alternate_is_live(csp)):
                    obs = getattr(self.engine, "obs", None)
                    if obs is not None:
                        obs.metrics.inc("cyrus_share_retries_total", csp=csp)
                    next_pending.append((key, csp))
                    continue
                on_giveup(key, csp, result)
                alternate = pick_alternate(key, csp, tried[key])
                if alternate is not None:
                    obs = getattr(self.engine, "obs", None)
                    if obs is not None:
                        obs.metrics.inc("cyrus_share_failovers_total",
                                        from_csp=csp, to_csp=alternate)
                    tried[key].add(alternate)
                    next_pending.append((key, alternate))
            pending = next_pending
        return all_results, attempts

    def _run_async(
        self,
        items: Sequence[Item],
        build_op: Callable[[Hashable, str], TransferOp],
        on_success: Callable[[Hashable, str, OpResult], None],
        on_giveup: Callable[[Hashable, str, OpResult], None],
        pick_alternate: Callable[[Hashable, str, set[str]], str | None],
        verify: Callable[[Hashable, str, OpResult], bool] | None = None,
    ) -> tuple[list[OpResult], dict[Hashable, list[Attempt]]]:
        """Delegate the whole campaign to the engine's event loop.

        For natively async engines the coroutine mirror
        (:class:`repro.core.async_retry.AsyncShareRetryLoop`) runs every
        round — batches, backoff, streaming failover — loop-resident,
        instead of hopping a thread per batch through the sync bridge.
        The calling pipeline thread blocks on the campaign's result, so
        the pipelines' contract is unchanged.
        """
        from repro.core.async_retry import AsyncShareRetryLoop

        aloop = AsyncShareRetryLoop(self.engine, policy=self.policy,
                                    health=self.health)
        return self.engine.run_coro(
            aloop.run(items, build_op, on_success, on_giveup,
                      pick_alternate, verify)
        )

    def _run_parallel(
        self,
        items: Sequence[Item],
        build_op: Callable[[Hashable, str], TransferOp],
        on_success: Callable[[Hashable, str, OpResult], None],
        on_giveup: Callable[[Hashable, str, OpResult], None],
        pick_alternate: Callable[[Hashable, str, set[str]], str | None],
        verify: Callable[[Hashable, str, OpResult], bool] | None = None,
    ) -> tuple[list[OpResult], dict[Hashable, list[Attempt]]]:
        """The streaming variant for parallel engines.

        Same classification as the serial loop, but failures are handled
        the moment they complete: the engine's ``on_result`` hook fails a
        share over to its alternate *inside the running batch*, so a
        permanent error on one CSP re-dispatches immediately instead of
        waiting for every straggler in the round.  Only same-provider
        transient retries defer to the next round — that preserves the
        policy's inter-round backoff semantics exactly.

        The hook runs on pool worker threads; one loop-level lock makes
        the caller's ``on_success``/``on_giveup``/``pick_alternate``
        callbacks mutually exclusive, so pipeline state (journal appends,
        gathered shares) never needs its own cross-share coordination.
        """
        all_results: list[OpResult] = []
        attempts: dict[Hashable, list[Attempt]] = {key: [] for key, _ in items}
        tried: dict[Hashable, set[str]] = {key: {csp} for key, csp in items}
        per_csp_tries: dict[Item, int] = {}
        pending: list[Item] = list(items)
        lock = threading.Lock()
        for round_no in range(_MAX_ROUNDS):
            if not pending:
                break
            if round_no > 0:
                self.engine.sleep(self.policy.delay(round_no))
            deferred: list[Item] = []
            assign: dict[int, Item] = {}
            # id(op) -> verify-reclassified result, so all_results shows
            # the same failure the callbacks saw (as on the serial path)
            checked: dict[int, OpResult] = {}
            ops: list[TransferOp] = []
            for key, csp in pending:
                op = build_op(key, csp)
                assign[id(op)] = (key, csp)
                ops.append(op)

            def hook(result: OpResult, _assign=assign, _deferred=deferred,
                     _checked=checked,
                     _round=round_no) -> list[TransferOp] | None:
                with lock:
                    item = _assign.pop(id(result.op), None)
                    if item is None:  # pragma: no cover - foreign op
                        return None
                    key, csp = item
                    verified = self._check(verify, key, csp, result)
                    if verified is not result:
                        _checked[id(result.op)] = verified
                    result = verified
                    attempts.setdefault(key, []).append(Attempt(
                        csp_id=csp, round_no=_round, ok=result.ok,
                        error=result.error, error_type=result.error_type,
                    ))
                    if result.ok:
                        on_success(key, csp, result)
                        return None
                    per_csp_tries[(key, csp)] = (
                        per_csp_tries.get((key, csp), 0) + 1
                    )
                    retryable = bool(result.retryable) and not result.cancelled
                    if (retryable
                            and per_csp_tries[(key, csp)]
                            < self.policy.max_attempts
                            and self.alternate_is_live(csp)):
                        obs = getattr(self.engine, "obs", None)
                        if obs is not None:
                            obs.metrics.inc("cyrus_share_retries_total",
                                            csp=csp)
                        _deferred.append((key, csp))
                        return None
                    on_giveup(key, csp, result)
                    alternate = pick_alternate(key, csp, tried[key])
                    if alternate is None:
                        return None
                    obs = getattr(self.engine, "obs", None)
                    if obs is not None:
                        obs.metrics.inc("cyrus_share_failovers_total",
                                        from_csp=csp, to_csp=alternate)
                    tried[key].add(alternate)
                    new_op = build_op(key, alternate)
                    _assign[id(new_op)] = (key, alternate)
                    return [new_op]

            results = self.engine.execute(ops, on_result=hook)
            all_results.extend(
                checked.get(id(r.op), r) for r in results
            )
            pending = deferred
        return all_results, attempts
