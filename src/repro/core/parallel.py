"""Parallel scatter/gather transfer execution.

The paper's headline timelines (Figures 14-17) come from moving a
chunk's ``n`` shares to/from ``n`` CSPs *at the same time*; until this
module existed only the analytic :class:`repro.netsim` model knew that —
every real provider path was a serial Python loop.  Two pieces close the
gap:

* :class:`ScatterGatherPool` — a persistent worker-thread pool that
  executes one batch of :class:`repro.core.transfer.TransferOp` at a
  time under two admission bounds: at most ``max_inflight_per_csp``
  concurrent operations per provider (one slow CSP cannot monopolise
  workers — ops for other providers are scheduled around it) and at
  most ``max_inflight_total`` in flight overall.  Batches support the
  engine's group quotas (queued ops of a satisfied group are cancelled
  without dispatch — straggler cancellation) and *streaming follow-ups*:
  an ``on_result`` callback sees every completion as it happens and may
  enqueue replacement ops into the running batch, which is how the
  retry loop fails a share over to a standby CSP without waiting for
  the rest of the batch.

* :class:`ParallelEngine` — a :class:`repro.core.transfer.DirectEngine`
  whose ``execute`` routes batches through the pool.  With
  ``parallelism=1`` the pool is never started and every call takes the
  inherited serial path, bit-for-bit identical to ``DirectEngine`` —
  the invariant that keeps every pre-existing test and benchmark valid.

Occupancy is exported through the engine's observability registry:
``cyrus_pool_inflight{csp}`` / ``cyrus_pool_inflight_total`` gauges
(live), ``cyrus_pool_inflight_peak{csp}`` (high-water marks),
``cyrus_pool_queue_depth`` and the ``cyrus_pool_dispatch_total`` /
``cyrus_pool_cancelled_total`` counters — surfaced by ``cyrus stats``.

Thread-safety contract: the pool calls provider code and the engine's
``_emit``/``on_result`` hooks *outside* its internal lock, so everything
those hooks touch (metrics, tracer, receiver, health registry, journal,
chunk cache) carries its own lock — see DESIGN.md's concurrency model
for the full lock map.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Hashable, Mapping, Sequence

from repro.core.transfer import DirectEngine, OpResult, TransferOp
from repro.errors import TransferError

# Metric names (referenced by cyrus stats and the pool tests).
POOL_INFLIGHT = "cyrus_pool_inflight"              # gauge {csp}
POOL_INFLIGHT_TOTAL = "cyrus_pool_inflight_total"  # gauge
POOL_INFLIGHT_PEAK = "cyrus_pool_inflight_peak"    # gauge {csp, "*"=total}
POOL_QUEUE_DEPTH = "cyrus_pool_queue_depth"        # gauge
POOL_DISPATCH = "cyrus_pool_dispatch_total"        # counter {csp}
POOL_CANCELLED = "cyrus_pool_cancelled_total"      # counter

#: on_result may return follow-up ops to enqueue into the running batch.
ResultHook = Callable[[OpResult], "Sequence[TransferOp] | None"]


class _Batch:
    """Mutable state of one in-progress batch (guarded by the pool lock)."""

    __slots__ = ("ops", "results", "pending", "unresolved", "quota",
                 "inflight", "inflight_total", "on_result")

    def __init__(
        self,
        ops: Sequence[TransferOp],
        group_quota: Mapping[Hashable, int] | None,
        on_result: ResultHook | None,
    ):
        self.ops: list[TransferOp] = list(ops)
        self.results: list[OpResult | None] = [None] * len(self.ops)
        self.pending: deque[int] = deque(range(len(self.ops)))
        self.unresolved = len(self.ops)
        self.quota: dict[Hashable, int] = dict(group_quota or {})
        self.inflight: dict[str, int] = {}
        self.inflight_total = 0
        self.on_result = on_result


class ScatterGatherPool:
    """Bounded worker-thread executor for transfer-op batches.

    Workers are daemon threads started lazily on the first batch, so a
    pool that is never used (``parallelism=1`` engines) costs nothing.
    One batch runs at a time; concurrent ``run`` calls serialise, which
    matches the synchronous pipelines that drive the engine.
    """

    def __init__(
        self,
        workers: int,
        max_inflight_per_csp: int | None = None,
        max_inflight_total: int | None = None,
    ):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        if max_inflight_per_csp is not None and max_inflight_per_csp < 1:
            raise ValueError("max_inflight_per_csp must be >= 1")
        if max_inflight_total is not None and max_inflight_total < 1:
            raise ValueError("max_inflight_total must be >= 1")
        self.workers = workers
        self.max_inflight_per_csp = max_inflight_per_csp
        self.max_inflight_total = (
            max_inflight_total if max_inflight_total is not None else workers
        )
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._done = threading.Condition(self._lock)
        self._serialize = threading.Lock()
        self._batch: _Batch | None = None
        self._threads: list[threading.Thread] = []
        self._closed = False
        # per-run hooks (set under _serialize, so stable for a batch)
        self._dispatch: Callable[[TransferOp], OpResult] | None = None
        self._cancel: Callable[[TransferOp], OpResult] | None = None
        self._metrics = None

    # -- lifecycle --------------------------------------------------------

    def _ensure_workers(self) -> None:
        while len(self._threads) < self.workers:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"cyrus-pool-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def close(self) -> None:
        """Stop the workers; the pool cannot be reused afterwards."""
        with self._lock:
            self._closed = True
            self._work.notify_all()

    # -- batch execution --------------------------------------------------

    def run(
        self,
        ops: Sequence[TransferOp],
        dispatch: Callable[[TransferOp], OpResult],
        cancel: Callable[[TransferOp], OpResult],
        group_quota: Mapping[Hashable, int] | None = None,
        on_result: ResultHook | None = None,
        metrics=None,
    ) -> list[OpResult]:
        """Execute one batch; returns results in submission order
        (initial ops first, then follow-ups in enqueue order)."""
        if self._closed:
            raise TransferError("scatter/gather pool is closed")
        if not ops and on_result is None:
            return []
        with self._serialize:
            self._dispatch = dispatch
            self._cancel = cancel
            self._metrics = metrics
            batch = _Batch(ops, group_quota, on_result)
            with self._lock:
                self._ensure_workers()
                self._batch = batch
                self._gauge_queue(batch)
                self._work.notify_all()
                while batch.unresolved > 0:
                    self._done.wait()
                self._batch = None
                self._gauge_queue(None)
            results = [r for r in batch.results]
        if any(r is None for r in results):  # pragma: no cover - invariant
            raise TransferError("pool lost an op result")
        return results  # type: ignore[return-value]

    # -- scheduling (all under self._lock) --------------------------------

    def _claimable(self, batch: _Batch, op: TransferOp) -> bool:
        if self.max_inflight_total is not None and (
                batch.inflight_total >= self.max_inflight_total):
            return False
        if self.max_inflight_per_csp is not None and (
                batch.inflight.get(op.csp_id, 0) >= self.max_inflight_per_csp):
            return False
        return True

    def _claim(self, batch: _Batch) -> tuple[str, int] | None:
        """The next schedulable task: ("cancel"|"dispatch", op index).

        Scans past ops whose CSP is saturated, so a slow provider never
        blocks dispatch to the others.
        """
        for _ in range(len(batch.pending)):
            idx = batch.pending.popleft()
            op = batch.ops[idx]
            group = op.group
            if (group is not None and group in batch.quota
                    and batch.quota[group] <= 0):
                return ("cancel", idx)
            if self._claimable(batch, op):
                batch.inflight[op.csp_id] = (
                    batch.inflight.get(op.csp_id, 0) + 1
                )
                batch.inflight_total += 1
                self._gauge_inflight(batch, op.csp_id)
                self._gauge_queue(batch)
                return ("dispatch", idx)
            batch.pending.append(idx)  # saturated CSP: rotate past it
        return None

    def _finish(self, batch: _Batch, idx: int, result: OpResult,
                dispatched: bool,
                followups: Sequence[TransferOp] | None) -> None:
        op = batch.ops[idx]
        batch.results[idx] = result
        if dispatched:
            batch.inflight[op.csp_id] -= 1
            batch.inflight_total -= 1
            self._gauge_inflight(batch, op.csp_id)
        if result.ok and op.group is not None and op.group in batch.quota:
            batch.quota[op.group] -= 1
        for extra in followups or ():
            batch.ops.append(extra)
            batch.results.append(None)
            batch.pending.append(len(batch.ops) - 1)
            batch.unresolved += 1
        batch.unresolved -= 1
        self._gauge_queue(batch)

    # -- gauges -----------------------------------------------------------

    def _gauge_inflight(self, batch: _Batch, csp_id: str) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        per_csp = batch.inflight.get(csp_id, 0)
        metrics.set_gauge(POOL_INFLIGHT, per_csp, csp=csp_id)
        metrics.set_gauge(POOL_INFLIGHT_TOTAL, batch.inflight_total)
        peak = metrics.gauge(POOL_INFLIGHT_PEAK)
        peak.set_max(per_csp, csp=csp_id)
        peak.set_max(batch.inflight_total, csp="*")

    def _gauge_queue(self, batch: _Batch | None) -> None:
        if self._metrics is not None:
            depth = len(batch.pending) if batch is not None else 0
            self._metrics.set_gauge(POOL_QUEUE_DEPTH, depth)

    # -- workers ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                task = None
                while task is None:
                    if self._closed:
                        return
                    if self._batch is not None:
                        task = self._claim(self._batch)
                    if task is None:
                        self._work.wait()
                batch = self._batch
                kind, idx = task
            op = batch.ops[idx]
            dispatched = kind == "dispatch"
            metrics = self._metrics
            if dispatched:
                if metrics is not None:
                    metrics.inc(POOL_DISPATCH, csp=op.csp_id)
                result = self._dispatch(op)
            else:
                if metrics is not None:
                    metrics.inc(POOL_CANCELLED, csp=op.csp_id)
                result = self._cancel(op)
            followups = None
            if batch.on_result is not None:
                followups = batch.on_result(result)
            with self._lock:
                self._finish(batch, idx, result, dispatched, followups)
                self._work.notify_all()
                self._done.notify_all()


class ParallelEngine(DirectEngine):
    """A direct engine that scatters each batch across a thread pool.

    ``parallelism=1`` (the default everywhere) short-circuits to the
    inherited serial ``DirectEngine.execute`` — identical behaviour,
    no threads ever started.  ``parallelism>1`` routes batches through
    a :class:`ScatterGatherPool` bounded by ``max_inflight_per_csp``
    and ``max_inflight_total``.
    """

    def __init__(
        self,
        providers,
        clock=None,
        receiver=None,
        health=None,
        obs=None,
        parallelism: int = 1,
        max_inflight_per_csp: int | None = None,
        max_inflight_total: int | None = None,
    ):
        super().__init__(providers, clock=clock, receiver=receiver,
                         health=health, obs=obs)
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.max_inflight_per_csp = max_inflight_per_csp
        self.max_inflight_total = max_inflight_total
        self._pool: ScatterGatherPool | None = None

    # -- capability flags (consulted by the pipelines) ---------------------

    @property
    def parallel_enabled(self) -> bool:
        """True when batches genuinely run concurrently — the gate for
        lazy share encoding and streaming failover in the pipelines."""
        return self.parallelism > 1

    def pool(self) -> ScatterGatherPool:
        if self._pool is None:
            self._pool = ScatterGatherPool(
                workers=self.parallelism,
                max_inflight_per_csp=self.max_inflight_per_csp,
                max_inflight_total=self.max_inflight_total,
            )
        return self._pool

    def close(self) -> None:
        """Stop pool workers (idempotent; a closed engine stays serial)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self.parallelism = 1

    # -- execution ---------------------------------------------------------

    def _dispatch_one(self, op: TransferOp) -> OpResult:
        """One op end-to-end on the calling (worker) thread.

        Mirrors the per-op body of :meth:`DirectEngine.execute` minus
        group-quota handling, which the pool owns in parallel mode.
        """
        from repro.errors import CSPError, is_retryable

        start = self.clock.now()
        blocked = self._breaker_blocks(op, start)
        if blocked is not None:
            return blocked
        try:
            data = self._apply(op)
            end = self.clock.now()
            self._record_health(op.csp_id, None)
            return OpResult(op=op, ok=True, start=start, end=end, data=data)
        except CSPError as exc:
            end = self.clock.now()
            self._record_health(op.csp_id, exc)
            return OpResult(op=op, ok=False, start=start, end=end,
                            error=str(exc), error_type=type(exc).__name__,
                            retryable=is_retryable(exc))

    def _cancel_one(self, op: TransferOp) -> OpResult:
        now = self.clock.now()
        return OpResult(op=op, ok=False, start=now, end=now,
                        cancelled=True, error="group quota satisfied")

    def execute(
        self,
        ops: Sequence[TransferOp],
        group_quota: Mapping[Hashable, int] | None = None,
        on_result: ResultHook | None = None,
    ) -> list[OpResult]:
        if not self.parallel_enabled:
            results = super().execute(ops, group_quota)
            if on_result is not None:
                # serial streaming emulation: feed completions through
                # the hook and run follow-ups until it stops producing
                extras = [
                    extra for result in results
                    for extra in (on_result(result) or ())
                ]
                while extras:
                    batch = super().execute(extras, group_quota)
                    results.extend(batch)
                    extras = [
                        extra for result in batch
                        for extra in (on_result(result) or ())
                    ]
            return results

        def dispatch(op: TransferOp) -> OpResult:
            return self._emit(self._dispatch_one(op))

        def cancel(op: TransferOp) -> OpResult:
            return self._emit(self._cancel_one(op))

        return self.pool().run(
            ops, dispatch, cancel,
            group_quota=group_quota, on_result=on_result,
            metrics=self.obs.metrics if self.obs is not None else None,
        )
