"""Client-side chunk cache.

The prototype keeps local copies of synced files; the library equivalent
is a bounded LRU cache of decoded chunks keyed by content id.  Because
chunk ids are content hashes, cached entries can never be stale — a
changed file produces new chunk ids — so the cache needs no
invalidation protocol, only eviction.  Repeated or overlapping
downloads (e.g. reading several versions that share chunks) skip the
network entirely for cached chunks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class ChunkCache:
    """A byte-budgeted LRU cache of decoded chunks.

    Args:
        capacity_bytes: Eviction threshold; 0 disables caching entirely.
    """

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._size = 0
        self.hits = 0
        self.misses = 0
        # LRU reordering + size accounting are read-modify-write; pool
        # workers decoding chunks concurrently share one cache
        self._lock = threading.RLock()
        # optional repro.obs.metrics.MetricsRegistry (duck-typed)
        self._metrics = None

    def bind_metrics(self, metrics) -> None:
        """Mirror hit/miss/occupancy into an observability registry."""
        self._metrics = metrics

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        """Bytes currently cached."""
        return self._size

    def get(self, chunk_id: str) -> bytes | None:
        """Cached chunk bytes, or None; refreshes LRU position on hit."""
        with self._lock:
            data = self._entries.get(chunk_id)
            if data is None:
                self.misses += 1
                if self._metrics is not None:
                    self._metrics.inc("cyrus_cache_requests_total",
                                      outcome="miss")
                return None
            self._entries.move_to_end(chunk_id)
            self.hits += 1
            if self._metrics is not None:
                self._metrics.inc("cyrus_cache_requests_total", outcome="hit")
            return data

    def put(self, chunk_id: str, data: bytes) -> None:
        """Insert a decoded chunk, evicting LRU entries past the budget.

        Chunks larger than the whole budget are not cached at all.
        """
        if self.capacity_bytes == 0 or len(data) > self.capacity_bytes:
            return
        with self._lock:
            old = self._entries.pop(chunk_id, None)
            if old is not None:
                self._size -= len(old)
            self._entries[chunk_id] = data
            self._size += len(data)
            while self._size > self.capacity_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._size -= len(evicted)
                if self._metrics is not None:
                    self._metrics.inc("cyrus_cache_evictions_total")
            if self._metrics is not None:
                self._metrics.set_gauge("cyrus_cache_bytes", self._size)

    def clear(self) -> None:
        """Drop everything (e.g. on key change)."""
        with self._lock:
            self._entries.clear()
            self._size = 0
