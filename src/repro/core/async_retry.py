"""The native-async share-transfer retry loop.

:class:`AsyncShareRetryLoop` is the coroutine mirror of
:class:`repro.core.retry.ShareRetryLoop`'s streaming parallel variant:
identical round structure, failure classification, failover and metric
accounting, expressed against :meth:`AsyncTransferEngine.execute_async`
so a whole retry campaign (batches, inter-round backoff, failovers) runs
on the event loop without a thread hop per round.

``ShareRetryLoop.run`` delegates here automatically when its engine is
natively async (``engine.native_async`` and ``engine.parallel_enabled``),
so the synchronous pipelines gain the loop-resident retry path without
changing a line — and :class:`repro.core.async_client.AsyncCyrusClient`
sessions share one loop across every concurrent retry campaign.

Concurrency note: the result hook — and through it the caller's
``on_success``/``on_giveup``/``pick_alternate``/``verify`` callbacks —
runs on the event-loop thread, one completion at a time.  That gives the
same mutual-exclusion guarantee the thread-pool variant buys with its
loop-level lock.  Callbacks must not block on the engine (re-entrant
``execute`` would stall the loop); the pipelines' callbacks only touch
their own locked state (journal, gathered-share maps), which the PR 5
thread-safety audit already requires.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.core.retry import _MAX_ROUNDS, Item, ShareRetryLoop
from repro.core.transfer import OpResult, TransferOp
from repro.csp.resilient import HealthRegistry, RetryPolicy
from repro.errors import Attempt


class AsyncShareRetryLoop:
    """Round-based retry driver for natively async engines.

    Args:
        engine: An :class:`repro.core.async_engine.AsyncTransferEngine`
            (anything exposing ``execute_async`` and ``async_sleep``).
        policy: Backoff and per-provider attempt budget.
        health: Optional shared registry gating alternate choice.
    """

    def __init__(
        self,
        engine,
        policy: RetryPolicy | None = None,
        health: HealthRegistry | None = None,
    ):
        self.engine = engine
        self.policy = policy if policy is not None else RetryPolicy()
        self.health = health

    def alternate_is_live(self, csp_id: str) -> bool:
        """Health gate for alternate choice (True without a registry)."""
        return self.health is None or self.health.is_live(csp_id)

    async def run(
        self,
        items: Sequence[Item],
        build_op: Callable[[Hashable, str], TransferOp],
        on_success: Callable[[Hashable, str, OpResult], None],
        on_giveup: Callable[[Hashable, str, OpResult], None],
        pick_alternate: Callable[[Hashable, str, set[str]], str | None],
        verify: Callable[[Hashable, str, OpResult], bool] | None = None,
    ) -> tuple[list[OpResult], dict[Hashable, list[Attempt]]]:
        """Drive every item to success or exhaustion (see
        :meth:`repro.core.retry.ShareRetryLoop.run` for the contract)."""
        check = ShareRetryLoop._check
        all_results: list[OpResult] = []
        attempts: dict[Hashable, list[Attempt]] = {key: [] for key, _ in items}
        tried: dict[Hashable, set[str]] = {key: {csp} for key, csp in items}
        per_csp_tries: dict[Item, int] = {}
        pending: list[Item] = list(items)
        for round_no in range(_MAX_ROUNDS):
            if not pending:
                break
            if round_no > 0:
                # all pending items are same-provider transient retries:
                # back off once per round, without blocking the loop
                await self.engine.async_sleep(self.policy.delay(round_no))
            deferred: list[Item] = []
            assign: dict[int, Item] = {}
            # id(op) -> verify-reclassified result, so all_results shows
            # the same failure the callbacks saw (as on the serial path)
            checked: dict[int, OpResult] = {}
            ops: list[TransferOp] = []
            for key, csp in pending:
                op = build_op(key, csp)
                assign[id(op)] = (key, csp)
                ops.append(op)

            def hook(result: OpResult, _assign=assign, _deferred=deferred,
                     _checked=checked,
                     _round=round_no) -> list[TransferOp] | None:
                # loop-thread confined: completions arrive one at a time
                item = _assign.pop(id(result.op), None)
                if item is None:  # pragma: no cover - foreign op
                    return None
                key, csp = item
                verified = check(verify, key, csp, result)
                if verified is not result:
                    _checked[id(result.op)] = verified
                result = verified
                attempts.setdefault(key, []).append(Attempt(
                    csp_id=csp, round_no=_round, ok=result.ok,
                    error=result.error, error_type=result.error_type,
                ))
                if result.ok:
                    on_success(key, csp, result)
                    return None
                per_csp_tries[(key, csp)] = (
                    per_csp_tries.get((key, csp), 0) + 1
                )
                retryable = bool(result.retryable) and not result.cancelled
                if (retryable
                        and per_csp_tries[(key, csp)]
                        < self.policy.max_attempts
                        and self.alternate_is_live(csp)):
                    obs = getattr(self.engine, "obs", None)
                    if obs is not None:
                        obs.metrics.inc("cyrus_share_retries_total",
                                        csp=csp)
                    _deferred.append((key, csp))
                    return None
                on_giveup(key, csp, result)
                alternate = pick_alternate(key, csp, tried[key])
                if alternate is None:
                    return None
                obs = getattr(self.engine, "obs", None)
                if obs is not None:
                    obs.metrics.inc("cyrus_share_failovers_total",
                                    from_csp=csp, to_csp=alternate)
                tried[key].add(alternate)
                new_op = build_op(key, alternate)
                _assign[id(new_op)] = (key, alternate)
                return [new_op]

            results = await self.engine.execute_async(ops, on_result=hook)
            all_results.extend(
                checked.get(id(r.op), r) for r in results
            )
            pending = deferred
        return all_results, attempts
