"""Transfer engines and asynchronous event handling (paper Section 5.3).

The upload/download pipelines express their CSP interactions as batches
of :class:`TransferOp`; an engine executes a batch and reports per-op
results with timings.  Two engines:

* :class:`DirectEngine` — performs provider calls immediately; used for
  real providers (e.g. :class:`repro.csp.localfs.LocalDirectoryCSP`)
  and for logic tests where time is irrelevant.
* :class:`SimulatedEngine` — times every op on the flow-level network
  simulator against each provider's link, advancing a shared
  :class:`repro.util.clock.SimClock`; data operations are applied to
  the providers at their simulated completion instants.

The paper's event receiver (GET / PUT / GET_META / PUT_META events
driving ShareComplete, ChunkComplete and FileComplete) is implemented by
:class:`TransferReceiver`; engines emit one event per op.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs import Observability

from repro.csp.base import CloudProvider
from repro.csp.resilient import HealthRegistry
from repro.errors import CSPError, CSPUnavailableError, TransferError, is_retryable
from repro.netsim.link import Link
from repro.netsim.simulator import FlowSimulator, TransferRequest
from repro.util.clock import Clock, SimClock, WallClock, sleep_on


class OpKind(enum.Enum):
    """The four share-transmission event types of Section 5.3."""

    GET = "GET"
    PUT = "PUT"
    GET_META = "GET_META"
    PUT_META = "PUT_META"
    DELETE = "DELETE"  # maintenance; not part of the paper's event set

    @property
    def direction(self) -> str:
        return "up" if self in (OpKind.PUT, OpKind.PUT_META, OpKind.DELETE) else "down"


@dataclass
class TransferOp:
    """One provider operation to execute.

    ``size`` must be given for GETs (the expected share size, known from
    the ShareMap); PUT sizes derive from ``data``.  ``chunk_id``/
    ``file_key`` feed the event receiver's completion tracking.

    A PUT may carry ``data_fn`` instead of ``data``: a thunk producing
    the payload, invoked on the executing worker at dispatch time.  This
    is how the parallel uploader pipelines encoding with transfer —
    erasure-coding chunk *k+1* runs on one pool worker while chunk *k*'s
    shares are already on the wire.  Lazy ops should still set ``size``
    so planners can cost them without forcing the encode.
    """

    kind: OpKind
    csp_id: str
    name: str
    data: bytes | None = None
    size: int | None = None
    chunk_id: str | None = None
    file_key: str | None = None
    group: Hashable | None = None
    data_fn: Callable[[], bytes] | None = None
    #: Dispatch even while the CSP's circuit is open.  Set by callers
    #: that have consciously chosen a quarantined provider as the last
    #: remaining source (the gather's final failover): the breaker's
    #: fail-fast protects against hammering, but a read that would
    #: otherwise fail outright is worth one deliberate attempt.
    force_dispatch: bool = False

    def resolve_data(self) -> bytes | None:
        """Materialise the payload (runs ``data_fn`` at most once)."""
        if self.data is None and self.data_fn is not None:
            self.data = self.data_fn()
            self.data_fn = None
        return self.data

    def payload_size(self) -> int:
        if self.data is not None:
            return len(self.data)
        if self.size is not None:
            return self.size
        if self.data_fn is not None:
            return len(self.resolve_data() or b"")
        return 0


@dataclass
class OpResult:
    """Outcome of one op: timing, success, and downloaded data if any.

    ``error_type`` carries the exception class name on failure, so
    callers can react per-cause (quota vs outage) without string
    matching on messages.
    """

    op: TransferOp
    ok: bool
    start: float
    end: float
    data: bytes | None = None
    error: str | None = None
    error_type: str | None = None
    cancelled: bool = False
    # transient/permanent classification of the failure (None on success):
    # True = a same-provider retry may succeed; False = re-route instead
    retryable: bool | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def quota_exceeded(self) -> bool:
        return self.error_type == "CSPQuotaExceededError"


@dataclass
class _Completion:
    """Per-chunk / per-file completion counters."""

    needed: int
    done: int = 0


class TransferReceiver:
    """The registered event receiver of Section 5.3.

    Engines call :meth:`on_result` for every op.  ``ShareComplete`` is
    per-op success; ``ChunkComplete`` fires when a chunk accumulates its
    required share count (``n`` on upload, ``t`` on download);
    ``FileComplete`` fires when all of a file's chunks complete.
    """

    def __init__(self) -> None:
        self._chunk: dict[str, _Completion] = {}
        self._file_chunks: dict[str, set[str]] = {}
        self._file_complete: dict[str, bool] = {}
        self.events: list[OpResult] = []
        # pool workers emit results concurrently; the counters and the
        # event log are read-modify-write, so serialise them
        self._lock = threading.Lock()

    def expect_chunk(self, chunk_id: str, shares_needed: int,
                     file_key: str | None = None) -> None:
        """Register a chunk transfer (n shares up or t shares down)."""
        with self._lock:
            self._chunk[chunk_id] = _Completion(needed=shares_needed)
            if file_key is not None:
                self._file_chunks.setdefault(file_key, set()).add(chunk_id)
                self._file_complete.setdefault(file_key, False)

    def on_result(self, result: OpResult) -> None:
        """Feed one transfer event through the completion logic."""
        with self._lock:
            self.events.append(result)
            if not result.ok:
                return
            chunk_id = result.op.chunk_id
            if chunk_id is None or chunk_id not in self._chunk:
                return
            comp = self._chunk[chunk_id]
            comp.done += 1
            if comp.done == comp.needed:
                # a chunk may belong to several registered files (dedup);
                # membership comes from expect_chunk, not from the op
                for file_key, chunks in self._file_chunks.items():
                    if chunk_id not in chunks:
                        continue
                    if all(
                        self._chunk[c].done >= self._chunk[c].needed
                        for c in chunks
                    ):
                        self._file_complete[file_key] = True

    def share_complete(self, result: OpResult) -> bool:
        return result.ok

    def chunk_complete(self, chunk_id: str) -> bool:
        comp = self._chunk.get(chunk_id)
        return comp is not None and comp.done >= comp.needed

    def file_complete(self, file_key: str) -> bool:
        return self._file_complete.get(file_key, False)


class TransferEngine:
    """Base engine: executes op batches against providers."""

    def __init__(
        self,
        providers: Mapping[str, CloudProvider],
        clock: Clock | None = None,
        receiver: TransferReceiver | None = None,
        health: HealthRegistry | None = None,
        obs: "Observability | None" = None,
    ):
        self._providers = dict(providers)
        self.clock = clock if clock is not None else WallClock()
        self.receiver = receiver
        # shared per-CSP health: breaker fail-fast + outcome recording
        self.health = health
        # shared observability: every op result flows through _emit, so
        # attaching here makes the metrics layer see every dispatch
        self.obs = obs

    @property
    def obs(self) -> "Observability | None":
        return self._obs

    @obs.setter
    def obs(self, value: "Observability | None") -> None:
        self._obs = value
        self._on_obs_changed()

    def _on_obs_changed(self) -> None:
        """Subclass hook: re-bind internal components to the new obs."""

    def sleep(self, seconds: float) -> None:
        """Backoff sleep on the injected clock (see :func:`sleep_on`):
        fake clocks record it, SimClock advances, WallClock really sleeps."""
        sleep_on(self.clock, seconds)

    def _breaker_blocks(self, op: TransferOp, now: float) -> OpResult | None:
        """Fail fast (without dispatching) when the CSP's circuit is open."""
        if op.force_dispatch or self.health is None \
                or self.health.allow(op.csp_id):
            return None
        return OpResult(
            op=op, ok=False, start=now, end=now,
            error=f"circuit open for {op.csp_id}",
            error_type="CircuitOpenError", retryable=False,
        )

    def _record_health(self, csp_id: str, exc: CSPError | None) -> None:
        """Feed an op outcome to the registry.

        Only unavailability counts as a health failure; an auth/quota/
        not-found response proves the provider is reachable.
        """
        if self.health is None:
            return
        if exc is not None and isinstance(exc, CSPUnavailableError):
            self.health.record_failure(csp_id, exc)
        else:
            self.health.record_success(csp_id)

    def register_provider(self, provider: CloudProvider) -> None:
        self._providers[provider.csp_id] = provider

    def unregister_provider(self, csp_id: str) -> None:
        self._providers.pop(csp_id, None)

    def provider(self, csp_id: str) -> CloudProvider:
        prov = self._providers.get(csp_id)
        if prov is None:
            raise TransferError(f"no provider registered for {csp_id!r}")
        return prov

    def _apply(self, op: TransferOp) -> bytes | None:
        """Perform the actual data operation; raises CSPError on failure."""
        provider = self.provider(op.csp_id)
        if op.kind in (OpKind.PUT, OpKind.PUT_META):
            data = op.resolve_data()
            if data is None:
                raise TransferError(f"PUT without data: {op.name}")
            provider.upload(op.name, data)
            return None
        if op.kind in (OpKind.GET, OpKind.GET_META):
            return provider.download(op.name)
        if op.kind == OpKind.DELETE:
            provider.delete(op.name)
            return None
        raise TransferError(f"unknown op kind {op.kind}")  # pragma: no cover

    def _emit(self, result: OpResult) -> OpResult:
        if self.obs is not None:
            self.obs.record_op(result)
        if self.receiver is not None:
            self.receiver.on_result(result)
        return result

    def link_caps(self, direction: str) -> dict[str, float]:
        """Per-CSP achievable bandwidth (beta-bar) for planning.

        The base engine has no bandwidth model, so every provider gets
        1.0 — the download optimiser then simply balances share counts.
        """
        return {csp_id: 1.0 for csp_id in self._providers}

    def client_cap(self, direction: str) -> float:
        """Client-wide bandwidth (beta) for planning."""
        return float("inf")

    def execute(
        self,
        ops: Sequence[TransferOp],
        group_quota: Mapping[Hashable, int] | None = None,
    ) -> list[OpResult]:
        raise NotImplementedError


class DirectEngine(TransferEngine):
    """Execute ops immediately; timing comes from the wall clock."""

    def execute(
        self,
        ops: Sequence[TransferOp],
        group_quota: Mapping[Hashable, int] | None = None,
    ) -> list[OpResult]:
        results = []
        quota_left = dict(group_quota or {})
        for op in ops:
            start = self.clock.now()
            group = op.group
            if group is not None and group in quota_left and quota_left[group] <= 0:
                results.append(
                    self._emit(
                        OpResult(op=op, ok=False, start=start, end=start,
                                 cancelled=True, error="group quota satisfied")
                    )
                )
                continue
            blocked = self._breaker_blocks(op, start)
            if blocked is not None:
                results.append(self._emit(blocked))
                continue
            try:
                data = self._apply(op)
                end = self.clock.now()
                self._record_health(op.csp_id, None)
                results.append(
                    self._emit(OpResult(op=op, ok=True, start=start, end=end,
                                        data=data))
                )
                if group is not None and group in quota_left:
                    quota_left[group] -= 1
            except CSPError as exc:
                end = self.clock.now()
                self._record_health(op.csp_id, exc)
                results.append(
                    self._emit(OpResult(op=op, ok=False, start=start, end=end,
                                        error=str(exc),
                                        error_type=type(exc).__name__,
                                        retryable=is_retryable(exc)))
                )
        return results


class SimulatedEngine(TransferEngine):
    """Time ops on the flow simulator; apply data ops at completion.

    The engine shares a :class:`SimClock` with the simulated providers,
    so availability windows, token expiry, and transfer timings all see
    one timeline.  Provider availability is checked at issue *and* at
    completion: a CSP that goes down mid-transfer fails the op, as a
    dropped connection would.
    """

    def __init__(
        self,
        providers: Mapping[str, CloudProvider],
        links: Mapping[str, Link],
        clock: SimClock,
        client_up: float = float("inf"),
        client_down: float = float("inf"),
        receiver: TransferReceiver | None = None,
        health: HealthRegistry | None = None,
        obs: "Observability | None" = None,
    ):
        super().__init__(providers, clock=clock, receiver=receiver,
                         health=health, obs=obs)
        self._links = dict(links)
        self._sim = FlowSimulator(self._links, client_up=client_up,
                                  client_down=client_down,
                                  metrics=obs.metrics if obs else None)

    def _on_obs_changed(self) -> None:
        # the flow simulator records per-link flows/bytes into the same
        # registry (it may not exist yet while the base class __init__
        # assigns the initial obs)
        sim = getattr(self, "_sim", None)
        if sim is not None:
            sim.metrics = self._obs.metrics if self._obs else None

    def register_link(self, link: Link) -> None:
        self._links[link.link_id] = link
        self._sim = FlowSimulator(self._links, client_up=self._sim.client_up,
                                  client_down=self._sim.client_down,
                                  metrics=self._sim.metrics)

    def link_caps(self, direction: str) -> dict[str, float]:
        now = self.clock.now()
        return {
            link_id: link.capacity_at(now, direction)
            for link_id, link in self._links.items()
        }

    def client_cap(self, direction: str) -> float:
        return self._sim.client_capacity(direction)

    @staticmethod
    def _is_up(provider: CloudProvider, t: float) -> bool:
        checker = getattr(provider, "is_up", None)
        return bool(checker(t)) if callable(checker) else True

    def execute(
        self,
        ops: Sequence[TransferOp],
        group_quota: Mapping[Hashable, int] | None = None,
    ) -> list[OpResult]:
        """Run one batch; the shared clock advances to the batch's end."""
        start_time = self.clock.now()
        results: list[OpResult | None] = [None] * len(ops)
        requests: list[TransferRequest] = []
        req_to_op: list[int] = []
        for i, op in enumerate(ops):
            provider = self.provider(op.csp_id)
            blocked = self._breaker_blocks(op, start_time)
            if blocked is not None:
                results[i] = blocked
                continue
            if not self._is_up(provider, start_time):
                self._record_health(
                    op.csp_id,
                    CSPUnavailableError(f"{op.csp_id} unavailable",
                                        csp_id=op.csp_id),
                )
                results[i] = OpResult(
                    op=op, ok=False, start=start_time, end=start_time,
                    error=f"{op.csp_id} unavailable",
                    error_type="CSPUnavailableError", retryable=True,
                )
                continue
            requests.append(
                TransferRequest(
                    link_id=op.csp_id,
                    size=op.payload_size(),
                    direction=op.kind.direction,
                    start_at=0.0,
                    tag=i,
                    group=op.group,
                )
            )
            req_to_op.append(i)
        transfer_results = self._sim.run(requests, group_quota=group_quota,
                                         start_time=start_time)
        batch_end = start_time
        for tr in transfer_results:
            i = tr.request.tag
            op = ops[i]
            provider = self.provider(op.csp_id)
            batch_end = max(batch_end, tr.end)
            if not tr.completed:
                results[i] = OpResult(op=op, ok=False, start=tr.start, end=tr.end,
                                      cancelled=True, error="cancelled (quota)")
                continue
            if not self._is_up(provider, tr.end):
                self._record_health(
                    op.csp_id,
                    CSPUnavailableError(f"{op.csp_id} went down mid-transfer",
                                        csp_id=op.csp_id),
                )
                results[i] = OpResult(
                    op=op, ok=False, start=tr.start, end=tr.end,
                    error=f"{op.csp_id} went down mid-transfer",
                    error_type="CSPUnavailableError", retryable=True,
                )
                continue
            try:
                data = self._apply(op)
                self._record_health(op.csp_id, None)
                results[i] = OpResult(op=op, ok=True, start=tr.start, end=tr.end,
                                      data=data)
            except CSPError as exc:
                self._record_health(op.csp_id, exc)
                results[i] = OpResult(op=op, ok=False, start=tr.start, end=tr.end,
                                      error=str(exc),
                                      error_type=type(exc).__name__,
                                      retryable=is_retryable(exc))
        self.clock.advance_to(max(batch_end, start_time))
        final = [r for r in results if r is not None]
        if len(final) != len(ops):  # pragma: no cover - internal invariant
            raise TransferError("engine lost an op result")
        for r in final:
            self._emit(r)
        return final
