"""The synchronization service (paper Section 5.4).

Clients discover remote changes by listing the metadata objects at the
fixed metadata CSPs — every upload creates a new metadata node, so new
node ids in the listing are exactly the changes.  New nodes are fetched
from every listed slot, decoded through the verified assembler (corrupt
shares are attributed to their CSP, the highest verified version wins),
merged into the local tree, folded into the global chunk table, and
checked for both conflict types.

Local change detection (the other half of the paper's sync service) is
:class:`LocalChangeDetector`: it compares last-modified times first and
hashes only when they moved, as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.transfer import OpKind, OpResult, TransferEngine, TransferOp
from repro.errors import CSPError, MetadataError
from repro.metadata import GlobalChunkTable, MetadataStore, MetadataTree
from repro.metadata.codec import METADATA_PREFIX, parse_metadata_share_name
from repro.metadata.conflicts import Conflict, conflicts_for_node
from repro.util.hashing import sha1_hex


@dataclass
class SyncReport:
    """Outcome of one metadata sync."""

    started: float
    finished: float
    new_nodes: int
    conflicts: tuple[Conflict, ...] = ()
    fetch_results: tuple[OpResult, ...] = ()

    @property
    def duration(self) -> float:
        return self.finished - self.started


class SyncService:
    """Pull-based metadata synchronisation."""

    def __init__(
        self,
        store: MetadataStore,
        tree: MetadataTree,
        chunk_table: GlobalChunkTable,
        engine: TransferEngine,
    ):
        self.store = store
        self.tree = tree
        self.chunk_table = chunk_table
        self.engine = engine

    def _remote_listing(self) -> dict[str, list[tuple[int, int, str]]]:
        """node_id -> [(index, size, csp_id)] across reachable slots."""
        listing: dict[str, list[tuple[int, int, str]]] = {}
        reachable = 0
        for provider in self.store.providers:
            try:
                infos = provider.list(prefix=METADATA_PREFIX)
            except CSPError:
                continue
            reachable += 1
            for info in infos:
                try:
                    node_id, index = parse_metadata_share_name(info.name)
                except MetadataError:
                    continue
                listing.setdefault(node_id, []).append(
                    (index, info.size, provider.csp_id)
                )
        if reachable < self.store.t:
            raise MetadataError(
                f"only {reachable} metadata providers reachable, "
                f"need {self.store.t}"
            )
        return listing

    def sync(self) -> SyncReport:
        """Fetch unknown metadata nodes and merge them."""
        started = self.engine.clock.now()
        listing = self._remote_listing()
        known = self.tree.node_ids()
        wanted = {
            node_id: shares
            for node_id, shares in listing.items()
            if node_id not in known and len(shares) >= self.store.t
        }
        all_results: list[OpResult] = []
        new_nodes = 0
        conflicts: list[Conflict] = []
        # one parallel batch: every listed share of each new node.  The
        # verified decode must see all slots, not the first t — up to
        # m - t of them may be corrupt, or stale leftovers of an
        # interrupted publish, and only the full view lets the
        # assembler prefer the highest verified version
        ops: list[TransferOp] = []
        op_index: dict[int, tuple[str, int, str]] = {}
        for node_id, shares in sorted(wanted.items()):
            for index, size, csp_id in sorted(shares):
                op_index[len(ops)] = (node_id, index, csp_id)
                ops.append(
                    TransferOp(
                        kind=OpKind.GET_META,
                        csp_id=csp_id,
                        name=f"{METADATA_PREFIX}{node_id}-{index:03d}",
                        size=size,
                    )
                )
        results = self.engine.execute(ops)
        all_results.extend(results)
        assemblers: dict[str, object] = {}
        for i, result in enumerate(results):
            node_id, index, csp_id = op_index[i]
            asm = assemblers.setdefault(
                node_id, self.store.assembler(node_id)
            )
            if result.ok:
                asm.add(index, csp_id, result.data)
            elif result.error_type == "ObjectNotFoundError":
                asm.note_missing(index)
            else:
                asm.note_unreachable(index)
        decoded_nodes = []
        for node_id in sorted(assemblers):
            # finish() verifies, attributes corrupt slots to their CSPs
            # and records repair debts — identically on both backends
            node = assemblers[node_id].finish()
            if node is None:
                continue  # no verified quorum this round; next sync
            decoded_nodes.append(node)
        # merge everything first: a fetched node's ancestor may itself be
        # new this round, and conflict traversal needs the full picture
        fresh = []
        for node in decoded_nodes:
            if self.tree.add(node):
                new_nodes += 1
                fresh.append(node)
                self.chunk_table.record_node(node)
        for node in fresh:
            conflicts.extend(conflicts_for_node(self.tree, node))
        finished = self.engine.clock.now()
        # dedupe conflicts (the same divergence can surface per sibling)
        unique = {
            (c.kind, c.parent_id, c.node_ids): c for c in conflicts
        }
        return SyncReport(
            started=started,
            finished=finished,
            new_nodes=new_nodes,
            conflicts=tuple(unique.values()),
            fetch_results=tuple(all_results),
        )


@dataclass
class LocalChangeDetector:
    """Detect locally modified files (Section 5.4, first paragraph).

    "Changes at the local storage can be detected by regularly checking
    last-modified times and file hash values."  Callers feed the current
    local state; files whose mtime moved are re-hashed and reported when
    the content actually changed.
    """

    _seen: dict[str, tuple[float, str]] = field(default_factory=dict)

    def scan(self, files: dict[str, tuple[float, bytes]]) -> list[str]:
        """Names whose content changed since the previous scan.

        Args:
            files: name -> (mtime, content).
        """
        changed: list[str] = []
        for name, (mtime, content) in sorted(files.items()):
            prev = self._seen.get(name)
            if prev is not None and prev[0] == mtime:
                continue  # mtime unchanged: skip hashing entirely
            digest = sha1_hex(content)
            if prev is None or prev[1] != digest:
                changed.append(name)
            self._seen[name] = (mtime, digest)
        return changed
