"""Share and metadata migration on CSP change (paper Section 5.5, Figure 9).

Removing a CSP loses the shares it held.  Re-uploading everything at
once is impractical, so CYRUS migrates *lazily*: whenever a client
downloads a file, it checks where the file's chunks' shares live; any
share on a removed or failed CSP is regenerated from the just-decoded
chunk and uploaded to a fresh provider.  Metadata is small, so it is
migrated eagerly: :func:`migrate_metadata` re-publishes every node's
missing shares to active metadata slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cloud import CSPStatus, CyrusCloud
from repro.core.naming import chunk_share_object_name
from repro.core.transfer import OpKind, OpResult, TransferEngine, TransferOp
from repro.core.uploader import get_sharer
from repro.errors import CSPError, MetadataError
from repro.metadata import GlobalChunkTable, MetadataStore, MetadataTree
from repro.metadata.chunktable import ChunkLocation


@dataclass(frozen=True)
class ShareMigration:
    """One regenerated share: which index moved where."""

    chunk_id: str
    index: int
    old_csp: str
    new_csp: str


def plan_chunk_migrations(
    location: ChunkLocation, cloud: CyrusCloud
) -> list[tuple[int, str, str]]:
    """(index, old_csp, new_csp) restoring the chunk to n live shares.

    A chunk should have shares of ``n`` distinct indices on ``n``
    distinct *active* CSPs.  Any index that is not live — its CSP was
    removed, failed, or the share never landed — is regenerated onto an
    active CSP that holds nothing of this chunk, while such CSPs exist.
    """

    def usable(csp: str) -> bool:
        try:
            return cloud.status_of(csp) is CSPStatus.ACTIVE
        except KeyError:
            return False  # a CSP this client has never heard of

    live_indices: set[int] = set()
    holding: set[str] = set()
    stale_owner: dict[int, str] = {}
    for index, csp in location.placements:
        if usable(csp):
            live_indices.add(index)
            holding.add(csp)
        else:
            stale_owner.setdefault(index, csp)
    moves: list[tuple[int, str, str]] = []
    for index in range(location.n):
        if index in live_indices:
            continue
        if len(holding) >= location.n:
            break  # reliability restored; extra indices are unnecessary
        replacement = cloud.replacement_csp(location.chunk_id, holding)
        if replacement is None:
            break  # no independent CSP left; stays degraded for now
        moves.append((index, stale_owner.get(index, "(missing)"), replacement))
        holding.add(replacement)
    return moves


def migrate_chunk_shares(
    chunk_data: bytes,
    location: ChunkLocation,
    cloud: CyrusCloud,
    chunk_table: GlobalChunkTable,
    engine: TransferEngine,
    key: str,
    journal=None,
) -> list[ShareMigration]:
    """Regenerate and upload the planned shares for one decoded chunk.

    Called from the download path (Figure 9): the chunk bytes are
    already in hand, so only the lost indices are re-encoded.  With a
    :class:`repro.recovery.IntentJournal` attached the moves are
    bracketed as a ``migrate`` intent, so a crash between the upload
    landing and the chunk table learning of it is reconciled on
    restart (the share is adopted, not orphaned).
    """
    moves = plan_chunk_migrations(location, cloud)
    if not moves:
        return []
    intent_id = None
    if journal is not None:
        intent_id = journal.begin("migrate", chunk=location.chunk_id, moves=[
            [index, new_csp, chunk_share_object_name(index, location.chunk_id)]
            for index, _old, new_csp in moves
        ])
    sharer = get_sharer(key, location.t, location.n)
    ops = []
    for index, _old, new_csp in moves:
        share = sharer.split_indices(chunk_data, [index])[0]
        ops.append(
            TransferOp(
                kind=OpKind.PUT,
                csp_id=new_csp,
                name=chunk_share_object_name(index, location.chunk_id),
                data=share.data,
                chunk_id=location.chunk_id,
            )
        )
    results = engine.execute(ops)
    migrated: list[ShareMigration] = []
    for (index, old_csp, new_csp), result in zip(moves, results):
        if not result.ok:
            cloud.mark_failed(new_csp)
            continue
        chunk_table.add_placement(location.chunk_id, index, new_csp)
        if intent_id is not None:
            journal.record(
                intent_id, "share-uploaded", chunk=location.chunk_id,
                index=index, csp=new_csp,
                object=chunk_share_object_name(index, location.chunk_id),
            )
        migrated.append(
            ShareMigration(
                chunk_id=location.chunk_id, index=index,
                old_csp=old_csp, new_csp=new_csp,
            )
        )
    if intent_id is not None:
        journal.commit(intent_id)
    return migrated


def migrate_metadata(
    store: MetadataStore,
    tree: MetadataTree,
    engine: TransferEngine,
) -> int:
    """Eagerly restore missing metadata shares (Section 5.5).

    For every known node and every *reachable* metadata slot, upload the
    slot's share if the provider does not already hold it.  Returns the
    number of shares written.  Metadata is tiny, so unlike chunk shares
    this is cheap enough to do on demand.
    """
    written = 0
    for node in tree:
        for provider, obj_name, blob, _index in store.frames_for(node):
            try:
                existing = {info.name for info in provider.list(
                    prefix=obj_name
                )}
            except CSPError:
                continue  # slot down; nothing to do
            if obj_name in existing:
                continue
            results = engine.execute(
                [
                    TransferOp(
                        kind=OpKind.PUT_META,
                        csp_id=provider.csp_id,
                        name=obj_name,
                        data=blob,
                    )
                ]
            )
            if results[0].ok:
                written += 1
    return written
