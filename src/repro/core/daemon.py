"""Background synchronization service (paper Section 5.4).

"Clients sync files by detecting changes at their local storage and
CSPs" on a period.  :class:`SyncDaemon` packages the periodic behaviour
the paper describes — metadata pull, failed-CSP probing (Section 5.5),
and optional conflict auto-resolution — as ticks driven by the
simulation clock (or any scheduler in a real deployment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import CyrusClient
from repro.errors import CyrusError


@dataclass
class DaemonTick:
    """What one tick did."""

    at: float
    new_nodes: int
    conflicts_seen: int
    conflicts_resolved: int
    csps_recovered: tuple[str, ...]
    scrub_verified: int = 0
    scrub_repaired: int = 0
    debts_retired: int = 0
    debt_shares_rebuilt: int = 0
    debts_open: int = 0
    meta_shares_verified: int = 0
    meta_debts_recorded: int = 0


@dataclass
class SyncDaemon:
    """Periodic sync + probe + (optional) resolve + scrub for one client.

    Args:
        client: The client to service.
        interval_s: Tick period.
        auto_resolve: Resolve conflicts at each tick (deterministic
            winner rule) instead of just reporting them.
        scrub_budget: Share transfers each tick may spend on the
            anti-entropy scrub (0 disables it).  The scrub cursor
            persists across ticks, so a small budget still sweeps the
            whole chunk table over enough periods.
        repair_budget: Share transfers each tick may spend draining the
            redundancy-debt ledger (0 disables it; needs a client with
            a :class:`repro.redundancy.DebtLedger` attached).  Runs
            *before* the scrub so known debts outrank speculative
            verification under a shared tick's worth of provider budget.
        scrub_metadata: Include the metadata-plane census + verify in
            each scrub slice (damage becomes ``meta`` debts the repair
            budget drains on a later tick).
    """

    client: CyrusClient
    interval_s: float = 30.0
    auto_resolve: bool = False
    scrub_budget: int = 0
    repair_budget: int = 0
    scrub_metadata: bool = True
    ticks: list[DaemonTick] = field(default_factory=list)
    _next_due: float = field(default=0.0, init=False)
    _scrubber: object = field(default=None, init=False, repr=False)

    def due(self, now: float) -> bool:
        """Whether a tick is due at time ``now``."""
        return now >= self._next_due

    def tick(self, now: float | None = None) -> DaemonTick:
        """Run one service round regardless of schedule."""
        clock_now = self.client.engine.clock.now() if now is None else now
        recovered = tuple(self.client.probe_failed_csps())
        try:
            report = self.client.sync()
            new_nodes = report.new_nodes
        except CyrusError:
            new_nodes = 0  # too many metadata slots down; retry next tick
        conflicts = self.client.conflicts()
        resolved = 0
        if self.auto_resolve and conflicts:
            resolved = len(self.client.resolve_conflicts())
        debts_retired = debt_shares_rebuilt = debts_open = 0
        if (self.repair_budget > 0
                and getattr(self.client, "debt_ledger", None) is not None):
            try:
                repair = self.client.repair_debts(
                    budget_shares=self.repair_budget, sync_first=False,
                )
                debts_retired = repair.debts_retired
                debt_shares_rebuilt = repair.shares_rebuilt
                debts_open = repair.debts_open
            except CyrusError:
                # fleet too degraded to repair; backoff state is already
                # recorded per entry, next tick retries
                debts_open = len(self.client.debt_ledger)
        scrub_verified = scrub_repaired = 0
        meta_verified = meta_debts = 0
        if self.scrub_budget > 0:
            if self._scrubber is None:
                from repro.recovery import Scrubber

                self._scrubber = Scrubber(
                    self.client, budget_shares=self.scrub_budget,
                    scrub_metadata=self.scrub_metadata,
                )
            try:
                scrub = self._scrubber.run_slice()
                scrub_verified = scrub.shares_verified
                scrub_repaired = scrub.shares_repaired
                meta_verified = scrub.meta_shares_verified
                meta_debts = scrub.meta_debts_recorded
            except CyrusError:
                pass  # providers too degraded to scrub; next tick retries
        entry = DaemonTick(
            at=clock_now,
            new_nodes=new_nodes,
            conflicts_seen=len(conflicts),
            conflicts_resolved=resolved,
            csps_recovered=recovered,
            scrub_verified=scrub_verified,
            scrub_repaired=scrub_repaired,
            debts_retired=debts_retired,
            debt_shares_rebuilt=debt_shares_rebuilt,
            debts_open=debts_open,
            meta_shares_verified=meta_verified,
            meta_debts_recorded=meta_debts,
        )
        self.ticks.append(entry)
        self._next_due = clock_now + self.interval_s
        return entry

    def run_until(self, deadline: float) -> list[DaemonTick]:
        """Tick on schedule until the sim clock passes ``deadline``.

        Only meaningful with a :class:`repro.util.clock.SimClock`: the
        daemon advances the clock to each due tick.
        """
        clock = self.client.engine.clock
        advance_to = getattr(clock, "advance_to", None)
        if not callable(advance_to):
            raise TypeError("run_until needs a SimClock-driven client")
        out = []
        while self._next_due <= deadline:
            target = max(self._next_due, clock.now())
            if target > deadline:
                break
            advance_to(target)
            out.append(self.tick())
        return out
