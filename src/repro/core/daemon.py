"""Background synchronization service (paper Section 5.4).

"Clients sync files by detecting changes at their local storage and
CSPs" on a period.  :class:`SyncDaemon` packages the periodic behaviour
the paper describes — metadata pull, failed-CSP probing (Section 5.5),
and optional conflict auto-resolution — as ticks driven by the
simulation clock (or any scheduler in a real deployment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import CyrusClient
from repro.errors import CyrusError


@dataclass
class DaemonTick:
    """What one tick did."""

    at: float
    new_nodes: int
    conflicts_seen: int
    conflicts_resolved: int
    csps_recovered: tuple[str, ...]


@dataclass
class SyncDaemon:
    """Periodic sync + probe + (optional) resolve for one client.

    Args:
        client: The client to service.
        interval_s: Tick period.
        auto_resolve: Resolve conflicts at each tick (deterministic
            winner rule) instead of just reporting them.
    """

    client: CyrusClient
    interval_s: float = 30.0
    auto_resolve: bool = False
    ticks: list[DaemonTick] = field(default_factory=list)
    _next_due: float = field(default=0.0, init=False)

    def due(self, now: float) -> bool:
        """Whether a tick is due at time ``now``."""
        return now >= self._next_due

    def tick(self, now: float | None = None) -> DaemonTick:
        """Run one service round regardless of schedule."""
        clock_now = self.client.engine.clock.now() if now is None else now
        recovered = tuple(self.client.probe_failed_csps())
        try:
            report = self.client.sync()
            new_nodes = report.new_nodes
        except CyrusError:
            new_nodes = 0  # too many metadata slots down; retry next tick
        conflicts = self.client.conflicts()
        resolved = 0
        if self.auto_resolve and conflicts:
            resolved = len(self.client.resolve_conflicts())
        entry = DaemonTick(
            at=clock_now,
            new_nodes=new_nodes,
            conflicts_seen=len(conflicts),
            conflicts_resolved=resolved,
            csps_recovered=recovered,
        )
        self.ticks.append(entry)
        self._next_due = clock_now + self.interval_s
        return entry

    def run_until(self, deadline: float) -> list[DaemonTick]:
        """Tick on schedule until the sim clock passes ``deadline``.

        Only meaningful with a :class:`repro.util.clock.SimClock`: the
        daemon advances the clock to each due tick.
        """
        clock = self.client.engine.clock
        advance_to = getattr(clock, "advance_to", None)
        if not callable(advance_to):
            raise TypeError("run_until needs a SimClock-driven client")
        out = []
        while self._next_due <= deadline:
            target = max(self._next_due, clock.now())
            if target > deadline:
                break
            advance_to(target)
            out.append(self.tick())
        return out
