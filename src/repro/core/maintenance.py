"""Maintenance operations: import, history pruning, garbage collection.

These implement the extensions the paper's trial users asked for
(Section 7.5: "One user ... suggested adding a feature to import files
already stored at CSPs") plus the storage-reclamation tooling any
long-lived deployment needs:

* :func:`import_object` — adopt a plain object sitting at one provider
  into CYRUS (download it once, then chunk/encode/scatter as usual);
* :func:`prune_history` — drop old versions of a file from the
  metadata, keeping the newest K;
* :func:`collect_garbage` — delete chunk shares referenced by *no*
  remaining metadata node.

Pruning and collection change shared state destructively, so — like
``git gc`` — they must run while no other client is writing; the
functions document (and where possible check) their preconditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.naming import chunk_share_object_name
from repro.core.transfer import OpKind, TransferEngine, TransferOp
from repro.errors import CSPError, MetadataError
from repro.metadata import MetadataStore, MetadataTree
from repro.metadata.codec import metadata_share_name


@dataclass
class GCReport:
    """What a collection pass removed."""

    chunks_scanned: int
    chunks_deleted: int
    shares_deleted: int
    bytes_reclaimed: int


@dataclass
class PruneReport:
    """What a history prune removed."""

    nodes_deleted: int
    versions_kept: int


def import_object(client, csp_id: str, object_name: str,
                  target_name: str | None = None):
    """Adopt an existing plain object from one provider into CYRUS.

    The object is downloaded from the named provider as-is, stored
    through the normal upload pipeline (chunked, deduplicated, encoded,
    scattered), and left in place at the source — deleting the original
    is the user's decision.

    Returns the :class:`repro.core.uploader.UploadReport`.
    """
    provider = client.cloud.provider(csp_id)
    results = client.engine.execute(
        [TransferOp(kind=OpKind.GET, csp_id=csp_id, name=object_name,
                    size=_object_size(provider, object_name))]
    )
    if not results[0].ok:
        raise CSPError(
            f"cannot import {object_name!r} from {csp_id}: "
            f"{results[0].error}",
            csp_id=csp_id,
        )
    name = target_name or object_name
    return client.put(name, results[0].data, sync_first=True)


def _object_size(provider, object_name: str) -> int:
    for info in provider.list(prefix=object_name):
        if info.name == object_name:
            return info.size
    return 0


def prune_history(
    tree: MetadataTree,
    store: MetadataStore,
    engine: TransferEngine,
    name: str,
    keep_versions: int = 1,
) -> PruneReport:
    """Delete all but the newest ``keep_versions`` versions of a file.

    Only the single current lineage is pruned; unresolved conflicts
    (multiple heads) must be resolved first, since pruning would have to
    pick a branch to destroy.  The pruned nodes' metadata shares are
    deleted at every reachable provider, and the nodes are dropped from
    the local tree; chunk shares are reclaimed separately by
    :func:`collect_garbage`.
    """
    if keep_versions < 1:
        raise MetadataError("must keep at least one version")
    heads = tree.heads(name)
    if len(heads) > 1:
        raise MetadataError(
            f"{name!r} has {len(heads)} heads; resolve conflicts before "
            f"pruning"
        )
    chain = tree.history(tree.latest(name).node_id)
    doomed = chain[keep_versions:]
    if not doomed:
        return PruneReport(nodes_deleted=0, versions_kept=len(chain))
    # survivors keep their ids; the oldest kept node's parent reference
    # simply dangles, which history() treats as the start of history
    _delete_nodes(tree, store, engine, [n.node_id for n in doomed])
    return PruneReport(
        nodes_deleted=len(doomed), versions_kept=keep_versions
    )


def _delete_nodes(tree: MetadataTree, store: MetadataStore,
                  engine: TransferEngine, node_ids: list[str]) -> None:
    for node_id in node_ids:
        ops = []
        for index, provider in enumerate(store.providers):
            ops.append(
                TransferOp(
                    kind=OpKind.DELETE,
                    csp_id=provider.csp_id,
                    name=metadata_share_name(node_id, index),
                )
            )
        engine.execute(ops)  # failures tolerated: share may not exist
        tree.remove(node_id)


def collect_garbage(client) -> GCReport:
    """Delete chunk shares that no remaining metadata node references.

    Syncs first so the reachability set reflects every published
    version, then walks the global chunk table and deletes the share
    objects of unreferenced chunks at their recorded providers.
    """
    client.sync()
    referenced = client.tree.referenced_chunks()
    table = client.chunk_table
    doomed = [cid for cid in table.all_chunk_ids() if cid not in referenced]
    # journal the doomed set (with placements) before the first delete:
    # a crashed pass replays as a roll-forward of exactly these deletions
    journal = getattr(client, "journal", None)
    intent_id = None
    if journal is not None and doomed:
        intent_id = journal.begin("gc", chunks=[
            {
                "chunk": chunk_id,
                "placements": [
                    [index, csp_id]
                    for index, csp_id in table.get(chunk_id).placements
                ],
            }
            for chunk_id in doomed
        ])
    shares_deleted = 0
    bytes_reclaimed = 0
    for chunk_id in doomed:
        location = table.get(chunk_id)
        ops = []
        for index, csp_id in location.placements:
            try:
                client.cloud.status_of(csp_id)
            except KeyError:
                continue
            ops.append(
                TransferOp(
                    kind=OpKind.DELETE,
                    csp_id=csp_id,
                    name=chunk_share_object_name(index, chunk_id),
                )
            )
        results = client.engine.execute(ops)
        share_size = max(1, -(-location.size // location.t))
        for result in results:
            if result.ok:
                shares_deleted += 1
                bytes_reclaimed += share_size
        table.forget(chunk_id)
    if intent_id is not None:
        journal.commit(intent_id)
    return GCReport(
        chunks_scanned=len(referenced) + len(doomed),
        chunks_deleted=len(doomed),
        shares_deleted=shares_deleted,
        bytes_reclaimed=bytes_reclaimed,
    )
