"""Object naming on CSPs.

Chunk shares are named ``H'(index, H(chunk.content))`` (Section 5.1):
pure 40-hex names that reveal neither the chunk nor the index, yet any
keyed client can recompute them.  A share's content is fully determined
by (chunk content, index, t, key), so an upload to an existing name can
only ever write identical bytes — "we only overwrite the existing file
share if its content is the same, reducing the risk of data
corruption."  Metadata shares use the discoverable ``md-`` scheme in
:mod:`repro.metadata.codec`.
"""

from __future__ import annotations

from repro.util.hashing import share_name


def chunk_share_object_name(index: int, chunk_id: str) -> str:
    """CSP object name for share ``index`` of the chunk with id ``chunk_id``."""
    return share_name(index, chunk_id)
