"""The CYRUS cloud: a user's federation of CSP accounts.

Tracks provider membership and status (active / failed / removed),
owns the consistent-hash ring used for uplink placement, honours
platform clusters (at most one share of a chunk per cluster, Section
4.1), and manages the append-only metadata provider slots (metadata is
stored "at a fixed set of m CSPs" — slots never shift, so key-derived
share indices stay valid as the set grows).
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Sequence

from repro.csp.base import CloudProvider
from repro.errors import ConfigurationError, CSPUnavailableError, SelectionError
from repro.hashring import ConsistentHashRing
from repro.util.hashing import sha1_hex


class CSPStatus(enum.Enum):
    """Lifecycle of a CSP account inside one CYRUS cloud (Section 5.5)."""

    ACTIVE = "active"
    FAILED = "failed"  # temporarily unreachable; may come back
    REMOVED = "removed"  # permanently gone


class _MetadataSlot(CloudProvider):
    """A fixed metadata slot: proxies to its provider while it is usable.

    Slots are append-only so that metadata share index i always maps to
    the same provider position; a failed/removed provider makes its slot
    raise, which the (t, m)-coded metadata store tolerates.
    """

    def __init__(self, cloud: "CyrusCloud", csp_id: str):
        super().__init__(csp_id)
        self._cloud = cloud

    def _target(self) -> CloudProvider:
        if self._cloud.status_of(self.csp_id) is not CSPStatus.ACTIVE:
            raise CSPUnavailableError(
                f"metadata slot {self.csp_id} is {self._cloud.status_of(self.csp_id).value}",
                csp_id=self.csp_id,
            )
        return self._cloud.provider(self.csp_id)

    def authenticate(self, credentials):
        return self._target().authenticate(credentials)

    def list(self, *, prefix: str = ""):
        return self._target().list(prefix=prefix)

    def upload(self, name: str, data) -> None:
        self._target().upload(name, data)

    def download(self, name: str) -> bytes:
        return self._target().download(name)

    def delete(self, name: str) -> None:
        self._target().delete(name)


class CyrusCloud:
    """Provider membership, status, placement, and metadata slots.

    Args:
        providers: Initial CSPs (at least 2 for any privacy).
        clusters: Optional platform clusters from
            :mod:`repro.topology`; CSPs not mentioned form singletons.
        ring_replicas: Virtual nodes per CSP on the placement ring.
    """

    def __init__(
        self,
        providers: Sequence[CloudProvider],
        clusters: Iterable[Iterable[str]] | None = None,
        ring_replicas: int = 64,
    ):
        if not providers:
            raise ConfigurationError("a CYRUS cloud needs at least one CSP")
        ids = [p.csp_id for p in providers]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate CSP ids: {ids}")
        self._providers: dict[str, CloudProvider] = {
            p.csp_id: p for p in providers
        }
        self._status: dict[str, CSPStatus] = {
            p.csp_id: CSPStatus.ACTIVE for p in providers
        }
        self._ring = ConsistentHashRing(replicas=ring_replicas)
        for p in providers:
            self._ring.add(p.csp_id)
        self._cluster_of: dict[str, str] = {}
        if clusters is not None:
            self.set_clusters(clusters)
        # metadata slots: fixed order, append-only
        self._meta_slots: list[str] = sorted(self._providers)
        # quota-full CSPs: no new shares placed there, but still readable
        self._write_full: set[str] = set()

    # -- cluster handling -------------------------------------------------

    def set_clusters(self, clusters: Iterable[Iterable[str]]) -> None:
        """Declare platform clusters (e.g. from route-tree inference)."""
        mapping: dict[str, str] = {}
        for group in clusters:
            members = sorted(group)
            label = sha1_hex(",".join(members).encode("utf-8"))[:8]
            for csp in members:
                mapping[csp] = label
        self._cluster_of = mapping

    def cluster_of(self, csp_id: str) -> str:
        """Cluster label (CSPs without a declared cluster are singletons)."""
        return self._cluster_of.get(csp_id, f"solo-{csp_id}")

    def cluster_count(self, statuses: tuple[CSPStatus, ...] = (CSPStatus.ACTIVE,)) -> int:
        """Distinct clusters among CSPs with the given statuses."""
        return len(
            {self.cluster_of(c) for c, s in self._status.items() if s in statuses}
        )

    # -- membership -------------------------------------------------------

    def provider(self, csp_id: str) -> CloudProvider:
        prov = self._providers.get(csp_id)
        if prov is None:
            raise KeyError(f"unknown CSP {csp_id!r}")
        return prov

    def status_of(self, csp_id: str) -> CSPStatus:
        status = self._status.get(csp_id)
        if status is None:
            raise KeyError(f"unknown CSP {csp_id!r}")
        return status

    def active_csps(self) -> list[str]:
        """CSPs usable for new uploads and downloads."""
        return sorted(
            c for c, s in self._status.items() if s is CSPStatus.ACTIVE
        )

    def unusable_csps(self) -> list[str]:
        """Failed or removed CSPs (their shares need eventual migration)."""
        return sorted(
            c for c, s in self._status.items() if s is not CSPStatus.ACTIVE
        )

    def add_csp(self, provider: CloudProvider) -> None:
        """Section 5.5 "Adding CSPs": joins ring and metadata slots.

        Already-stored chunk shares are untouched; only new uploads use
        the member.  The new CSP also takes the next metadata slot,
        increasing metadata redundancy.
        """
        csp_id = provider.csp_id
        if csp_id in self._providers and self._status[csp_id] is not CSPStatus.REMOVED:
            raise ConfigurationError(f"CSP {csp_id!r} already present")
        self._providers[csp_id] = provider
        self._status[csp_id] = CSPStatus.ACTIVE
        if csp_id not in self._ring:
            self._ring.add(csp_id)
        if csp_id not in self._meta_slots:
            self._meta_slots.append(csp_id)

    def remove_csp(self, csp_id: str) -> None:
        """Section 5.5 "Removing CSPs": permanent departure."""
        self.status_of(csp_id)  # raises on unknown
        self._status[csp_id] = CSPStatus.REMOVED
        if csp_id in self._ring:
            self._ring.remove(csp_id)

    def mark_failed(self, csp_id: str) -> None:
        """Record a detected failure; no uploads go there until recovery."""
        if self.status_of(csp_id) is CSPStatus.ACTIVE:
            self._status[csp_id] = CSPStatus.FAILED
            if csp_id in self._ring:
                self._ring.remove(csp_id)

    def mark_recovered(self, csp_id: str) -> None:
        """A failed CSP came back up."""
        if self.status_of(csp_id) is CSPStatus.FAILED:
            self._status[csp_id] = CSPStatus.ACTIVE
            if csp_id not in self._ring:
                self._ring.add(csp_id)

    def mark_write_full(self, csp_id: str) -> None:
        """The account is out of quota: stop placing shares there.

        Unlike :meth:`mark_failed`, a full CSP stays ACTIVE — its stored
        shares remain downloadable; it just takes no new ones until the
        user frees space or buys storage (the paper's Section 8 economic
        point: CYRUS users buy capacity where it runs out).
        """
        self.status_of(csp_id)  # raises on unknown
        self._write_full.add(csp_id)
        if csp_id in self._ring:
            self._ring.remove(csp_id)

    def mark_write_available(self, csp_id: str) -> None:
        """Space was freed: resume placing shares at this CSP."""
        if csp_id in self._write_full:
            self._write_full.discard(csp_id)
            if (self.status_of(csp_id) is CSPStatus.ACTIVE
                    and csp_id not in self._ring):
                self._ring.add(csp_id)

    def is_write_full(self, csp_id: str) -> bool:
        return csp_id in self._write_full

    def writable_csps(self) -> list[str]:
        """Active CSPs that can accept new shares."""
        return [c for c in self.active_csps() if c not in self._write_full]

    # -- placement ----------------------------------------------------------

    def place_chunk(self, chunk_id: str, n: int,
                    respect_clusters: bool = True,
                    avoid: Iterable[str] = ()) -> list[str]:
        """The n CSPs to hold a chunk's shares.

        Consistent hashing on the chunk id (Section 5.3), walking the
        ring and — when cluster placement is on — skipping CSPs whose
        platform cluster already holds a share (Section 4.1).  Only
        writable CSPs (active and not quota-full) are candidates.

        ``avoid`` *demotes* candidates without excluding them: providers
        whose breaker is open would cost a guaranteed failed dispatch,
        so they are walked last and used only when too few preferred
        candidates remain — a degraded placement beats refusing the
        upload, and the debt ledger records what is still owed.
        """
        writable = self.writable_csps()
        if len(writable) < n:
            raise SelectionError(
                f"need {n} writable CSPs for placement, have {len(writable)}"
            )
        candidates = self._ring.successors(chunk_id, len(writable))
        shunned = set(avoid)
        if shunned:
            candidates = (
                [c for c in candidates if c not in shunned]
                + [c for c in candidates if c in shunned]
            )
        if not respect_clusters:
            return candidates[:n]
        chosen: list[str] = []
        used_clusters: set[str] = set()
        for csp in candidates:
            cluster = self.cluster_of(csp)
            if cluster in used_clusters:
                continue
            chosen.append(csp)
            used_clusters.add(cluster)
            if len(chosen) == n:
                return chosen
        # not enough independent clusters: fill from remaining candidates
        # (degraded reliability is better than refusing the upload)
        for csp in candidates:
            if csp not in chosen:
                chosen.append(csp)
                if len(chosen) == n:
                    return chosen
        raise SelectionError(
            f"cannot place {n} shares on {len(writable)} CSPs"
        )

    def replacement_csp(
        self,
        chunk_id: str,
        holding: Iterable[str],
        exclude: Iterable[str] = (),
    ) -> str | None:
        """A writable CSP not yet holding the chunk (for lazy migration).

        ``exclude`` removes additional candidates — providers already
        tried this transfer, or ones the health registry reports as
        breaker-open — without changing their cloud status.
        """
        skip = set(holding) | set(exclude)
        writable = self.writable_csps()
        if not writable:
            return None
        for csp in self._ring.successors(chunk_id, len(writable)):
            if csp not in skip:
                return csp
        return None

    # -- metadata slots ------------------------------------------------------

    def metadata_slots(self) -> list[CloudProvider]:
        """Fixed-order metadata providers (slot i = share index i)."""
        return [_MetadataSlot(self, csp_id) for csp_id in self._meta_slots]

    def metadata_slot_ids(self) -> list[str]:
        return list(self._meta_slots)
