"""The CYRUS core: client, upload/download pipelines, sync, migration.

This package realises the paper's Table 3 API on top of the substrates:
chunking, keyed secret sharing, consistent-hash placement with platform
clusters, optimised downlink selection, scattered metadata, optimistic
concurrency with after-the-fact conflict detection, and lazy share
migration on CSP change.
"""

from repro.core.cache import ChunkCache
from repro.core.client import CyrusClient
from repro.core.cloud import CyrusCloud
from repro.core.config import CyrusConfig
from repro.core.daemon import SyncDaemon
from repro.core.downloader import DownloadReport, Downloader
from repro.core.maintenance import GCReport, PruneReport
from repro.core.retry import ShareRetryLoop
from repro.core.sync import SyncReport, SyncService
from repro.core.transfer import (
    DirectEngine,
    OpResult,
    SimulatedEngine,
    TransferOp,
    TransferReceiver,
)
from repro.core.uploader import UploadReport, Uploader

__all__ = [
    "CyrusClient",
    "CyrusCloud",
    "CyrusConfig",
    "ChunkCache",
    "SyncDaemon",
    "Uploader",
    "UploadReport",
    "Downloader",
    "DownloadReport",
    "SyncService",
    "SyncReport",
    "GCReport",
    "PruneReport",
    "ShareRetryLoop",
    "TransferOp",
    "OpResult",
    "DirectEngine",
    "SimulatedEngine",
    "TransferReceiver",
]
