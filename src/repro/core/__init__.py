"""The CYRUS core: client, upload/download pipelines, sync, migration.

This package realises the paper's Table 3 API on top of the substrates:
chunking, keyed secret sharing, consistent-hash placement with platform
clusters, optimised downlink selection, scattered metadata, optimistic
concurrency with after-the-fact conflict detection, and lazy share
migration on CSP change.

Import surface: the package-level re-exports below are **deprecated**
in favour of the top-level :mod:`repro` façade (for the public names)
or the canonical implementation modules (``repro.core.client``,
``repro.core.transfer``, ...).  They keep resolving — via a PEP 562
``__getattr__`` that emits :class:`DeprecationWarning` — so existing
callers don't break, but new code should not add to their users.
"""

from repro._compat import deprecated_getattr

_MOVED = {
    "CyrusClient": "repro.core.client",
    "CyrusCloud": "repro.core.cloud",
    "CyrusConfig": "repro.core.config",
    "ChunkCache": "repro.core.cache",
    "SyncDaemon": "repro.core.daemon",
    "Uploader": "repro.core.uploader",
    "UploadReport": "repro.core.uploader",
    "Downloader": "repro.core.downloader",
    "DownloadReport": "repro.core.downloader",
    "SyncService": "repro.core.sync",
    "SyncReport": "repro.core.sync",
    "GCReport": "repro.core.maintenance",
    "PruneReport": "repro.core.maintenance",
    "ShareRetryLoop": "repro.core.retry",
    "TransferOp": "repro.core.transfer",
    "OpResult": "repro.core.transfer",
    "DirectEngine": "repro.core.transfer",
    "SimulatedEngine": "repro.core.transfer",
    "TransferReceiver": "repro.core.transfer",
}

__all__ = sorted(_MOVED)

__getattr__ = deprecated_getattr(__name__, _MOVED)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED))
