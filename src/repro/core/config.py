"""Client configuration: the user's privacy/reliability/latency dials.

Paper Section 4.2: the user picks the privacy threshold ``t`` directly
(t = 2 already denies any single CSP access to the data) and either a
share count ``n`` or a failure bound ``epsilon`` from which the minimum
``n`` is planned via Equation (1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.reliability.planner import minimum_shares


@dataclass(frozen=True)
class CyrusConfig:
    """All user-tunable parameters.

    Attributes:
        key: The user's key string; drives both the dispersal matrix
            (decoding shares requires it, Section 7.1) and nothing else
            — losing it means losing the data, like any encryption key.
        t: Privacy threshold — shares (and hence CSPs) needed to
            reconstruct any chunk.  Must be >= 2 for privacy.
        n: Shares per chunk; None means "plan from epsilon".
        epsilon: Acceptable chunk-loss probability; used when n is None.
        csp_failure_prob: Per-CSP failure probability fed to Eq. (1)
            (conservatively the worst observed value, footnote 6).
        meta_t: Threshold for the (t, m) metadata sharing.
        chunk_min/chunk_avg/chunk_max: Content-defined chunking sizes
            (paper's testbed averages 4 MB chunks, following Dropbox;
            the defaults here are scaled to the simulated workloads).
        respect_clusters: Place at most one share of a chunk per
            platform cluster (Section 4.1).
        parallelism: Worker threads for scatter/gather transfer; 1 (the
            default) keeps the serial engine path, bit-for-bit identical
            to historical behaviour.
        max_inflight_per_csp: Concurrent in-flight operations allowed
            per provider when parallel; None means no per-CSP bound.
        max_inflight_total: Concurrent in-flight operations allowed
            across all providers; None means "equal to parallelism".
        encode_workers: Worker *processes* for erasure encoding; 0 (the
            default) encodes inline on the calling thread.  Threads
            cannot speed up the CPU-bound GF(2^8) math, so CPU-parallel
            encode is a separate dial from transfer ``parallelism``.
        transfer_backend: ``"thread"`` (the default) runs parallel
            batches on the scatter/gather worker pool; ``"async"`` runs
            them as coroutines on one asyncio loop (the event-driven
            core — the scalable choice for many clients per process).
            Both honour the same parallelism/in-flight caps, and at
            ``parallelism=1`` both take the identical serial path.
    """

    key: str
    t: int = 2
    n: int | None = 3
    epsilon: float | None = None
    csp_failure_prob: float = 1e-3
    meta_t: int = 2
    chunk_min: int = 64 * 1024
    chunk_avg: int = 256 * 1024
    chunk_max: int = 2 * 1024 * 1024
    chunker_engine: str = "vectorized"
    chunker_seed: int = 0x5EED
    respect_clusters: bool = True
    parallelism: int = 1
    max_inflight_per_csp: int | None = None
    max_inflight_total: int | None = None
    encode_workers: int = 0
    transfer_backend: str = "thread"

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("key string must be non-empty")
        if self.t < 1:
            raise ConfigurationError(f"t must be >= 1, got {self.t}")
        if self.n is None and self.epsilon is None:
            raise ConfigurationError("must set n or epsilon")
        if self.n is not None and self.n < self.t:
            raise ConfigurationError(
                f"need n >= t, got (t, n) = ({self.t}, {self.n})"
            )
        if self.epsilon is not None and not 0 < self.epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0,1), got {self.epsilon}")
        if self.meta_t < 1:
            raise ConfigurationError(f"meta_t must be >= 1, got {self.meta_t}")
        if self.parallelism < 1:
            raise ConfigurationError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.max_inflight_per_csp is not None and self.max_inflight_per_csp < 1:
            raise ConfigurationError(
                f"max_inflight_per_csp must be >= 1, "
                f"got {self.max_inflight_per_csp}"
            )
        if self.max_inflight_total is not None and self.max_inflight_total < 1:
            raise ConfigurationError(
                f"max_inflight_total must be >= 1, "
                f"got {self.max_inflight_total}"
            )
        if self.encode_workers < 0:
            raise ConfigurationError(
                f"encode_workers must be >= 0, got {self.encode_workers}"
            )
        if self.transfer_backend not in ("thread", "async"):
            raise ConfigurationError(
                f"transfer_backend must be 'thread' or 'async', "
                f"got {self.transfer_backend!r}"
            )

    def plan_n(self, available_csps: int) -> int:
        """The share count to use given how many CSPs (or clusters) exist.

        A fixed ``n`` is capped at the CSP count; an epsilon-driven
        config runs the Eq. (1) search.
        """
        if available_csps < self.t:
            raise ConfigurationError(
                f"only {available_csps} CSPs available, need t={self.t}"
            )
        if self.n is not None:
            return min(self.n, available_csps)
        return minimum_shares(
            self.t, self.csp_failure_prob, self.epsilon, available_csps
        )

    def with_params(self, **changes) -> "CyrusConfig":
        """A copy with some fields replaced (configs are immutable)."""
        return replace(self, **changes)
