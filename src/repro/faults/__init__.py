"""Deterministic fault injection for chaos testing.

CYRUS's central claim is graceful behaviour under autonomous-CSP
failure (Section 5.5).  This package makes that claim testable: a
:class:`FaultPlan` scripts outages, transient errors, latency spikes,
slow transfers, quota exhaustion, auth expiry, share bit-flip
corruption and client deaths (:class:`SimulatedCrash`) from a single
seed, and :class:`FaultyProvider` applies the plan to any provider
through the normal five-primitive interface.  Same seed + same
operation sequence = byte-identical fault schedule, so chaos tests and
failure benchmarks are reproducible.
"""

from repro.faults.plan import (
    ERROR_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ProviderSchedule,
    SimulatedCrash,
)
from repro.faults.provider import FaultyProvider

__all__ = [
    "ERROR_KINDS",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyProvider",
    "ProviderSchedule",
    "SimulatedCrash",
]
