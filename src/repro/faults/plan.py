"""Scripted, seeded fault schedules.

The failure experiments in the paper (Section 5.5, Figure 13) need
*reproducible* chaos: the same scenario must produce the same outages,
the same transient blips and the same corrupted shares on every run, or
a failing chaos test cannot be debugged.  A :class:`FaultPlan` is a list
of :class:`FaultSpec` rules plus a seed; all randomness (probability
rolls, bit-flip positions) derives from ``(seed, csp_id)`` streams and
per-provider operation counters, so two runs that issue the same
operation sequence observe byte-identical fault schedules.

Rules match on operation name, object-name prefix, provider, an
operation-count window and/or a time window, fire with a probability,
and inject one of nine fault kinds:

============= =======================================================
kind           effect
============= =======================================================
OUTAGE         raise :class:`CSPUnavailableError` (provider down)
TRANSIENT      raise :class:`CSPUnavailableError` (blip; retries recover)
LATENCY        advance the clock by ``delay_s`` before the call proceeds
SLOW           advance the clock by ``delay_s`` per MiB of payload
QUOTA          raise :class:`CSPQuotaExceededError` on uploads
AUTH           raise :class:`CSPAuthError` (token expired)
CORRUPT        flip ``flip_bits`` bits of a download's returned bytes
CORRUPT_READ   same, but *persistent*: a given object returns the same
               wrong bytes on every fetch (Byzantine provider whose
               stored data rotted or was tampered with, as opposed to
               CORRUPT's per-transfer line noise)
CRASH          raise :class:`SimulatedCrash` (kill the client process)
============= =======================================================

CRASH is the crash-consistency hammer: a spec like
``FaultSpec(kind=CRASH, window_ops=(k, None), max_hits=1)`` kills the
client at its k-th operation on a provider, so sweeping ``k`` walks the
kill point through every stage of an upload/delete/gc pipeline.  The
fault fires *before* the operation reaches the wrapped provider — the
crashing op itself never lands, exactly like a process dying between
issuing a request and its bytes leaving the machine.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import Sequence


class FaultKind(enum.Enum):
    """The injectable fault families."""

    OUTAGE = "outage"
    TRANSIENT = "transient"
    LATENCY = "latency"
    SLOW = "slow"
    QUOTA = "quota"
    AUTH = "auth"
    CORRUPT = "corrupt"
    CORRUPT_READ = "corrupt-read"
    CRASH = "crash"


#: Fault kinds that raise instead of mutating behaviour.
ERROR_KINDS = (FaultKind.OUTAGE, FaultKind.TRANSIENT, FaultKind.QUOTA,
               FaultKind.AUTH)


class SimulatedCrash(BaseException):
    """The injected process death of ``FaultKind.CRASH``.

    Deliberately a :class:`BaseException`, not a
    :class:`repro.errors.CyrusError`: no retry loop, circuit breaker or
    degraded-read fallback may swallow it, because a real ``kill -9``
    gives the client no chance to handle anything.  Only the test
    harness (standing in for the OS) catches it.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault rule.

    Attributes:
        kind: What to inject.
        ops: Operation names the rule applies to (default: data ops for
            QUOTA/CORRUPT-appropriate kinds, every op otherwise).
        csp_ids: Providers the rule applies to (None = all).
        name_prefix: Only objects whose name starts with this.
        window_ops: ``(start, end)`` half-open window in the provider's
            own operation sequence number (None end = forever).
        window_time: ``(start, end)`` half-open clock window in seconds.
        probability: Chance the rule fires when it matches.
        delay_s: LATENCY seconds (or SLOW seconds per MiB).
        flip_bits: CORRUPT bit-flip count per download.
        max_hits: Stop firing after this many injections (None = no cap).
    """

    kind: FaultKind
    ops: tuple[str, ...] | None = None
    csp_ids: tuple[str, ...] | None = None
    name_prefix: str | None = None
    window_ops: tuple[int, int | None] | None = None
    window_time: tuple[float, float] | None = None
    probability: float = 1.0
    delay_s: float = 0.0
    flip_bits: int = 3
    max_hits: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.flip_bits < 1:
            raise ValueError("flip_bits must be >= 1")
        if self.max_hits is not None and self.max_hits < 1:
            raise ValueError("max_hits must be >= 1 (or None)")

    def matches(self, csp_id: str, op: str, name: str,
                op_no: int, now: float) -> bool:
        """Static match (windows, targets); the probability roll is separate."""
        if self.csp_ids is not None and csp_id not in self.csp_ids:
            return False
        if self.ops is not None and op not in self.ops:
            return False
        if self.name_prefix is not None and not name.startswith(self.name_prefix):
            return False
        if self.window_ops is not None:
            start, end = self.window_ops
            if op_no < start or (end is not None and op_no >= end):
                return False
        if self.window_time is not None:
            t0, t1 = self.window_time
            if now < t0 or now >= t1:
                return False
        if self.kind is FaultKind.QUOTA and op != "upload":
            return False
        if (self.kind in (FaultKind.CORRUPT, FaultKind.CORRUPT_READ)
                and op != "download"):
            return False
        return True


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in a provider's fault log."""

    csp_id: str
    op_no: int
    op: str
    name: str
    kind: FaultKind
    time: float


@dataclass
class ProviderSchedule:
    """One provider's deterministic view of a plan.

    Owns the per-provider RNG stream and hit counters.  Probability
    rolls are keyed by ``(plan seed, csp_id, op_no, rule index)`` so the
    decision for operation k never depends on how many earlier rules
    fired — schedules stay identical across runs that issue the same
    operations.
    """

    csp_id: str
    seed: int
    specs: tuple[FaultSpec, ...]
    hits: dict[int, int] = field(default_factory=dict)  # rule idx -> count

    def _roll(self, op_no: int, rule_idx: int) -> float:
        digest = hashlib.sha1(
            f"{self.seed}:{self.csp_id}:{op_no}:{rule_idx}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def corruption_rng(self, op_no: int, name: str) -> random.Random:
        """Deterministic RNG for one download's bit flips."""
        digest = hashlib.sha1(
            f"{self.seed}:{self.csp_id}:corrupt:{op_no}:{name}".encode()
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def decide(self, op: str, name: str, op_no: int,
               now: float) -> list[tuple[int, FaultSpec]]:
        """The rules that fire for this operation, in plan order."""
        fired: list[tuple[int, FaultSpec]] = []
        for idx, spec in enumerate(self.specs):
            if not spec.matches(self.csp_id, op, name, op_no, now):
                continue
            if spec.max_hits is not None and self.hits.get(idx, 0) >= spec.max_hits:
                continue
            if spec.probability < 1.0 and self._roll(op_no, idx) >= spec.probability:
                continue
            self.hits[idx] = self.hits.get(idx, 0) + 1
            fired.append((idx, spec))
        return fired


class FaultPlan:
    """An ordered set of fault rules plus the seed that drives them.

    Plans are immutable recipes: :meth:`for_provider` mints a fresh
    stateful :class:`ProviderSchedule` per wrapper, so the same plan can
    be applied to many providers (or to two identical runs) without any
    shared mutable state.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.specs)

    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        return FaultPlan(self.specs + (spec,), seed=self.seed)

    def restricted_to(self, csp_ids: Sequence[str]) -> "FaultPlan":
        """A copy whose every rule is limited to the given providers."""
        return FaultPlan(
            tuple(replace(s, csp_ids=tuple(csp_ids)) for s in self.specs),
            seed=self.seed,
        )

    def for_provider(self, csp_id: str) -> ProviderSchedule:
        return ProviderSchedule(csp_id=csp_id, seed=self.seed, specs=self.specs)

    # -- scripted-scenario builders --------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int = 0,
        transient_rate: float = 0.1,
        corrupt_csp_ids: Sequence[str] = (),
        corrupt_rate: float = 1.0,
        outage_csp_id: str | None = None,
        outage_window_ops: tuple[int, int | None] = (40, 80),
        latency_rate: float = 0.0,
        latency_s: float = 0.2,
    ) -> "FaultPlan":
        """A ready-made mixed-fault scenario for chaos tests.

        Transient blips on every provider's data operations, scripted
        bit-flip corruption on a bounded provider subset (keep it at or
        below ``n - t`` for recoverability), one op-count-windowed
        outage, and optional latency spikes.
        """
        specs: list[FaultSpec] = []
        if transient_rate > 0:
            specs.append(FaultSpec(
                kind=FaultKind.TRANSIENT, ops=("upload", "download"),
                probability=transient_rate,
            ))
        if corrupt_csp_ids and corrupt_rate > 0:
            specs.append(FaultSpec(
                kind=FaultKind.CORRUPT, csp_ids=tuple(corrupt_csp_ids),
                probability=corrupt_rate,
            ))
        if outage_csp_id is not None:
            specs.append(FaultSpec(
                kind=FaultKind.OUTAGE, csp_ids=(outage_csp_id,),
                window_ops=tuple(outage_window_ops),
            ))
        if latency_rate > 0:
            specs.append(FaultSpec(
                kind=FaultKind.LATENCY, ops=("upload", "download"),
                probability=latency_rate, delay_s=latency_s,
            ))
        return cls(specs, seed=seed)

    @classmethod
    def metadata_byzantine(
        cls,
        seed: int = 0,
        liar_csp_ids: Sequence[str] = (),
        corrupt_rate: float = 1.0,
        outage_csp_id: str | None = None,
        outage_window_ops: tuple[int, int | None] = (0, None),
        name_prefix: str = "md-",
    ) -> "FaultPlan":
        """Byzantine metadata plane: lying slots plus an optional outage.

        Every ``liar_csp_ids`` provider serves persistently corrupted
        bytes (CORRUPT_READ, so re-reads see the same rot) for objects
        under ``name_prefix`` — by default the metadata namespace, so
        data shares stay clean and the scenario isolates the metadata
        plane.  Keep ``len(liar_csp_ids)`` plus the outage at or below
        ``m - t`` for the verified fetch to stay live.
        """
        specs: list[FaultSpec] = []
        if liar_csp_ids and corrupt_rate > 0:
            specs.append(FaultSpec(
                kind=FaultKind.CORRUPT_READ, csp_ids=tuple(liar_csp_ids),
                name_prefix=name_prefix, probability=corrupt_rate,
            ))
        if outage_csp_id is not None:
            specs.append(FaultSpec(
                kind=FaultKind.OUTAGE, csp_ids=(outage_csp_id,),
                window_ops=tuple(outage_window_ops),
            ))
        return cls(specs, seed=seed)
