"""The fault-injecting provider wrapper.

Wraps any :class:`repro.csp.base.CloudProvider` and applies a
:class:`repro.faults.plan.FaultPlan` to every operation.  The wrapper is
invisible to the client stack — faults surface through exactly the same
exception types a real connector raises — so chaos scenarios exercise
the genuine failure-handling paths (retry policy, circuit breakers,
share repair) rather than test doubles of them.
"""

from __future__ import annotations

import threading

from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.errors import (
    CSPAuthError,
    CSPQuotaExceededError,
    CSPUnavailableError,
)
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, SimulatedCrash
from repro.util.clock import Clock


class FaultyProvider(CloudProvider):
    """A provider whose behaviour is scripted by a fault plan.

    Args:
        inner: The real provider to wrap.
        plan: The fault schedule; each wrapper gets its own
            deterministic per-provider stream from it.
        clock: When given and advanceable (a SimClock), LATENCY/SLOW
            faults advance it so deadlines and breaker timeouts observe
            the injected delay; without one the delay is only recorded.

    Observability: ``fault_log`` lists every injected fault in order,
    ``op_counts`` counts dispatched operations by name (before faults),
    and ``calls_reaching_inner`` counts operations that actually touched
    the wrapped provider — the number a circuit-breaker test asserts on.
    """

    def __init__(
        self,
        inner: CloudProvider,
        plan: FaultPlan,
        clock: Clock | None = None,
    ):
        super().__init__(inner.csp_id)
        self.inner = inner
        self.clock = clock
        self._schedule = plan.for_provider(inner.csp_id)
        self.fault_log: list[FaultEvent] = []
        self.op_counts: dict[str, int] = {}
        self.calls_reaching_inner = 0
        self._op_no = 0
        self.injected_delay_s = 0.0
        # op numbering + counters under concurrent dispatch (the fault
        # *decision* stays a pure function of the claimed op_no, so a
        # seeded plan injects the same multiset of faults regardless of
        # worker interleaving)
        self._lock = threading.Lock()

    # -- fault machinery --------------------------------------------------

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _advance(self, seconds: float) -> None:
        with self._lock:
            self.injected_delay_s += seconds
        if self.clock is not None:
            advance = getattr(self.clock, "advance", None)
            if callable(advance):
                advance(seconds)

    def _before(self, op: str, name: str = "", size: int = 0) -> list:
        """Count the op, decide its faults, raise the error kinds.

        Returns the non-error faults (CORRUPT) for the caller to apply
        to the operation's result.
        """
        with self._lock:
            op_no = self._op_no
            self._op_no += 1
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
        fired = self._schedule.decide(op, name, op_no, self._now())
        deferred = []
        for idx, spec in fired:
            with self._lock:
                self.fault_log.append(FaultEvent(
                    csp_id=self.csp_id, op_no=op_no, op=op, name=name,
                    kind=spec.kind, time=self._now(),
                ))
            if spec.kind is FaultKind.LATENCY:
                self._advance(spec.delay_s)
            elif spec.kind is FaultKind.SLOW:
                self._advance(spec.delay_s * (size / (1024.0 * 1024.0)))
            elif spec.kind is FaultKind.OUTAGE:
                raise CSPUnavailableError(
                    f"injected outage (op #{op_no}, {op} {name!r})",
                    csp_id=self.csp_id,
                )
            elif spec.kind is FaultKind.TRANSIENT:
                raise CSPUnavailableError(
                    f"injected transient error (op #{op_no}, {op} {name!r})",
                    csp_id=self.csp_id,
                )
            elif spec.kind is FaultKind.QUOTA:
                raise CSPQuotaExceededError(
                    f"injected quota exhaustion (op #{op_no})",
                    csp_id=self.csp_id,
                )
            elif spec.kind is FaultKind.AUTH:
                raise CSPAuthError(
                    f"injected auth expiry (op #{op_no})", csp_id=self.csp_id
                )
            elif spec.kind is FaultKind.CRASH:
                # before the inner call: the dying op never lands
                raise SimulatedCrash(
                    f"injected client death at {self.csp_id} "
                    f"op #{op_no} ({op} {name!r})"
                )
            else:  # CORRUPT/CORRUPT_READ: applied to the bytes afterwards
                deferred.append((op_no, spec))
        return deferred

    def _corrupt(self, data: bytes, name: str, op_no: int, flip_bits: int) -> bytes:
        """Deterministically flip bits in one download's payload."""
        if not data:
            return data
        rng = self._schedule.corruption_rng(op_no, name)
        blob = bytearray(data)
        for _ in range(flip_bits):
            pos = rng.randrange(len(blob))
            blob[pos] ^= 1 << rng.randrange(8)
        return bytes(blob)

    @property
    def injected_faults(self) -> dict[FaultKind, int]:
        """Fault-log histogram by kind."""
        out: dict[FaultKind, int] = {}
        for event in self.fault_log:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # -- the five primitives ----------------------------------------------

    def authenticate(self, credentials):
        self._before("authenticate")
        with self._lock:
            self.calls_reaching_inner += 1
        return self.inner.authenticate(credentials)

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        self._before("list", prefix)
        with self._lock:
            self.calls_reaching_inner += 1
        return self.inner.list(prefix=prefix)

    def upload(self, name: str, data: BytesLike) -> None:
        self._before("upload", name, size=len(data))
        with self._lock:
            self.calls_reaching_inner += 1
        self.inner.upload(name, data)

    def download(self, name: str) -> bytes:
        deferred = self._before("download", name)
        with self._lock:
            self.calls_reaching_inner += 1
        data = self.inner.download(name)
        for op_no, spec in deferred:
            # CORRUPT_READ keys its RNG by object name alone (op_no 0),
            # so refetching the object yields the same wrong bytes — a
            # Byzantine store, not a flaky wire
            rng_op = 0 if spec.kind is FaultKind.CORRUPT_READ else op_no
            data = self._corrupt(data, name, rng_op, spec.flip_bits)
        return data

    def delete(self, name: str) -> None:
        self._before("delete", name)
        with self._lock:
            self.calls_reaching_inner += 1
        self.inner.delete(name)

    # -- passthroughs -----------------------------------------------------

    def is_up(self, t: float | None = None) -> bool:
        checker = getattr(self.inner, "is_up", None)
        if callable(checker):
            return bool(checker(t))
        return True
