"""Consistent hashing for uplink CSP selection (paper Sections 4.3, 5.3)."""

from repro.hashring.ring import ConsistentHashRing

__all__ = ["ConsistentHashRing"]
