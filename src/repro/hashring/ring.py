"""SHA-1 consistent hash ring.

CYRUS "uses consistent hashing to select the n CSPs at which to store
shares of each chunk, allowing us to balance the amount of data stored
at different CSPs and minimize the necessary share reallocation when
CSPs are added or deleted" (Section 5.3).  A chunk id is hashed to a
point on the ring; the first ``n`` *distinct* CSPs encountered clockwise
hold its shares.

Virtual nodes smooth the load distribution: each CSP is hashed onto the
ring ``replicas`` times.  Weighted membership scales the replica count,
letting callers bias placement toward CSPs with more free quota.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import SelectionError


def _ring_hash(key: str) -> int:
    """Position on the ring: first 8 bytes of SHA-1 (paper uses SHA-1)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """A consistent hash ring over CSP identifiers.

    Args:
        replicas: Virtual nodes per unit of weight.
    """

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: list[str] = []
        self._weights: dict[str, int] = {}

    # -- membership -------------------------------------------------------

    def add(self, csp_id: str, weight: int = 1) -> None:
        """Add a CSP with the given integer weight (>= 1)."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        if csp_id in self._weights:
            raise ValueError(f"CSP {csp_id!r} already on the ring")
        self._weights[csp_id] = weight
        for i in range(self.replicas * weight):
            point = _ring_hash(f"{csp_id}#{i}")
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, csp_id)

    def remove(self, csp_id: str) -> None:
        """Remove a CSP and all its virtual nodes."""
        if csp_id not in self._weights:
            raise KeyError(f"CSP {csp_id!r} not on the ring")
        del self._weights[csp_id]
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != csp_id]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    @property
    def members(self) -> list[str]:
        """CSPs currently on the ring (sorted)."""
        return sorted(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, csp_id: str) -> bool:
        return csp_id in self._weights

    # -- lookup -------------------------------------------------------------

    def successors(self, key: str, count: int) -> list[str]:
        """The first ``count`` distinct CSPs clockwise from hash(key).

        This is the paper's uplink selection: the ``n`` CSPs that store a
        chunk's shares.  Raises :class:`SelectionError` when fewer than
        ``count`` CSPs are on the ring.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if count > len(self._weights):
            raise SelectionError(
                f"need {count} CSPs but only {len(self._weights)} on the ring"
            )
        start = bisect.bisect(self._points, _ring_hash(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == count:
                    return chosen
        raise AssertionError("unreachable: ring smaller than member count")

    def owner(self, key: str) -> str:
        """The single CSP owning ``key`` (first successor)."""
        return self.successors(key, 1)[0]
