"""Per-tenant storage quotas with fair admission.

The fleet shares a pool of CSP accounts; without admission control one
tenant's runaway uploads would exhaust the shared capacity and starve
everyone (the provider-side :class:`repro.errors.CSPQuotaExceededError`
fires far too late, mid-transfer, after bytes already crossed the
links).  :class:`FleetQuota` gates writes *before* dispatch: each
tenant gets an equal share of the fleet's capacity (or an explicit
per-tenant grant), and a PUT that would push the tenant's live bytes
over its quota is refused with :class:`TenantQuotaError`.

Accounting matches CYRUS semantics: a file's cost is its *latest*
version's size (uploading a new version replaces the old cost — shares
of old versions are garbage-collectable), and deleting a file frees
its cost.  The ledger is reserve/release transactional so a failed
upload never leaks quota.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TenantQuotaError


@dataclass(frozen=True)
class QuotaGrant:
    """One admitted reservation (the token ``release`` undoes)."""

    tenant_id: str
    name: str
    new_size: int
    prev_size: int | None  # latest-version size replaced, None = new file


class FleetQuota:
    """Equal-share (or explicitly granted) per-tenant storage quotas.

    Args:
        fleet_capacity: Total bytes the fleet may store, split equally
            across ``tenants`` (fair admission: every tenant holds the
            same entitlement, so no tenant can be starved by another).
        tenants: Tenant ids sharing the capacity.
        per_tenant: Explicit tenant -> bytes grants overriding the
            equal split (tenants absent from the mapping keep it).
    """

    def __init__(
        self,
        tenants: list[str],
        fleet_capacity: int | None = None,
        per_tenant: dict[str, int] | None = None,
    ):
        if not tenants:
            raise ValueError("need at least one tenant")
        if fleet_capacity is None and not per_tenant:
            raise ValueError("need fleet_capacity or per_tenant grants")
        share = (fleet_capacity // len(tenants)
                 if fleet_capacity is not None else None)
        self.limits: dict[str, int | None] = {}
        for tid in tenants:
            explicit = (per_tenant or {}).get(tid)
            self.limits[tid] = explicit if explicit is not None else share
        # tenant -> {file name -> latest version size}
        self._files: dict[str, dict[str, int]] = {tid: {} for tid in tenants}

    # -- introspection ----------------------------------------------------

    def limit_of(self, tenant_id: str) -> int | None:
        return self.limits[tenant_id]

    def used_by(self, tenant_id: str) -> int:
        return sum(self._files[tenant_id].values())

    def headroom(self, tenant_id: str) -> int | None:
        limit = self.limits[tenant_id]
        if limit is None:
            return None
        return limit - self.used_by(tenant_id)

    # -- the admission hook (duck-typed by CyrusClient.put) ---------------

    def reserve(self, tenant_id: str, name: str, size: int) -> QuotaGrant:
        """Admit a PUT or raise :class:`TenantQuotaError`.

        The reservation is applied immediately (the upload follows in
        the same logical operation); :meth:`release` rolls it back when
        the upload fails.
        """
        if tenant_id not in self._files:
            raise TenantQuotaError(f"unknown tenant {tenant_id!r}")
        files = self._files[tenant_id]
        prev = files.get(name)
        limit = self.limits[tenant_id]
        if limit is not None:
            used_after = self.used_by(tenant_id) - (prev or 0) + size
            if used_after > limit:
                raise TenantQuotaError(
                    f"tenant {tenant_id!r}: storing {size} bytes as "
                    f"{name!r} would use {used_after} of {limit} quota "
                    f"bytes ({self.used_by(tenant_id)} in use)"
                )
        files[name] = size
        return QuotaGrant(tenant_id=tenant_id, name=name,
                          new_size=size, prev_size=prev)

    def release(self, grant: QuotaGrant) -> None:
        """Roll back a reservation whose upload failed."""
        files = self._files[grant.tenant_id]
        if files.get(grant.name) != grant.new_size:
            return  # a later write superseded the grant; nothing to undo
        if grant.prev_size is None:
            files.pop(grant.name, None)
        else:
            files[grant.name] = grant.prev_size

    def forget(self, tenant_id: str, name: str) -> None:
        """Free a deleted file's cost (CyrusClient.delete calls this)."""
        self._files.get(tenant_id, {}).pop(name, None)
