"""repro.fleet — the multi-tenant fleet simulation harness.

Scales the paper's 20-user trial (Section 7.4) to hundreds of tenants
sharing CSP accounts and netsim links, with per-tenant namespaces
(:class:`repro.csp.NamespacedCSP`), sharded metadata
(:class:`repro.metadata.ShardedMetadataStore`), fair quota admission
(:class:`FleetQuota`) and seeded Zipf/Poisson workloads
(:mod:`repro.workloads.fleet`).  ``cyrus fleet`` drives it from the
command line and emits a schema-versioned ``FLEET_report.json``.
"""

from repro.fleet.harness import (
    FleetHarness,
    FleetResult,
    FleetTopology,
    TenantResult,
    run_fleet,
)
from repro.fleet.quota import FleetQuota, QuotaGrant
from repro.fleet.report import (
    FLEET_SCHEMA,
    MAX_LOAD_SKEW,
    fleet_gate,
    load_fleet_report,
    validate_fleet_report,
    write_fleet_report,
)

__all__ = [
    "FleetHarness",
    "FleetResult",
    "FleetTopology",
    "TenantResult",
    "run_fleet",
    "FleetQuota",
    "QuotaGrant",
    "FLEET_SCHEMA",
    "MAX_LOAD_SKEW",
    "fleet_gate",
    "load_fleet_report",
    "validate_fleet_report",
    "write_fleet_report",
]
