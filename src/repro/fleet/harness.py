"""The multi-tenant fleet simulation harness.

Runs N tenants — each a full :class:`repro.core.CyrusClient` with its
own key, chunk pipeline and metadata plane — against *shared*
infrastructure: one :class:`SimClock`, one set of CSP accounts (plain
in-memory stores or netsim-linked :class:`SimulatedCSP`), and the same
consistent-hash rings.  Per layer:

* **providers** — every tenant sees the shared accounts through
  :class:`repro.csp.NamespacedCSP`, so object spaces are disjoint by
  construction while links, quotas and failures stay shared;
* **metadata** — each tenant's files are consistent-hashed across
  metadata CSP groups by a :class:`repro.metadata.ShardedMetadataStore`
  (route prefix = tenant id, so tenants spread independently);
* **admission** — one :class:`FleetQuota` splits the fleet's capacity
  equally; ``CyrusClient.put`` reserves against it before any byte
  moves;
* **workload** — seeded Zipf/Poisson plans from
  :func:`repro.workloads.generate_fleet_workload`, replayed in global
  arrival order on the shared clock.

Determinism contract: with a fixed (spec, topology, seed) the replay
order, every transferred byte, every latency sample, the final
namespace contents and the emitted ``FLEET_report.json`` are all
bit-identical across runs — there is no wall-clock or global-RNG input
anywhere in the pipeline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.core.transfer import DirectEngine, SimulatedEngine
from repro.csp.base import CloudProvider
from repro.csp.memory import InMemoryCSP
from repro.csp.namespaced import NamespacedCSP, namespace_prefix
from repro.csp.simulated import SimulatedCSP
from repro.errors import CyrusError
from repro.fleet.quota import FleetQuota
from repro.fleet.report import FLEET_SCHEMA
from repro.metadata.sharded import ShardedMetadataStore
from repro.netsim.link import Link
from repro.obs import (
    Observability,
    latency_summary,
    load_skew,
    merge_snapshots,
    per_csp_bytes,
    per_csp_ops,
)
from repro.util.clock import SimClock
from repro.util.hashing import sha1_hex
from repro.workloads.fleet import (
    FleetWorkload,
    FleetWorkloadSpec,
    generate_fleet_workload,
)


@dataclass(frozen=True)
class FleetTopology:
    """The shared substrate a fleet runs on.

    Attributes:
        csps: Number of shared CSP accounts.
        meta_groups: Metadata shard groups; ``csps`` must split evenly
            into groups of at least ``meta_t`` providers each.
        engine: ``"netsim"`` (flow-simulated links, real latencies) or
            ``"memory"`` (plain dict stores, zero-latency — the tier-1
            smoke substrate).
        link_rate: Per-CSP link rate in bytes/s (netsim only).
        rtt_s: Per-CSP link RTT (netsim only).
        client_up / client_down: Client access-link rates in bytes/s.
        t / n: Data-plane coding parameters per tenant.
        meta_t: Metadata privacy threshold per group.
        base_key: Fleet key prefix; tenant keys are ``base_key:tenant``.
    """

    csps: int = 6
    meta_groups: int = 2
    engine: str = "netsim"
    link_rate: float = 4e6
    rtt_s: float = 0.02
    client_up: float = 12.5e6
    client_down: float = 12.5e6
    t: int = 2
    n: int = 3
    meta_t: int = 2
    base_key: str = "fleet-key"

    def __post_init__(self) -> None:
        if self.engine not in ("netsim", "memory"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.meta_groups < 1:
            raise ValueError("need at least one metadata group")
        if self.csps % self.meta_groups != 0:
            raise ValueError(
                f"{self.csps} CSPs do not split evenly into "
                f"{self.meta_groups} metadata groups"
            )
        if self.csps // self.meta_groups < self.meta_t:
            raise ValueError(
                f"metadata groups of {self.csps // self.meta_groups} "
                f"cannot meet meta_t={self.meta_t}"
            )
        if self.csps < self.n:
            raise ValueError(f"need at least n={self.n} CSPs, got {self.csps}")

    def csp_ids(self) -> list[str]:
        return [f"csp{i:02d}" for i in range(self.csps)]

    def group_ids(self) -> list[list[str]]:
        ids = self.csp_ids()
        size = self.csps // self.meta_groups
        return [ids[g * size:(g + 1) * size] for g in range(self.meta_groups)]


@dataclass
class TenantResult:
    """One tenant's outcome."""

    tenant_id: str
    converged: bool
    files: int
    stored_bytes: int
    namespace_digest: str
    sync_samples: list[float] = field(repr=False, default_factory=list)
    op_samples: list[float] = field(repr=False, default_factory=list)
    errors: list[str] = field(default_factory=list)


@dataclass
class FleetResult:
    """A finished fleet run: the report plus per-tenant details."""

    report: dict
    tenants: dict[str, TenantResult]
    workload: FleetWorkload


class FleetHarness:
    """Builds the shared substrate and replays a fleet workload."""

    def __init__(self, spec: FleetWorkloadSpec, topology: FleetTopology,
                 seed: int = 0):
        self.spec = spec
        self.topology = topology
        self.seed = seed
        self.clock = SimClock()
        self.raw_csps: dict[str, CloudProvider] = {}
        self.links: dict[str, Link] = {}
        if topology.engine == "netsim":
            for csp_id in topology.csp_ids():
                link = Link.symmetric(csp_id, topology.link_rate,
                                      rtt_s=topology.rtt_s)
                self.links[csp_id] = link
                self.raw_csps[csp_id] = SimulatedCSP(csp_id, link,
                                                     clock=self.clock)
        else:
            for csp_id in topology.csp_ids():
                self.raw_csps[csp_id] = InMemoryCSP(csp_id)

    # -- per-tenant construction ------------------------------------------

    def _build_client(self, tenant_id: str, quota: FleetQuota) -> CyrusClient:
        topo = self.topology
        wrapped = {
            csp_id: NamespacedCSP(raw, tenant_id)
            for csp_id, raw in self.raw_csps.items()
        }
        providers = [wrapped[c] for c in topo.csp_ids()]
        obs = Observability(clock=self.clock)
        if topo.engine == "netsim":
            engine = SimulatedEngine(
                {p.csp_id: p for p in providers}, self.links, self.clock,
                client_up=topo.client_up, client_down=topo.client_down,
                obs=obs,
            )
        else:
            engine = DirectEngine(
                {p.csp_id: p for p in providers}, clock=self.clock, obs=obs,
            )
        config = CyrusConfig(
            key=f"{topo.base_key}:{tenant_id}",
            t=topo.t, n=topo.n, meta_t=topo.meta_t,
        )
        groups = [[wrapped[c] for c in group] for group in topo.group_ids()]

        def sharded_store(client: CyrusClient) -> ShardedMetadataStore:
            return ShardedMetadataStore(
                groups, key=client.config.key, t=client.config.meta_t,
                health=client.health, metrics=client.obs.metrics,
                ledger=client.debt_ledger, clock=client.engine.clock,
                route_prefix=f"{tenant_id}/",
            )

        return CyrusClient.create(
            providers, config, client_id=tenant_id, engine=engine,
            admission=quota, store_factory=sharded_store,
        )

    # -- replay ------------------------------------------------------------

    def run(self) -> FleetResult:
        workload = generate_fleet_workload(self.spec, seed=self.seed)
        tenant_order = [plan.tenant_id for plan in workload.plans]
        quota = FleetQuota(
            tenant_order,
            per_tenant=(
                {tid: self.spec.quota_bytes for tid in tenant_order}
                if self.spec.quota_bytes is not None else None
            ),
            fleet_capacity=(
                None if self.spec.quota_bytes is not None
                else self.spec.tenants * 2 ** 62  # effectively unbounded
            ),
        )
        clients = {
            tid: self._build_client(tid, quota) for tid in tenant_order
        }
        results = {
            tid: TenantResult(tenant_id=tid, converged=False, files=0,
                              stored_bytes=0, namespace_digest="")
            for tid in tenant_order
        }
        # -- replay the merged schedule on the shared clock ---------------
        # sync latency = the paper's Figure 19 notion: simulated time
        # from a file change until it is fully dispersed and its
        # metadata published (a put, including its pre-op metadata
        # sync).  op latency covers every operation end-to-end.
        for tenant_id, op in workload.merged_ops():
            client = clients[tenant_id]
            res = results[tenant_id]
            now = self.clock.now()
            if op.at > now:
                self.clock.advance_to(op.at)
            t0 = self.clock.now()
            try:
                client.sync()
                if op.action == "put":
                    client.put(op.name, op.content(), sync_first=False)
                    res.sync_samples.append(self.clock.now() - t0)
                else:
                    client.get(op.name, sync_first=False)
            except CyrusError as exc:
                res.errors.append(
                    f"{op.action} {op.name!r}: {type(exc).__name__}: {exc}"
                )
                continue
            res.op_samples.append(self.clock.now() - t0)
        # -- convergence: one final sync per tenant, then audit ------------
        for tenant_id in tenant_order:
            client = clients[tenant_id]
            res = results[tenant_id]
            plan = workload.plan_for(tenant_id)
            try:
                client.sync()
            except CyrusError as exc:
                res.errors.append(f"final sync: {type(exc).__name__}: {exc}")
            expected = plan.expected_files()
            entries = {
                e.name: e for e in client.list_files(sync_first=False)
            }
            converged = set(entries) == set(expected) and not res.errors
            if converged:
                for name, op in expected.items():
                    node = entries[name].node
                    if (node.size != op.size
                            or node.file_id != sha1_hex(op.content())):
                        converged = False
                        res.errors.append(f"{name!r}: wrong head version")
                        break
            res.converged = converged
            res.files = len(entries)
            res.stored_bytes = sum(e.size for e in entries.values())
            res.namespace_digest = self._namespace_digest(tenant_id)
        collisions = self._namespace_collisions(tenant_order)
        report = self._build_report(workload, clients, results, collisions)
        for client in clients.values():
            client.close()
        return FleetResult(report=report, tenants=results, workload=workload)

    # -- auditing ----------------------------------------------------------

    def _namespace_digest(self, tenant_id: str) -> str:
        """SHA-1 over the tenant's raw objects across all providers.

        Hashes (csp, qualified name, content digest) triples in sorted
        order — two runs converge to identical namespaces iff these
        digests match.
        """
        prefix = namespace_prefix(tenant_id)
        acc = hashlib.sha1()
        for csp_id in sorted(self.raw_csps):
            raw = self.raw_csps[csp_id]
            for info in sorted(raw.list(prefix=prefix), key=lambda i: i.name):
                blob = raw.download(info.name)
                acc.update(
                    f"{csp_id}|{info.name}|{sha1_hex(blob)}\n".encode()
                )
        return acc.hexdigest()

    def _namespace_collisions(self, tenant_order: list[str]) -> int:
        """Objects not attributable to exactly one tenant namespace."""
        prefixes = {tid: namespace_prefix(tid) for tid in tenant_order}
        bad = 0
        for raw in self.raw_csps.values():
            for info in raw.list():
                owners = [
                    tid for tid, p in prefixes.items()
                    if info.name.startswith(p)
                ]
                if len(owners) != 1:
                    bad += 1
        return bad

    # -- reporting ---------------------------------------------------------

    def _build_report(
        self,
        workload: FleetWorkload,
        clients: dict[str, CyrusClient],
        results: dict[str, TenantResult],
        collisions: int,
    ) -> dict:
        merged = merge_snapshots(
            [clients[tid].obs.snapshot() for tid in sorted(clients)]
        )
        bytes_by_csp = per_csp_bytes(merged)
        ops_by_csp = per_csp_ops(merged)
        all_sync = [s for r in results.values() for s in r.sync_samples]
        all_ops = [s for r in results.values() for s in r.op_samples]
        topo = self.topology
        return {
            "schema": FLEET_SCHEMA,
            "params": {
                "tenants": self.spec.tenants,
                "seed": self.seed,
                "engine": topo.engine,
                "csps": topo.csps,
                "meta_groups": topo.meta_groups,
                "t": topo.t,
                "n": topo.n,
                "meta_t": topo.meta_t,
                "files_per_tenant": self.spec.files_per_tenant,
                "ops_per_tenant": self.spec.ops_per_tenant,
                "zipf_s": self.spec.zipf_s,
                "arrival_rate": self.spec.arrival_rate,
                "quota_bytes": self.spec.quota_bytes,
            },
            "workload_fingerprint": workload.fingerprint(),
            "fleet": {
                "sync_latency": latency_summary(all_sync),
                "op_latency": latency_summary(all_ops),
                "per_csp_bytes": {k: v for k, v in sorted(bytes_by_csp.items())},
                "per_csp_ops": {k: v for k, v in sorted(ops_by_csp.items())},
                "byte_skew": load_skew(bytes_by_csp),
                "op_skew": load_skew(ops_by_csp),
                "converged_tenants": sum(
                    1 for r in results.values() if r.converged
                ),
                "namespace_collisions": collisions,
                "sim_time": self.clock.now(),
            },
            "tenants": {
                tid: {
                    "converged": r.converged,
                    "files": r.files,
                    "stored_bytes": r.stored_bytes,
                    "namespace_digest": r.namespace_digest,
                    "sync_latency": latency_summary(r.sync_samples),
                    "errors": list(r.errors),
                }
                for tid, r in sorted(results.items())
            },
        }


def run_fleet(
    spec: FleetWorkloadSpec,
    topology: FleetTopology | None = None,
    seed: int = 0,
) -> FleetResult:
    """Build a harness, replay the workload, return the result."""
    return FleetHarness(
        spec, topology if topology is not None else FleetTopology(),
        seed=seed,
    ).run()
