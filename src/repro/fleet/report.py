"""The schema-versioned ``FLEET_report.json`` format.

Mirrors the ``cyrus-bench/v1`` discipline (:mod:`repro.bench.reporting`):
a fleet run emits one JSON document tagged ``cyrus-fleet/v1``,
:func:`validate_fleet_report` refuses malformed documents, and the CI
fleet job gates on :func:`fleet_gate` — p99 sync latency must be finite
and per-CSP load skew must stay under 2x under balanced placement.

Everything in the report derives from the simulated clock, the seeded
workload and the merged metrics registry — no wall-clock timestamps,
no host-dependent values — so two runs with the same seed produce
byte-identical report files (the determinism contract the smoke test
pins).
"""

from __future__ import annotations

import json
import math

#: Schema tag every fleet report must carry.
FLEET_SCHEMA = "cyrus-fleet/v1"

#: Default CI gate: per-CSP byte/op load skew must stay below this.
MAX_LOAD_SKEW = 2.0

#: Fields every latency summary block must carry.
_LATENCY_FIELDS = ("count", "p50", "p99", "mean", "max")


def _check_latency_block(name: str, block: object) -> None:
    if not isinstance(block, dict):
        raise ValueError(f"{name} must be a dict, got {type(block).__name__}")
    for field in _LATENCY_FIELDS:
        if field not in block:
            raise ValueError(f"{name} missing {field!r}")
        value = block[field]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{name}[{field!r}] must be a number, got {value!r}")


def validate_fleet_report(report: dict) -> None:
    """Raise ValueError unless ``report`` is a well-formed fleet report.

    Required shape::

        {"schema": "cyrus-fleet/v1",
         "params": {str: ...},                  # tenants, seed, topology
         "workload_fingerprint": str,           # SHA-1 of all tenant plans
         "fleet": {"sync_latency": {...}, "op_latency": {...},
                   "per_csp_bytes": {csp: num}, "per_csp_ops": {csp: num},
                   "byte_skew": num, "op_skew": num,
                   "converged_tenants": int, "namespace_collisions": int},
         "tenants": {tenant_id: {"converged": bool, "files": int,
                                 "stored_bytes": num, "namespace_digest": str,
                                 "sync_latency": {...}}}}
    """
    if not isinstance(report, dict):
        raise ValueError(f"fleet report must be a dict, got {type(report).__name__}")
    if report.get("schema") != FLEET_SCHEMA:
        raise ValueError(
            f"fleet report schema {report.get('schema')!r} != {FLEET_SCHEMA!r}"
        )
    params = report.get("params")
    if not isinstance(params, dict) or not all(isinstance(k, str) for k in params):
        raise ValueError("fleet report 'params' must be a str-keyed dict")
    if not isinstance(report.get("workload_fingerprint"), str):
        raise ValueError("fleet report needs a 'workload_fingerprint' string")
    fleet = report.get("fleet")
    if not isinstance(fleet, dict):
        raise ValueError("fleet report 'fleet' must be a dict")
    _check_latency_block("fleet.sync_latency", fleet.get("sync_latency"))
    _check_latency_block("fleet.op_latency", fleet.get("op_latency"))
    for key in ("per_csp_bytes", "per_csp_ops"):
        block = fleet.get(key)
        if not isinstance(block, dict) or not block:
            raise ValueError(f"fleet.{key} must be a non-empty dict")
        for csp, value in block.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"fleet.{key}[{csp!r}] must be a number")
    for key in ("byte_skew", "op_skew"):
        value = fleet.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"fleet.{key} must be a number, got {value!r}")
    for key in ("converged_tenants", "namespace_collisions"):
        if not isinstance(fleet.get(key), int):
            raise ValueError(f"fleet.{key} must be an int")
    tenants = report.get("tenants")
    if not isinstance(tenants, dict) or not tenants:
        raise ValueError("fleet report 'tenants' must be a non-empty dict")
    for tid, entry in tenants.items():
        if not isinstance(entry, dict):
            raise ValueError(f"tenants[{tid!r}] must be a dict")
        if not isinstance(entry.get("converged"), bool):
            raise ValueError(f"tenants[{tid!r}].converged must be a bool")
        if not isinstance(entry.get("namespace_digest"), str):
            raise ValueError(f"tenants[{tid!r}].namespace_digest must be a str")
        _check_latency_block(f"tenants[{tid!r}].sync_latency",
                             entry.get("sync_latency"))


def fleet_gate(report: dict, max_skew: float = MAX_LOAD_SKEW) -> list[str]:
    """CI gate over a validated report: the violations found (empty = pass).

    Gates: every tenant converged, zero cross-tenant namespace
    collisions, fleet p99 sync latency finite, and per-CSP byte and op
    load skew below ``max_skew``.
    """
    violations: list[str] = []
    fleet = report["fleet"]
    total = len(report["tenants"])
    if fleet["converged_tenants"] != total:
        violations.append(
            f"only {fleet['converged_tenants']}/{total} tenants converged"
        )
    if fleet["namespace_collisions"] != 0:
        violations.append(
            f"{fleet['namespace_collisions']} cross-tenant namespace collisions"
        )
    p99 = fleet["sync_latency"]["p99"]
    if not math.isfinite(p99):
        violations.append(f"fleet p99 sync latency is not finite: {p99!r}")
    for key in ("byte_skew", "op_skew"):
        skew = fleet[key]
        if not math.isfinite(skew):
            violations.append(f"fleet {key} is not finite: {skew!r}")
        elif skew >= max_skew:
            violations.append(
                f"fleet {key} {skew:.3f} >= {max_skew} (unbalanced placement)"
            )
    return violations


def write_fleet_report(report: dict, path) -> None:
    """Validate then write one fleet report as pretty-printed JSON.

    ``sort_keys`` keeps the byte layout a pure function of the content,
    which is what lets the smoke test compare two runs' files directly.
    """
    validate_fleet_report(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_fleet_report(path) -> dict:
    """Read and validate one fleet report."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    validate_fleet_report(report)
    return report
