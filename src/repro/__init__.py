"""CYRUS: client-defined, privacy-protected, reliable cloud storage.

A full reproduction of *CYRUS: Towards Client-Defined Cloud Storage*
(Chung, Hong, Joe-Wong, Ha, Chiang — EuroSys 2015): a client-side
system that scatters erasure-coded file shares across multiple
autonomous cloud storage providers so that no single provider can read
user data, the data survives provider outages, and parallel downloads
from optimally chosen providers minimise latency.

This module is the **stable public API façade**: everything a caller
needs — the sync and async clients, configuration, the provider
protocols, the report types and the error hierarchy — imports from
here.  Deeper paths (``repro.core.*`` package re-exports) are
deprecated shims; the canonical implementation modules remain importable
for advanced use.

Quickstart (sync)::

    from repro import CyrusClient, CyrusConfig
    from repro.csp import InMemoryCSP

    csps = [InMemoryCSP(f"csp{i}") for i in range(4)]
    with CyrusClient.create(csps, CyrusConfig(key="secret", t=2, n=3)) as client:
        client.put("hello.txt", b"hello, cyrus")
        print(client.get("hello.txt").data)

Quickstart (async — thousands of concurrent sessions per process)::

    from repro import AsyncCyrusClient, CyrusConfig
    from repro.csp import InMemoryCSP

    async def main():
        csps = [InMemoryCSP(f"csp{i}") for i in range(4)]
        config = CyrusConfig(key="secret", t=2, n=3, parallelism=4)
        async with AsyncCyrusClient(csps, config) as session:
            await session.put("hello.txt", b"hello, cyrus")
            print((await session.get("hello.txt")).data)

See DESIGN.md's "public API & async core" section for the protocol,
semaphore model and loop-ownership rules.
"""

from repro.core.async_client import AsyncCyrusClient
from repro.core.async_engine import AsyncTransferEngine
from repro.core.async_retry import AsyncShareRetryLoop
from repro.core.client import CyrusClient, FileEntry
from repro.core.cloud import CSPStatus, CyrusCloud
from repro.core.config import CyrusConfig
from repro.core.downloader import DownloadReport
from repro.core.parallel import ParallelEngine
from repro.core.retry import ShareRetryLoop
from repro.core.sync import SyncReport
from repro.core.transfer import (
    DirectEngine,
    OpResult,
    SimulatedEngine,
    TransferOp,
    TransferReceiver,
)
from repro.core.uploader import UploadReport
from repro.csp.aio import AsyncCloudProvider, SyncProviderAdapter, as_async_provider
from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.csp.resilient import HealthRegistry, ResilientProvider, RetryPolicy
from repro.errors import (
    Attempt,
    ChunkingError,
    CircuitOpenError,
    CodingError,
    ConfigurationError,
    ConflictError,
    CSPAuthError,
    CSPError,
    CSPQuotaExceededError,
    CSPTimeoutError,
    CSPUnavailableError,
    CyrusError,
    InsufficientSharesError,
    MetadataError,
    ObjectNotFoundError,
    ReliabilityError,
    SelectionError,
    ShareGatherError,
    ShareIntegrityError,
    TenantQuotaError,
    TransferError,
    is_retryable,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider
from repro.fleet import (
    FleetHarness,
    FleetQuota,
    FleetResult,
    FleetTopology,
    TenantResult,
    fleet_gate,
    run_fleet,
)
from repro.workloads.fleet import FleetWorkloadSpec, generate_fleet_workload

__version__ = "1.2.0"

__all__ = [
    # clients & configuration
    "CyrusClient",
    "AsyncCyrusClient",
    "CyrusConfig",
    "CyrusCloud",
    "CSPStatus",
    "FileEntry",
    # reports
    "UploadReport",
    "DownloadReport",
    "SyncReport",
    # provider protocols
    "CloudProvider",
    "AsyncCloudProvider",
    "SyncProviderAdapter",
    "as_async_provider",
    "BytesLike",
    "ObjectInfo",
    # engines & retry
    "DirectEngine",
    "SimulatedEngine",
    "ParallelEngine",
    "AsyncTransferEngine",
    "TransferOp",
    "OpResult",
    "TransferReceiver",
    "ShareRetryLoop",
    "AsyncShareRetryLoop",
    # resilience
    "HealthRegistry",
    "ResilientProvider",
    "RetryPolicy",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyProvider",
    # fleet simulation
    "FleetHarness",
    "FleetQuota",
    "FleetResult",
    "FleetTopology",
    "FleetWorkloadSpec",
    "TenantResult",
    "fleet_gate",
    "generate_fleet_workload",
    "run_fleet",
    # errors
    "CyrusError",
    "ConfigurationError",
    "CodingError",
    "InsufficientSharesError",
    "ShareIntegrityError",
    "ChunkingError",
    "CSPError",
    "CSPUnavailableError",
    "CSPTimeoutError",
    "CircuitOpenError",
    "CSPAuthError",
    "CSPQuotaExceededError",
    "ObjectNotFoundError",
    "MetadataError",
    "TenantQuotaError",
    "ConflictError",
    "SelectionError",
    "ReliabilityError",
    "TransferError",
    "ShareGatherError",
    "Attempt",
    "is_retryable",
    "__version__",
]
