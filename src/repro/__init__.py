"""CYRUS: client-defined, privacy-protected, reliable cloud storage.

A full reproduction of *CYRUS: Towards Client-Defined Cloud Storage*
(Chung, Hong, Joe-Wong, Ha, Chiang — EuroSys 2015): a client-side
system that scatters erasure-coded file shares across multiple
autonomous cloud storage providers so that no single provider can read
user data, the data survives provider outages, and parallel downloads
from optimally chosen providers minimise latency.

Quickstart::

    from repro import CyrusClient, CyrusConfig
    from repro.csp import InMemoryCSP

    csps = [InMemoryCSP(f"csp{i}") for i in range(4)]
    client = CyrusClient.create(csps, CyrusConfig(key="secret", t=2, n=3))
    client.put("hello.txt", b"hello, cyrus")
    print(client.get("hello.txt").data)

See :mod:`repro.core` for the client, :mod:`repro.selection` for the
download optimiser, :mod:`repro.csp` for providers, and DESIGN.md for
the full system inventory.
"""

from repro.core.client import CyrusClient, FileEntry
from repro.core.cloud import CSPStatus, CyrusCloud
from repro.core.config import CyrusConfig
from repro.core.downloader import DownloadReport
from repro.core.sync import SyncReport
from repro.core.transfer import DirectEngine, SimulatedEngine, TransferReceiver
from repro.core.uploader import UploadReport
from repro.csp.resilient import HealthRegistry, ResilientProvider, RetryPolicy
from repro.errors import CyrusError
from repro.faults import FaultKind, FaultPlan, FaultSpec, FaultyProvider

__version__ = "1.0.0"

__all__ = [
    "CyrusClient",
    "CyrusCloud",
    "CyrusConfig",
    "CSPStatus",
    "FileEntry",
    "UploadReport",
    "DownloadReport",
    "SyncReport",
    "DirectEngine",
    "SimulatedEngine",
    "TransferReceiver",
    "CyrusError",
    "HealthRegistry",
    "ResilientProvider",
    "RetryPolicy",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyProvider",
    "__version__",
]
